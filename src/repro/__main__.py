"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``                        build + query + render on a random scene
``query SCENE.json P Q``        length/path between two points
``figures [N]``                 print paper figure(s)
``bench-info SCENE.json``       build and report simulated PRAM costs

Scene files are JSON: ``{"rects": [[xlo, ylo, xhi, yhi], ...]}``; points
are given as ``x,y``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from repro import Rect, ShortestPathIndex
from repro.pram import PRAM, speedup_table
from repro.viz.ascii import render_scene
from repro.workloads.generators import random_disjoint_rects


def _load_scene(path: str) -> list[Rect]:
    with open(path) as fh:
        data = json.load(fh)
    try:
        return [Rect(*map(int, row)) for row in data["rects"]]
    except (KeyError, TypeError) as exc:
        raise SystemExit(f"{path}: expected {{'rects': [[xlo,ylo,xhi,yhi],...]}}: {exc}")


def _parse_point(text: str) -> tuple[int, int]:
    try:
        x, y = text.split(",")
        return (int(x), int(y))
    except ValueError:
        raise SystemExit(f"bad point {text!r}: expected 'x,y'")


def cmd_demo(args: argparse.Namespace) -> int:
    rects = random_disjoint_rects(args.n, seed=args.seed)
    idx = ShortestPathIndex.build(rects, engine=args.engine)
    t, w = idx.build_stats()
    vs = idx.vertices()
    p, q = vs[0], vs[-1]
    path = idx.shortest_path(p, q)
    print(f"n={args.n} obstacles, engine={args.engine}: simulated T={t}, W={w}")
    print(f"length {p} -> {q} = {idx.length(p, q)}; path has {len(path)-1} segments")
    print(render_scene(rects, paths=[path], points=[(p, 'A'), (q, 'B')],
                       title="demo scene"))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    rects = _load_scene(args.scene)
    p = _parse_point(args.p)
    q = _parse_point(args.q)
    idx = ShortestPathIndex.build(rects, extra_points=[p, q], engine=args.engine)
    print(f"length = {idx.length(p, q)}")
    if args.path:
        path = idx.shortest_path(p, q)
        print("path   =", " -> ".join(map(str, path)))
        if args.render:
            print(render_scene(rects, paths=[path], points=[(p, 'A'), (q, 'B')]))
    return 0


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.figures import ALL_FIGURES, figure_text

    which = [args.n] if args.n else list(ALL_FIGURES)
    for k in which:
        print(figure_text(k))
        print()
    return 0


def cmd_bench_info(args: argparse.Namespace) -> int:
    rects = _load_scene(args.scene)
    pram = PRAM("cli")
    ShortestPathIndex.build(rects, engine="parallel", pram=pram)
    print(f"n={len(rects)}: simulated parallel time T={pram.time}, work W={pram.work}")
    print(f"{'p':>8} {'T_p':>12} {'speedup':>9}")
    for p_, tp, s, _ in speedup_table(pram.work, pram.time, [1, 16, 256, 4096]):
        print(f"{p_:>8} {tp:>12} {s:>9.1f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel rectilinear shortest paths with rectangular "
        "obstacles (Atallah & Chen 1990/91)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    d = sub.add_parser("demo", help="random scene demo")
    d.add_argument("-n", type=int, default=12)
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--engine", choices=["parallel", "sequential"], default="parallel")
    d.set_defaults(fn=cmd_demo)

    q = sub.add_parser("query", help="query a scene file")
    q.add_argument("scene")
    q.add_argument("p")
    q.add_argument("q")
    q.add_argument("--path", action="store_true")
    q.add_argument("--render", action="store_true")
    q.add_argument("--engine", choices=["parallel", "sequential"], default="sequential")
    q.set_defaults(fn=cmd_query)

    f = sub.add_parser("figures", help="print paper figure(s)")
    f.add_argument("n", nargs="?", type=int)
    f.set_defaults(fn=cmd_figures)

    b = sub.add_parser("bench-info", help="simulated PRAM costs for a scene")
    b.add_argument("scene")
    b.set_defaults(fn=cmd_bench_info)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
