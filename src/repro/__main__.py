"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``                        build + query + render on a random scene
``query SCENE P Q``             length/path between two points; SCENE is a
                                JSON scene or a ``.rsp`` snapshot
``snapshot SCENE.json OUT.rsp`` build once, persist the index
``serve-bench SCENE [...]``     replay a request workload through the
                                batching server (per-request vs coalesced)
``cluster SCENE [...]``         serve scenes from N worker processes over
                                shared memory behind an async TCP
                                front-end (``--workers N --port P``)
``loadgen``                     drive a running cluster: ``--closed``
                                capacity runs or ``--open --rps R``
                                latency runs, percentile reports
``fuzz``                        differential fuzz smoke: cross-check the
                                parallel/sequential/baseline engines on
                                random mixed rect+polygon scenes
                                (``--engine`` adds another registered
                                engine to the comparison)
``plan SCENE [--json]``         run the staged build pipeline and print
                                the stage graph with per-stage wall-clock
                                and simulated PRAM timings
``figures [N]``                 print paper figure(s)
``bench-info SCENE``            build a JSON scene and report simulated
                                PRAM costs + per-stage timings, or print
                                the stored stage provenance of a ``.rsp``
                                snapshot (``--require-provenance`` exits
                                nonzero when a snapshot predates it)

Scene files are JSON (schema v2, see :mod:`repro.workloads.scenefile`)::

    {"version": 2, "rects": [[xlo, ylo, xhi, yhi], ...],
     "polygons": [[[x, y], ...], ...], "container": [[x, y], ...]}

The bare v1 form ``{"rects": [...]}`` is still accepted.  Points are given
as ``x,y``.  Snapshot artifacts are produced by ``snapshot`` (or
:func:`repro.serve.save`) and load in milliseconds.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro import ShortestPathIndex
from repro.errors import ReproError, SnapshotError
from repro.geometry.polygon import RectilinearPolygon
from repro.pipeline import engine_names
from repro.pram import PRAM, speedup_table
from repro.scene import load_scene_cli
from repro.viz.ascii import render_scene
from repro.workloads.generators import random_disjoint_rects


def _parse_point(text: str) -> tuple[int, int]:
    try:
        x, y = text.split(",")
        return (int(x), int(y))
    except ValueError:
        raise SystemExit(f"bad point {text!r}: expected 'x,y'")


def _looks_like_snapshot(path: str) -> bool:
    from repro.serve.snapshot import SNAPSHOT_SUFFIX, is_snapshot

    return path.endswith(SNAPSHOT_SUFFIX) or is_snapshot(path)


def cmd_demo(args: argparse.Namespace) -> int:
    if args.polygons:
        from repro.workloads.generators import random_polygon_scene

        obstacles = random_polygon_scene(
            n_polygons=args.polygons, n_rects=args.n, seed=args.seed
        )
    else:
        obstacles = random_disjoint_rects(args.n, seed=args.seed)
    idx = ShortestPathIndex.build(
        obstacles, engine=args.engine, jobs=args.jobs, jit=args.jit
    )
    t, w = idx.build_stats()
    vs = idx.vertices()
    p, q = vs[0], vs[-1]
    path = idx.shortest_path(p, q)
    print(
        f"n={len(obstacles)} obstacles ({len(idx.rects)} rects after "
        f"decomposition), engine={args.engine}: simulated T={t}, W={w}"
    )
    print(f"length {p} -> {q} = {idx.length(p, q)}; path has {len(path)-1} segments")
    print(render_scene(obstacles, paths=[path], points=[(p, 'A'), (q, 'B')],
                       title="demo scene"))
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    p = _parse_point(args.p)
    q = _parse_point(args.q)
    if _looks_like_snapshot(args.scene):
        from repro.serve.snapshot import load

        try:
            idx = load(args.scene)
        except (SnapshotError, OSError) as exc:
            raise SystemExit(str(exc))
        scene_obs = list(idx.rects)
    else:
        scene = load_scene_cli(args.scene)
        print(
            f"note: rebuilding the index from {args.scene}; snapshot it once "
            f"with `python -m repro snapshot {args.scene} "
            f"{pathlib.Path(args.scene).stem}.rsp` to skip this on every query",
            file=sys.stderr,
        )
        try:
            idx = ShortestPathIndex.build(
                scene.obstacles,
                extra_points=[p, q, *scene.extra_points],
                engine=args.engine,
                container=scene.container,
                jobs=args.jobs,
                jit=args.jit,
            )
        except ReproError as exc:
            raise SystemExit(str(exc))
        scene_obs = list(scene.obstacles)
    # capability gating (a snapshot whose format version predates a verb)
    # and off-grid/outside-container rejections are one-line answers,
    # never tracebacks
    try:
        print(f"length = {idx.length(p, q)}")
        if args.minlink:
            links = idx.min_links(p, q)
            links = int(links) if links != float("inf") else links
            bends = max(links - 1, 0) if links != float("inf") else links
            print(f"links  = {links} (bends = {bends})")
        if args.pareto:
            frontier = idx.bicriteria(p, q, with_paths=False)
            front = ", ".join(
                f"(length {length}, {bends} bend{'s' if bends != 1 else ''})"
                for length, bends, _ in frontier
            )
            print(f"pareto = [{front}]")
        if args.path:
            path = idx.shortest_path(p, q)
            print("path   =", " -> ".join(map(str, path)))
            if args.render:
                print(render_scene(scene_obs, paths=[path], points=[(p, 'A'), (q, 'B')]))
    except ReproError as exc:
        raise SystemExit(str(exc))
    return 0


def cmd_snapshot(args: argparse.Namespace) -> int:
    from repro.serve.snapshot import save

    scene = load_scene_cli(args.scene)
    t0 = time.perf_counter()
    try:
        idx = ShortestPathIndex.build(
            scene.obstacles,
            extra_points=scene.extra_points,
            engine=args.engine,
            container=scene.container,
            jobs=args.jobs,
            jit=args.jit,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    build_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    try:
        out = save(
            idx, args.out, include_query=not args.no_query,
            include_links=args.links,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    save_s = time.perf_counter() - t0
    size = out.stat().st_size
    extras = " +links" if args.links else ""
    print(
        f"{args.scene}: n={len(scene.obstacles)} built in {build_s:.3f}s "
        f"({args.engine} engine), snapshot{extras} {out} ({size:,} bytes) "
        f"written in {save_s:.3f}s"
    )
    return 0


def cmd_serve_bench(args: argparse.Namespace) -> int:
    from repro.serve.server import QueryServer, Request
    from repro.serve.store import SceneStore
    from repro.workloads.requests import random_request_stream, scene_endpoints

    store = SceneStore()
    names: list[str] = []
    for i, scene in enumerate(args.scenes):
        # stable names (the file stem) so a recorded workload replays
        # against the same scene set regardless of argument order
        name = pathlib.Path(scene).stem
        if name in store:
            name = f"{name}#{i}"
        names.append(name)
        if _looks_like_snapshot(scene):
            store.add_snapshot(name, scene)
        else:
            parsed = load_scene_cli(scene)
            store.add_scene(
                name,
                parsed.obstacles,
                engine=args.engine,
                container=parsed.container,
                extra_points=parsed.extra_points,
            )
    t0 = time.perf_counter()
    try:
        # materialization happens here: snapshot loads and engine builds
        # alike must exit with one line, not a traceback
        endpoints = {n: scene_endpoints(store.get(n), seed=args.seed) for n in names}
    except (ReproError, OSError) as exc:
        raise SystemExit(str(exc))
    warm_s = time.perf_counter() - t0
    if args.workload:
        with open(args.workload) as fh:
            reqs = [
                Request(r["scene"], tuple(r["p"]), tuple(r["q"]), r.get("op", "length"))
                for r in json.load(fh)["requests"]
            ]
    else:
        reqs = random_request_stream(
            endpoints, args.requests, seed=args.seed, mix=(args.arbitrary, args.paths)
        )
    if args.record:
        payload = {
            "requests": [
                {"scene": r.scene, "op": r.op, "p": list(r.p), "q": list(r.q)}
                for r in reqs
            ]
        }
        pathlib.Path(args.record).write_text(json.dumps(payload))
        print(f"recorded {len(reqs)} requests to {args.record}")
    server = QueryServer(store)
    from repro.errors import QueryError
    from repro.obs.recorders import LatencyRecorder, format_latency

    per_lat = LatencyRecorder()
    batch_lat = LatencyRecorder()
    try:
        # untimed warm pass: lazy §6.4/§8 structures are built here so
        # neither timed phase pays one-time construction costs
        server.submit(reqs)
        t0 = time.perf_counter()
        for r in reqs:
            t1 = time.perf_counter()
            server.submit([r])
            per_lat.record(time.perf_counter() - t1)
        per_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        for k in range(0, len(reqs), args.batch):
            t1 = time.perf_counter()
            server.submit(reqs[k : k + args.batch])
            batch_lat.record(time.perf_counter() - t1)
        co_s = time.perf_counter() - t0
    except QueryError as exc:  # e.g. a workload naming an unknown scene
        raise SystemExit(str(exc))
    n = len(reqs)
    print(
        f"{len(names)} scene(s), {n} requests (warm-up {warm_s:.3f}s); "
        f"batch size {args.batch}"
    )
    print(f"per-request: {per_s:.3f}s  ({n / per_s:,.0f} req/s)  "
          f"[{format_latency(per_lat.summary())}]")
    print(f"coalesced:   {co_s:.3f}s  ({n / co_s:,.0f} req/s)  "
          f"speedup {per_s / co_s:.1f}x  "
          f"[per-batch {format_latency(batch_lat.summary())}]")
    stats = server.stats()
    print(f"batch-size histogram: {stats['batch_size_hist']}")
    print(f"store: {store.stats()}")
    print(f"server: {stats}")
    return 0


def _cluster_scene_specs(paths: Sequence[str]) -> dict:
    """Scene files → ``ClusterFrontend`` source specs, named by stem."""
    specs: dict[str, dict] = {}
    for i, scene in enumerate(paths):
        name = pathlib.Path(scene).stem
        if name in specs:
            name = f"{name}#{i}"
        if _looks_like_snapshot(scene):
            specs[name] = {"snapshot": scene}
        else:
            parsed = load_scene_cli(scene)
            specs[name] = {
                "obstacles": list(parsed.obstacles),
                "container": parsed.container,
                "extra_points": list(parsed.extra_points),
            }
    return specs


def _parse_pins(pin_args: Sequence[str]) -> dict:
    pins: dict[str, int] = {}
    for text in pin_args or ():
        try:
            scene, _, wid = text.partition("=")
            pins[scene] = int(wid)
        except ValueError:
            raise SystemExit(f"bad --pin {text!r}: expected SCENE=WORKER_ID")
    return pins


def cmd_cluster(args: argparse.Namespace) -> int:
    import asyncio
    import signal

    from repro.cluster.faults import FaultPlan
    from repro.cluster.frontend import ClusterFrontend
    from repro.cluster.supervisor import RestartPolicy
    from repro.errors import ClusterError

    specs = _cluster_scene_specs(args.scenes)
    try:
        faults = FaultPlan.from_file(args.faults) if args.faults else None
        frontend = ClusterFrontend(
            specs,
            workers=args.workers,
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            batch_window_ms=args.window_ms,
            queue_depth=args.queue_depth,
            pins=_parse_pins(args.pin),
            start_method=args.start_method,
            use_shm=not args.no_shm,
            engine=args.engine,
            supervise=not args.no_supervise,
            restart_policy=RestartPolicy(
                max_restarts=args.max_restarts, window_s=args.restart_window_s
            ),
            faults=faults,
            metrics_port=args.metrics_port,
        )
    except (ClusterError, ValueError) as exc:  # e.g. a pin out of range
        raise SystemExit(str(exc))

    async def run() -> None:
        loop = asyncio.get_running_loop()
        # SIGINT stops immediately; SIGTERM drains first (stops admitting,
        # finishes queued + in-flight work, then exits) — the shutdown a
        # process manager should send
        try:
            loop.add_signal_handler(signal.SIGINT, frontend.request_stop)
            loop.add_signal_handler(signal.SIGTERM, frontend.request_drain)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
        await frontend.start()
        shard_note = ", ".join(
            f"{name}->w{wid}" for name, wid in sorted(frontend.assignment.items())
        )
        print(
            f"cluster listening on {frontend.host}:{frontend.port} "
            f"({args.workers} workers, shm={'off' if args.no_shm else 'on'}; "
            f"{shard_note})",
            flush=True,
        )
        if frontend.metrics_port is not None:
            print(
                f"metrics: http://{frontend.host}:{frontend.metrics_port}/metrics",
                flush=True,
            )
        if args.ready_file:
            pathlib.Path(args.ready_file).write_text(
                f"{frontend.host} {frontend.port}\n"
            )
        if args.duration:
            loop.call_later(args.duration, frontend.request_stop)
        try:
            await frontend.serve_forever()
        finally:
            await frontend.stop()
            fstats = frontend.stats()["frontend"]
            print(
                f"cluster stopped: {fstats['requests']} requests, "
                f"{fstats['sheds']} shed",
                flush=True,
            )

    try:
        asyncio.run(run())
    except ReproError as exc:  # cluster failures and scene-build failures
        raise SystemExit(str(exc))
    return 0


def cmd_loadgen(args: argparse.Namespace) -> int:
    import asyncio

    from repro.cluster import loadgen
    from repro.errors import ClusterError
    from repro.obs.recorders import format_latency

    mode = "open" if args.open else "closed"
    try:
        verb_mix = loadgen.parse_mix(args.mix) if args.mix else None
        report = asyncio.run(
            loadgen.run(
                args.host,
                args.port,
                mode=mode,
                n_requests=args.requests,
                rps=args.rps,
                conns=args.conns,
                seed=args.seed,
                mix=(args.bulk, args.arbitrary, args.paths),
                verb_mix=verb_mix,
                pairs_per_request=args.pairs,
                retries=args.retries,
                retry_budget=args.retry_budget,
                deadline_ms=args.deadline_ms,
                timeout_s=args.timeout_s,
                trace_sample=args.trace_sample,
                mutate_every=args.mutate_every,
                check_updates=args.check and args.mutate_every > 0,
            )
        )
    except (ClusterError, OSError) as exc:
        raise SystemExit(f"loadgen: {exc}")
    summary = report.summary()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"{mode} loop: {summary['sent']} sent, {summary['ok']} ok, "
            f"{summary['errors']} errors, {summary['shed']} shed, "
            f"{summary['retries']} retries, "
            f"{summary['deadline_expired']} deadline-expired "
            f"in {summary['elapsed_s']:.3f}s ({summary['qps']:,.0f} req/s)"
        )
        print(f"latency: {format_latency(summary['latency'])}")
        for verb, vb in (summary.get("verbs") or {}).items():
            print(
                f"  {verb}: {vb['sent']} sent, {vb['ok']} ok, "
                f"{vb['errors']} errors, {vb['shed']} shed; "
                f"{format_latency(vb['latency'])}"
            )
        split = report.split_line()
        if split:
            print(split)
        if summary.get("mutations") or summary.get("mutation_errors"):
            print(
                f"mutations: {summary.get('mutations', 0)} rollovers "
                f"(last generation {summary.get('last_generation', 0)}), "
                f"{summary.get('mutation_errors', 0)} errors, "
                f"{summary.get('stale_answers', 0)} stale answers"
            )
        if summary.get("first_error"):
            print(f"first error: {summary['first_error']}")
        if summary.get("first_stale"):
            print(f"first stale answer: {summary['first_stale']}")
    if args.check and (
        summary["errors"]
        or summary["shed"]
        or summary.get("mutation_errors")
        or summary.get("stale_answers")
    ):
        print(
            f"loadgen --check failed: {summary['errors']} errors, "
            f"{summary['shed']} shed, "
            f"{summary.get('mutation_errors', 0)} mutation errors, "
            f"{summary.get('stale_answers', 0)} stale answers"
        )
        return 1
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Dump request spans — from a running cluster front-end (the
    ``trace`` protocol verb) or from a self-contained in-process demo —
    as plain JSON or Chrome trace-event format (``chrome://tracing``)."""
    import asyncio

    from repro.errors import ClusterError
    from repro.obs.tracing import chrome_trace

    async def fetch() -> dict:
        from repro.cluster.loadgen import _rpc

        reader, writer = await asyncio.open_connection(args.host, args.port)
        try:
            msg: dict = {"id": 0, "op": "trace", "limit": args.limit}
            if args.trace_id:
                msg["trace_id"] = args.trace_id
            resp = await _rpc(reader, writer, msg)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        if not resp.get("ok"):
            raise ClusterError(f"trace verb failed: {resp.get('error')}")
        return resp["result"]

    try:
        if args.demo:
            result = asyncio.run(_trace_demo(args.limit))
        else:
            if args.port is None:
                raise SystemExit(
                    "trace: --port required (or --demo for a self-contained run)"
                )
            result = asyncio.run(fetch())
    except (ClusterError, OSError, ReproError) as exc:
        raise SystemExit(f"trace: {exc}")

    spans = result["spans"]
    if args.chrome:
        doc = chrome_trace(spans)
    else:
        doc = {"spans": spans, "dropped": result.get("dropped", 0)}
    text = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        pathlib.Path(args.out).write_text(text + "\n")
        kind = "chrome trace" if args.chrome else "span dump"
        print(f"wrote {kind} ({len(spans)} spans) to {args.out}")
    else:
        print(text)
    return 0


async def _trace_demo(limit: int) -> dict:
    """A self-contained traced run: build a small scene through the
    pipeline, serve it from an in-process 2-worker cluster, issue a few
    traced requests, and return build spans + request spans together.
    Used by CI as an end-to-end tracing smoke with no background
    process management."""
    import asyncio

    from repro.cluster.frontend import ClusterFrontend
    from repro.cluster.loadgen import _rpc
    from repro.errors import ClusterError
    from repro.pipeline import BUILD_SPANS
    from repro.workloads.generators import random_disjoint_rects

    obstacles = list(random_disjoint_rects(8, seed=7))
    frontend = ClusterFrontend({"demo": {"obstacles": obstacles}}, workers=2)
    await frontend.start()
    try:
        reader, writer = await asyncio.open_connection(frontend.host, frontend.port)
        try:
            ep = await _rpc(
                reader, writer,
                {"id": 0, "op": "endpoints", "scene": "demo", "k": 8, "seed": 1},
            )
            verts = ep["result"]["vertices"]
            for i in range(3):
                p, q = verts[i % len(verts)], verts[-1 - i % len(verts)]
                resp = await _rpc(
                    reader, writer,
                    {
                        "id": i + 1, "op": "length", "scene": "demo",
                        "p": p, "q": q, "trace": True,
                    },
                )
                if not resp.get("ok"):
                    raise ClusterError(f"demo request failed: {resp.get('error')}")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        spans = BUILD_SPANS.snapshot() + frontend.span_buffer.snapshot(limit=limit)
        return {"spans": spans, "dropped": frontend.span_buffer.dropped}
    finally:
        await frontend.stop()


def cmd_figures(args: argparse.Namespace) -> int:
    from repro.viz.figures import ALL_FIGURES, figure_text

    which = [args.n] if args.n else list(ALL_FIGURES)
    for k in which:
        print(figure_text(k))
        print()
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """Differential fuzz smoke: random mixed scenes, the default engine
    set (parallel, sequential, parallel-mp) plus any ``--engine``."""
    from repro.core.crosscheck import check_scene, shrink_scene
    from repro.workloads.generators import (
        random_container_polygon,
        random_disjoint_rects,
        random_polygon_scene,
    )
    from repro.workloads.scenefile import save_scene

    from repro.core.crosscheck import DEFAULT_ENGINES

    engines = list(DEFAULT_ENGINES)
    if getattr(args, "engine", None) and args.engine not in engines:
        engines.append(args.engine)
    if getattr(args, "updates", 0) > 0:
        from repro.core.crosscheck import check_update

        failures = 0
        for i in range(args.scenes):
            seed = args.seed * 10007 + i
            kind = i % 3
            if kind == 0:  # small rect scene
                obstacles = list(random_disjoint_rects(10, seed=seed))
            elif kind == 1:  # bigger rect scene (deeper separator tree)
                obstacles = list(random_disjoint_rects(18, seed=seed))
            else:  # polygons + rects
                obstacles = random_polygon_scene(2, 3, seed=seed)
            problems = check_update(
                obstacles, n_edits=args.updates, seed=seed, engines=engines
            )
            label = ("rects", "rects-xl", "mixed")[kind]
            if not problems:
                print(f"scene {i:3d} [{label:9s}] ok "
                      f"({len(obstacles)} obstacles, {args.updates} edits)")
                continue
            failures += 1
            print(f"scene {i:3d} [{label:9s}] FAILED: {problems[0]}")
            out = pathlib.Path(args.out_dir) / f"updatefuzz_fail_{seed}.json"
            out.parent.mkdir(parents=True, exist_ok=True)
            save_scene(out, obstacles, None)
            print(f"  replay scene (seed {seed}): {out}")
        print(f"{args.scenes} scenes update-fuzzed, {failures} failure(s)")
        return 1 if failures else 0
    if getattr(args, "queries", "all") == "minlink":
        # differential link-query fuzz: the layered-DP link index vs the
        # independent grid-Dijkstra oracle, per engine (min-link counts,
        # full Pareto frontiers, witness validity)
        from repro.core.api import split_obstacles
        from repro.core.crosscheck import check_links

        failures = 0
        for i in range(args.scenes):
            seed = args.seed * 10007 + i
            kind = i % 3
            container = None
            if kind == 0:  # pure rectangles (the paper's model)
                obstacles = list(random_disjoint_rects(8, seed=seed))
            elif kind == 1:  # polygons + rects
                obstacles = random_polygon_scene(2, 3, seed=seed)
            else:  # polygons + rects inside a convex container
                obstacles = random_polygon_scene(1, 2, seed=seed)
                _, _, all_rects, _ = split_obstacles(obstacles)
                container = random_container_polygon(all_rects, seed=seed)
            problems = check_links(
                obstacles, container, seed=seed, engines=engines
            )
            label = ("rects", "mixed", "container")[kind]
            if not problems:
                print(f"scene {i:3d} [{label:9s}] ok ({len(obstacles)} obstacles)")
                continue
            failures += 1
            print(f"scene {i:3d} [{label:9s}] FAILED: {problems[0]}")
            small, small_container = shrink_scene(
                obstacles, container,
                lambda obs, cont: bool(
                    check_links(obs, cont, seed=seed, engines=engines)
                ),
            )
            out = pathlib.Path(args.out_dir) / f"linkfuzz_fail_{seed}.json"
            out.parent.mkdir(parents=True, exist_ok=True)
            save_scene(out, small, small_container)
            print(f"  shrunk to {len(small)} obstacles, replay scene: {out}")
        print(f"{args.scenes} scenes link-fuzzed, {failures} failure(s)")
        return 1 if failures else 0
    failures = 0
    for i in range(args.scenes):
        seed = args.seed * 10007 + i
        kind = i % 4
        container: Optional[RectilinearPolygon] = None
        if kind == 0:  # pure rectangles (the paper's model)
            obstacles = list(random_disjoint_rects(8, seed=seed))
        elif kind == 1:  # polygons + rects
            obstacles = random_polygon_scene(2, 3, seed=seed)
        elif kind == 2:  # polygons only
            obstacles = random_polygon_scene(2, 0, seed=seed)
        else:  # polygons + rects inside a convex container
            obstacles = random_polygon_scene(1, 2, seed=seed)
            from repro.core.api import split_obstacles

            _, _, all_rects, _ = split_obstacles(obstacles)
            container = random_container_polygon(all_rects, seed=seed)
        problems = check_scene(obstacles, container, seed=seed, engines=engines)
        label = ("rects", "mixed", "polygons", "container")[kind]
        if not problems:
            print(f"scene {i:3d} [{label:9s}] ok ({len(obstacles)} obstacles)")
            continue
        failures += 1
        print(f"scene {i:3d} [{label:9s}] FAILED: {problems[0]}")
        small, small_container = shrink_scene(
            obstacles, container,
            lambda obs, cont: bool(
                check_scene(obs, cont, seed=seed, engines=engines)
            ),
        )
        out = pathlib.Path(args.out_dir) / f"fuzz_fail_{seed}.json"
        out.parent.mkdir(parents=True, exist_ok=True)
        save_scene(out, small, small_container)
        print(f"  shrunk to {len(small)} obstacles, replay scene: {out}")
    print(f"{args.scenes} scenes checked, {failures} failure(s)")
    return 1 if failures else 0


def cmd_plan(args: argparse.Namespace) -> int:
    """Run the staged pipeline once (cold cache) and print the stage
    graph with per-stage wall-clock and simulated PRAM timings."""
    from repro.pipeline import StageCache, build_index, format_plan

    scene = load_scene_cli(args.scene)
    # a fresh private cache: `plan` reports what a cold build costs, and
    # must neither read nor pollute the process-default artifact cache
    try:
        idx = build_index(
            scene, engine=args.engine, cache=StageCache(),
            jobs=args.jobs, jit=args.jit,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    prov = idx.provenance
    profile = _build_profile_rows() if args.profile else None
    if args.json:
        doc = {"scene": str(args.scene), **prov}
        if profile is not None:
            doc["profile"] = profile
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    print(f"{args.scene}: {scene.describe()}  (scene hash {prov['scene_hash'][:12]})")
    print(
        f"pipeline: scene -> decompose -> graph -> solve[{args.engine}] "
        f"-> query-structures"
    )
    print(f"registered engines: {', '.join(engine_names())}")
    print(format_plan(prov))
    t, w = idx.build_stats()
    print(f"simulated PRAM: T={t}, W={w}")
    if profile is not None:
        print(f"{'stage':<18} {'wall_ms':>9} {'pram_T':>8} {'pram_W':>10} cached")
        for row in profile:
            print(
                f"{row['stage']:<18} {row['wall_ms']:>9.3f} "
                f"{row['pram_time']:>8} {row['pram_work']:>10} {row['cached']}"
            )
    return 0


def _build_profile_rows() -> list:
    """Per-stage profile rows for the most recent ``build_index`` call,
    read back from the observability layer (``repro.pipeline.BUILD_SPANS``)
    rather than from the index itself — `plan --profile` doubles as a
    smoke test that build profiling actually flows through ``repro.obs``.

    A ``parallel-mp`` build also leaves one ``build.solve.subtree`` span
    per pool-dispatched subtree/conquer task on the same trace; those are
    folded in as indented sub-rows of the solve stage."""
    from repro.pipeline import BUILD_SPANS, STAGES

    stage_spans = BUILD_SPANS.snapshot(limit=len(STAGES))
    if not stage_spans:
        return []
    # the newest stage span's trace id identifies the build that just
    # ran; its subtree spans (if any) share it
    trace = stage_spans[-1]["trace_id"]
    rows = []
    for sp in BUILD_SPANS.snapshot(limit=512, trace_id=trace):
        attrs = sp.get("attrs", {})
        if sp["name"] == "build.solve.subtree":
            rows.append(
                {
                    "stage": "  solve:{} r{} p{}".format(
                        attrs.get("kind", "task"),
                        attrs.get("n_rects", 0),
                        attrs.get("n_points", 0),
                    ),
                    "wall_ms": (sp["dur"] or 0.0) * 1e3,
                    "pram_time": 0,
                    "pram_work": 0,
                    "cached": False,
                    "trace_id": sp["trace_id"],
                }
            )
        else:
            rows.append(
                {
                    "stage": sp["name"].removeprefix("build."),
                    "wall_ms": (sp["dur"] or 0.0) * 1e3,
                    "pram_time": attrs.get("pram_time", 0),
                    "pram_work": attrs.get("pram_work", 0),
                    "cached": bool(attrs.get("cached")),
                    "trace_id": sp["trace_id"],
                }
            )
    return rows


def cmd_bench_info(args: argparse.Namespace) -> int:
    if _looks_like_snapshot(args.scene):
        from repro.pipeline import format_plan
        from repro.serve.snapshot import read_header

        try:
            header = read_header(args.scene)
        except (SnapshotError, OSError) as exc:
            raise SystemExit(str(exc))
        print(
            f"{args.scene}: engine={header.get('engine')}, "
            f"n_points={header.get('n_points')}, n_rects={header.get('n_rects')}, "
            f"simulated T={header.get('build_time')}, W={header.get('build_work')}"
        )
        prov = header.get("provenance")
        if prov:
            print(format_plan(prov))
        else:
            print("no stage provenance (pre-pipeline snapshot)")
            if args.require_provenance:
                print(
                    f"{args.scene}: provenance required but missing; re-snapshot "
                    f"the scene with this version to record it"
                )
                return 1
        return 0
    from repro.pipeline import format_plan

    if args.require_provenance:
        # a CI gate pointed at the wrong artifact must fail loudly, not
        # pass vacuously: only snapshots store provenance to check
        raise SystemExit(
            f"{args.scene}: --require-provenance applies to .rsp snapshots, "
            f"not JSON scenes"
        )
    scene = load_scene_cli(args.scene)
    pram = PRAM("cli")
    try:
        idx = ShortestPathIndex.build(
            scene.obstacles,
            extra_points=scene.extra_points,
            engine=args.engine,
            pram=pram,
            container=scene.container,
        )
    except ReproError as exc:
        raise SystemExit(str(exc))
    print(
        f"n={len(scene.obstacles)}: simulated time T={pram.time}, "
        f"work W={pram.work} ({args.engine} engine)"
    )
    print(format_plan(idx.provenance))
    print(f"{'p':>8} {'T_p':>12} {'speedup':>9}")
    for p_, tp, s, _ in speedup_table(pram.work, pram.time, [1, 16, 256, 4096]):
        print(f"{p_:>8} {tp:>12} {s:>9.1f}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel rectilinear shortest paths with rectangular "
        "obstacles (Atallah & Chen 1990/91)",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    # every --engine flag below accepts exactly the registry's engines, so
    # a newly registered engine is a first-class CLI citizen immediately
    engines = engine_names()

    def _add_build_args(sp):
        sp.add_argument("--jobs", type=int, default=None,
                        help="worker processes for --engine parallel-mp "
                        "(default: visible cores, capped at 8; 1 = inline)")
        sp.add_argument("--jit", action="store_true",
                        help="use the compiled (min,+)/leaf kernels when "
                        "numba is importable (results are byte-identical; "
                        "silently falls back to numpy otherwise)")

    d = sub.add_parser("demo", help="random scene demo")
    d.add_argument("-n", type=int, default=12)
    d.add_argument("--seed", type=int, default=0)
    d.add_argument("--polygons", type=int, default=0,
                   help="also place this many random polygonal obstacles")
    d.add_argument("--engine", choices=engines, default="parallel")
    _add_build_args(d)
    d.set_defaults(fn=cmd_demo)

    q = sub.add_parser("query", help="query a scene file or snapshot")
    q.add_argument("scene", help="JSON scene or .rsp snapshot")
    q.add_argument("p")
    q.add_argument("q")
    q.add_argument("--path", action="store_true")
    q.add_argument("--render", action="store_true")
    q.add_argument("--minlink", action="store_true",
                   help="also report the minimum link count (and bends)")
    q.add_argument("--pareto", action="store_true",
                   help="also report the (length, bends) Pareto frontier")
    q.add_argument("--engine", choices=engines, default="sequential")
    _add_build_args(q)
    q.set_defaults(fn=cmd_query)

    s = sub.add_parser("snapshot", help="build a scene once and persist it")
    s.add_argument("scene", help="JSON scene file")
    s.add_argument("out", help="output .rsp artifact")
    s.add_argument("--engine", choices=engines, default="parallel")
    s.add_argument("--no-query", action="store_true",
                   help="skip persisting the arbitrary-point query structure")
    s.add_argument("--links", action="store_true",
                   help="also precompute and embed the all-pairs min-link "
                   "matrix (minlink queries become lookups on load)")
    _add_build_args(s)
    s.set_defaults(fn=cmd_snapshot)

    pl = sub.add_parser(
        "plan", help="print the staged build pipeline with per-stage timings"
    )
    pl.add_argument("scene", help="JSON scene file")
    pl.add_argument("--engine", choices=engines, default="parallel")
    pl.add_argument("--json", action="store_true",
                    help="print the provenance record as JSON")
    pl.add_argument("--profile", action="store_true",
                    help="also print per-stage profile rows (wall vs "
                    "simulated PRAM) read back from the obs span buffer, "
                    "plus per-subtree dispatch spans for parallel-mp")
    _add_build_args(pl)
    pl.set_defaults(fn=cmd_plan)

    sb = sub.add_parser("serve-bench", help="replay a workload through the server")
    sb.add_argument("scenes", nargs="+", help="JSON scenes and/or .rsp snapshots")
    sb.add_argument("--requests", type=int, default=2000)
    sb.add_argument("--batch", type=int, default=256)
    sb.add_argument("--seed", type=int, default=0)
    sb.add_argument("--arbitrary", type=float, default=0.2,
                    help="fraction of arbitrary-point length requests")
    sb.add_argument("--paths", type=float, default=0.02,
                    help="fraction of path-report requests")
    sb.add_argument("--engine", choices=engines, default="parallel")
    sb.add_argument("--record", help="write the generated workload to this JSON file")
    sb.add_argument("--workload", help="replay a recorded workload JSON file")
    sb.set_defaults(fn=cmd_serve_bench)

    cl = sub.add_parser(
        "cluster",
        help="serve scenes from N shared-memory worker processes over TCP",
    )
    cl.add_argument("scenes", nargs="+", help="JSON scenes and/or .rsp snapshots")
    cl.add_argument("--workers", type=int, default=2)
    cl.add_argument("--host", default="127.0.0.1")
    cl.add_argument("--port", type=int, default=0,
                    help="TCP port (0 picks a free one; printed on startup)")
    cl.add_argument("--max-batch", type=int, default=64,
                    help="micro-batch size cap per worker dispatch")
    cl.add_argument("--window-ms", type=float, default=2.0,
                    help="micro-batch time window")
    cl.add_argument("--queue-depth", type=int, default=256,
                    help="bounded per-worker queue; overflow is shed")
    cl.add_argument("--pin", action="append", default=[], metavar="SCENE=WID",
                    help="pin a scene to a worker id (overrides HRW hashing)")
    cl.add_argument("--engine", choices=engines, default="parallel")
    cl.add_argument("--no-shm", action="store_true",
                    help="workers materialize scenes privately (copy path)")
    cl.add_argument("--start-method", choices=["fork", "spawn", "forkserver"],
                    default=None)
    cl.add_argument("--ready-file",
                    help="write 'host port' here once the server is listening")
    cl.add_argument("--duration", type=float, default=None,
                    help="stop after this many seconds (default: run until signal)")
    cl.add_argument("--no-supervise", action="store_true",
                    help="do not restart crashed workers (scenes still fail "
                    "over to survivors)")
    cl.add_argument("--max-restarts", type=int, default=5,
                    help="crashes tolerated per worker inside the restart "
                    "window before its circuit breaker opens")
    cl.add_argument("--restart-window-s", type=float, default=30.0,
                    help="sliding crash-window length for the circuit breaker")
    cl.add_argument("--faults", metavar="PLAN.json", default=None,
                    help="chaos harness: a FaultPlan JSON file "
                    "(kill_every, delay_every/delay_ms, duplicate_every, "
                    "truncate_every, stall_every/stall_ms)")
    cl.add_argument("--metrics-port", type=int, default=None,
                    help="also serve GET /metrics (OpenMetrics text, merged "
                    "front-end + worker registries) on this port; 0 picks "
                    "a free one (printed on startup)")
    cl.set_defaults(fn=cmd_cluster)

    lg = sub.add_parser("loadgen", help="drive a running cluster front-end")
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, required=True)
    mode = lg.add_mutually_exclusive_group()
    mode.add_argument("--closed", action="store_true",
                      help="closed loop: conns connections, one in flight each"
                      " (default)")
    mode.add_argument("--open", action="store_true",
                      help="open loop: fire at --rps regardless of completions")
    lg.add_argument("--rps", type=float, default=500.0)
    lg.add_argument("--conns", type=int, default=4)
    lg.add_argument("--requests", type=int, default=500)
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--pairs", type=int, default=16,
                    help="vertex pairs per bulk 'lengths' request")
    lg.add_argument("--bulk", type=float, default=0.5,
                    help="fraction of bulk lengths requests")
    lg.add_argument("--arbitrary", type=float, default=0.2,
                    help="fraction of arbitrary-point requests (§6.4 path)")
    lg.add_argument("--paths", type=float, default=0.02,
                    help="fraction of path-report requests")
    lg.add_argument("--mix", default=None, metavar="VERB:W,...",
                    help="weighted verb mix superseding --bulk/--arbitrary/"
                    "--paths, e.g. length:0.6,minlink:0.3,pareto:0.1 "
                    "(verbs: length, lengths, arbitrary, path, minlink, "
                    "links, pareto); the report carries per-verb stats")
    lg.add_argument("--retries", type=int, default=0,
                    help="closed loop: per-request retries for retryable "
                    "failures (shed, worker death, timeout, deadline expiry)")
    lg.add_argument("--retry-budget", type=int, default=None,
                    help="run-wide cap on total retries "
                    "(default: half the request count)")
    lg.add_argument("--deadline-ms", type=float, default=None,
                    help="stamp every scene request with this latency budget")
    lg.add_argument("--timeout-s", type=float, default=30.0,
                    help="closed loop: per-attempt response timeout")
    lg.add_argument("--trace-sample", type=int, default=0,
                    help="mark this many scene requests with trace: true and "
                    "report a queue-wait vs service-time latency split")
    lg.add_argument("--mutate-every", type=int, default=0, metavar="N",
                    help="closed loop: roll one updatable scene to a new "
                    "generation (delete/re-insert a seeded rectangle via the "
                    "update verb) every N completed requests; with --check, "
                    "post-rollover answers are verified byte-for-byte against "
                    "locally built oracles of both scene versions")
    lg.add_argument("--json", action="store_true", help="print the report as JSON")
    lg.add_argument("--check", action="store_true",
                    help="exit nonzero if any request errored, was shed, or "
                    "(with --mutate-every) any rollover failed or any "
                    "post-rollover answer was stale")
    lg.set_defaults(fn=cmd_loadgen)

    tr = sub.add_parser(
        "trace",
        help="dump request spans from a cluster front-end (or a "
        "self-contained demo) as JSON or Chrome trace format",
    )
    tr.add_argument("--host", default="127.0.0.1")
    tr.add_argument("--port", type=int, default=None,
                    help="cluster front-end port (omit with --demo)")
    tr.add_argument("--limit", type=int, default=512,
                    help="newest spans to fetch from the buffer")
    tr.add_argument("--trace-id", default=None,
                    help="only spans belonging to this trace")
    tr.add_argument("--chrome", action="store_true",
                    help="emit Chrome trace-event JSON (load in "
                    "chrome://tracing or https://ui.perfetto.dev)")
    tr.add_argument("--out", default=None, help="write JSON here instead of stdout")
    tr.add_argument("--demo", action="store_true",
                    help="self-contained: build a scene, run an in-process "
                    "2-worker cluster, trace a few requests, dump the spans")
    tr.set_defaults(fn=cmd_trace)

    fz = sub.add_parser(
        "fuzz", help="cross-check parallel/sequential/baseline on random scenes"
    )
    fz.add_argument("--scenes", type=int, default=25)
    fz.add_argument("--seed", type=int, default=0)
    fz.add_argument("--engine", choices=engines, default=None,
                    help="cross-check this registered engine too (on top "
                    "of parallel, sequential, and parallel-mp)")
    fz.add_argument("--out-dir", default=".",
                    help="directory for shrunk failing-scene JSON dumps")
    fz.add_argument("--updates", type=int, default=0, metavar="N",
                    help="update-fuzz mode: per scene, random-walk N obstacle "
                    "deletes/re-inserts through update_index and require each "
                    "repaired index to be byte-identical to a cold rebuild "
                    "(lengths AND paths), cross-checked against the other "
                    "engines")
    fz.add_argument("--queries", choices=("all", "minlink"), default="all",
                    help="'minlink': fuzz the link-query family instead — "
                    "min-link counts and (length, bends) Pareto frontiers "
                    "must byte-agree with the grid-Dijkstra oracle, with a "
                    "valid witness path per frontier point")
    fz.set_defaults(fn=cmd_fuzz)

    f = sub.add_parser("figures", help="print paper figure(s)")
    f.add_argument("n", nargs="?", type=int)
    f.set_defaults(fn=cmd_figures)

    b = sub.add_parser(
        "bench-info",
        help="simulated PRAM costs for a scene, or a snapshot's stored "
        "stage provenance",
    )
    b.add_argument("scene", help="JSON scene or .rsp snapshot")
    b.add_argument("--engine", choices=engines, default="parallel")
    b.add_argument("--require-provenance", action="store_true",
                   help="exit nonzero if a snapshot lacks stage provenance")
    b.set_defaults(fn=cmd_bench_info)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
