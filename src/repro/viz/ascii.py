"""A tiny ASCII canvas for rectilinear scenes.

Used by the examples and by :mod:`repro.viz.figures` to regenerate the
paper's illustrative figures as deterministic text art (the paper has no
data plots — its figures are geometric concept drawings).
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.geometry.primitives import Point, Rect
from repro.geometry.staircase import Staircase


class Canvas:
    """Character grid over a world-coordinate bounding box."""

    def __init__(
        self,
        bbox: tuple[int, int, int, int],
        width: int = 72,
        height: int = 28,
    ) -> None:
        self.xlo, self.ylo, self.xhi, self.yhi = bbox
        self.width = max(8, width)
        self.height = max(6, height)
        self.grid = [[" "] * self.width for _ in range(self.height)]

    # ------------------------------------------------------------------
    def _col(self, x: float) -> int:
        span = max(1, self.xhi - self.xlo)
        c = round((x - self.xlo) * (self.width - 1) / span)
        return min(max(int(c), 0), self.width - 1)

    def _row(self, y: float) -> int:
        span = max(1, self.yhi - self.ylo)
        r = round((y - self.ylo) * (self.height - 1) / span)
        return self.height - 1 - min(max(int(r), 0), self.height - 1)

    def put(self, p: Point, ch: str) -> None:
        self.grid[self._row(p[1])][self._col(p[0])] = ch[0]

    def label(self, p: Point, text: str) -> None:
        r, c = self._row(p[1]), self._col(p[0])
        for i, ch in enumerate(text):
            if c + i < self.width:
                self.grid[r][c + i] = ch

    # ------------------------------------------------------------------
    def rect(self, r: Rect, fill: str = "#", border: Optional[str] = None) -> None:
        c0, c1 = self._col(r.xlo), self._col(r.xhi)
        r0, r1 = self._row(r.yhi), self._row(r.ylo)
        for row in range(r0, r1 + 1):
            for col in range(c0, c1 + 1):
                edge = row in (r0, r1) or col in (c0, c1)
                ch = (border or fill) if edge else fill
                self.grid[row][col] = ch

    def polygon(self, poly, fill: str = "#", border: str = "%") -> None:
        """A polygonal obstacle: decomposition tiles filled, the original
        boundary loop drawn on top so the outline stays visible."""
        rects, _ = poly.decomposition()
        for r in rects:
            self.rect(r, fill=fill)
        loop = poly.vertices_loop()
        for a, b in zip(loop, loop[1:] + [loop[0]]):
            if a[1] == b[1]:
                self.hline(a[1], a[0], b[0], border)
            else:
                self.vline(a[0], a[1], b[1], border)

    def hline(self, y: int, x1: float, x2: float, ch: str = "-") -> None:
        row = self._row(y)
        a, b = sorted((self._col(x1), self._col(x2)))
        for col in range(a, b + 1):
            cur = self.grid[row][col]
            self.grid[row][col] = "+" if cur in "|+" else ch

    def vline(self, x: int, y1: float, y2: float, ch: str = "|") -> None:
        col = self._col(x)
        a, b = sorted((self._row(y1), self._row(y2)))
        for row in range(a, b + 1):
            cur = self.grid[row][col]
            self.grid[row][col] = "+" if cur in "-+" else ch

    def polyline(self, pts: Sequence[Point], hch: str = "-", vch: str = "|") -> None:
        for a, b in zip(pts, pts[1:]):
            if a[1] == b[1]:
                self.hline(a[1], a[0], b[0], hch)
            elif a[0] == b[0]:
                self.vline(a[0], a[1], b[1], vch)
        for p in pts:
            self.put(p, "+")

    def staircase(self, s: Staircase, hch: str = "=", vch: str = "|") -> None:
        self.polyline(list(s.pts), hch, vch)
        if s.left_dir == "W":
            self.hline(s.pts[0][1], self.xlo, s.pts[0][0], hch)
        if s.left_dir in ("N", "S"):
            edge = self.yhi if s.left_dir == "N" else self.ylo
            self.vline(s.pts[0][0], s.pts[0][1], edge, vch)
        if s.right_dir == "E":
            self.hline(s.pts[-1][1], s.pts[-1][0], self.xhi, hch)
        if s.right_dir in ("N", "S"):
            edge = self.yhi if s.right_dir == "N" else self.ylo
            self.vline(s.pts[-1][0], s.pts[-1][1], edge, vch)

    # ------------------------------------------------------------------
    def render(self, title: str = "") -> str:
        frame = ["+" + "-" * self.width + "+"]
        body = ["|" + "".join(row) + "|" for row in self.grid]
        out = ([title] if title else []) + frame + body + [frame[0]]
        return "\n".join(out)


def render_scene(
    obstacles: Sequence,
    paths: Iterable[Sequence[Point]] = (),
    points: Iterable[tuple[Point, str]] = (),
    title: str = "",
    width: int = 72,
    height: int = 28,
    margin: int = 2,
) -> str:
    """One-call scene rendering: obstacles (``Rect`` and/or
    ``RectilinearPolygon``), optional paths, labelled points."""
    rects = [o for o in obstacles if isinstance(o, Rect)]
    polys = [o for o in obstacles if not isinstance(o, Rect)]
    xs = [r.xlo for r in rects] + [r.xhi for r in rects]
    ys = [r.ylo for r in rects] + [r.yhi for r in rects]
    for poly in polys:
        xs += [poly.bbox[0], poly.bbox[2]]
        ys += [poly.bbox[1], poly.bbox[3]]
    for path in paths:
        xs += [p[0] for p in path]
        ys += [p[1] for p in path]
    for p, _ in points:
        xs.append(p[0])
        ys.append(p[1])
    if not xs:
        xs, ys = [0, 10], [0, 10]
    bbox = (min(xs) - margin, min(ys) - margin, max(xs) + margin, max(ys) + margin)
    canvas = Canvas(bbox, width, height)
    for r in rects:
        canvas.rect(r, fill="#")
    for poly in polys:
        canvas.polygon(poly)
    for path in paths:
        canvas.polyline(list(path), hch="*", vch="*")
    for p, name in points:
        canvas.label(p, name)
    return canvas.render(title)
