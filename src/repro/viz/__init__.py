"""Deterministic ASCII renderings of scenes and of the paper's figures."""

from repro.viz.ascii import Canvas, render_scene
from repro.viz.figures import figure_text, ALL_FIGURES

__all__ = ["Canvas", "render_scene", "figure_text", "ALL_FIGURES"]
