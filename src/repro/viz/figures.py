"""Regeneration of the paper's 14 concept figures as ASCII drawings.

The paper contains no data plots; Figures 1–14 illustrate the geometric
constructions.  Each ``figure_text(k)`` builds the construction on a
deterministic fixture scene and renders it, so the repository reproduces
the *content* of every figure (the exact hand-drawn coordinates are not
published).  ``benchmarks/bench_figures.py`` and
``examples/render_figures.py`` write all of them out.
"""

from __future__ import annotations

import numpy as np

from repro.core.allpairs import ParallelEngine
from repro.core.separator import staircase_separator
from repro.core.tracing import TraceForests
from repro.geometry.envelope import envelope
from repro.geometry.frontier import max_staircase_of_rects
from repro.geometry.polygon import rect_polygon
from repro.geometry.primitives import Rect, bbox_of_rects
from repro.geometry.visibility import boundary_points
from repro.monge.matrix import is_monge
from repro.pram import PRAM
from repro.viz.ascii import Canvas, render_scene
from repro.workloads.fixtures import paper_figure_scene, ring_of_rects, two_clusters

ALL_FIGURES = tuple(range(1, 15))


def _canvas_for(rects, margin=4, width=72, height=26) -> Canvas:
    xlo, ylo, xhi, yhi = bbox_of_rects(rects)
    return Canvas((xlo - margin, ylo - margin, xhi + margin, yhi + margin), width, height)


def fig1() -> str:
    rects = paper_figure_scene(1)
    c = _canvas_for(rects)
    for r in rects:
        c.rect(r)
    c.staircase(max_staircase_of_rects(rects, "NE"), hch="=")
    c.staircase(max_staircase_of_rects(rects, "SW"), hch="~")
    return c.render("Fig. 1  MAX_NE(R') (=) and MAX_SW(R') (~) frontier staircases")


def fig2() -> str:
    rects = two_clusters()
    env = envelope(rects)
    c = _canvas_for(rects)
    for r in rects:
        c.rect(r)
    c.polyline(env.vertices_loop() + [env.vertices_loop()[0]], hch="·", vch="·")
    tag = "degenerate (hull does not exist)" if env.is_degenerate else "hull"
    return c.render(f"Fig. 2  Env(R') for two diagonal clusters — {tag}")


def fig3() -> str:
    rects = paper_figure_scene(3)
    env = envelope(rects)
    bset = boundary_points(env, rects)
    c = _canvas_for(rects)
    loop = env.vertices_loop()
    c.polyline(loop + [loop[0]], hch="-", vch="|")
    for r in rects:
        c.rect(r)
    for p in bset.points:
        c.put(p, "o")
    return c.render(f"Fig. 3  B(Q): {len(bset)} boundary points (o) of the envelope")


def fig4() -> str:
    """Monge vs non-Monge path-length matrices (Fig. 4(a)/(b))."""
    rects = paper_figure_scene(4)
    idx = ParallelEngine(rects, [], PRAM(), leaf_size=8).build()
    # (a) two opposite frontier chains (Lemma 1 orderings): Monge
    nw = [p for p in max_staircase_of_rects(rects, "NW").pts if idx.has_point(p)][:4]
    se = [p for p in max_staircase_of_rects(rects, "SE").pts if idx.has_point(p)][:4]
    a = np.array([[idx.length(p, q) for q in se] for p in nw], dtype=float)
    # (b) an interleaved ordering of the same points: generally not Monge
    shuffled = se[::-1]
    b = np.array([[idx.length(p, q) for q in shuffled] for p in nw], dtype=float)
    lines = [
        "Fig. 4  Monge (a) and non-Monge (b) path-length matrices",
        f"(a) NW-chain × SE-chain, boundary order  -> is_monge = {is_monge(a)}",
        *("    " + "  ".join(f"{v:5.0f}" for v in row) for row in a),
        f"(b) same points, reversed column order   -> is_monge = {is_monge(b)}",
        *("    " + "  ".join(f"{v:5.0f}" for v in row) for row in b),
    ]
    return "\n".join(lines)


def fig5() -> str:
    rects = paper_figure_scene(5)
    forests = TraceForests(rects, PRAM())
    p = (20, 0)
    ne = forests.trace(p, "NE", PRAM())
    ws = forests.trace(p, "WS", PRAM())
    c = _canvas_for(rects)
    for r in rects:
        c.rect(r)
    c.polyline(ne.points, hch="=", vch="!")
    c.polyline(ws.points, hch="~", vch=":")
    c.label(p, "p")
    return c.render("Fig. 5  NE(p) (=/!) and WS(p) (~/:) traced paths")


def fig6() -> str:
    rects = paper_figure_scene(6)
    sep = staircase_separator(rects, PRAM())
    c = _canvas_for(rects)
    for i, r in enumerate(rects):
        c.rect(r, fill="A" if i in sep.upper else "B")
    c.staircase(sep.staircase, hch="=", vch="|")
    c.label(sep.origin, "p")
    return c.render(
        f"Fig. 6  Staircase separator via branch {sep.branch!r}: "
        f"{len(sep.upper)} above (A) / {len(sep.lower)} below (B)"
    )


def fig7() -> str:
    rects = paper_figure_scene(7)
    env = envelope(rects)
    bset = boundary_points(env, rects)
    c = _canvas_for(rects)
    loop = env.vertices_loop()
    c.polyline(loop + [loop[0]], hch="-", vch="|")
    for r in rects:
        c.rect(r)
    for i, p in enumerate(bset.points[:26]):
        c.put(p, chr(ord("a") + (i % 26)))
    gaps = len(bset.points)
    return c.render(
        f"Fig. 7  Horiz/Vert arrays: {gaps} B(Q) points split Bound(Q) into "
        f"{gaps} gaps (labelled)"
    )


def fig8() -> str:
    rects = paper_figure_scene(8)
    env = envelope(rects)
    forests = TraceForests(rects, PRAM())
    origin = max(env.vertices_loop(), key=lambda p: p[1])
    ext = forests.trace(origin, "ES", PRAM())
    c = _canvas_for(rects)
    loop = env.vertices_loop()
    c.polyline(loop + [loop[0]], hch="-", vch="|")
    for r in rects:
        c.rect(r)
    c.polyline(ext.points, hch="=", vch="!")
    c.label(origin, "c0")
    return c.render("Fig. 8  Staircase extension: chain C (=) grafted onto Bound(Q)")


def fig9() -> str:
    rects = paper_figure_scene(9)
    sep = staircase_separator(rects, PRAM())
    upper = [rects[i] for i in sep.upper]
    lower = [rects[i] for i in sep.lower]
    c = _canvas_for(rects)
    if upper:
        e1 = envelope(upper)
        c.polyline(e1.vertices_loop() + [e1.vertices_loop()[0]], hch="·", vch="·")
    if lower:
        e2 = envelope(lower)
        c.polyline(e2.vertices_loop() + [e2.vertices_loop()[0]], hch="·", vch="·")
    for i, r in enumerate(rects):
        c.rect(r, fill="L" if i in sep.upper else "R")
    c.staircase(sep.staircase, hch="=", vch="|")
    return c.render(
        "Fig. 9  Theorem 3 conquer: Q_left (L), Q_right (R), Middle on Sep (=)"
    )


def fig10() -> str:
    rects = paper_figure_scene(10)
    sep = staircase_separator(rects, PRAM())
    c = _canvas_for(rects)
    for i, r in enumerate(rects):
        c.rect(r, fill="U" if i in sep.upper else "W")
    c.staircase(sep.staircase, hch="=", vch="|")
    return c.render(
        "Fig. 10  U/U' points live on the upper (U) side chains, W/W' on the"
        " lower (W); Sep (=) carries both"
    )


def fig11() -> str:
    rects = paper_figure_scene(11)
    env = envelope(rects[:3])
    c = _canvas_for(rects)
    loop = env.vertices_loop()
    c.polyline(loop + [loop[0]], hch="-", vch="|")
    for r in rects:
        c.rect(r)
    xlo, ylo, xhi, yhi = env.bbox
    c.label((xlo, (ylo + yhi) // 2), "l")
    c.label((xhi, (ylo + yhi) // 2), "r")
    c.label(((xlo + xhi) // 2, yhi), "t")
    c.label(((xlo + xhi) // 2, ylo), "b")
    return c.render(
        "Fig. 11  Bridging (Lemma 14): B(Q_v) partitioned at l, r, t, b"
    )


def fig12() -> str:
    rects = paper_figure_scene(12)
    inner = rects[:2]
    env_in = envelope(inner)
    env_out = envelope(rects)
    c = _canvas_for(rects)
    lo = env_out.vertices_loop()
    li = env_in.vertices_loop()
    c.polyline(lo + [lo[0]], hch="-", vch="|")
    c.polyline(li + [li[0]], hch="·", vch="·")
    for r in rects:
        c.rect(r)
    return c.render("Fig. 12  Lemma 15: Q_v (·) properly inside Q_w (-)")


def fig13() -> str:
    rects = paper_figure_scene(13)
    pram = PRAM()
    engine = ParallelEngine(rects, [], pram, leaf_size=2)
    engine.build()
    s = engine.stats
    lines = [
        "Fig. 13  Flows over the recursion tree (Modes 1 and 2 of §6.3).",
        "Our engine replaces the flow pipeline with interface accumulation",
        "(DESIGN.md §2); the recursion profile that the flows would traverse:",
        f"    nodes={s.nodes}  leaves={s.leaves}  "
        f"max |T_v|={s.max_tracked}  max |S_v|={s.max_interface}",
        "    tracked points per depth: "
        + ", ".join(f"d{d}:{c}" for d, c in sorted(s.per_level_points.items())),
        "A flow from node v visits exactly the nodes w with |R_w| >= |R_v|,",
        "entering in Mode 1 when |R_parent(v)| <= |R_w| and Mode 2 otherwise.",
    ]
    return "\n".join(lines)


def fig14() -> str:
    rects = ring_of_rects()
    xlo, ylo, xhi, yhi = bbox_of_rects(rects)
    poly = rect_polygon(xlo - 8, ylo - 8, xhi + 8, yhi + 8)
    c = Canvas((xlo - 10, ylo - 10, xhi + 10, yhi + 10), 72, 26)
    loop = poly.vertices_loop()
    c.polyline(loop + [loop[0]], hch="-", vch="|")
    for r in rects:
        c.rect(r)
    c.vline(xlo, ylo - 10, yhi + 10, ":")
    c.vline(xhi, ylo - 10, yhi + 10, ":")
    c.hline(ylo, xlo - 10, xhi + 10, "·")
    c.hline(yhi, xlo - 10, xhi + 10, "·")
    c.label((xlo + 2, yhi + 9), "top chunk")
    c.label((xhi + 1, yhi + 9), "NE")
    c.label((xhi + 1, (ylo + yhi) // 2), "east")
    return c.render(
        "Fig. 14  §7 chunk partition of Bound(P) by the 4 extreme lines of Env(R)"
    )


_FIGS = {
    1: fig1, 2: fig2, 3: fig3, 4: fig4, 5: fig5, 6: fig6, 7: fig7,
    8: fig8, 9: fig9, 10: fig10, 11: fig11, 12: fig12, 13: fig13, 14: fig14,
}


def figure_text(which: int) -> str:
    """Render figure ``which`` (1–14) as text."""
    try:
        fn = _FIGS[which]
    except KeyError:
        raise ValueError(f"no figure {which}; valid: 1..14") from None
    return fn()


def render_all() -> dict[int, str]:
    return {k: figure_text(k) for k in ALL_FIGURES}
