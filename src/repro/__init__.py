"""repro — Parallel rectilinear shortest paths with rectangular obstacles.

A from-scratch reproduction of Atallah & Chen (SPAA 1990 / CGTA 1991) on a
simulated CREW-PRAM.  See README.md for a tour and DESIGN.md for the
paper-to-module map.

High-level entry point::

    from repro import ShortestPathIndex
    idx = ShortestPathIndex.build(rects)
    idx.length(p, q)          # O(1) for obstacle vertices
    idx.shortest_path(p, q)   # actual polyline

Sub-packages: :mod:`repro.geometry` (exact rectilinear geometry),
:mod:`repro.pram` (metered CREW-PRAM simulator), :mod:`repro.monge`
(Monge (min,+) machinery), :mod:`repro.core` (the paper's algorithms),
:mod:`repro.links` (minimum-link / bicriteria (length, bends) queries),
:mod:`repro.scene` (the canonical scene layer), :mod:`repro.pipeline`
(the staged build pipeline: engine registry + per-stage artifact cache),
:mod:`repro.workloads` (scene generators), :mod:`repro.serve` (snapshot
persistence, multi-scene store, batching query server), :mod:`repro.viz`
(ASCII renderings, including the paper's figures).
"""

__version__ = "1.0.0"

from repro.errors import (
    ConcurrentWriteError,
    ConvexityError,
    DisjointnessError,
    GeometryError,
    MongeError,
    PRAMError,
    QueryError,
    ReproError,
    SnapshotError,
)
from repro.geometry.primitives import Point, Rect, dist

__all__ = [
    "__version__",
    "LinkDistanceIndex",
    "Point",
    "Rect",
    "RectilinearPolygon",
    "Scene",
    "dist",
    "ReproError",
    "GeometryError",
    "DisjointnessError",
    "ConvexityError",
    "PRAMError",
    "ConcurrentWriteError",
    "MongeError",
    "QueryError",
    "SnapshotError",
]


def __getattr__(name: str):
    """Lazy top-level exports for the heavyweight subsystems."""
    if name == "RectilinearPolygon":
        from repro.geometry.polygon import RectilinearPolygon

        return RectilinearPolygon
    if name == "Scene":
        from repro.scene import Scene

        return Scene
    if name == "ShortestPathIndex":
        from repro.core.api import ShortestPathIndex

        return ShortestPathIndex
    if name == "GridOracle":
        from repro.core.baseline import GridOracle

        return GridOracle
    if name == "LinkDistanceIndex":
        from repro.links import LinkDistanceIndex

        return LinkDistanceIndex
    if name == "PRAM":
        from repro.pram.machine import PRAM

        return PRAM
    if name == "SceneStore":
        from repro.serve.store import SceneStore

        return SceneStore
    if name == "QueryServer":
        from repro.serve.server import QueryServer

        return QueryServer
    raise AttributeError(f"module 'repro' has no attribute {name!r}")
