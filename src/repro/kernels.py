"""Optional compiled backends for the two hottest build kernels.

The build spends most of its wall-clock in two places: the batched
SMAWK row-minima search inside every Monge (min,+) product
(:func:`repro.monge.smawk.smawk_row_minima_array`) and the
corner-graph leaf solve's L1 clearance sweep
(:func:`repro.core.baseline.clear_l1_block`).  Both are vectorized
numpy, but numpy still walks the data several times; a compiled loop
walks it once.  This module provides ``numba``-compiled versions of
both, behind three guarantees:

* **A capability probe, not an import requirement.**  ``numba`` is
  probed lazily and at most once per process (:func:`probe`); a missing
  or broken install degrades to the pure-numpy paths with the failure
  recorded, never raised.  ``build_index(..., jit=True)`` on a host
  without numba is a silent no-op surfaced honestly in
  ``idx.provenance["jit"]``.
* **Bit-identical results.**  The compiled kernels replicate the numpy
  kernels' exact semantics — leftmost argmin ties, all-infinite rows
  passing their parent's search range through, float64 arithmetic in
  the same association order — so a jit build's matrices are
  byte-identical to a numpy build's and share the same content-addressed
  cache entries.
* **Opt-in per build, thread-scoped.**  The switch is a thread-local
  (:func:`use_jit`) set by the pipeline around the solve stage and
  shipped to pool workers per task, so concurrent builds with different
  ``jit=`` settings don't bleed into each other.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterator, Optional

import numpy as np

__all__ = [
    "probe",
    "available",
    "backend",
    "use_jit",
    "set_jit",
    "jit_requested",
    "jit_active",
    "smawk_argmin",
    "clear_l1",
]

_PROBE: dict = {"checked": False, "available": False, "version": None, "error": None}
_PROBE_LOCK = threading.Lock()
_COMPILED: dict = {}  # "kernels" -> dict of compiled fns, or None if compile failed
_LOCAL = threading.local()


def probe(force: bool = False) -> dict:
    """Probe for a working numba once; return ``{available, version, error}``.

    The result is cached for the life of the process (``force=True``
    re-probes, for tests).  Any exception — ImportError, a broken
    llvmlite, a bad cache dir — counts as unavailable and is recorded
    as a one-line ``error`` string.
    """
    with _PROBE_LOCK:
        if _PROBE["checked"] and not force:
            return dict(_PROBE)
        _PROBE["checked"] = True
        try:
            import numba  # noqa: F401

            _PROBE["available"] = True
            _PROBE["version"] = getattr(numba, "__version__", "unknown")
            _PROBE["error"] = None
        except BaseException as exc:  # pragma: no cover - depends on host
            _PROBE["available"] = False
            _PROBE["version"] = None
            _PROBE["error"] = f"{type(exc).__name__}: {exc}"
        return dict(_PROBE)


def available() -> bool:
    return bool(probe()["available"])


def backend() -> str:
    """Short name of the backend a jit-enabled build would actually use."""
    p = probe()
    return f"numba-{p['version']}" if p["available"] else "numpy"


# ----------------------------------------------------------------------
# the per-thread switch

@contextmanager
def use_jit(enabled: bool) -> Iterator[None]:
    """Enable/disable the compiled kernels for this thread's scope."""
    prev = getattr(_LOCAL, "jit", False)
    _LOCAL.jit = bool(enabled)
    try:
        yield
    finally:
        _LOCAL.jit = prev


def set_jit(enabled: bool) -> None:
    """Non-scoped form, for pool worker processes applying a task flag."""
    _LOCAL.jit = bool(enabled)


def jit_requested() -> bool:
    return bool(getattr(_LOCAL, "jit", False))


def jit_active() -> bool:
    """True iff this thread requested jit AND the kernels compiled."""
    return jit_requested() and _kernels() is not None


# ----------------------------------------------------------------------
# compilation (lazy, once)

def _kernels() -> Optional[dict]:
    if "kernels" in _COMPILED:
        return _COMPILED["kernels"]
    with _PROBE_LOCK:
        if "kernels" in _COMPILED:
            return _COMPILED["kernels"]
        tbl: Optional[dict] = None
        if probe_unlocked_available():
            try:  # pragma: no cover - requires numba on the host
                tbl = _compile()
            except BaseException as exc:
                _PROBE["error"] = f"compile failed: {type(exc).__name__}: {exc}"
                tbl = None
        _COMPILED["kernels"] = tbl
        return tbl


def probe_unlocked_available() -> bool:
    # probe() takes _PROBE_LOCK; inline the cached read for use under it
    if not _PROBE["checked"]:
        _PROBE["checked"] = True
        try:
            import numba  # noqa: F401

            _PROBE["available"] = True
            _PROBE["version"] = getattr(numba, "__version__", "unknown")
        except BaseException as exc:  # pragma: no cover
            _PROBE["available"] = False
            _PROBE["error"] = f"{type(exc).__name__}: {exc}"
    return bool(_PROBE["available"])


def _compile() -> dict:  # pragma: no cover - requires numba on the host
    import numba

    @numba.njit(cache=False, fastmath=False)
    def _smawk_argmin(offsets, b):
        al, inner = offsets.shape
        bc = b.shape[1]
        arg = np.zeros((al, bc), dtype=np.int64)
        # explicit stack of (jlo, jhi, klo, khi) column ranges, half-open
        # in j; depth is <= log2(bc)+1 and each pop pushes at most two
        stack = np.empty((140, 4), dtype=np.int64)
        for i in range(al):
            stack[0, 0] = 0
            stack[0, 1] = bc
            stack[0, 2] = 0
            stack[0, 3] = inner - 1
            top = 1
            while top > 0:
                top -= 1
                jlo = stack[top, 0]
                jhi = stack[top, 1]
                klo = stack[top, 2]
                khi = stack[top, 3]
                if jlo >= jhi:
                    continue
                mid = (jlo + jhi) // 2
                best = np.inf
                besta = klo
                for k in range(klo, khi + 1):
                    v = offsets[i, k] + b[k, mid]
                    if v < best:  # strict: leftmost argmin wins ties
                        best = v
                        besta = k
                arg[i, mid] = besta
                # an all-infinite segment constrains nothing: children
                # inherit the full (klo, khi) range, as in the numpy path
                if best == np.inf:
                    lo2 = klo
                    hi2 = khi
                else:
                    lo2 = besta
                    hi2 = besta
                if mid > jlo:
                    stack[top, 0] = jlo
                    stack[top, 1] = mid
                    stack[top, 2] = klo
                    stack[top, 3] = hi2
                    top += 1
                if mid + 1 < jhi:
                    stack[top, 0] = mid + 1
                    stack[top, 1] = jhi
                    stack[top, 2] = lo2
                    stack[top, 3] = khi
                    top += 1
        return arg

    @numba.njit(cache=False, fastmath=False)
    def _clear_l1(a, b, rects, seams):
        na = a.shape[0]
        nb = b.shape[0]
        nr = rects.shape[0]
        ns = seams.shape[0]
        out = np.empty((na, nb), dtype=np.float64)
        for i in range(na):
            ax = a[i, 0]
            ay = a[i, 1]
            for j in range(nb):
                bx = b[j, 0]
                by = b[j, 1]
                xmin = ax if ax < bx else bx
                xmax = bx if ax < bx else ax
                ymin = ay if ay < by else by
                ymax = by if ay < by else ay
                hv = False
                vh = False
                for r in range(nr):
                    xlo = rects[r, 0]
                    ylo = rects[r, 1]
                    xhi = rects[r, 2]
                    yhi = rects[r, 3]
                    x_span = xmin < xhi and xlo < xmax
                    y_span = ymin < yhi and ylo < ymax
                    if (ylo < ay < yhi and x_span) or (xlo < bx < xhi and y_span):
                        hv = True
                    if (xlo < ax < xhi and y_span) or (ylo < by < yhi and x_span):
                        vh = True
                    if hv and vh:
                        break
                if not (hv and vh):
                    for s in range(ns):
                        sx = seams[s, 0]
                        if ymin < seams[s, 2] and seams[s, 1] < ymax:
                            if bx == sx:
                                hv = True
                            if ax == sx:
                                vh = True
                            if hv and vh:
                                break
                if hv and vh:
                    out[i, j] = np.inf
                else:
                    out[i, j] = (xmax - xmin) + (ymax - ymin)
        return out

    # warm both signatures now so the first build doesn't pay compile
    # latency inside a timed stage
    _smawk_argmin(
        np.zeros((1, 1), dtype=np.float64), np.zeros((1, 1), dtype=np.float64)
    )
    _clear_l1(
        np.zeros((1, 2), dtype=np.float64),
        np.zeros((1, 2), dtype=np.float64),
        np.zeros((0, 4), dtype=np.float64),
        np.zeros((0, 3), dtype=np.float64),
    )
    return {"smawk_argmin": _smawk_argmin, "clear_l1": _clear_l1}


# ----------------------------------------------------------------------
# kernel entry points (call only when jit_active())

def smawk_argmin(offsets: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Compiled batched SMAWK argmin; same contract as the numpy path."""
    tbl = _kernels()
    assert tbl is not None, "smawk_argmin called without an active jit backend"
    arg = tbl["smawk_argmin"](
        np.ascontiguousarray(offsets, dtype=np.float64),
        np.ascontiguousarray(b, dtype=np.float64),
    )
    return np.asarray(arg, dtype=np.intp)


def clear_l1(
    a: np.ndarray, b: np.ndarray, rect_arr: np.ndarray, seam_arr: np.ndarray
) -> np.ndarray:
    """Compiled L1 clearance sweep over ``(n, 2)`` point blocks.

    ``rect_arr`` is ``(nr, 4)`` float64 ``[xlo, ylo, xhi, yhi]`` rows and
    ``seam_arr`` is ``(ns, 3)`` float64 ``[x, ylo, yhi]`` rows.
    """
    tbl = _kernels()
    assert tbl is not None, "clear_l1 called without an active jit backend"
    return tbl["clear_l1"](
        np.ascontiguousarray(a, dtype=np.float64),
        np.ascontiguousarray(b, dtype=np.float64),
        np.ascontiguousarray(rect_arr, dtype=np.float64),
        np.ascontiguousarray(seam_arr, dtype=np.float64),
    )
