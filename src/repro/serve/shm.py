"""Zero-copy scene sharing through ``multiprocessing.shared_memory``.

The cluster's memory model: one process (the front-end) *publishes* each
scene's big read-only arrays — the ``(n, n)`` distance matrix and the
vertex order — into a POSIX shared-memory segment laid out exactly like a
raw (v3) snapshot payload; every worker process then *attaches* the
segment and rebuilds a queryable :class:`ShortestPathIndex` over
memoryview-backed ndarrays via :func:`repro.serve.snapshot.reconstruct`.
No worker ever copies a matrix: N workers serving S scenes hold one
matrix instance total per scene, which is what lets worker RSS stay flat
as scenes accumulate (asserted by ``benchmarks/bench_cluster.py``).

Lifecycle: the publisher owns the segments — it refcounts them per scene
(``publish``/``release``) and unlinks everything in :meth:`ShmPublisher.close`
(also on context-manager exit).  Attachments are read-only views; a
worker's :meth:`AttachedScene.close` drops its mapping (best-effort while
ndarray views are still alive — the OS reclaims the mapping at process
exit regardless) and never unlinks.  Both ``fork`` and ``spawn`` start
methods work: attachment is by segment *name*, which is inherited by
neither and resolved through ``/dev/shm`` by both.

CPython ≤3.12 registers *attached* segments with its resource tracker as
if it owned them (bpo-38119), so a worker exiting would unlink segments
the publisher still serves.  :func:`_attach_untracked` suppresses that
registration (``track=False`` where available); the publisher's own
registration survives and is cleaned up by its explicit ``unlink``.
"""

from __future__ import annotations

import secrets
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Optional

import numpy as np

from repro.core.api import ShortestPathIndex
from repro.errors import ClusterError, SnapshotError
from repro.serve.snapshot import RAW_ALIGN, _align, load_arrays, reconstruct

#: every segment this module creates is named with this prefix, so tests
#: (and operators) can audit ``/dev/shm`` for leaks
SEGMENT_PREFIX = "rsp-"

#: shared-memory manifest format identity (the JSON handed to workers)
MANIFEST_FORMAT = "repro-shm"
MANIFEST_VERSION = 1

#: array members that go into the segment (everything else — rect lists,
#: polygon loops, the container — is small and rides the manifest inline)
_SEGMENT_MEMBERS = ("points", "matrix", "qs_parents", "link_matrix")


def _segment_name() -> str:
    return f"{SEGMENT_PREFIX}{secrets.token_hex(6)}"


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to ``name`` without registering it with the resource
    tracker (see module docstring).  CPython 3.13+ has ``track=False``
    for exactly this; earlier versions register attachments
    unconditionally, so there the registration call is stubbed out for
    the duration of the constructor (attaches happen during single-
    threaded worker startup, so the patch window is benign)."""
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # Python <= 3.12: no track parameter
        pass
    orig = resource_tracker.register
    try:
        resource_tracker.register = lambda *a, **k: None  # type: ignore[assignment]
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = orig


def list_segments() -> list[str]:
    """Names of live ``rsp-`` shared-memory segments on this machine
    (reads ``/dev/shm``; empty where that filesystem does not exist).
    The leak-detection primitive for tests and the CI smoke step."""
    import os

    try:
        entries = os.listdir("/dev/shm")
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))


def build_toc(arrays: "Dict[str, np.ndarray]") -> tuple[dict, int]:
    """Lay out named contiguous arrays back-to-back (RAW_ALIGN'd): the
    ``(toc, total_size)`` pair consumed by :func:`write_array_block` /
    :func:`read_array_block`.  The TOC is JSON-safe and matches the raw
    (v3) snapshot payload layout.  Shared by the scene publisher and the
    build pool's result segments."""
    toc: dict = {}
    offset = 0
    for name, arr in arrays.items():
        toc[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": offset,
            "nbytes": arr.nbytes,
        }
        offset = _align(offset + arr.nbytes, RAW_ALIGN)
    return toc, offset


def write_array_block(buf, toc: dict, arrays: "Dict[str, np.ndarray]") -> None:
    """Copy each TOC member of ``arrays`` into ``buf`` at its offset."""
    for name, ent in toc.items():
        dst = np.ndarray(
            tuple(int(s) for s in ent["shape"]),
            dtype=np.dtype(ent["dtype"]),
            buffer=buf,
            offset=int(ent["offset"]),
        )
        np.copyto(dst, arrays[name])
        del dst  # no exported views may outlive close()


def read_array_block(buf, toc: dict) -> "Dict[str, np.ndarray]":
    """Read-only ndarray views into ``buf`` for every TOC member (zero
    copy: the views alias the mapping; keep it alive while they live)."""
    out: Dict[str, np.ndarray] = {}
    for name, ent in toc.items():
        arr = np.ndarray(
            tuple(int(s) for s in ent["shape"]),
            dtype=np.dtype(ent["dtype"]),
            buffer=buf,
            offset=int(ent["offset"]),
        )
        arr.flags.writeable = False
        out[name] = arr
    return out


class _Segment:
    """One owned shared-memory segment with a scene refcount."""

    def __init__(self, size: int) -> None:
        self.shm = shared_memory.SharedMemory(
            create=True, size=max(size, 1), name=_segment_name()
        )
        self.refs = 0

    @property
    def name(self) -> str:
        return self.shm.name


class ShmPublisher:
    """Publishes scenes into shared memory; owns and unlinks the segments.

    >>> with ShmPublisher() as pub:                      # doctest: +SKIP
    ...     manifest = pub.publish("campus", idx)
    ...     # hand `manifest` (a JSON-safe dict) to worker processes,
    ...     # which call attach(manifest)
    """

    def __init__(self) -> None:
        self._segments: Dict[str, _Segment] = {}  # segment name -> segment
        self._scenes: Dict[str, dict] = {}  # scene name -> manifest
        # share key (id of a published index) -> (segment name, toc);
        # _share_refs pins the index objects so their ids stay unique
        self._shared: Dict[int, tuple] = {}
        self._share_refs: list = []
        # scene name -> superseded manifests whose segments stay mapped
        # until release_retired() — workers attached to the old generation
        # must finish their in-flight batches first (rollover protocol)
        self._retired: Dict[str, list] = {}
        self._closed = False

    # -- publishing -----------------------------------------------------
    def publish(self, scene: str, idx: ShortestPathIndex, generation: int = 0) -> dict:
        """Copy ``idx``'s arrays into one shared segment; returns the
        JSON-safe manifest workers attach from.  Publishing the *same*
        index object under several scene names shares one segment
        (refcounted; unlinked when the last name is released)."""
        arrays, _ = _index_arrays(idx)
        meta = {
            "engine": idx.engine,
            "rects": [[r.xlo, r.ylo, r.xhi, r.yhi] for r in idx.rects],
            "container": list(map(list, idx.container.loop)) if idx.container else None,
            "polygons": [list(map(list, p.loop)) for p in getattr(idx, "polygons", [])],
        }
        self._share_refs.append(idx)
        return self._publish_arrays(
            scene, arrays, meta, share_key=id(idx), generation=generation
        )

    def publish_snapshot(self, scene: str, path) -> dict:
        """Publish straight from a ``.rsp`` artifact — for raw (v3) files
        the arrays are mapped from the page cache and copied once into the
        segment, never materializing a private heap copy."""
        header, arrays = load_arrays(path, mmap=True)
        meta = {
            "engine": str(header.get("engine", "parallel")),
            "rects": np.asarray(arrays["rects"]).tolist(),
            "container": (
                np.asarray(arrays["container"]).tolist()
                if len(np.asarray(arrays["container"]))
                else None
            ),
            "polygons": _loops_from_flat(arrays["poly_offsets"], arrays["poly_vertices"]),
        }
        seg_arrays = {
            "points": np.asarray(arrays["points"]),
            "matrix": np.asarray(arrays["matrix"], dtype=float),
        }
        if arrays.get("qs_parents") is not None:
            seg_arrays["qs_parents"] = np.asarray(arrays["qs_parents"])
        if arrays.get("link_matrix") is not None:
            seg_arrays["link_matrix"] = np.asarray(arrays["link_matrix"])
        return self._publish_arrays(scene, seg_arrays, meta)

    def republish(self, scene: str, idx: ShortestPathIndex) -> dict:
        """Publish the next *generation* of an already-published scene
        under a fresh segment; the old generation's segment stays alive
        (workers may still be attached) until :meth:`release_retired`.

        The returned manifest carries ``generation = old + 1``; a scene
        not yet published starts at generation 0, making this a safe
        publish-or-rollover for the cluster's update path."""
        old = self._scenes.pop(scene, None)
        gen = 0
        if old is not None:
            self._retired.setdefault(scene, []).append(old)
            gen = int(old.get("generation", 0)) + 1
        try:
            return self.publish(scene, idx, generation=gen)
        except BaseException:
            # failed rollover must not unpublish the working generation
            if old is not None:
                self._scenes[scene] = old
                self._retired[scene].remove(old)
                if not self._retired[scene]:
                    del self._retired[scene]
            raise

    def release_retired(self, scene: str) -> int:
        """Unlink the segments of ``scene``'s superseded generations
        (call once every worker acknowledged the new manifest); returns
        how many generations were released."""
        released = 0
        for manifest in self._retired.pop(scene, []):
            self._release_segment(manifest["segment"])
            released += 1
        return released

    def _publish_arrays(
        self, scene: str, arrays: dict, meta: dict, share_key=None, generation: int = 0
    ) -> dict:
        if self._closed:
            raise ClusterError("publisher is closed")
        if scene in self._scenes:
            raise ClusterError(
                f"scene {scene!r} is already published "
                f"(use republish() to roll a new generation)"
            )
        shared = self._shared.get(share_key) if share_key is not None else None
        if shared is not None:
            # the same built index published under another scene name:
            # alias the existing segment instead of copying the matrix
            # again — this is where the segment refcount earns its keep
            seg_name, toc = shared
            seg = self._segments[seg_name]
        else:
            converted = {
                name: np.ascontiguousarray(arrays[name])
                for name in _SEGMENT_MEMBERS
                if name in arrays
            }
            toc, size = build_toc(converted)
            seg = _Segment(size)
            try:
                write_array_block(seg.shm.buf, toc, converted)
            except BaseException:
                seg.shm.close()
                seg.shm.unlink()
                raise
            self._segments[seg.name] = seg
            if share_key is not None:
                self._shared[share_key] = (seg.name, toc)
        seg.refs += 1
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "scene": scene,
            "segment": seg.name,
            "size": seg.shm.size,
            "generation": int(generation),
            "toc": toc,
            "meta": meta,
        }
        self._scenes[scene] = manifest
        return manifest

    # -- introspection --------------------------------------------------
    def manifest(self, scene: str) -> dict:
        try:
            return self._scenes[scene]
        except KeyError:
            known = ", ".join(sorted(self._scenes)) or "<none>"
            raise ClusterError(
                f"scene {scene!r} is not published (published: {known})"
            ) from None

    def scenes(self) -> list[str]:
        return sorted(self._scenes)

    def total_bytes(self) -> int:
        return sum(seg.shm.size for seg in self._segments.values())

    # -- lifecycle ------------------------------------------------------
    def release(self, scene: str) -> None:
        """Drop one scene (current and any retired generations); each
        segment is unlinked once no published scene references it any
        more."""
        manifest = self.manifest(scene)
        del self._scenes[scene]
        self._release_segment(manifest["segment"])
        self.release_retired(scene)

    def _release_segment(self, seg_name: str) -> None:
        seg = self._segments[seg_name]
        seg.refs -= 1
        if seg.refs <= 0:
            del self._segments[seg.name]
            self._shared = {
                k: v for k, v in self._shared.items() if v[0] != seg.name
            }
            seg.shm.close()
            seg.shm.unlink()

    def close(self) -> None:
        """Unlink every remaining segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for seg in self._segments.values():
            try:
                seg.shm.close()
                seg.shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._segments.clear()
        self._scenes.clear()
        self._shared.clear()
        self._share_refs.clear()
        self._retired.clear()

    def __enter__(self) -> "ShmPublisher":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class AttachedScene:
    """A worker-side attachment: the segment mapping plus the rebuilt
    index.  Keep this object alive as long as the index is in use — the
    index's matrix is a view straight into the mapping."""

    def __init__(self, manifest: dict) -> None:
        _validate_manifest(manifest)
        self.scene = manifest["scene"]
        try:
            self.shm = _attach_untracked(manifest["segment"])
        except FileNotFoundError:
            raise ClusterError(
                f"scene {self.scene!r}: shared segment {manifest['segment']!r} "
                f"does not exist (publisher gone or already unlinked?)"
            )
        arrays: dict[str, Optional[np.ndarray]] = {}
        try:
            arrays.update(read_array_block(self.shm.buf, manifest["toc"]))
            meta = manifest["meta"]
            arrays["rects"] = np.asarray(meta["rects"], dtype=np.int64).reshape(-1, 4)
            container = meta.get("container")
            arrays["container"] = np.asarray(
                container if container else [], dtype=np.int64
            ).reshape(-1, 2)
            offsets = [0]
            flat: list = []
            for loop in meta.get("polygons") or []:
                flat.extend(loop)
                offsets.append(len(flat))
            arrays["poly_offsets"] = np.asarray(offsets, dtype=np.int64)
            arrays["poly_vertices"] = np.asarray(flat, dtype=np.int64).reshape(-1, 2)
            arrays.setdefault("qs_parents", None)
            try:
                self.index = reconstruct(
                    {"engine": meta.get("engine", "parallel")},
                    arrays,
                    label=f"shm:{self.scene}",
                )
            except SnapshotError as exc:
                raise ClusterError(str(exc))
        except BaseException:
            arrays.clear()
            self.shm.close()
            raise
        self.index.shm_handle = self
        self.closed = False

    def close(self) -> None:
        """Drop the mapping (best effort: with live ndarray views the
        buffer stays exported and the mapping is reclaimed at process
        exit instead; either way the segment is never unlinked here)."""
        if self.closed:
            return
        self.closed = True
        try:
            self.shm.close()
        except BufferError:  # views into the mapping are still alive
            pass


def attach(manifest: dict) -> ShortestPathIndex:
    """Attach a published scene zero-copy; the returned index's matrix is
    a read-only view into the shared segment (``idx.shm_handle`` keeps
    the attachment alive and offers ``close()``)."""
    return AttachedScene(manifest).index


def is_shm_backed(idx: ShortestPathIndex) -> bool:
    return getattr(idx, "shm_handle", None) is not None


def _validate_manifest(manifest) -> None:
    if not isinstance(manifest, dict) or manifest.get("format") != MANIFEST_FORMAT:
        raise ClusterError(f"not a {MANIFEST_FORMAT} manifest: {manifest!r:.80}")
    if manifest.get("version") != MANIFEST_VERSION:
        raise ClusterError(
            f"shm manifest version {manifest.get('version')!r}; this build "
            f"speaks version {MANIFEST_VERSION}"
        )
    for key in ("scene", "segment", "toc", "meta"):
        if key not in manifest:
            raise ClusterError(f"shm manifest is missing {key!r}")


def _index_arrays(idx: ShortestPathIndex) -> tuple[dict, bool]:
    """The segment-bound arrays of a built index (forces the §6.4 export
    for rectangle scenes, mirroring ``snapshot.save``)."""
    arrays = idx.index.export_arrays()
    include_query = not getattr(idx, "seams", [])
    if include_query:
        arrays["qs_parents"] = idx.query.export_world_parents()
    # an already-computed link matrix rides along (never forced here —
    # publishing must not trigger an all-pairs DP the caller didn't ask
    # for; snapshot.save(include_links=True) is the explicit knob)
    link_matrix = getattr(idx, "_link_matrix", None)
    if link_matrix is None:
        link_matrix = getattr(getattr(idx, "_links", None), "_link_matrix", None)
    if link_matrix is not None:
        arrays["link_matrix"] = np.asarray(link_matrix)
    return arrays, include_query


def _loops_from_flat(poly_offsets, poly_vertices) -> list:
    offs = [int(v) for v in np.asarray(poly_offsets).tolist()]
    verts = [list(map(int, v)) for v in np.asarray(poly_vertices).tolist()]
    return [verts[a:b] for a, b in zip(offs, offs[1:])]

