"""Serving layer: snapshots, shared memory, a multi-scene store, batching.

The build side of this library is the paper's contribution; this package
is the *online* half an actual deployment needs:

* :mod:`repro.serve.snapshot` — ``save``/``load`` a built
  :class:`~repro.core.api.ShortestPathIndex` as one ``.rsp`` artifact
  (format v3: an mmap-friendly raw layout; v1/v2 npz archives still
  load), so the expensive parallel build is paid once per scene;
* :mod:`repro.serve.shm` — publish a built index into
  ``multiprocessing.shared_memory`` and reattach zero-copy from worker
  processes (the memory model behind :mod:`repro.cluster`);
* :mod:`repro.serve.store` — :class:`SceneStore`, a thread-safe registry
  of many named scenes with lazy materialization, build-or-load-once
  locking, pin/unpin read refcounts, and LRU eviction bounded by
  resident bytes;
* :mod:`repro.serve.server` — :class:`QueryServer`, the batching
  front-end that coalesces same-scene length requests into single
  vectorized matrix gathers;
The latency/batch recorders that used to live in
``repro.serve.metrics`` moved to :mod:`repro.obs` (the unified
observability subsystem); the re-exports below are kept for
compatibility.
"""

from repro.obs.recorders import BatchHistogram, LatencyRecorder, percentile
from repro.serve.snapshot import (
    SNAPSHOT_FORMAT,
    SNAPSHOT_SUFFIX,
    SNAPSHOT_VERSION,
    is_snapshot,
    load,
    load_arrays,
    read_header,
    save,
)
from repro.serve.server import OP_LENGTH, OP_PATH, QueryServer, Request
from repro.serve.store import SceneStore, resident_bytes

__all__ = [
    "SNAPSHOT_FORMAT",
    "SNAPSHOT_SUFFIX",
    "SNAPSHOT_VERSION",
    "is_snapshot",
    "load",
    "load_arrays",
    "read_header",
    "save",
    "OP_LENGTH",
    "OP_PATH",
    "QueryServer",
    "Request",
    "SceneStore",
    "resident_bytes",
    "BatchHistogram",
    "LatencyRecorder",
    "percentile",
]
