"""Snapshot persistence for a built :class:`ShortestPathIndex`.

The paper's structure is *build once expensively, query forever cheaply*
(abstract: O(log² n) parallel build, O(1)/O(log n) queries), which makes
the build output the natural unit of persistence.  A snapshot is a single
``.rsp`` file — a NumPy ``.npz`` archive with a JSON header member — that
captures everything the query side needs:

``header``       JSON: format name + version, repro version, engine,
                 element counts, simulated build cost, matrix checksum
``points``       ``(n, 2)`` int64 — the vertex order of the matrix rows
``matrix``       ``(n, n)`` float64 — all-pairs lengths (§6.3 output)
``rects``        ``(m, 4)`` int64 — obstacles: plain rects, polygon
                 decomposition tiles, pocket rects
``container``    ``(k, 2)`` int64 — container polygon loop (``k = 0``
                 when the scene has no container)
``qs_parents``   ``(4, m)`` int64 — the §6.4 query structure's four
                 NE tracing forests (absent when not exported; polygon
                 scenes never export them — they use the corner-graph
                 query fallback, which needs nothing beyond the matrix)
``poly_offsets`` ``(P + 1,)`` int64 — *format v2*: prefix offsets into
                 ``poly_vertices`` delimiting each original polygon
                 obstacle's vertex loop
``poly_vertices`` ``(K, 2)`` int64 — *format v2*: concatenated polygon
                 loops (seams are recomputed from the loops on load —
                 the decomposition is deterministic)

Loading never re-runs an engine: the matrix is mapped back into a
:class:`DistanceIndex`, the §6.4 forests (when present) are handed to
:class:`QueryStructure`, and only the cheap ray shooters are rebuilt.
Version-1 artifacts (pre-polygon) still load — they simply carry no
polygon members.  Corrupt, truncated, or version-mismatched artifacts
raise :class:`~repro.errors.SnapshotError` — never a deep traceback from
NumPy.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import tempfile
import zipfile
import zlib
from typing import Union

import numpy as np

from repro import __version__
from repro.core.allpairs import DistanceIndex
from repro.core.api import ShortestPathIndex
from repro.errors import SnapshotError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Rect
from repro.pram.machine import PRAM

PathLike = Union[str, pathlib.Path]

#: snapshot format identity; bump ``SNAPSHOT_VERSION`` on layout changes
SNAPSHOT_FORMAT = "repro-snapshot"
SNAPSHOT_VERSION = 2
#: every format version this build can read back
SUPPORTED_VERSIONS = (1, 2)

#: conventional file extension (the CLI sniffs content, not the name)
SNAPSHOT_SUFFIX = ".rsp"


def _matrix_digest(matrix: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(matrix).tobytes()).hexdigest()


def save(
    idx: ShortestPathIndex, path: PathLike, include_query: bool = True
) -> pathlib.Path:
    """Serialize ``idx`` to ``path``; returns the path written.

    ``include_query=True`` (default) also exports the §6.4 arbitrary-point
    query structure — forcing its construction now if it was never queried
    — so a loaded snapshot answers arbitrary-point queries without any
    tracing work.
    """
    path = pathlib.Path(path)
    arrays = idx.index.export_arrays()
    arrays["rects"] = np.array(
        [[r.xlo, r.ylo, r.xhi, r.yhi] for r in idx.rects], dtype=np.int64
    ).reshape(len(idx.rects), 4)
    if idx.container is not None:
        arrays["container"] = np.array(idx.container.loop, dtype=np.int64)
    else:
        arrays["container"] = np.empty((0, 2), dtype=np.int64)
    polygons = getattr(idx, "polygons", [])
    offsets = [0]
    flat_loop: list = []
    for poly in polygons:
        flat_loop.extend(poly.loop)
        offsets.append(len(flat_loop))
    arrays["poly_offsets"] = np.array(offsets, dtype=np.int64)
    arrays["poly_vertices"] = np.array(flat_loop, dtype=np.int64).reshape(
        len(flat_loop), 2
    )
    # polygon scenes answer arbitrary-point queries through the corner-
    # graph fallback — there are no §6.4 forests to persist
    include_query = include_query and not getattr(idx, "seams", [])
    if include_query:
        arrays["qs_parents"] = idx.query.export_world_parents()
    header = {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "repro_version": __version__,
        "engine": idx.engine,
        "n_points": len(idx.index),
        "n_rects": len(idx.rects),
        "n_polygons": len(polygons),
        "has_container": idx.container is not None,
        "has_query_structure": include_query,
        "build_time": idx.pram.time,
        "build_work": idx.pram.work,
        "matrix_sha256": _matrix_digest(arrays["matrix"]),
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
    )
    buf = io.BytesIO()
    np.savez_compressed(buf, **arrays)
    # atomic publish: a crash mid-write (or a concurrent saver of the
    # same path) must never leave a truncated artifact where a
    # SceneStore will try to load it — hence a unique temp sibling
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(buf.getvalue())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def read_header(path: PathLike) -> dict:
    """The snapshot's JSON header alone (no array payloads are decoded)."""
    with _open_archive(path) as npz:
        return _parse_header(path, npz)


def is_snapshot(path: PathLike) -> bool:
    """Cheap content sniff: is this file a repro snapshot archive?"""
    try:
        read_header(path)
        return True
    except (SnapshotError, FileNotFoundError, IsADirectoryError):
        return False


def load(path: PathLike) -> ShortestPathIndex:
    """Reconstruct a fully queryable :class:`ShortestPathIndex` from a
    snapshot; raises :class:`SnapshotError` on any malformed artifact."""
    with _open_archive(path) as npz:
        header = _parse_header(path, npz)
        try:
            points = npz["points"]
            matrix = npz["matrix"]
            rect_arr = npz["rects"]
            loop_arr = npz["container"]
            parents = npz["qs_parents"] if "qs_parents" in npz.files else None
            if "poly_offsets" in npz.files:  # format v2
                poly_offsets = npz["poly_offsets"]
                poly_vertices = npz["poly_vertices"]
            else:  # format v1: pre-polygon artifact
                poly_offsets = np.zeros(1, dtype=np.int64)
                poly_vertices = np.empty((0, 2), dtype=np.int64)
        except (KeyError, ValueError, zipfile.BadZipFile, OSError, zlib.error) as exc:
            raise SnapshotError(f"{path}: missing or corrupt array member: {exc}")
    digest = _matrix_digest(np.asarray(matrix, dtype=float))
    if digest != header.get("matrix_sha256"):
        raise SnapshotError(
            f"{path}: matrix checksum mismatch (corrupt or tampered artifact)"
        )
    try:
        index = DistanceIndex.from_arrays(points, matrix)
        rects = [Rect(*row) for row in rect_arr.tolist()]
        container = None
        if len(loop_arr):
            container = RectilinearPolygon([(x, y) for x, y in loop_arr.tolist()])
        offs = [int(v) for v in poly_offsets.tolist()]
        verts = [(int(x), int(y)) for x, y in poly_vertices.tolist()]
        polygons = [
            RectilinearPolygon(verts[a:b]) for a, b in zip(offs, offs[1:])
        ]
        # seams are a pure function of each loop: recompute instead of
        # trusting (or bloating) the artifact
        seams = [s for poly in polygons for s in poly.decomposition()[1]]
    except Exception as exc:  # noqa: BLE001 - any geometry rejection is corruption
        raise SnapshotError(f"{path}: invalid snapshot payload: {exc}")
    if parents is not None and parents.shape != (4, len(rects)):
        raise SnapshotError(
            f"{path}: query-structure parents shape {parents.shape} does not "
            f"match {len(rects)} obstacles"
        )
    idx = ShortestPathIndex(
        rects,
        index,
        PRAM("snapshot-load"),
        container=container,
        engine=str(header.get("engine", "parallel")),
        query_parents=parents,
        polygons=polygons,
        seams=seams,
    )
    idx.snapshot_meta = header
    return idx


# ----------------------------------------------------------------------
def _open_archive(path: PathLike):
    try:
        npz = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SnapshotError(f"{path}: not a snapshot archive: {exc}")
    if not hasattr(npz, "files"):  # a bare .npy loads as a plain array
        raise SnapshotError(f"{path}: not a snapshot archive (single array)")
    return npz


def _parse_header(path: PathLike, npz) -> dict:
    if "header" not in npz.files:
        raise SnapshotError(f"{path}: no snapshot header member")
    try:
        header = json.loads(bytes(npz["header"].tobytes()).decode("utf-8"))
    except (ValueError, UnicodeDecodeError, zipfile.BadZipFile, OSError, zlib.error) as exc:
        raise SnapshotError(f"{path}: unreadable snapshot header: {exc}")
    if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path}: not a {SNAPSHOT_FORMAT} artifact")
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"{path}: snapshot format version {header.get('version')!r}; "
            f"this build reads versions {SUPPORTED_VERSIONS}"
        )
    return header
