"""Snapshot persistence for a built :class:`ShortestPathIndex`.

The paper's structure is *build once expensively, query forever cheaply*
(abstract: O(log² n) parallel build, O(1)/O(log n) queries), which makes
the build output the natural unit of persistence.  A snapshot is a single
``.rsp`` file capturing everything the query side needs:

``header``       JSON: format name + version, repro version, engine,
                 element counts, simulated build cost, matrix checksum,
                 and (when present) the pipeline's stage provenance
``points``       ``(n, 2)`` int64 — the vertex order of the matrix rows
                 (float64 when a non-integer extra point is indexed; the
                 TOC/npz member records the dtype either way)
``matrix``       ``(n, n)`` float64 — all-pairs lengths (§6.3 output)
``rects``        ``(m, 4)`` int64 — obstacles: plain rects, polygon
                 decomposition tiles, pocket rects
``container``    ``(k, 2)`` int64 — container polygon loop (``k = 0``
                 when the scene has no container)
``qs_parents``   ``(4, m)`` int64 — the §6.4 query structure's four
                 NE tracing forests (absent when not exported; polygon
                 scenes never export them — they use the corner-graph
                 query fallback, which needs nothing beyond the matrix)
``poly_offsets`` ``(P + 1,)`` int64 — *v2+*: prefix offsets into
                 ``poly_vertices`` delimiting each original polygon
                 obstacle's vertex loop
``poly_vertices`` ``(K, 2)`` int64 — *v2+*: concatenated polygon
                 loops (seams are recomputed from the loops on load —
                 the decomposition is deterministic)
``link_matrix``  ``(n, n)`` int32 — *v4+, optional* (``save(...,
                 include_links=True)``): all-pairs min-link counts among
                 the registered points, ``-1`` marking disconnected
                 pairs; loaded snapshots use it as the fast path for
                 ``minlink`` queries between registered points

*v4* also added a ``verbs`` header key naming the query verbs the
artifact supports.  Older artifacts (v1–v3) still load, but their
indices advertise ``("length", "path")`` only — the link-query family
was specified after v3 froze, so a pre-v4 artifact makes no promise
about it and the facade's capability gate turns ``minlink``/``pareto``
into a one-line :class:`~repro.errors.QueryError` instead of an answer
that silently bypassed the artifact's contract.  Re-snapshot the scene
to upgrade.

Two container layouts exist:

* **formats v3/v4 (current, "raw")** — a flat binary file: an 8-byte magic,
  a little-endian ``uint64`` header length, the JSON header (which
  carries a table of contents of dtype/shape/offset per array), then the
  raw C-order array payloads at 64-byte-aligned offsets.  The layout is
  mmap-friendly: :func:`load` maps the arrays read-only straight out of
  the page cache (no decompression, no second copy), and
  :mod:`repro.serve.shm` copies the same bytes once into shared-memory
  segments that worker processes attach zero-copy.
* **formats v1/v2 ("npz")** — a NumPy ``.npz`` archive with the same
  members.  Still fully readable (the copy path); still writable via
  ``save(..., layout="npz")`` for compatibility fixtures.

Loading never re-runs an engine: the matrix is mapped back into a
:class:`DistanceIndex`, the §6.4 forests (when present) are handed to
:class:`QueryStructure`, and only the cheap ray shooters are rebuilt.
Corrupt, truncated, or version-mismatched artifacts raise
:class:`~repro.errors.SnapshotError` — never a deep traceback from NumPy.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pathlib
import struct
import tempfile
import zipfile
import zlib
from typing import Optional, Union

import numpy as np

from repro import __version__
from repro.core.allpairs import DistanceIndex
from repro.core.api import ShortestPathIndex
from repro.errors import SnapshotError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Rect
from repro.pram.machine import PRAM

PathLike = Union[str, pathlib.Path]

#: snapshot format identity; bump ``SNAPSHOT_VERSION`` on layout changes
SNAPSHOT_FORMAT = "repro-snapshot"
SNAPSHOT_VERSION = 4
#: every format version this build can read back
SUPPORTED_VERSIONS = (1, 2, 3, 4)
#: verbs a pre-v4 artifact is assumed to support (the link family was
#: introduced with v4; see the module docstring)
LEGACY_VERBS = ("length", "path")
#: the version written by ``save(..., layout="npz")`` (the legacy container)
NPZ_VERSION = 2

#: conventional file extension (the CLI sniffs content, not the name)
SNAPSHOT_SUFFIX = ".rsp"

#: first 8 bytes of a raw-layout (v3) artifact; deliberately not ``PK``
#: (zip) and not ``\x93NUMPY`` (bare .npy), and unprintable enough that a
#: text file can never collide
RAW_MAGIC = b"\x93RSP\r\n\x1a\n"
#: raw-layout arrays start at multiples of this (mmap/SIMD friendly)
RAW_ALIGN = 64
#: sanity bound on the embedded JSON header
_MAX_HEADER = 64 << 20


def _align(n: int, a: int = RAW_ALIGN) -> int:
    return (n + a - 1) // a * a


def _matrix_digest(matrix: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(matrix).tobytes()).hexdigest()


def _export_arrays(
    idx: ShortestPathIndex, include_query: bool, include_links: bool = False
) -> tuple[dict, bool]:
    """All snapshot array members of ``idx`` (shared by both layouts)."""
    arrays = idx.index.export_arrays()
    arrays["rects"] = np.array(
        [[r.xlo, r.ylo, r.xhi, r.yhi] for r in idx.rects], dtype=np.int64
    ).reshape(len(idx.rects), 4)
    if idx.container is not None:
        arrays["container"] = np.array(idx.container.loop, dtype=np.int64)
    else:
        arrays["container"] = np.empty((0, 2), dtype=np.int64)
    polygons = getattr(idx, "polygons", [])
    offsets = [0]
    flat_loop: list = []
    for poly in polygons:
        flat_loop.extend(poly.loop)
        offsets.append(len(flat_loop))
    arrays["poly_offsets"] = np.array(offsets, dtype=np.int64)
    arrays["poly_vertices"] = np.array(flat_loop, dtype=np.int64).reshape(
        len(flat_loop), 2
    )
    # polygon scenes answer arbitrary-point queries through the corner-
    # graph fallback — there are no §6.4 forests to persist
    include_query = include_query and not getattr(idx, "seams", [])
    if include_query:
        arrays["qs_parents"] = idx.query.export_world_parents()
    if include_links:
        # all-pairs min-link counts among the registered points — forces
        # the link index (and one DP run per source) now so a loaded
        # snapshot answers registered-pair minlink queries by lookup
        arrays["link_matrix"] = np.ascontiguousarray(
            idx.links.link_matrix(), dtype=np.int32
        )
    return arrays, include_query


def _base_header(idx: ShortestPathIndex, include_query: bool, matrix) -> dict:
    polygons = getattr(idx, "polygons", [])
    header = {
        "format": SNAPSHOT_FORMAT,
        "repro_version": __version__,
        "engine": idx.engine,
        "n_points": len(idx.index),
        "n_rects": len(idx.rects),
        "n_polygons": len(polygons),
        "has_container": idx.container is not None,
        "has_query_structure": include_query,
        "build_time": idx.pram.time,
        "build_work": idx.pram.work,
        "matrix_sha256": _matrix_digest(matrix),
        # v4+: the query verbs this artifact supports; readers gate the
        # facade's capabilities on it (absent on pre-v4 artifacts, which
        # therefore narrow to LEGACY_VERBS on load)
        "verbs": list(getattr(idx, "capabilities", LEGACY_VERBS)),
    }
    # stage provenance from repro.pipeline (engine + per-stage wall/PRAM
    # timings + cache hits): carried verbatim so `repro bench-info SNAP`
    # can report how the artifact was built.  Pre-pipeline snapshots
    # simply lack the key — old readers ignore it, old artifacts load.
    provenance = getattr(idx, "provenance", None)
    if provenance is not None:
        header["provenance"] = provenance
    return header


def save(
    idx: ShortestPathIndex,
    path: PathLike,
    include_query: bool = True,
    layout: str = "raw",
    include_links: bool = False,
) -> pathlib.Path:
    """Serialize ``idx`` to ``path``; returns the path written.

    ``include_query=True`` (default) also exports the §6.4 arbitrary-point
    query structure — forcing its construction now if it was never queried
    — so a loaded snapshot answers arbitrary-point queries without any
    tracing work.

    ``include_links=True`` additionally precomputes and embeds the
    all-pairs min-link matrix (one DP run per registered point now, a
    lookup per ``minlink`` query forever after).  Link *queries* do not
    require it — any v4 artifact answers them through the lazy link
    index — it only trades build time for query latency.

    ``layout="raw"`` (default) writes the mmap-friendly format-v4 file;
    ``layout="npz"`` writes the legacy format-v2 ``.npz`` archive (smaller
    on disk, but loads through a decompress-and-copy path and cannot back
    shared-memory serving directly).
    """
    path = pathlib.Path(path)
    arrays, include_query = _export_arrays(idx, include_query, include_links)
    header = _base_header(idx, include_query, arrays["matrix"])
    if layout == "raw":
        header["version"] = SNAPSHOT_VERSION
        header["layout"] = "raw"
        blob = _encode_raw(header, arrays)
    elif layout == "npz":
        header["version"] = NPZ_VERSION
        arrays["header"] = np.frombuffer(
            json.dumps(header, sort_keys=True).encode("utf-8"), dtype=np.uint8
        )
        buf = io.BytesIO()
        np.savez_compressed(buf, **arrays)
        blob = buf.getvalue()
    else:
        raise ValueError(f"unknown snapshot layout {layout!r} (want raw or npz)")
    # atomic publish: a crash mid-write (or a concurrent saver of the
    # same path) must never leave a truncated artifact where a
    # SceneStore will try to load it — hence a unique temp sibling
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(blob)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    return path


def _encode_raw(header: dict, arrays: dict) -> bytes:
    """The raw (v3) container: magic + header length + JSON + aligned
    C-order payloads.  TOC offsets are relative to the payload base (which
    is itself ``_align(16 + header length)``), so the header's own length
    never feeds back into the offsets it describes."""
    toc: dict[str, dict] = {}
    rel = 0
    blobs: list[bytes] = []
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        toc[name] = {
            "dtype": arr.dtype.str,
            "shape": list(arr.shape),
            "offset": rel,
            "nbytes": arr.nbytes,
        }
        blobs.append(arr.tobytes())
        rel = _align(rel + arr.nbytes)
    header = dict(header, toc=toc)
    hbytes = json.dumps(header, sort_keys=True).encode("utf-8")
    base = _align(16 + len(hbytes))
    out = bytearray(base + rel)
    out[:8] = RAW_MAGIC
    out[8:16] = struct.pack("<Q", len(hbytes))
    out[16 : 16 + len(hbytes)] = hbytes
    for name, blob in zip(sorted(arrays), blobs):
        off = base + toc[name]["offset"]
        out[off : off + len(blob)] = blob
    return bytes(out)


def read_header(path: PathLike) -> dict:
    """The snapshot's JSON header alone (no array payloads are decoded)."""
    if _is_raw(path):
        header, _ = _read_raw_header(path)
        return header
    with _open_archive(path) as npz:
        return _parse_header(path, npz)


def is_snapshot(path: PathLike) -> bool:
    """Cheap content sniff: is this file a repro snapshot archive?"""
    try:
        read_header(path)
        return True
    except (SnapshotError, FileNotFoundError, IsADirectoryError):
        return False


def quarantine(path: PathLike) -> Optional[pathlib.Path]:
    """Move a corrupt snapshot aside as ``<name>.quarantined`` so nothing
    retries loading (or overwrites the evidence); returns the new path,
    or ``None`` if the artifact could not be moved (already gone, or a
    read-only filesystem).

    Collision-safe: a second quarantine of the same scene picks the next
    free ``.quarantined.N`` suffix instead of clobbering the earlier
    corpse on POSIX (``os.replace`` overwrites silently there) or raising
    on Windows (where it refuses to) — every piece of evidence survives,
    with a deterministic name for each."""
    p = pathlib.Path(path)
    for k in range(1000):
        suffix = ".quarantined" if k == 0 else f".quarantined.{k}"
        target = p.with_name(p.name + suffix)
        if target.exists():
            continue
        try:
            os.replace(p, target)
        except OSError:
            return None
        return target
    return None  # pragma: no cover - a thousand corpses of one scene


def load(path: PathLike, mmap: bool = True) -> ShortestPathIndex:
    """Reconstruct a fully queryable :class:`ShortestPathIndex` from a
    snapshot; raises :class:`SnapshotError` on any malformed artifact.

    Raw (v3) artifacts map their arrays read-only straight from the file
    (``mmap=False`` forces an in-memory copy instead); npz (v1/v2)
    artifacts always load through the decompress-and-copy path.
    """
    header, arrays = load_arrays(path, mmap=mmap)
    digest = _matrix_digest(np.asarray(arrays["matrix"], dtype=float))
    if digest != header.get("matrix_sha256"):
        raise SnapshotError(
            f"{path}: matrix checksum mismatch (corrupt or tampered artifact)"
        )
    idx = reconstruct(header, arrays, label=str(path))
    idx.snapshot_meta = header
    return idx


def load_arrays(path: PathLike, mmap: bool = True) -> tuple[dict, dict]:
    """``(header, arrays)`` of any supported snapshot, layout-agnostic.

    Missing optional members are normalized: ``qs_parents`` maps to
    ``None``, pre-polygon (v1) artifacts get empty polygon members.  This
    is the entry point :mod:`repro.serve.shm` uses to publish a snapshot's
    bytes into shared memory without building an index first.
    """
    if _is_raw(path):
        header, base = _read_raw_header(path)
        arrays = _read_raw_arrays(path, header, base, mmap=mmap)
    else:
        with _open_archive(path) as npz:
            header = _parse_header(path, npz)
            try:
                arrays = {name: npz[name] for name in npz.files if name != "header"}
            except (
                KeyError,
                ValueError,
                zipfile.BadZipFile,
                OSError,
                zlib.error,
            ) as exc:
                raise SnapshotError(f"{path}: missing or corrupt array member: {exc}")
    for required in ("points", "matrix", "rects", "container"):
        if required not in arrays:
            raise SnapshotError(f"{path}: snapshot has no {required!r} member")
    arrays.setdefault("qs_parents", None)
    arrays.setdefault("link_matrix", None)  # v4 optional member
    if "poly_offsets" not in arrays:  # format v1: pre-polygon artifact
        arrays["poly_offsets"] = np.zeros(1, dtype=np.int64)
        arrays["poly_vertices"] = np.empty((0, 2), dtype=np.int64)
    return header, arrays


def reconstruct(header: dict, arrays: dict, label: str = "<arrays>") -> ShortestPathIndex:
    """Rebuild a queryable index from snapshot-shaped ``arrays``.

    Shared by :func:`load` and :func:`repro.serve.shm.attach` — the only
    difference between the two is where the bytes live (a file mapping vs
    a shared-memory segment); everything rebuilt here (``Rect`` objects,
    polygon seams, ray shooters) is small.
    """
    try:
        index = DistanceIndex.from_arrays(arrays["points"], arrays["matrix"])
        rects = [Rect(*row) for row in np.asarray(arrays["rects"]).tolist()]
        loop_arr = np.asarray(arrays["container"])
        container = None
        if len(loop_arr):
            container = RectilinearPolygon([(x, y) for x, y in loop_arr.tolist()])
        offs = [int(v) for v in np.asarray(arrays["poly_offsets"]).tolist()]
        verts = [
            (int(x), int(y)) for x, y in np.asarray(arrays["poly_vertices"]).tolist()
        ]
        polygons = [RectilinearPolygon(verts[a:b]) for a, b in zip(offs, offs[1:])]
        # seams are a pure function of each loop: recompute instead of
        # trusting (or bloating) the artifact
        seams = [s for poly in polygons for s in poly.decomposition()[1]]
    except Exception as exc:  # noqa: BLE001 - any geometry rejection is corruption
        raise SnapshotError(f"{label}: invalid snapshot payload: {exc}")
    parents = arrays.get("qs_parents")
    if parents is not None:
        parents = np.asarray(parents)
        if parents.shape != (4, len(rects)):
            raise SnapshotError(
                f"{label}: query-structure parents shape {parents.shape} does "
                f"not match {len(rects)} obstacles"
            )
    link_matrix = arrays.get("link_matrix")
    if link_matrix is not None:
        link_matrix = np.asarray(link_matrix)
        n = len(index)
        if link_matrix.shape != (n, n):
            raise SnapshotError(
                f"{label}: link matrix shape {link_matrix.shape} does not "
                f"match {n} registered points"
            )
    idx = ShortestPathIndex(
        rects,
        index,
        PRAM("snapshot-load"),
        container=container,
        engine=str(header.get("engine", "parallel")),
        query_parents=parents,
        polygons=polygons,
        seams=seams,
    )
    # round-trip the build provenance (None for pre-pipeline artifacts)
    idx.provenance = header.get("provenance")
    idx._link_matrix = link_matrix
    # capability gate: a header that names its verbs is believed; one
    # that predates the "verbs" key but carries a format version is a
    # pre-v4 artifact and narrows to the legacy verb set; a header with
    # neither (the shm-attach path: arrays from a live publisher, not an
    # old file) advertises everything this build can answer.
    verbs = header.get("verbs")
    if verbs is not None:
        idx.capabilities = tuple(str(v) for v in verbs)
    elif "version" in header:
        idx.capabilities = LEGACY_VERBS
        idx.capability_note = (
            f"snapshot format v{header['version']} predates link queries; "
            f"re-snapshot the scene to enable them"
        )
    return idx


# -- raw (v3) container ------------------------------------------------
def _is_raw(path: PathLike) -> bool:
    try:
        with open(path, "rb") as fh:
            return fh.read(len(RAW_MAGIC)) == RAW_MAGIC
    except IsADirectoryError:
        raise SnapshotError(f"{path}: not a snapshot archive (directory)")


def _read_raw_header(path: PathLike) -> tuple[dict, int]:
    """``(header, payload_base)`` of a raw artifact."""
    with open(path, "rb") as fh:
        head = fh.read(16)
        if len(head) < 16 or head[:8] != RAW_MAGIC:
            raise SnapshotError(f"{path}: not a snapshot archive")
        (hlen,) = struct.unpack("<Q", head[8:16])
        if not 2 <= hlen <= _MAX_HEADER:
            raise SnapshotError(f"{path}: implausible snapshot header size {hlen}")
        hbytes = fh.read(hlen)
    if len(hbytes) < hlen:
        raise SnapshotError(f"{path}: truncated snapshot header")
    try:
        header = json.loads(hbytes.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise SnapshotError(f"{path}: unreadable snapshot header: {exc}")
    _validate_header(path, header)
    if header.get("layout") != "raw" or not isinstance(header.get("toc"), dict):
        raise SnapshotError(f"{path}: raw container with a non-raw header")
    return header, _align(16 + hlen)


def _read_raw_arrays(
    path: PathLike, header: dict, base: int, mmap: bool = True
) -> dict:
    size = os.path.getsize(path)
    out: dict[str, np.ndarray] = {}
    for name, ent in header["toc"].items():
        try:
            dtype = np.dtype(ent["dtype"])
            shape = tuple(int(s) for s in ent["shape"])
            offset = base + int(ent["offset"])
            nbytes = int(ent["nbytes"])
        except (KeyError, TypeError, ValueError) as exc:
            raise SnapshotError(f"{path}: malformed TOC entry for {name!r}: {exc}")
        want = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if want != nbytes:
            raise SnapshotError(
                f"{path}: TOC size mismatch for {name!r}: {nbytes} != {want}"
            )
        if int(ent["offset"]) < 0:
            # a negative offset would silently map header bytes as data
            raise SnapshotError(
                f"{path}: TOC offset for {name!r} points outside the payload"
            )
        if offset + nbytes > size:
            raise SnapshotError(
                f"{path}: truncated artifact ({name!r} extends past end of file)"
            )
        if nbytes == 0:
            out[name] = np.empty(shape, dtype=dtype)
        elif mmap:
            out[name] = np.memmap(path, mode="r", dtype=dtype, shape=shape, offset=offset)
        else:
            with open(path, "rb") as fh:
                fh.seek(offset)
                buf = fh.read(nbytes)
            if len(buf) < nbytes:
                raise SnapshotError(f"{path}: truncated artifact member {name!r}")
            arr = np.frombuffer(buf, dtype=dtype).reshape(shape).copy()
            out[name] = arr
    return out


# -- npz (v1/v2) container ---------------------------------------------
def _open_archive(path: PathLike):
    try:
        npz = np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (OSError, ValueError, zipfile.BadZipFile) as exc:
        raise SnapshotError(f"{path}: not a snapshot archive: {exc}")
    if not hasattr(npz, "files"):  # a bare .npy loads as a plain array
        raise SnapshotError(f"{path}: not a snapshot archive (single array)")
    return npz


def _parse_header(path: PathLike, npz) -> dict:
    if "header" not in npz.files:
        raise SnapshotError(f"{path}: no snapshot header member")
    try:
        header = json.loads(bytes(npz["header"].tobytes()).decode("utf-8"))
    except (ValueError, UnicodeDecodeError, zipfile.BadZipFile, OSError, zlib.error) as exc:
        raise SnapshotError(f"{path}: unreadable snapshot header: {exc}")
    _validate_header(path, header)
    if header.get("version", 0) >= 3:
        raise SnapshotError(
            f"{path}: version {header['version']} snapshots use the raw "
            f"layout, but this is an npz archive"
        )
    return header


def _validate_header(path: PathLike, header) -> None:
    if not isinstance(header, dict) or header.get("format") != SNAPSHOT_FORMAT:
        raise SnapshotError(f"{path}: not a {SNAPSHOT_FORMAT} artifact")
    if header.get("version") not in SUPPORTED_VERSIONS:
        raise SnapshotError(
            f"{path}: snapshot format version {header.get('version')!r}; "
            f"this build reads versions {SUPPORTED_VERSIONS}"
        )
