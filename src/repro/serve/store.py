"""A registry of named scenes with lazy materialization and LRU eviction.

``SceneStore`` is the resident-memory layer of the serving stack: it maps
scene names to *sources* (a snapshot on disk, a rect list to build, or an
arbitrary builder callable) and materializes each
:class:`~repro.core.api.ShortestPathIndex` at most once, on first use,
under a per-scene lock — concurrent callers for the same scene block on
that one materialization instead of duplicating an expensive build.

Residency is bounded by ``max_bytes`` (the distance matrix dominates, at
8·n² bytes per scene): when an insert pushes the total over budget, the
least-recently-used *other* scenes are dropped back to their sources.  An
evicted scene is not an error — the next ``get`` simply re-materializes it
(snapshot-backed scenes reload in milliseconds, which is the point of
:mod:`repro.serve.snapshot`).
"""

from __future__ import annotations

import contextlib
import pathlib
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.core.api import Engine, ShortestPathIndex
from repro.errors import QueryError, SnapshotError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Point, Rect
from repro.serve.snapshot import load as load_snapshot
from repro.serve.snapshot import quarantine as quarantine_snapshot

Builder = Callable[[], ShortestPathIndex]


def resident_bytes(idx: ShortestPathIndex) -> int:
    """Estimated resident footprint of one materialized index.

    The n×n matrix dominates; points, rects, and any persisted §6.4
    forests are accounted with flat per-element costs.  A shared-memory
    attached index (:mod:`repro.serve.shm`) charges only its small
    private structures — its matrix is one shared mapping, not a private
    copy, which is what lets a worker keep many scenes resident under a
    byte bound sized for private memory.
    """
    n = len(idx.index)
    small = 16 * n + 32 * len(idx.rects)
    if getattr(idx, "shm_handle", None) is not None:
        return small
    total = idx.index.matrix.nbytes + small
    if idx._query_parents is not None:
        total += idx._query_parents.nbytes
    return total


@dataclass
class _Entry:
    source: Builder
    kind: str  # "snapshot" | "build" | "builder"
    idx: Optional[ShortestPathIndex] = None
    nbytes: int = 0
    pins: int = 0  # in-flight readers; pinned entries are never evicted
    lock: threading.Lock = field(default_factory=threading.Lock)
    #: snapshot entries only: the on-disk artifact (for quarantine)
    path: Optional[pathlib.Path] = None
    #: snapshot entries only: rebuild-from-scene fallback used when the
    #: artifact fails to load (checksum mismatch, truncation, ...)
    fallback: Optional[Builder] = None
    #: bumped by every :meth:`SceneStore.swap`; generation 0 is the
    #: originally registered source
    generation: int = 0


@dataclass
class _Retired:
    """A superseded generation still pinned by in-flight readers.

    ``swap`` moves the old index here instead of dropping it: the readers
    keep exact answers from the snapshot they started on, and the entry
    (with its byte accounting) is freed the moment the last pin drains.
    """

    generation: int
    idx: ShortestPathIndex
    pins: int
    nbytes: int
    since: float  # monotonic retirement time, for leak triage


class SceneStore:
    """Thread-safe name → index registry with bounded residency.

    >>> store = SceneStore(max_bytes=64 << 20)
    >>> store.add_snapshot("campus", "campus.rsp")   # doctest: +SKIP
    >>> store.get("campus").length(p, q)             # doctest: +SKIP
    """

    def __init__(
        self, max_bytes: Optional[int] = None, stage_cache: Optional[object] = None
    ) -> None:
        self.max_bytes = max_bytes
        #: the repro.pipeline StageCache scene builds go through (None →
        #: the process default, so a scene published to shm by the
        #: front-end and rebuilt here reuses its geometry artifacts)
        self.stage_cache = stage_cache
        self._entries: Dict[str, _Entry] = {}
        self._lru: "OrderedDict[str, None]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.loads = 0  # snapshot materializations
        self.builds = 0  # engine-build materializations
        self.swaps = 0  # generation rollovers (see :meth:`swap`)
        #: scene name → one-line reason for every quarantined snapshot
        self.quarantines: Dict[str, str] = {}
        #: superseded-but-still-pinned generations, per scene
        self._retired: Dict[str, List[_Retired]] = {}

    # -- registration ---------------------------------------------------
    def add_snapshot(
        self,
        name: str,
        path: Union[str, pathlib.Path],
        *,
        fallback: Optional[Builder] = None,
    ) -> None:
        """Register a scene backed by a ``.rsp`` snapshot (lazy load).

        If the artifact turns out to be corrupt at load time it is
        *quarantined* (renamed to ``<name>.quarantined``) rather than
        retried; with a ``fallback`` builder the scene then rebuilds from
        source instead of erroring — degraded (slow first query) but
        alive, which is what a serving worker needs."""
        p = pathlib.Path(path)
        self._register(
            name,
            _Entry(
                source=lambda: load_snapshot(p),
                kind="snapshot",
                path=p,
                fallback=fallback,
            ),
        )

    def add_scene(
        self,
        name: str,
        obstacles: Sequence[Union[Rect, RectilinearPolygon]],
        *,
        engine: Engine = "parallel",
        container: Optional[RectilinearPolygon] = None,
        extra_points: Sequence[Point] = (),
    ) -> None:
        """Register a scene built from raw obstacles (``Rect`` and/or
        ``RectilinearPolygon``) on first use.

        Materialization runs through the staged pipeline
        (:func:`repro.pipeline.build_index`), so two registered scenes
        sharing geometry — or one scene registered under two engines —
        reuse the cached decompose/graph stage artifacts."""
        from repro.scene import Scene

        scene = Scene.from_obstacles(
            obstacles, container=container, extra_points=extra_points
        )

        def build() -> ShortestPathIndex:
            from repro.pipeline import build_index

            return build_index(scene, engine=engine, cache=self.stage_cache)

        self._register(name, _Entry(source=build, kind="build"))

    def add_builder(self, name: str, builder: Builder) -> None:
        """Register a scene produced by an arbitrary callable."""
        self._register(name, _Entry(source=builder, kind="builder"))

    def _register(self, name: str, entry: _Entry) -> None:
        with self._lock:
            if name in self._entries:
                raise QueryError(f"scene {name!r} is already registered")
            self._entries[name] = entry

    # -- access ---------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._entries

    def get(self, name: str) -> ShortestPathIndex:
        """The materialized index for ``name`` (loading/building at most
        once across all threads); raises ``QueryError`` for unknown names."""
        with self._lock:
            try:
                entry = self._entries[name]
            except KeyError:
                known = ", ".join(sorted(self._entries)) or "<none>"
                raise QueryError(
                    f"unknown scene {name!r} (registered: {known})"
                ) from None
            if entry.idx is not None:
                self.hits += 1
                self._lru.move_to_end(name)
                return entry.idx
        # materialize outside the registry lock so unrelated scenes stay
        # responsive; the per-entry lock makes this build-or-load-once
        with entry.lock:
            if entry.idx is None:
                gen = entry.generation
                idx = self._materialize(name, entry)
                with self._lock:
                    self.misses += 1
                    if entry.kind == "snapshot":
                        self.loads += 1
                    else:
                        self.builds += 1
                    if entry.generation == gen:
                        entry.idx = idx
                        entry.nbytes = resident_bytes(idx)
                        self._lru[name] = None
                        self._lru.move_to_end(name)
                        self._evict_over_budget(keep=name)
                        return idx
                    # a swap landed while we were building the old
                    # source: the rollover wins, our build is stale
                    if entry.idx is not None:
                        return entry.idx
            with self._lock:
                self.hits += 1
                if name in self._lru:
                    self._lru.move_to_end(name)
                # capture under the lock: a concurrent insert may evict
                # this entry the moment the lock is released
                idx = entry.idx
            if idx is not None:
                return idx
        return self.get(name)  # evicted while we waited; re-materialize

    def _materialize(self, name: str, entry: _Entry) -> ShortestPathIndex:
        """Run the entry's source; a corrupt snapshot is quarantined and —
        when a fallback builder exists — transparently rebuilt from its
        scene instead of failing every caller forever.  Caller holds
        ``entry.lock``."""
        try:
            return entry.source()
        except SnapshotError as exc:
            if entry.kind != "snapshot":
                raise
            if entry.path is not None:
                quarantine_snapshot(entry.path)
            with self._lock:
                self.quarantines[name] = str(exc).splitlines()[0][:200]
            if entry.fallback is None:
                raise
            # permanently demote the entry: later evict/re-materialize
            # cycles rebuild from scene, never re-touch the bad artifact
            entry.source = entry.fallback
            entry.kind = "builder"
            return entry.source()

    # -- pinning --------------------------------------------------------
    #: pin() re-materialization attempts before giving up — a scene that
    #: keeps vanishing this many times in a row is being evicted by a
    #: budget far too small for it, and spinning forever would wedge the
    #: calling worker silently
    PIN_ATTEMPTS = 8

    def pin(self, name: str) -> ShortestPathIndex:
        """Materialize-and-pin: the returned index is guaranteed to stay
        resident (no LRU or explicit eviction) until the matching
        :meth:`unpin`.  This is what lets a ``QueryServer`` batch read a
        scene's matrix while an unrelated insert squeezes the byte budget
        — eviction of a pinned scene mid-gather would free (or, for a
        shm-attached scene, detach) memory the reader is still touching.

        Bounded: after :data:`PIN_ATTEMPTS` evict-between-get-and-pin
        races it raises ``QueryError`` instead of spinning.
        """
        for _ in range(self.PIN_ATTEMPTS):
            idx = self.get(name)
            with self._lock:
                entry = self._entries.get(name)
                if entry is not None and entry.idx is idx:
                    entry.pins += 1
                    return idx
            # evicted between get() and the pin; re-materialize and retry
        raise QueryError(
            f"scene {name!r} was evicted {self.PIN_ATTEMPTS} times before it "
            f"could be pinned; raise max_bytes (scene does not fit the budget)"
        )

    def unpin(self, name: str, idx: Optional[ShortestPathIndex] = None) -> None:
        """Release one pin.  Pass the pinned index back to hit the right
        *generation*: after a :meth:`swap`, pins taken on the old index
        belong to its retired record, not the live entry.  Without ``idx``
        the live generation is unpinned first, then the oldest retired
        one — correct whenever at most one generation is in flight."""
        with self._lock:
            entry = self._entries.get(name)
            if idx is None:
                if entry is not None and entry.pins > 0:
                    entry.pins -= 1
                    return
                if self._unpin_retired(name, None):
                    return
            else:
                if entry is not None and entry.idx is idx and entry.pins > 0:
                    entry.pins -= 1
                    return
                if self._unpin_retired(name, idx):
                    return
            raise QueryError(f"scene {name!r} is not pinned")

    def _unpin_retired(self, name: str, idx: Optional[ShortestPathIndex]) -> bool:
        """Drop one pin from a retired generation (oldest first when
        ``idx`` is None); frees the record once fully unpinned.  Caller
        holds ``self._lock``."""
        for rec in self._retired.get(name, ()):
            if rec.pins > 0 and (idx is None or rec.idx is idx):
                rec.pins -= 1
                if rec.pins == 0:
                    self._retired[name].remove(rec)
                    if not self._retired[name]:
                        del self._retired[name]
                return True
        return False

    @contextlib.contextmanager
    def using(self, name: str) -> Iterator[ShortestPathIndex]:
        """``with store.using("campus") as idx:`` — pinned for the block.
        Unpins by index identity, so the block stays correct across a
        concurrent :meth:`swap`."""
        idx = self.pin(name)
        try:
            yield idx
        finally:
            self.unpin(name, idx)

    # -- zero-downtime rollover -----------------------------------------
    def swap(self, name: str, new_idx: ShortestPathIndex, *,
             source: Optional[Builder] = None) -> int:
        """Atomically publish ``new_idx`` as scene ``name``'s next
        generation; returns the new generation number.

        Every ``get``/``pin`` from the moment this returns sees the new
        index.  In-flight readers pinned to the old generation keep it:
        the old index is moved to a *retired* record that stays resident
        (and byte-accounted) until its pins drain to zero — eviction of a
        generation therefore waits for ``pins == 0``, there is no window
        where a reader's matrix is freed underneath it.  An unknown name
        is registered on the fly.

        ``source`` replaces the entry's re-materialization source; by
        default the swapped-in index is its own source (it stays
        reachable through the entry even if evicted — pass a real source,
        e.g. a snapshot loader for the new artifact, to let eviction
        actually free memory).
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                entry = _Entry(source=source or (lambda: new_idx), kind="builder")
                self._entries[name] = entry
            else:
                if entry.idx is not None and entry.pins > 0:
                    self._retired.setdefault(name, []).append(
                        _Retired(
                            entry.generation, entry.idx, entry.pins,
                            entry.nbytes, time.monotonic(),
                        )
                    )
                entry.source = source or (lambda: new_idx)
                entry.kind = "builder"
                entry.path = None
                entry.fallback = None
            entry.generation += 1
            entry.idx = new_idx
            entry.pins = 0
            entry.nbytes = resident_bytes(new_idx)
            self._lru[name] = None
            self._lru.move_to_end(name)
            self.swaps += 1
            gen = entry.generation
            self._evict_over_budget(keep=name)
        return gen

    def replace_source(self, name: str, source: Builder, *, kind: str = "builder") -> int:
        """The *lazy* sibling of :meth:`swap`: install a new source for
        the next generation without materializing it; returns the new
        generation number.

        Nothing is built here — the next ``get`` materializes the new
        source — which is what lets a cluster worker that does not have
        a scene resident acknowledge a rollover in O(1) and attach the
        new shared segment only if routing ever sends it a request.
        Readers pinned to the current index keep it (retired, as in
        :meth:`swap`); an unpinned resident index is dropped immediately.
        An unknown name is registered on the fly.
        """
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                entry = _Entry(source=source, kind=kind)
                self._entries[name] = entry
            else:
                if entry.idx is not None:
                    if entry.pins > 0:
                        self._retired.setdefault(name, []).append(
                            _Retired(
                                entry.generation, entry.idx, entry.pins,
                                entry.nbytes, time.monotonic(),
                            )
                        )
                    entry.idx = None
                    entry.nbytes = 0
                    entry.pins = 0
                    self._lru.pop(name, None)
                entry.source = source
                entry.kind = kind
                entry.path = None
                entry.fallback = None
            entry.generation += 1
            self.swaps += 1
            return entry.generation

    def generation(self, name: str) -> int:
        """The scene's current generation (0 = as registered)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None:
                raise QueryError(f"unknown scene {name!r}")
            return entry.generation

    def leaked_pins(self, older_than_s: float = 0.0) -> dict:
        """Retired generations still pinned after ``older_than_s`` seconds
        — the pin-leak detector.  A healthy rollover drains these in one
        batch round-trip; anything lingering means some reader pinned a
        generation and never unpinned (returns ``{scene: [(generation,
        pins, age_s), ...]}``, empty when clean)."""
        now = time.monotonic()
        out: dict = {}
        with self._lock:
            for name, recs in self._retired.items():
                rows = [
                    (r.generation, r.pins, now - r.since)
                    for r in recs
                    if r.pins > 0 and (now - r.since) >= older_than_s
                ]
                if rows:
                    out[name] = rows
        return out

    # -- residency ------------------------------------------------------
    def resident(self) -> dict[str, int]:
        """Currently materialized scenes and their byte estimates."""
        with self._lock:
            return {
                name: e.nbytes for name, e in self._entries.items() if e.idx is not None
            }

    def resident_total(self) -> int:
        with self._lock:
            return sum(e.nbytes for e in self._entries.values() if e.idx is not None)

    def evict(self, name: str) -> bool:
        """Drop one scene back to its source; True if it was resident.
        Pinned scenes are never dropped (returns False)."""
        with self._lock:
            entry = self._entries.get(name)
            if entry is None or entry.idx is None or entry.pins > 0:
                return False
            self._drop(name, entry)
            return True

    def clear_resident(self) -> None:
        """Drop every materialized, unpinned scene (registrations kept)."""
        with self._lock:
            for name, entry in self._entries.items():
                if entry.idx is not None and entry.pins == 0:
                    self._drop(name, entry)

    def _drop(self, name: str, entry: _Entry) -> None:
        entry.idx = None
        entry.nbytes = 0
        self._lru.pop(name, None)
        self.evictions += 1

    def _evict_over_budget(self, keep: str) -> None:
        """LRU-evict other scenes until back under ``max_bytes``.  The one
        just materialized is never evicted (even if it alone overflows),
        and neither is any pinned scene — a pinned matrix is being read
        by an in-flight batch right now."""
        if self.max_bytes is None:
            return
        total = sum(e.nbytes for e in self._entries.values() if e.idx is not None)
        # retired generations occupy memory until their pins drain; they
        # cannot be evicted (readers hold them) but they do squeeze the
        # budget for everyone else
        total += sum(r.nbytes for recs in self._retired.values() for r in recs)
        for name in list(self._lru):
            if total <= self.max_bytes:
                break
            if name == keep:
                continue
            entry = self._entries[name]
            if entry.pins > 0:
                continue
            total -= entry.nbytes
            self._drop(name, entry)

    # -- introspection --------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            return {
                "quarantined": len(self.quarantines),
                "quarantined_scenes": sorted(self.quarantines),
                "scenes": len(self._entries),
                "resident": sum(1 for e in self._entries.values() if e.idx is not None),
                "resident_bytes": sum(
                    e.nbytes for e in self._entries.values() if e.idx is not None
                ),
                "pinned": sum(1 for e in self._entries.values() if e.pins > 0),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "loads": self.loads,
                "builds": self.builds,
                "swaps": self.swaps,
                "retired_generations": sum(
                    len(recs) for recs in self._retired.values()
                ),
                "retired_pins": sum(
                    r.pins for recs in self._retired.values() for r in recs
                ),
            }
