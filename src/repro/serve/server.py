"""The batching query front-end over a :class:`SceneStore`.

``QueryServer`` is the request-facing layer: callers hand it a mixed
stream of requests (lengths and path reports, possibly spanning several
scenes) and it answers them in request order while *coalescing* all
same-scene length requests into one vectorized
:meth:`ShortestPathIndex.lengths` call — one containment check and one
matrix gather for the whole group instead of a Python round-trip per
request.  That amortization is the serving-side twin of the paper's
build-side batching, and ``BENCH_serve.json`` records the resulting
throughput multiple.

The API is an in-process, thread-safe one: ``submit`` may be called from
many threads at once (the store's per-scene locks serialize
materialization; the index's query paths are read-only after that).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.errors import QueryError
from repro.geometry.primitives import Point
from repro.obs.recorders import BatchHistogram
from repro.serve.store import SceneStore

#: request kinds understood by :meth:`QueryServer.submit`
OP_LENGTH = "length"
OP_PATH = "path"


@dataclass(frozen=True)
class Request:
    """One query: ``op`` is ``"length"`` (default) or ``"path"``."""

    scene: str
    p: Point
    q: Point
    op: str = OP_LENGTH

    def __post_init__(self) -> None:
        if self.op not in (OP_LENGTH, OP_PATH):
            raise QueryError(f"unknown request op {self.op!r}")


RequestLike = Union[Request, tuple]


def _coerce(req: RequestLike) -> Request:
    if isinstance(req, Request):
        return req
    if isinstance(req, tuple) and len(req) in (3, 4):
        return Request(*req)
    raise QueryError(
        f"cannot interpret {req!r} as a request "
        "(want Request or (scene, p, q[, op]))"
    )


class QueryServer:
    """Order-preserving batch answering with same-scene coalescing.

    >>> server = QueryServer(store)                      # doctest: +SKIP
    >>> server.submit([("a", p, q), ("b", r, s)])        # doctest: +SKIP
    [7.0, 12.0]
    """

    def __init__(self, store: SceneStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self.requests = 0
        self.batches = 0
        self.coalesced_groups = 0
        self.largest_group = 0
        self.batch_hist = BatchHistogram()

    # -- single-call conveniences --------------------------------------
    def length(self, scene: str, p: Point, q: Point) -> float:
        return self.submit([Request(scene, p, q)])[0]

    def lengths(self, scene: str, pairs: Sequence[tuple[Point, Point]]) -> np.ndarray:
        """All-one-scene fast path: one coalesced call, array result."""
        with self.store.using(scene) as idx:
            return np.asarray(idx.lengths(list(pairs)))

    def shortest_path(self, scene: str, p: Point, q: Point) -> List[Point]:
        return self.submit([Request(scene, p, q, op=OP_PATH)])[0]

    # -- the batched entry point ---------------------------------------
    def submit(self, requests: Iterable[RequestLike]) -> list:
        """Answer a mixed batch, returning results in request order.

        Length requests are grouped by scene and answered with one
        vectorized call per scene; path reports are answered per request
        (path assembly is inherently per-pair, §8).
        """
        reqs = [_coerce(r) for r in requests]
        out: list = [None] * len(reqs)
        groups: dict[str, list[int]] = {}
        path_positions: list[int] = []
        for i, r in enumerate(reqs):
            if r.op == OP_LENGTH:
                groups.setdefault(r.scene, []).append(i)
            else:
                path_positions.append(i)
        # pinned access: LRU eviction under the byte bound must never
        # free a scene while this batch is reading its matrix
        for scene, positions in groups.items():
            with self.store.using(scene) as idx:
                vals = idx.lengths([(reqs[i].p, reqs[i].q) for i in positions])
            for k, i in enumerate(positions):
                out[i] = float(vals[k])
        for i in path_positions:
            r = reqs[i]
            with self.store.using(r.scene) as idx:
                out[i] = idx.shortest_path(r.p, r.q)
        if reqs:
            self.batch_hist.observe(len(reqs))
        with self._lock:
            self.requests += len(reqs)
            self.batches += 1
            self.coalesced_groups += len(groups)
            for positions in groups.values():
                self.largest_group = max(self.largest_group, len(positions))
        return out

    # -- introspection --------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            out = {
                "requests": self.requests,
                "batches": self.batches,
                "coalesced_groups": self.coalesced_groups,
                "largest_group": self.largest_group,
            }
        out["batch_size_hist"] = self.batch_hist.as_dict()
        return out
