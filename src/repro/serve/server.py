"""The batching query front-end over a :class:`SceneStore`.

``QueryServer`` is the request-facing layer: callers hand it a mixed
stream of requests (lengths, path reports, min-link counts and Pareto
frontiers, possibly spanning several scenes) and it answers them in
request order while *coalescing* same-scene same-verb requests into one
vectorized call — :meth:`ShortestPathIndex.lengths`,
:meth:`ShortestPathIndex.link_counts` or
:meth:`ShortestPathIndex.paretos` — so a group pays one containment
check and one gather (or one shared link-DP run per distinct source)
instead of a Python round-trip per request.  That amortization is the
serving-side twin of the paper's build-side batching, and
``BENCH_serve.json`` / ``BENCH_links.json`` record the resulting
throughput multiples.

Every answered request also lands in the ``repro.query.*`` metric
families (per-verb counters plus answer-shape histograms, see
``metrics.md``) through the process-default registry, so the in-process
server, the cluster workers, and ``GET /metrics`` all expose one truth.

The API is an in-process, thread-safe one: ``submit`` may be called from
many threads at once (the store's per-scene locks serialize
materialization; the index's query paths are read-only after that).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Union

import numpy as np

from repro.errors import QueryError
from repro.geometry.primitives import Point
from repro.obs.recorders import BatchHistogram
from repro.obs.registry import default_registry
from repro.serve.store import SceneStore

#: request kinds understood by :meth:`QueryServer.submit`
OP_LENGTH = "length"
OP_PATH = "path"
OP_MINLINK = "minlink"
OP_PARETO = "pareto"

#: every op, in the order groups are answered
_OPS = (OP_LENGTH, OP_MINLINK, OP_PARETO, OP_PATH)


@dataclass(frozen=True)
class Request:
    """One query: ``op`` is ``"length"`` (default), ``"path"``,
    ``"minlink"`` (minimum maximal-segment count) or ``"pareto"`` (the
    (length, bends) frontier as ``[(length, bends), ...]``)."""

    scene: str
    p: Point
    q: Point
    op: str = OP_LENGTH

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise QueryError(f"unknown request op {self.op!r}")


RequestLike = Union[Request, tuple]


def _coerce(req: RequestLike) -> Request:
    if isinstance(req, Request):
        return req
    if isinstance(req, tuple) and len(req) in (3, 4):
        return Request(*req)
    raise QueryError(
        f"cannot interpret {req!r} as a request "
        "(want Request or (scene, p, q[, op]))"
    )


class QueryServer:
    """Order-preserving batch answering with same-scene coalescing.

    >>> server = QueryServer(store)                      # doctest: +SKIP
    >>> server.submit([("a", p, q), ("b", r, s)])        # doctest: +SKIP
    [7.0, 12.0]
    """

    def __init__(self, store: SceneStore) -> None:
        self.store = store
        self._lock = threading.Lock()
        self.requests = 0
        self.batches = 0
        self.coalesced_groups = 0
        self.largest_group = 0
        self.batch_hist = BatchHistogram()
        reg = default_registry()
        self._m_requests = reg.counter(
            "repro.query.requests",
            "queries answered by the batching server, per verb",
            labels=("verb",),
        )
        self._m_link_count = reg.histogram(
            "repro.query.link_count",
            "min-link answers (maximal segment counts)",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16),
        )
        self._m_pareto_points = reg.histogram(
            "repro.query.pareto_points",
            "Pareto frontier sizes returned by pareto queries",
            buckets=(1, 2, 3, 4, 6, 8, 12, 16),
        )

    # -- single-call conveniences --------------------------------------
    def length(self, scene: str, p: Point, q: Point) -> float:
        return self.submit([Request(scene, p, q)])[0]

    def lengths(self, scene: str, pairs: Sequence[tuple[Point, Point]]) -> np.ndarray:
        """All-one-scene fast path: one coalesced call, array result."""
        with self.store.using(scene) as idx:
            vals = np.asarray(idx.lengths(list(pairs)))
        self._m_requests.inc(len(pairs), verb=OP_LENGTH)
        return vals

    def shortest_path(self, scene: str, p: Point, q: Point) -> List[Point]:
        return self.submit([Request(scene, p, q, op=OP_PATH)])[0]

    def min_links(self, scene: str, p: Point, q: Point) -> int:
        return self.submit([Request(scene, p, q, op=OP_MINLINK)])[0]

    def pareto(self, scene: str, p: Point, q: Point) -> list:
        return self.submit([Request(scene, p, q, op=OP_PARETO)])[0]

    # -- the batched entry point ---------------------------------------
    def submit(self, requests: Iterable[RequestLike]) -> list:
        """Answer a mixed batch, returning results in request order.

        Length, min-link and pareto requests are each grouped by scene
        and answered with one vectorized/shared-solve call per (scene,
        verb) group; path reports are answered per request (path assembly
        is inherently per-pair, §8).
        """
        reqs = [_coerce(r) for r in requests]
        out: list = [None] * len(reqs)
        groups: dict[tuple[str, str], list[int]] = {}
        path_positions: list[int] = []
        for i, r in enumerate(reqs):
            if r.op == OP_PATH:
                path_positions.append(i)
            else:
                groups.setdefault((r.scene, r.op), []).append(i)
        # pinned access: LRU eviction under the byte bound must never
        # free a scene while this batch is reading its matrix
        for (scene, op), positions in groups.items():
            pairs = [(reqs[i].p, reqs[i].q) for i in positions]
            with self.store.using(scene) as idx:
                if op == OP_LENGTH:
                    vals = idx.lengths(pairs)
                    for k, i in enumerate(positions):
                        out[i] = float(vals[k])
                elif op == OP_MINLINK:
                    counts = idx.link_counts(pairs)
                    for k, i in enumerate(positions):
                        if np.isfinite(counts[k]):
                            out[i] = int(counts[k])
                            self._m_link_count.observe(counts[k])
                        else:  # enclosed point; keep the histogram finite
                            out[i] = float("inf")
                else:  # OP_PARETO
                    fronts = idx.paretos(pairs)
                    for k, i in enumerate(positions):
                        out[i] = [
                            (float(length), int(bends))
                            for length, bends in fronts[k]
                        ]
                        self._m_pareto_points.observe(len(fronts[k]))
        for i in path_positions:
            r = reqs[i]
            with self.store.using(r.scene) as idx:
                out[i] = idx.shortest_path(r.p, r.q)
        if reqs:
            self.batch_hist.observe(len(reqs))
        by_verb: dict[str, int] = {}
        for r in reqs:
            by_verb[r.op] = by_verb.get(r.op, 0) + 1
        for verb, n in by_verb.items():
            self._m_requests.inc(n, verb=verb)
        with self._lock:
            self.requests += len(reqs)
            self.batches += 1
            self.coalesced_groups += len(groups)
            for positions in groups.values():
                self.largest_group = max(self.largest_group, len(positions))
        return out

    # -- introspection --------------------------------------------------
    def stats(self) -> dict:
        with self._lock:
            out = {
                "requests": self.requests,
                "batches": self.batches,
                "coalesced_groups": self.coalesced_groups,
                "largest_group": self.largest_group,
            }
        out["batch_size_hist"] = self.batch_hist.as_dict()
        return out
