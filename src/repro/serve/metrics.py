"""Deprecated: moved to :mod:`repro.obs` (the unified observability
subsystem).

This module used to define the latency/batch recorders; they now live in
:mod:`repro.obs.recorders` next to the metrics registry and exporters.
Importing from here still works but warns — update imports to
``from repro.obs import LatencyRecorder, BatchHistogram, ...``.
"""

from __future__ import annotations

import warnings

from repro.obs.recorders import (  # noqa: F401 - re-exports
    DEFAULT_PERCENTILES,
    BatchHistogram,
    LatencyRecorder,
    format_latency,
    merge_scene_counts,
    percentile,
)

__all__ = [
    "DEFAULT_PERCENTILES",
    "BatchHistogram",
    "LatencyRecorder",
    "format_latency",
    "merge_scene_counts",
    "percentile",
]

warnings.warn(
    "repro.serve.metrics is deprecated; import from repro.obs instead",
    DeprecationWarning,
    stacklevel=2,
)
