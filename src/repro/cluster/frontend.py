"""The cluster front-end: one asyncio process in front of N workers.

Data path::

    client ──TCP/JSON frames──▶ front-end ──pipe batches──▶ worker 0..N-1
           ◀─responses (in request order per connection)──┘

* **Routing** — every scene is owned by one worker
  (:mod:`repro.cluster.hashing`; rendezvous hashing with explicit pins).
* **Micro-batching** — each worker has one dispatch loop that drains its
  queue into a batch bounded by ``max_batch`` and ``batch_window_ms``;
  while the worker is busy answering, new arrivals pile into the queue,
  so batches grow exactly when the system is loaded — the serving-side
  analogue of the paper's build-side batching.
* **Admission control** — per-worker queues are bounded; when one is
  full the front-end answers ``{"ok": false, "shed": true, ...}``
  immediately (one line, no queuing), keeping p99 bounded instead of
  letting latency grow without bound.
* **Ordering** — responses on a connection are written in request order
  even when requests fan out to different workers: each connection keeps
  a FIFO of response futures and a single writer drains it.
* **Failure** — a worker that dies fails its in-flight batch (and all
  queued requests) with one-line errors; requests routed to a dead
  worker are refused immediately; the rest of the cluster keeps serving.

The front-end owns the shared-memory segments (it publishes every scene
before spawning workers) and unlinks them in :meth:`ClusterFrontend.stop`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from typing import Mapping, Optional, Sequence

from repro.cluster.hashing import assignment
from repro.cluster.protocol import read_frame, write_frame
from repro.cluster.worker import worker_main
from repro.errors import ClusterError
from repro.serve.metrics import BatchHistogram, LatencyRecorder
from repro.serve.shm import ShmPublisher

#: ops the front-end forwards to a scene's owning worker
_SCENE_OPS = ("length", "lengths", "path", "endpoints", "sleep")


class _Item:
    """One queued request: wire dict + the future its response resolves."""

    __slots__ = ("wire", "future", "t0", "scene")

    def __init__(self, wire: dict, future: asyncio.Future, scene: Optional[str]):
        self.wire = wire
        self.future = future
        self.t0 = time.perf_counter()
        self.scene = scene


class _Worker:
    def __init__(self, wid: int, proc, conn, queue_depth: int):
        self.id = wid
        self.proc = proc
        self.conn = conn
        self.queue: asyncio.Queue[_Item] = asyncio.Queue(maxsize=queue_depth)
        self.task: Optional[asyncio.Task] = None
        self.dead = False
        self.batches = 0
        self.seq = 0


class _SceneMetrics:
    def __init__(self) -> None:
        self.requests = 0
        self.shed = 0
        self.errors = 0
        self.latency = LatencyRecorder()

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "shed": self.shed,
            "errors": self.errors,
            "latency": self.latency.summary(),
        }


class ClusterFrontend:
    """Sharded multi-process serving over shared-memory snapshots.

    ``scenes`` maps scene names to sources::

        {"snapshot": "campus.rsp"}            # load (or publish) from disk
        {"obstacles": [...], "container": p}  # build in the front-end
        {"index": idx}                        # already built (shm only)

    With ``use_shm=True`` (default) every scene's matrix is published
    once into shared memory and workers attach zero-copy; with ``False``
    each worker materializes privately (the copy path — kept for
    benchmarking the difference and for hosts without ``/dev/shm``).
    """

    def __init__(
        self,
        scenes: Mapping[str, dict],
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        batch_window_ms: float = 2.0,
        queue_depth: int = 256,
        pins: Optional[Mapping[str, int]] = None,
        start_method: Optional[str] = None,
        use_shm: bool = True,
        engine: str = "parallel",
        worker_max_bytes: Optional[int] = None,
    ) -> None:
        if not scenes:
            raise ClusterError("a cluster needs at least one scene")
        if workers < 1:
            raise ClusterError(f"need at least one worker, got {workers}")
        self.scene_sources = dict(scenes)
        self.n_workers = workers
        self.host = host
        self.port = port
        self.max_batch = max(1, max_batch)
        self.batch_window = max(0.0, batch_window_ms) / 1e3
        self.queue_depth = queue_depth
        self.pins = dict(pins or {})
        self.start_method = start_method
        self.use_shm = use_shm
        self.engine = engine
        self.worker_max_bytes = worker_max_bytes
        self.assignment = assignment(sorted(scenes), workers, self.pins)
        self.publisher: Optional[ShmPublisher] = None
        self.workers: list[_Worker] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped = asyncio.Event()
        self._started = False
        # front-end metrics
        self.requests = 0
        self.sheds = 0
        self.batch_hist = BatchHistogram()
        self.scene_metrics: dict[str, _SceneMetrics] = {
            name: _SceneMetrics() for name in scenes
        }
        self._t_start = time.monotonic()

    # -- startup --------------------------------------------------------
    def _prepare_specs(self) -> list[list[dict]]:
        """Materialize/publish every scene; returns per-worker spec lists."""
        shards: list[list[dict]] = [[] for _ in range(self.n_workers)]
        if self.use_shm:
            self.publisher = ShmPublisher()
        for name in sorted(self.scene_sources):
            src = self.scene_sources[name]
            wid = self.assignment[name]
            if self.use_shm:
                manifest = self._publish(name, src)
                shards[wid].append({"name": name, "kind": "shm", "manifest": manifest})
            else:
                shards[wid].append(self._plain_spec(name, src))
        return shards

    def _publish(self, name: str, src: dict) -> dict:
        assert self.publisher is not None
        if "index" in src:
            return self.publisher.publish(name, src["index"])
        if "snapshot" in src:
            return self.publisher.publish_snapshot(name, src["snapshot"])
        if "obstacles" in src:
            from repro.pipeline import build_index
            from repro.scene import Scene

            # build through the staged pipeline (process-default stage
            # cache): publishing N scenes that share geometry — or a
            # scene the front-end already built — reuses stage artifacts
            idx = build_index(
                Scene.from_obstacles(
                    src["obstacles"],
                    container=src.get("container"),
                    extra_points=src.get("extra_points") or (),
                ),
                engine=self.engine,
            )
            return self.publisher.publish(name, idx)
        raise ClusterError(f"scene {name!r}: unrecognized source {sorted(src)}")

    def _plain_spec(self, name: str, src: dict) -> dict:
        if "snapshot" in src:
            return {"name": name, "kind": "snapshot", "path": str(src["snapshot"])}
        if "obstacles" in src:
            from repro.scene import Scene

            scene = Scene.from_obstacles(
                src["obstacles"],
                container=src.get("container"),
                extra_points=src.get("extra_points") or (),
            )
            return {
                "name": name,
                "kind": "build",
                "scene": scene.to_dict(),
                "engine": self.engine,
            }
        raise ClusterError(
            f"scene {name!r}: a prebuilt index requires use_shm=True "
            f"(or hand the workers a snapshot path)"
        )

    async def start(self) -> None:
        """Publish scenes, spawn workers, bind the TCP server."""
        if self._started:
            raise ClusterError("cluster already started")
        self._started = True
        try:
            shards = self._prepare_specs()
            ctx = multiprocessing.get_context(self.start_method)
            options = {"max_bytes": self.worker_max_bytes}
            for wid in range(self.n_workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=worker_main,
                    args=(child_conn, wid, shards[wid], options),
                    daemon=True,
                    name=f"repro-cluster-worker-{wid}",
                )
                proc.start()
                child_conn.close()
                worker = _Worker(wid, proc, parent_conn, self.queue_depth)
                worker.task = asyncio.create_task(self._dispatch_loop(worker))
                self.workers.append(worker)
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
        except BaseException:
            await self.stop()
            raise

    async def __aenter__(self) -> "ClusterFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        """Block until :meth:`request_stop` (or ``stop``) is called."""
        await self._stopped.wait()

    def request_stop(self) -> None:
        self._stopped.set()

    # -- per-worker dispatch --------------------------------------------
    async def _dispatch_loop(self, worker: _Worker) -> None:
        loop = asyncio.get_running_loop()
        batch: list[_Item] = []
        try:
            while True:
                item = await worker.queue.get()
                batch = [item]
                deadline = loop.time() + self.batch_window
                while len(batch) < self.max_batch:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(worker.queue.get(), timeout)
                        )
                    except asyncio.TimeoutError:
                        break
                worker.seq += 1
                payload = {
                    "op": "batch",
                    "seq": worker.seq,
                    "requests": [it.wire for it in batch],
                }
                try:
                    await loop.run_in_executor(None, worker.conn.send, payload)
                    reply = await loop.run_in_executor(None, worker.conn.recv)
                except (EOFError, OSError, BrokenPipeError) as exc:
                    self._fail_worker(worker, batch, f"worker {worker.id} died: {exc}")
                    return
                worker.batches += 1
                self.batch_hist.observe(len(batch))
                results = reply.get("results") or []
                now = time.perf_counter()
                for k, it in enumerate(batch):
                    res = (
                        results[k]
                        if k < len(results)
                        else {"ok": False, "error": reply.get("error", "no result")}
                    )
                    self._record(it, res, now)
                    if not it.future.done():
                        it.future.set_result(res)
                batch = []
        except asyncio.CancelledError:
            self._fail_batch(batch, f"worker {worker.id} shutting down")
            raise

    def _record(self, item: _Item, res: dict, now: float) -> None:
        metrics = self.scene_metrics.get(item.scene) if item.scene else None
        if metrics is not None:
            metrics.requests += 1
            metrics.latency.record(now - item.t0)
            if not res.get("ok"):
                metrics.errors += 1

    def _fail_worker(self, worker: _Worker, batch: list, reason: str) -> None:
        worker.dead = True
        self._fail_batch(batch, reason)
        while not worker.queue.empty():
            try:
                self._fail_batch([worker.queue.get_nowait()], reason)
            except asyncio.QueueEmpty:  # pragma: no cover - race with put
                break

    @staticmethod
    def _fail_batch(batch: Sequence[_Item], reason: str) -> None:
        for it in batch:
            if not it.future.done():
                it.future.set_result({"ok": False, "error": reason})

    # -- client connections ---------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        pending: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_loop(pending, writer))
        try:
            while True:
                try:
                    msg = await read_frame(reader)
                except ClusterError as exc:
                    await pending.put(
                        {"id": None, "ok": False, "error": f"bad frame: {exc}"}
                    )
                    break
                if msg is None:
                    break
                await pending.put(self._admit(msg))
        finally:
            await pending.put(None)
            try:
                await writer_task
            except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _write_loop(self, pending: asyncio.Queue, writer) -> None:
        """Drain responses *in request order*: entries are either ready
        dicts or (id, future) pairs awaited in sequence."""
        try:
            while True:
                entry = await pending.get()
                if entry is None:
                    break
                if isinstance(entry, dict):
                    resp = entry
                else:
                    rid, fut = entry
                    res = await fut
                    resp = dict(res)
                    resp["id"] = rid
                await write_frame(writer, resp)
        except (ConnectionError, OSError):  # client went away mid-write
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _admit(self, msg: dict):
        """Route one request: an immediate response dict, or (id, future)."""
        rid = msg.get("id")
        op = msg.get("op")
        self.requests += 1
        if op == "ping":
            return {"id": rid, "ok": True, "result": "pong"}
        if op == "scenes":
            return {
                "id": rid,
                "ok": True,
                "result": {
                    "scenes": dict(self.assignment),
                    "workers": self.n_workers,
                },
            }
        if op == "stats":
            fut = asyncio.ensure_future(self._cluster_stats())
            return (rid, fut)
        if op not in _SCENE_OPS:
            return {"id": rid, "ok": False, "error": f"unknown op {op!r}"}
        scene = msg.get("scene")
        if scene not in self.assignment:
            known = ", ".join(sorted(self.assignment)) or "<none>"
            return {
                "id": rid,
                "ok": False,
                "error": f"unknown scene {scene!r} (serving: {known})",
            }
        worker = self.workers[self.assignment[scene]]
        if worker.dead:
            return {
                "id": rid,
                "ok": False,
                "error": f"scene {scene!r}: worker {worker.id} is down",
            }
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        item = _Item(msg, fut, scene)
        try:
            worker.queue.put_nowait(item)
        except asyncio.QueueFull:
            # load shedding: fast one-line rejection, nothing queued
            self.sheds += 1
            self.scene_metrics[scene].shed += 1
            return {
                "id": rid,
                "ok": False,
                "shed": True,
                "error": (
                    f"overloaded: worker {worker.id} queue is full "
                    f"({self.queue_depth} deep); retry later"
                ),
            }
        return (rid, fut)

    # -- stats ----------------------------------------------------------
    async def _cluster_stats(self) -> dict:
        worker_stats: dict[str, dict] = {}
        waits = []
        for w in self.workers:
            if w.dead:
                worker_stats[str(w.id)] = {"dead": True}
                continue
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            item = _Item({"op": "stats"}, fut, None)
            try:
                w.queue.put_nowait(item)
            except asyncio.QueueFull:
                worker_stats[str(w.id)] = {"busy": True}
                continue
            waits.append((w, fut))
        for w, fut in waits:
            res = await fut
            worker_stats[str(w.id)] = (
                res.get("result") if res.get("ok") else {"error": res.get("error")}
            )
        return {"ok": True, "result": self._stats_payload(worker_stats)}

    def _stats_payload(self, worker_stats: dict) -> dict:
        return {
            "uptime_s": time.monotonic() - self._t_start,
            "workers": worker_stats,
            "assignment": dict(self.assignment),
            "frontend": {
                "requests": self.requests,
                "sheds": self.sheds,
                "qps": self.requests / max(time.monotonic() - self._t_start, 1e-9),
                "batch_size_hist": self.batch_hist.as_dict(),
                "scenes": {
                    name: m.summary() for name, m in self.scene_metrics.items()
                },
            },
        }

    def stats(self) -> dict:
        """Front-end-side metrics only (synchronous; no worker round trip)."""
        return self._stats_payload({})

    # -- shutdown -------------------------------------------------------
    async def stop(self) -> None:
        """Stop accepting, drain workers, unlink shared memory (idempotent)."""
        self._stopped.set()
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:  # pragma: no cover - server already gone
                pass
            self._server = None
        for w in self.workers:
            if w.task is not None:
                w.task.cancel()
        for w in self.workers:
            if w.task is not None:
                try:
                    await w.task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
                w.task = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._shutdown_workers)
        self.workers.clear()
        if self.publisher is not None:
            self.publisher.close()
            self.publisher = None

    def _shutdown_workers(self) -> None:
        for w in self.workers:
            if w.proc.is_alive():
                try:
                    w.conn.send({"op": "shutdown"})
                except (OSError, BrokenPipeError, ValueError):
                    pass
        deadline = time.monotonic() + 5.0
        for w in self.workers:
            w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():  # pragma: no cover - hung worker
                w.proc.terminate()
                w.proc.join(timeout=2.0)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover
                pass


async def run_cluster(frontend: ClusterFrontend) -> None:
    """Convenience: start, serve until stop is requested, then clean up."""
    await frontend.start()
    try:
        await frontend.serve_forever()
    finally:
        await frontend.stop()
