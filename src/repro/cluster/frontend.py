"""The cluster front-end: one asyncio process in front of N workers.

Data path::

    client ──TCP/JSON frames──▶ front-end ──pipe batches──▶ worker 0..N-1
           ◀─responses (in request order per connection)──┘

* **Routing** — every scene is owned by one worker, chosen by rendezvous
  hashing over the *live* workers (:mod:`repro.cluster.hashing`, with
  explicit pins).  When all workers are up this equals the static
  assignment; when one dies its scenes rendezvous onto the survivors and
  move back the moment a restart rejoins — no routing state to replay.
* **Micro-batching** — each worker has one dispatch loop that drains its
  queue into a batch bounded by ``max_batch`` and ``batch_window_ms``;
  while the worker is busy answering, new arrivals pile into the queue,
  so batches grow exactly when the system is loaded — the serving-side
  analogue of the paper's build-side batching.
* **Admission control** — per-worker queues are bounded; when one is
  full the front-end answers ``{"ok": false, "shed": true, ...}``
  immediately (one line, no queuing).  Requests carrying ``deadline_ms``
  that go stale in a queue are expired with
  ``{"deadline_expired": true}`` instead of serving dead work.
* **Ordering** — responses on a connection are written in request order
  even when requests fan out to different workers: each connection keeps
  a FIFO of response futures and a single writer drains it.
* **Failure** — a dead worker's in-flight and queued requests are
  *redirected* to the surviving workers (every scene op is an idempotent
  read; a redirect cap stops ping-pong during cascades).  With
  ``supervise=True`` (default) the slot is respawned under the
  :class:`~repro.cluster.supervisor.Supervisor`'s backoff policy,
  readiness-gated, and transparently rejoins routing.
* **Lifecycle** — workers are readiness-gated at startup (one full
  batch round trip each before the TCP port binds); the ``health`` and
  ``drain`` verbs expose liveness and connection-draining shutdown.
* **Updates** — the ``update`` verb applies an obstacle delta
  (:class:`repro.scene.SceneDelta` JSON) to a scene with zero downtime:
  the front-end repairs its index incrementally
  (:func:`repro.pipeline.update_index`), republishes into a fresh shm
  segment as generation N+1, and broadcasts the new manifest; workers
  swap resident scenes atomically (in-flight batches finish on the
  pinned old generation) and re-source the rest lazily.  Old segments
  are unlinked once every live worker acknowledges.

The front-end owns the shared-memory segments (it publishes every scene
before spawning workers) and unlinks them in :meth:`ClusterFrontend.stop`.
Because segments outlive any one worker process, a respawned worker
re-attaches from the same manifests it was born with.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import time
from typing import Mapping, Optional, Sequence

from repro.cluster.faults import FaultInjector, FaultPlan
from repro.cluster.hashing import assignment, hrw_score
from repro.cluster.protocol import read_frame, write_frame
from repro.cluster.supervisor import RestartPolicy, Supervisor
from repro.cluster.worker import worker_main
from repro.errors import ClusterError
from repro.obs.openmetrics import CONTENT_TYPE, merge_snapshots, render_openmetrics
from repro.obs.recorders import BatchHistogram, LatencyRecorder
from repro.obs.registry import (
    DEFAULT_MAX_SERIES,
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    default_registry,
)
from repro.obs.logging import get_logger
from repro.obs.tracing import SpanBuffer, finish, new_trace_id, span
from repro.serve.shm import ShmPublisher

#: ops the front-end forwards to a scene's owning worker
_SCENE_OPS = (
    "length", "lengths", "path", "minlink", "links", "pareto",
    "endpoints", "sleep",
)

#: ops answered by the front-end itself (the `verb` label value set)
_LOCAL_OPS = (
    "ping", "health", "drain", "scenes", "stats", "metrics", "trace",
    "update", "describe",
)

#: how many times one request may be re-routed after worker deaths
_MAX_REDIRECTS = 2


class _Item:
    """One queued request: wire dict + the future its response resolves."""

    __slots__ = ("wire", "future", "t0", "scene", "deadline", "redirects", "trace")

    def __init__(
        self,
        wire: dict,
        future: asyncio.Future,
        scene: Optional[str],
        deadline: Optional[float] = None,
    ):
        self.wire = wire
        self.future = future
        self.t0 = time.perf_counter()
        self.scene = scene
        self.deadline = deadline  # absolute event-loop time, or None
        self.redirects = 0
        # tracing context, or None: {"trace_id", "root", "spans", "queue"?}
        self.trace: Optional[dict] = None


class _Worker:
    def __init__(self, wid: int, proc, conn, queue_depth: int):
        self.id = wid
        self.proc = proc
        self.conn = conn
        self.queue: asyncio.Queue[_Item] = asyncio.Queue(maxsize=queue_depth)
        self.task: Optional[asyncio.Task] = None
        self.dead = False
        self.batches = 0
        self.seq = 0
        self.inflight = 0  # requests in the batch currently on the pipe


class _SceneMetrics:
    """Per-scene stats *view*: counters live in the registry (one source
    of truth for `stats`, `metrics`, and `/metrics`); only the exact
    percentile reservoir is kept here."""

    def __init__(self, name: str, frontend: "ClusterFrontend") -> None:
        self._name = name
        self._fe = frontend
        self.latency = LatencyRecorder()

    @property
    def requests(self) -> int:
        return int(self._fe._m_scene_requests.value(scene=self._name))

    @property
    def shed(self) -> int:
        return int(self._fe._m_shed.value(scene=self._name))

    @property
    def errors(self) -> int:
        return int(self._fe._m_errors.value(scene=self._name))

    @property
    def deadline_expired(self) -> int:
        return int(self._fe._m_deadline.value(scene=self._name))

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "shed": self.shed,
            "errors": self.errors,
            "deadline_expired": self.deadline_expired,
            "latency": self.latency.summary(),
        }


class ClusterFrontend:
    """Sharded multi-process serving over shared-memory snapshots.

    ``scenes`` maps scene names to sources::

        {"snapshot": "campus.rsp"}            # load (or publish) from disk
        {"obstacles": [...], "container": p}  # build in the front-end
        {"index": idx}                        # already built (shm only)

    With ``use_shm=True`` (default) every scene's matrix is published
    once into shared memory and workers attach zero-copy; with ``False``
    each worker materializes privately (the copy path — kept for
    benchmarking the difference and for hosts without ``/dev/shm``).

    Every worker receives the full scene-spec list and materializes
    lazily, so residency follows routing — which is what lets any
    survivor adopt a dead worker's scenes without re-provisioning.
    """

    def __init__(
        self,
        scenes: Mapping[str, dict],
        *,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        max_batch: int = 64,
        batch_window_ms: float = 2.0,
        queue_depth: int = 256,
        pins: Optional[Mapping[str, int]] = None,
        start_method: Optional[str] = None,
        use_shm: bool = True,
        engine: str = "parallel",
        worker_max_bytes: Optional[int] = None,
        supervise: bool = True,
        restart_policy: Optional[RestartPolicy] = None,
        faults: Optional[FaultPlan] = None,
        ready_timeout_s: float = 60.0,
        registry: Optional[MetricsRegistry] = None,
        metrics_port: Optional[int] = None,
        obs: bool = True,
        trace_capacity: int = 2048,
    ) -> None:
        if not scenes:
            raise ClusterError("a cluster needs at least one scene")
        if workers < 1:
            raise ClusterError(f"need at least one worker, got {workers}")
        self.scene_sources = dict(scenes)
        self.n_workers = workers
        self.host = host
        self.port = port
        self.max_batch = max(1, max_batch)
        self.batch_window = max(0.0, batch_window_ms) / 1e3
        self.queue_depth = queue_depth
        self.pins = dict(pins or {})
        self.start_method = start_method
        self.use_shm = use_shm
        self.engine = engine
        self.worker_max_bytes = worker_max_bytes
        self.supervise = supervise
        # per-front-end registry (scene-labeled families need headroom
        # past the default cardinality bound when serving many scenes);
        # the supervisor records its crash/restart counters into it
        self.registry = registry if registry is not None else MetricsRegistry(
            max_series=max(DEFAULT_MAX_SERIES, 2 * len(scenes) + 16)
        )
        self.supervisor = Supervisor(restart_policy, registry=self.registry)
        self.faults = faults
        self.injector = FaultInjector(faults) if faults is not None else None
        self.ready_timeout_s = ready_timeout_s
        self.assignment = assignment(sorted(scenes), workers, self.pins)
        self.publisher: Optional[ShmPublisher] = None
        self.workers: list[_Worker] = []
        self._worker_specs: list[dict] = []
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped = asyncio.Event()
        self._started = False
        self._closing = False
        self._draining = False
        self._restart_tasks: set[asyncio.Task] = set()
        # front-end metrics: counters/histograms live in the registry;
        # `stats` and the legacy attributes are views over it
        self.obs = obs
        self.metrics_port = metrics_port
        self._metrics_server: Optional[asyncio.base_events.Server] = None
        self.span_buffer = SpanBuffer(trace_capacity)
        reg = self.registry
        self._m_requests = reg.counter(
            "repro.frontend.requests", "requests admitted, by verb", labels=["verb"]
        )
        self._m_scene_requests = reg.counter(
            "repro.frontend.scene_requests", "scene requests served", labels=["scene"]
        )
        self._m_shed = reg.counter(
            "repro.frontend.shed", "requests shed (queue full)", labels=["scene"]
        )
        self._m_errors = reg.counter(
            "repro.frontend.errors", "scene requests answered not-ok", labels=["scene"]
        )
        self._m_deadline = reg.counter(
            "repro.frontend.deadline_expired",
            "requests expired in queue past their deadline", labels=["scene"],
        )
        self._m_redirects = reg.counter(
            "repro.frontend.redirects",
            "requests re-routed after a worker death", labels=["scene"],
        )
        self._m_latency = reg.histogram(
            "repro.frontend.latency_seconds",
            "end-to-end request latency", labels=["scene", "verb"],
        )
        self._m_batch = reg.histogram(
            "repro.frontend.batch_size", "dispatched batch sizes",
            labels=["worker"], buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_updates = reg.counter(
            "repro.frontend.updates",
            "scene-generation rollovers published", labels=["scene"],
        )
        self._m_update_errors = reg.counter(
            "repro.frontend.update_errors",
            "scene updates rejected or failed", labels=["scene"],
        )
        self._m_generation = reg.gauge(
            "repro.scene.generation",
            "current published generation of each scene", labels=["scene"],
        )
        self.batch_hist = BatchHistogram()
        self.scene_metrics: dict[str, _SceneMetrics] = {
            name: _SceneMetrics(name, self) for name in scenes
        }
        # the update path: scene name -> {"scene": Scene, "idx": index or
        # None} for every scene whose geometry the front-end knows (it is
        # what deltas apply to); one lock serializes rollovers
        self._scene_state: dict[str, dict] = {}
        self._generations: dict[str, int] = {name: 0 for name in scenes}
        self._update_lock = asyncio.Lock()
        self.log = get_logger("frontend")
        self._t_start = time.monotonic()

    # legacy counter attributes, now views over the registry ------------
    @property
    def requests(self) -> int:
        return int(self._m_requests.total())

    @property
    def sheds(self) -> int:
        return int(self._m_shed.total())

    @property
    def deadline_expired(self) -> int:
        return int(self._m_deadline.total())

    # -- startup --------------------------------------------------------
    def _prepare_specs(self) -> list[dict]:
        """Materialize/publish every scene; returns the full spec list
        (every worker gets all of it — materialization is lazy)."""
        specs: list[dict] = []
        if self.use_shm:
            self.publisher = ShmPublisher()
        for name in sorted(self.scene_sources):
            src = self.scene_sources[name]
            if self.use_shm:
                manifest = self._publish(name, src)
                specs.append({"name": name, "kind": "shm", "manifest": manifest})
            else:
                specs.append(self._plain_spec(name, src))
        return specs

    def _publish(self, name: str, src: dict) -> dict:
        assert self.publisher is not None
        if "index" in src:
            idx = src["index"]
            # a pipeline-built index carries its Scene, which is what the
            # `update` verb needs; indexes without one serve fine but
            # cannot take deltas
            if getattr(idx, "scene", None) is not None:
                self._scene_state[name] = {"scene": idx.scene, "idx": idx}
            return self.publisher.publish(name, idx)
        if "snapshot" in src:
            return self.publisher.publish_snapshot(name, src["snapshot"])
        if "obstacles" in src:
            from repro.pipeline import build_index
            from repro.scene import Scene

            # build through the staged pipeline (process-default stage
            # cache): publishing N scenes that share geometry — or a
            # scene the front-end already built — reuses stage artifacts
            scene = Scene.from_obstacles(
                src["obstacles"],
                container=src.get("container"),
                extra_points=src.get("extra_points") or (),
            )
            # incremental=True seeds the separator-subtree cache, so the
            # first `update` already reuses unaffected subtree solves
            idx = build_index(scene, engine=self.engine, incremental=True)
            self._scene_state[name] = {"scene": scene, "idx": idx}
            return self.publisher.publish(name, idx)
        raise ClusterError(f"scene {name!r}: unrecognized source {sorted(src)}")

    def _plain_spec(self, name: str, src: dict) -> dict:
        if "snapshot" in src:
            spec = {"name": name, "kind": "snapshot", "path": str(src["snapshot"])}
            if "obstacles" in src:
                from repro.scene import Scene

                # rebuild-from-scene fallback: if the snapshot artifact
                # is corrupt at load time the worker quarantines it and
                # builds from geometry instead of crashing
                scene = Scene.from_obstacles(
                    src["obstacles"],
                    container=src.get("container"),
                    extra_points=src.get("extra_points") or (),
                )
                self._scene_state[name] = {"scene": scene, "idx": None}
                spec["scene"] = scene.to_dict()
                spec["engine"] = self.engine
            return spec
        if "obstacles" in src:
            from repro.scene import Scene

            scene = Scene.from_obstacles(
                src["obstacles"],
                container=src.get("container"),
                extra_points=src.get("extra_points") or (),
            )
            self._scene_state[name] = {"scene": scene, "idx": None}
            return {
                "name": name,
                "kind": "build",
                "scene": scene.to_dict(),
                "engine": self.engine,
            }
        raise ClusterError(
            f"scene {name!r}: a prebuilt index requires use_shm=True "
            f"(or hand the workers a snapshot path)"
        )

    def _spawn_worker(self, wid: int) -> _Worker:
        """Fork/spawn one worker process on the shared spec list."""
        ctx = multiprocessing.get_context(self.start_method)
        options: dict = {"max_bytes": self.worker_max_bytes}
        if self.faults is not None:
            fault_opts = self.faults.worker_options()
            if fault_opts:
                options["faults"] = fault_opts
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=worker_main,
            args=(child_conn, wid, self._worker_specs, options),
            daemon=True,
            name=f"repro-cluster-worker-{wid}",
        )
        proc.start()
        child_conn.close()
        return _Worker(wid, proc, parent_conn, self.queue_depth)

    async def _ready_worker(self, worker: _Worker) -> None:
        """Readiness gate: one full batch round trip through the worker
        loop (imports done, store registered, pipe serviced) before any
        client traffic may route to it."""
        loop = asyncio.get_running_loop()

        def round_trip():
            worker.conn.send({"op": "batch", "seq": 0, "requests": [{"op": "ping"}]})
            return worker.conn.recv()

        try:
            reply = await asyncio.wait_for(
                loop.run_in_executor(None, round_trip), self.ready_timeout_s
            )
        except (asyncio.TimeoutError, EOFError, OSError, BrokenPipeError) as exc:
            raise ClusterError(
                f"worker {worker.id} failed readiness: {exc!r:.120}"
            ) from exc
        results = reply.get("results") or []
        if not results or not results[0].get("ok"):
            raise ClusterError(
                f"worker {worker.id} failed readiness: bad ping reply {reply!r:.120}"
            )

    async def start(self) -> None:
        """Publish scenes, spawn workers, readiness-gate them, bind TCP."""
        if self._started:
            raise ClusterError("cluster already started")
        self._started = True
        try:
            self._worker_specs = self._prepare_specs()
            self.workers = [self._spawn_worker(wid) for wid in range(self.n_workers)]
            await asyncio.gather(*(self._ready_worker(w) for w in self.workers))
            for worker in self.workers:
                worker.task = asyncio.create_task(self._dispatch_loop(worker))
            self._server = await asyncio.start_server(
                self._handle_client, self.host, self.port
            )
            self.port = self._server.sockets[0].getsockname()[1]
            if self.metrics_port is not None:
                self._metrics_server = await asyncio.start_server(
                    self._handle_metrics, self.host, self.metrics_port
                )
                self.metrics_port = self._metrics_server.sockets[0].getsockname()[1]
        except BaseException:
            await self.stop()
            raise

    async def __aenter__(self) -> "ClusterFrontend":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    async def serve_forever(self) -> None:
        """Block until :meth:`request_stop` (or ``stop``) is called."""
        await self._stopped.wait()

    def request_stop(self) -> None:
        self._stopped.set()

    # -- routing --------------------------------------------------------
    def _route(self, scene: Optional[str]) -> Optional[_Worker]:
        """The live worker that owns ``scene`` right now: the pin if its
        worker is up, else rendezvous hashing over the live set.  With
        everyone alive this equals the static :attr:`assignment`."""
        if scene is None:
            return None
        pinned = self.pins.get(scene)
        if (
            pinned is not None
            and 0 <= pinned < len(self.workers)
            and not self.workers[pinned].dead
        ):
            return self.workers[pinned]
        live = [w for w in self.workers if not w.dead]
        if not live:
            return None
        return max(live, key=lambda w: hrw_score(scene, w.id))

    # -- per-worker dispatch --------------------------------------------
    async def _dispatch_loop(self, worker: _Worker) -> None:
        loop = asyncio.get_running_loop()
        batch: list[_Item] = []
        try:
            while True:
                item = await worker.queue.get()
                if self._expire_if_late(item):
                    continue
                self._trace_dequeue(item)
                batch = [item]
                deadline = loop.time() + self.batch_window
                while len(batch) < self.max_batch:
                    timeout = deadline - loop.time()
                    if timeout <= 0:
                        break
                    try:
                        got = await asyncio.wait_for(worker.queue.get(), timeout)
                    except asyncio.TimeoutError:
                        break
                    if not self._expire_if_late(got):
                        self._trace_dequeue(got)
                        batch.append(got)
                worker.seq += 1
                worker.inflight = len(batch)
                payload = {
                    "op": "batch",
                    "seq": worker.seq,
                    "requests": [it.wire for it in batch],
                }
                rpc_t0 = time.time()
                try:
                    await loop.run_in_executor(None, worker.conn.send, payload)
                    reply = await loop.run_in_executor(None, worker.conn.recv)
                except (EOFError, OSError, BrokenPipeError) as exc:
                    worker.inflight = 0
                    self._on_worker_death(
                        worker, batch, f"worker {worker.id} died: {exc!r:.80}"
                    )
                    return
                worker.inflight = 0
                worker.batches += 1
                self.batch_hist.observe(len(batch))
                if self.obs:
                    self._m_batch.observe(len(batch), worker=str(worker.id))
                self._trace_rpc(batch, worker, rpc_t0, time.time())
                results = reply.get("results") or []
                now = time.perf_counter()
                for k, it in enumerate(batch):
                    res = (
                        results[k]
                        if k < len(results)
                        else {"ok": False, "error": reply.get("error", "no result")}
                    )
                    self._record(it, res, now)
                    self._finish_item(it, res)
                batch = []
        except asyncio.CancelledError:
            worker.inflight = 0
            self._fail_batch(batch, f"worker {worker.id} shutting down")
            raise

    def _expire_if_late(self, item: _Item) -> bool:
        """Expire one queued request whose deadline already passed; the
        distinct error (and flag) tells clients the work was *not* done."""
        if item.deadline is None:
            return False
        if asyncio.get_running_loop().time() <= item.deadline:
            return False
        if item.scene:
            self._m_deadline.inc(scene=item.scene)
        waited_ms = (time.perf_counter() - item.t0) * 1e3
        self.log.event("deadline_expired", scene=item.scene,
                       waited_ms=round(waited_ms, 3))
        self._trace_dequeue(item)
        self._finish_item(
            item,
            {
                "ok": False,
                "deadline_expired": True,
                "error": (
                    f"deadline expired after {waited_ms:.0f}ms in queue "
                    f"(scene {item.scene!r})"
                ),
            },
        )
        return True

    def _record(self, item: _Item, res: dict, now: float) -> None:
        if not item.scene:
            return
        self._m_scene_requests.inc(scene=item.scene)
        if not res.get("ok"):
            self._m_errors.inc(scene=item.scene)
        metrics = self.scene_metrics.get(item.scene)
        if metrics is not None:
            metrics.latency.record(now - item.t0)
        if self.obs:
            verb = item.wire.get("op")
            self._m_latency.observe(
                now - item.t0,
                scene=item.scene,
                verb=verb if verb in _SCENE_OPS else "other",
            )

    # -- tracing hooks ---------------------------------------------------
    def _trace_enqueue(self, item: _Item, worker: _Worker) -> None:
        """Open a queue-wait span for one (re-)enqueued traced request."""
        if item.trace is None:
            return
        tr = item.trace
        sp = span(
            "queue_wait",
            tr["trace_id"],
            tr["root"]["span_id"],
            worker=worker.id,
            hop=item.redirects,
        )
        tr["queue"] = sp
        tr["spans"].append(sp)

    def _trace_dequeue(self, item: _Item) -> None:
        if item.trace is not None:
            sp = item.trace.pop("queue", None)
            if sp is not None:
                finish(sp)

    def _trace_rpc(self, batch, worker: _Worker, t0: float, t1: float) -> None:
        """One worker_rpc span per traced batch member (send → recv)."""
        for it in batch:
            if it.trace is None:
                continue
            tr = it.trace
            sp = span(
                "worker_rpc",
                tr["trace_id"],
                tr["root"]["span_id"],
                t0=t0,
                worker=worker.id,
                seq=worker.seq,
                batch_size=len(batch),
            )
            finish(sp, t1)
            tr["spans"].append(sp)

    def _finish_item(self, item: _Item, res: dict) -> None:
        """Single exit point for a scene request: fold the worker's span,
        close the root, publish the trace, resolve the future."""
        if item.future.done():
            return
        ws = res.pop("worker_span", None) if isinstance(res, dict) else None
        if item.trace is not None:
            tr = item.trace
            self._trace_dequeue(item)
            if isinstance(ws, dict):
                sp = span(
                    ws.get("name", "worker.service"),
                    tr["trace_id"],
                    tr["root"]["span_id"],
                    t0=ws.get("t0"),
                    **(ws.get("attrs") or {}),
                )
                finish(sp, float(ws.get("t0", 0.0)) + float(ws.get("dur") or 0.0))
                tr["spans"].append(sp)
            finish(
                tr["root"],
                ok=bool(res.get("ok")),
                redirects=item.redirects or None,
            )
            self.span_buffer.extend(tr["spans"])
            res = dict(res)
            res["trace"] = {
                "trace_id": tr["trace_id"],
                "spans": [dict(sp) for sp in tr["spans"]],
            }
        item.future.set_result(res)

    # -- failure handling -----------------------------------------------
    def _on_worker_death(self, worker: _Worker, batch: list, reason: str) -> None:
        """A worker's pipe broke: redirect its work, then (optionally)
        hand the slot to the supervisor for a backoff-gated respawn."""
        worker.dead = True
        pending: list[_Item] = list(batch)
        while not worker.queue.empty():
            try:
                pending.append(worker.queue.get_nowait())
            except asyncio.QueueEmpty:  # pragma: no cover - race with put
                break
        for item in pending:
            self._redirect(item, reason)
        if self._closing:
            return
        self.supervisor.record_crash(worker.id, reason)
        self.log.event("worker_death", force=True, worker=worker.id,
                       reason=str(reason)[:200])
        if self.supervise:
            task = asyncio.get_running_loop().create_task(
                self._restart_worker(worker.id)
            )
            self._restart_tasks.add(task)
            task.add_done_callback(self._restart_tasks.discard)

    def _redirect(self, item: _Item, reason: str) -> None:
        """Re-route one orphaned request to a surviving worker.  Every
        scene op is an idempotent read, so re-executing a request whose
        worker died mid-batch is safe; the redirect cap bounds ping-pong
        during a cascading failure."""
        if item.future.done():
            return
        item.redirects += 1
        self._trace_dequeue(item)
        target = self._route(item.scene)
        if target is None or target.dead or item.redirects > _MAX_REDIRECTS:
            self._finish_item(
                item, {"ok": False, "retryable": True, "error": reason}
            )
            return
        if self._expire_if_late(item):
            return
        if item.scene:
            self._m_redirects.inc(scene=item.scene)
        if item.trace is not None:
            tr = item.trace
            sp = span(
                "redirect",
                tr["trace_id"],
                tr["root"]["span_id"],
                hop=item.redirects,
                to_worker=target.id,
                reason=str(reason)[:120],
            )
            finish(sp)
            tr["spans"].append(sp)
        self._trace_enqueue(item, target)
        try:
            target.queue.put_nowait(item)
        except asyncio.QueueFull:
            if item.scene:
                self._m_shed.inc(scene=item.scene)
            self.log.event("shed", scene=item.scene, worker=target.id,
                           failover=True)
            self._trace_dequeue(item)
            self._finish_item(
                item,
                {
                    "ok": False,
                    "shed": True,
                    "error": (
                        f"overloaded during failover: worker {target.id} "
                        f"queue is full; retry later"
                    ),
                },
            )

    async def _restart_worker(self, wid: int) -> None:
        """Supervised respawn of one worker slot: backoff, spawn,
        readiness-gate, swap into routing.  Loops on failed attempts
        until the circuit breaker opens."""
        loop = asyncio.get_running_loop()
        while not self._closing:
            if not self.supervisor.allow_restart(wid):
                return  # breaker open: slot stays down, scenes stay failed over
            await asyncio.sleep(self.supervisor.next_backoff(wid))
            if self._closing:
                return
            old = self.workers[wid]
            await loop.run_in_executor(None, self._reap, old)
            new: Optional[_Worker] = None
            swapped = False
            try:
                new = self._spawn_worker(wid)
                await self._ready_worker(new)
                new.task = loop.create_task(self._dispatch_loop(new))
                self.workers[wid] = new
                swapped = True
                self.supervisor.record_restart(wid)
                return
            except ClusterError as exc:
                self.supervisor.record_crash(wid, str(exc))
            except Exception as exc:  # noqa: BLE001 - spawn machinery failed
                self.supervisor.record_crash(wid, f"respawn failed: {exc!r:.120}")
            finally:
                if new is not None and not swapped:
                    self._reap(new, timeout=1.0)

    def _reap(self, worker: _Worker, timeout: float = 5.0) -> None:
        """Close the pipe and collect the process (terminate if needed)."""
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        try:
            worker.proc.join(timeout=timeout)
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(timeout=2.0)
        except (OSError, ValueError):  # pragma: no cover - proc already reaped
            pass

    def _fail_batch(self, batch: Sequence[_Item], reason: str) -> None:
        for it in batch:
            self._finish_item(it, {"ok": False, "error": reason})

    # -- client connections ---------------------------------------------
    async def _handle_client(self, reader, writer) -> None:
        pending: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_loop(pending, writer))
        try:
            while True:
                try:
                    msg = await read_frame(reader)
                except ClusterError as exc:
                    await pending.put(
                        {"id": None, "ok": False, "error": f"bad frame: {exc}"}
                    )
                    break
                if msg is None:
                    break
                await pending.put(self._admit(msg))
        finally:
            await pending.put(None)
            try:
                await writer_task
            except (ConnectionError, asyncio.CancelledError):  # pragma: no cover
                pass

    async def _write_loop(self, pending: asyncio.Queue, writer) -> None:
        """Drain responses *in request order*: entries are either ready
        dicts or (id, future) pairs awaited in sequence."""
        try:
            while True:
                entry = await pending.get()
                if entry is None:
                    break
                if isinstance(entry, dict):
                    resp = entry
                else:
                    rid, fut = entry
                    res = await fut
                    resp = dict(res)
                    resp["id"] = rid
                if self.injector is not None and await self.injector.on_response(
                    writer, resp
                ):
                    continue
                await write_frame(writer, resp)
        except (ConnectionError, OSError):  # client went away mid-write
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _admit(self, msg: dict):
        """Route one request: an immediate response dict, or (id, future)."""
        rid = msg.get("id")
        op = msg.get("op")
        self._m_requests.inc(
            verb=op if op in _SCENE_OPS or op in _LOCAL_OPS else "other"
        )
        if op == "ping":
            return {"id": rid, "ok": True, "result": "pong"}
        if op == "health":
            return {"id": rid, "ok": True, "result": self._health()}
        if op == "drain":
            fut = asyncio.ensure_future(self._drain_and_ack())
            return (rid, fut)
        if op == "scenes":
            return {
                "id": rid,
                "ok": True,
                "result": {
                    "scenes": dict(self.assignment),
                    "workers": self.n_workers,
                    "alive": [w.id for w in self.workers if not w.dead],
                    "generations": dict(self._generations),
                    "updatable": sorted(self._scene_state),
                },
            }
        if op in ("update", "describe"):
            scene = msg.get("scene")
            if scene not in self.assignment:
                known = ", ".join(sorted(self.assignment)) or "<none>"
                return {
                    "id": rid,
                    "ok": False,
                    "error": f"unknown scene {scene!r} (serving: {known})",
                }
            if op == "describe":
                return dict(self._describe(scene), id=rid)
            if self._draining:
                return {
                    "id": rid,
                    "ok": False,
                    "draining": True,
                    "error": "front-end is draining; no new updates accepted",
                }
            fut = asyncio.ensure_future(self._update_scene(scene, msg.get("delta")))
            return (rid, fut)
        if op == "stats":
            fut = asyncio.ensure_future(self._cluster_stats())
            return (rid, fut)
        if op == "metrics":
            fut = asyncio.ensure_future(self._cluster_metrics())
            return (rid, fut)
        if op == "trace":
            limit = msg.get("limit")
            return {
                "id": rid,
                "ok": True,
                "result": {
                    "spans": self.span_buffer.snapshot(
                        limit=int(limit) if limit is not None else 512,
                        trace_id=msg.get("trace_id"),
                    ),
                    "dropped": self.span_buffer.dropped,
                },
            }
        if op not in _SCENE_OPS:
            return {"id": rid, "ok": False, "error": f"unknown op {op!r}"}
        scene = msg.get("scene")
        if scene not in self.assignment:
            known = ", ".join(sorted(self.assignment)) or "<none>"
            return {
                "id": rid,
                "ok": False,
                "error": f"unknown scene {scene!r} (serving: {known})",
            }
        if self._draining:
            return {
                "id": rid,
                "ok": False,
                "draining": True,
                "error": "front-end is draining; no new requests accepted",
            }
        if self.injector is not None:
            self.injector.on_request(self)
        deadline = None
        raw_deadline = msg.get("deadline_ms")
        if raw_deadline is not None:
            try:
                deadline_ms = float(raw_deadline)
            except (TypeError, ValueError):
                return {
                    "id": rid,
                    "ok": False,
                    "error": f"bad deadline_ms {raw_deadline!r}: expected a number",
                }
            deadline = asyncio.get_running_loop().time() + deadline_ms / 1e3
        worker = self._route(scene)
        if worker is None:
            return {
                "id": rid,
                "ok": False,
                "retryable": True,
                "error": "no live workers (crashed or restarting); retry",
            }
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        item = _Item(msg, fut, scene, deadline)
        if self.obs and msg.get("trace"):
            trace_id = str(msg.get("trace_id") or new_trace_id())
            msg["trace_id"] = trace_id  # propagated to the worker verbatim
            root = span("request", trace_id, scene=scene, verb=op)
            item.trace = {"trace_id": trace_id, "root": root, "spans": [root]}
        self._trace_enqueue(item, worker)
        try:
            worker.queue.put_nowait(item)
        except asyncio.QueueFull:
            # load shedding: fast one-line rejection, nothing queued
            self._m_shed.inc(scene=scene)
            self.log.event("shed", scene=scene, worker=worker.id,
                           depth=self.queue_depth)
            self._trace_dequeue(item)
            self._finish_item(
                item,
                {
                    "ok": False,
                    "shed": True,
                    "error": (
                        f"overloaded: worker {worker.id} queue is full "
                        f"({self.queue_depth} deep); retry later"
                    ),
                },
            )
        return (rid, fut)

    # -- scene updates (zero-downtime rollover) --------------------------
    def _describe(self, name: str) -> dict:
        """The ``describe`` verb: a scene's full geometry + generation —
        what a client needs to compute deltas (and, for checked load
        generation, to build a local oracle)."""
        state = self._scene_state.get(name)
        if state is None:
            return {
                "ok": False,
                "error": (
                    f"scene {name!r} has no geometry source (snapshot- or "
                    f"index-only scenes cannot be described or updated)"
                ),
            }
        return {
            "ok": True,
            "result": {
                "scene": state["scene"].to_dict(),
                "generation": self._generations.get(name, 0),
                "scene_hash": state["scene"].content_hash(),
            },
        }

    async def _update_scene(self, name: str, delta_data) -> dict:
        """The ``update`` verb: apply an obstacle delta to ``name`` and
        roll every worker to the new generation with zero downtime.

        Protocol: (1) repair the front-end's index incrementally
        (:func:`repro.pipeline.update_index` — byte-identical to a cold
        rebuild, reusing unaffected separator-subtree solves); (2)
        republish into a fresh shm segment (generation+1); (3) broadcast
        the new spec to every live worker, which swaps resident scenes
        and lazily re-sources the rest — in-flight batches finish on the
        pinned old generation; (4) once all live workers acked, unlink
        the superseded segments.  A worker that dies mid-rollover is
        tolerated: its respawn registers from the updated spec list.
        """
        from repro.errors import GeometryError, QueryError
        from repro.scene import SceneDelta

        async with self._update_lock:
            state = self._scene_state.get(name)
            if state is None:
                self._m_update_errors.inc(scene=name)
                return self._describe(name)  # carries the canonical error
            loop = asyncio.get_running_loop()
            trace_id = new_trace_id()
            root = span("scene.update", trace_id, scene=name)
            t0 = time.perf_counter()
            try:
                delta = SceneDelta.from_dict(delta_data)
                if state["idx"] is not None:
                    from repro.pipeline import update_index

                    new_idx = await loop.run_in_executor(
                        None, update_index, state["idx"], delta
                    )
                    new_scene = new_idx.scene
                    repair = new_idx.provenance.get("repair")
                else:
                    # unshared deployment: the front-end holds no index;
                    # validate the delta here, workers rebuild from the
                    # new scene dict (their stage caches soften the cost)
                    new_idx = None
                    new_scene = await loop.run_in_executor(
                        None, state["scene"].apply_delta, delta
                    )
                    repair = None
                if self.use_shm:
                    assert self.publisher is not None
                    manifest = await loop.run_in_executor(
                        None, self.publisher.republish, name, new_idx
                    )
                    spec = {"name": name, "kind": "shm", "manifest": manifest}
                    generation = int(manifest["generation"])
                else:
                    spec = {
                        "name": name,
                        "kind": "build",
                        "scene": new_scene.to_dict(),
                        "engine": self.engine,
                    }
                    generation = self._generations.get(name, 0) + 1
            except (GeometryError, QueryError, ClusterError) as exc:
                self._m_update_errors.inc(scene=name)
                finish(root, ok=False, error=str(exc)[:160])
                self.span_buffer.extend([root])
                return {"ok": False, "error": str(exc)}
            # respawned workers must register the new generation, not the
            # one they were born with
            for i, s in enumerate(self._worker_specs):
                if s.get("name") == name:
                    self._worker_specs[i] = spec
                    break
            acked, skipped, failures = await self._broadcast_update(spec)
            state["scene"] = new_scene
            if new_idx is not None:
                state["idx"] = new_idx
            self._generations[name] = generation
            if self.use_shm and not failures:
                # every live worker acked the new manifest; the old
                # segments can go (attached mappings stay valid past the
                # unlink, so stragglers draining pinned readers are safe)
                self.publisher.release_retired(name)
            wall = time.perf_counter() - t0
            self._m_updates.inc(scene=name)
            if self.obs:
                self._m_generation.set(float(generation), scene=name)
            finish(root, ok=not failures, generation=generation, workers=acked)
            self.span_buffer.extend([root])
            self.log.event(
                "scene_update", force=True, scene=name, generation=generation,
                ops=delta.describe(), workers_acked=acked,
                wall_ms=round(wall * 1e3, 3),
            )
            result = {
                "scene": name,
                "generation": generation,
                "scene_hash": new_scene.content_hash(),
                "ops": delta.describe(),
                "workers_updated": acked,
                "workers_restarting": skipped,
                "wall_s": wall,
            }
            if repair is not None:
                result["repair"] = repair
            if failures:
                self._m_update_errors.inc(scene=name)
                detail = "; ".join(
                    f"worker {wid}: {err}" for wid, err in sorted(failures.items())
                )
                return {
                    "ok": False,
                    "error": f"rollover to generation {generation} failed ({detail})",
                    "result": result,
                }
            return {"ok": True, "result": result}

    async def _broadcast_update(self, spec: dict) -> tuple:
        """Push one rollover spec through every live worker's queue;
        returns ``(acked, skipped, failures)`` where skipped counts
        workers that died mid-rollover (their respawn re-registers from
        the updated spec list) and failures maps live worker ids to
        errors."""
        loop = asyncio.get_running_loop()
        waits = []
        failures: dict[int, str] = {}
        skipped = 0
        for w in self.workers:
            if w.dead:
                skipped += 1
                continue
            fut: asyncio.Future = loop.create_future()
            item = _Item({"op": "update", "spec": spec}, fut, None)
            try:
                w.queue.put_nowait(item)
            except asyncio.QueueFull:
                try:
                    await asyncio.wait_for(w.queue.put(item), timeout=30.0)
                except asyncio.TimeoutError:
                    failures[w.id] = "queue full; rollover enqueue timed out"
                    continue
            waits.append((w, fut))
        acked = 0
        for w, fut in waits:
            res = await fut
            if res.get("ok"):
                acked += 1
            elif res.get("retryable"):
                skipped += 1  # died mid-rollover; supervision heals it
            else:
                failures[w.id] = str(res.get("error"))[:200]
        return acked, skipped, failures

    # -- lifecycle verbs -------------------------------------------------
    def _health(self) -> dict:
        alive = [w.id for w in self.workers if not w.dead]
        if self._draining:
            status = "draining"
        elif len(alive) == self.n_workers:
            status = "serving"
        elif alive:
            status = "degraded"
        else:
            status = "down"
        return {
            "status": status,
            "workers": self.n_workers,
            "workers_alive": len(alive),
            "restarts": self.supervisor.total_restarts,
            "draining": self._draining,
        }

    async def drain(self, poll_s: float = 0.02) -> None:
        """Refuse new scene requests, then wait until every worker queue
        and in-flight batch is empty."""
        self._draining = True
        while any(
            w.queue.qsize() + w.inflight for w in self.workers if not w.dead
        ):
            await asyncio.sleep(poll_s)

    async def _drain_and_ack(self) -> dict:
        await self.drain()
        return {"ok": True, "result": "drained", "draining": True}

    def request_drain(self) -> None:
        """Signal-handler-safe graceful shutdown: drain, then stop."""
        if self._draining:
            return
        self._draining = True
        task = asyncio.ensure_future(self._drain_then_stop())
        self._restart_tasks.add(task)
        task.add_done_callback(self._restart_tasks.discard)

    async def _drain_then_stop(self) -> None:
        await self.drain()
        self.request_stop()

    # -- stats ----------------------------------------------------------
    async def _cluster_stats(self) -> dict:
        worker_stats: dict[str, dict] = {}
        waits = []
        for w in self.workers:
            if w.dead:
                worker_stats[str(w.id)] = {
                    "dead": True,
                    "last_crash": self.supervisor.last_crash(w.id),
                }
                continue
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            item = _Item({"op": "stats"}, fut, None)
            try:
                w.queue.put_nowait(item)
            except asyncio.QueueFull:
                worker_stats[str(w.id)] = {"busy": True}
                continue
            waits.append((w, fut))
        for w, fut in waits:
            res = await fut
            worker_stats[str(w.id)] = (
                res.get("result") if res.get("ok") else {"error": res.get("error")}
            )
        return {"ok": True, "result": self._stats_payload(worker_stats)}

    def _stats_payload(self, worker_stats: dict) -> dict:
        payload = {
            "uptime_s": time.monotonic() - self._t_start,
            "workers": worker_stats,
            "assignment": dict(self.assignment),
            "supervisor": self.supervisor.stats(),
            "health": self._health(),
            "frontend": {
                "requests": self.requests,
                "sheds": self.sheds,
                "deadline_expired": self.deadline_expired,
                "qps": self.requests / max(time.monotonic() - self._t_start, 1e-9),
                "batch_size_hist": self.batch_hist.as_dict(),
                "generations": dict(self._generations),
                "scenes": {
                    name: m.summary() for name, m in self.scene_metrics.items()
                },
            },
        }
        if self.injector is not None:
            payload["faults"] = self.injector.stats()
        return payload

    def stats(self) -> dict:
        """Front-end-side metrics only (synchronous; no worker round trip)."""
        return self._stats_payload({})

    # -- metrics exposition ---------------------------------------------
    async def _merged_snapshot(self) -> dict:
        """The front-end registry snapshot merged with every live
        worker's, the worker series labeled ``worker="<id>"``."""
        worker_snaps: dict[str, dict] = {}
        waits = []
        for w in self.workers:
            if w.dead:
                continue
            fut: asyncio.Future = asyncio.get_running_loop().create_future()
            item = _Item({"op": "metrics"}, fut, None)
            try:
                w.queue.put_nowait(item)
            except asyncio.QueueFull:
                continue  # busy worker: scrape covers it next time
            waits.append((w, fut))
        for w, fut in waits:
            res = await fut
            if res.get("ok") and isinstance(res.get("result"), dict):
                worker_snaps[str(w.id)] = res["result"]
        base = self.registry.snapshot()
        process = default_registry()
        if process is not self.registry:
            # shm scene builds run in *this* process and profile into the
            # process-default registry (repro.pipeline.*); fold them into
            # the scrape without letting them shadow front-end families
            for fam, data in process.snapshot().items():
                base.setdefault(fam, data)
        return merge_snapshots(base, worker_snaps)

    async def _cluster_metrics(self) -> dict:
        snapshot = await self._merged_snapshot()
        return {"ok": True, "result": snapshot}

    async def _handle_metrics(self, reader, writer) -> None:
        """A deliberately minimal HTTP/1.0 responder for ``GET /metrics``
        on the event loop — enough for a Prometheus scrape or curl, with
        no HTTP dependency."""
        try:
            request_line = await asyncio.wait_for(reader.readline(), 10.0)
            while True:  # drain headers up to the blank line
                line = await asyncio.wait_for(reader.readline(), 10.0)
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) >= 2 else ""
            if parts and parts[0] == "GET" and path.split("?")[0] == "/metrics":
                body = render_openmetrics(await self._merged_snapshot()).encode()
                head = (
                    "HTTP/1.0 200 OK\r\n"
                    f"Content-Type: {CONTENT_TYPE}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
            else:
                body = b"try GET /metrics\n"
                head = (
                    "HTTP/1.0 404 Not Found\r\n"
                    "Content-Type: text/plain\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode()
            writer.write(head + body)
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    # -- shutdown -------------------------------------------------------
    async def stop(self) -> None:
        """Stop accepting, drain workers, unlink shared memory (idempotent)."""
        self._closing = True
        self._stopped.set()
        for task in list(self._restart_tasks):
            task.cancel()
        for task in list(self._restart_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):  # noqa: BLE001
                pass
        self._restart_tasks.clear()
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:  # pragma: no cover - server already gone
                pass
            self._server = None
        if self._metrics_server is not None:
            self._metrics_server.close()
            try:
                await self._metrics_server.wait_closed()
            except Exception:  # pragma: no cover - server already gone
                pass
            self._metrics_server = None
        for w in self.workers:
            if w.task is not None:
                w.task.cancel()
        for w in self.workers:
            if w.task is not None:
                try:
                    await w.task
                except (asyncio.CancelledError, Exception):  # noqa: BLE001
                    pass
                w.task = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self._shutdown_workers)
        self.workers.clear()
        if self.publisher is not None:
            self.publisher.close()
            self.publisher = None

    def _shutdown_workers(self) -> None:
        for w in self.workers:
            if w.proc.is_alive():
                try:
                    w.conn.send({"op": "shutdown"})
                except (OSError, BrokenPipeError, ValueError):
                    pass
        deadline = time.monotonic() + 5.0
        for w in self.workers:
            w.proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if w.proc.is_alive():  # pragma: no cover - hung worker
                w.proc.terminate()
                w.proc.join(timeout=2.0)
            try:
                w.conn.close()
            except OSError:  # pragma: no cover
                pass


async def run_cluster(frontend: ClusterFrontend) -> None:
    """Convenience: start, serve until stop is requested, then clean up."""
    await frontend.start()
    try:
        await frontend.serve_forever()
    finally:
        await frontend.stop()
