"""Load generation against a running cluster front-end.

Two canonical load models (the distinction matters — see any serving
textbook: closed loops hide queueing collapse, open loops expose it):

* **closed loop** (``--closed``): C connections, each with exactly one
  request outstanding — send, await, repeat.  Throughput is
  demand-limited by the cluster itself; the right mode for measuring
  capacity (``benchmarks/bench_cluster.py`` uses it).
* **open loop** (``--open --rps R``): requests fire on a fixed schedule
  regardless of completions (pipelined across C connections).  The right
  mode for watching latency percentiles and load shedding as offered
  load passes capacity.

The generator discovers scene names and legal endpoints through the
protocol itself (``scenes`` + ``endpoints`` verbs), so it needs nothing
but ``host:port`` — the same seeded stream can then be pointed at any
cluster serving the same scene set.  Reports carry p50/p95/p99 latency,
throughput, and shed/error counts, never bare means.

The closed loop is fault-tolerant on request: with ``retries > 0`` a
retryable failure (shed, worker-death redirect exhaustion, deadline
expiry, connection error, timeout) is retried with jittered exponential
backoff, bounded per-request by ``retries`` and run-wide by a shared
retry *budget* — so a worker restart is invisible to the run, but a
cluster that is actually down still fails fast instead of retrying
forever.  Every retry, timeout, and deadline expiry is counted in the
report (``--json`` carries them), which is what makes chaos runs
machine-checkable.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Optional, Sequence

from repro.cluster.protocol import read_frame, write_frame
from repro.errors import ClusterError
from repro.obs.recorders import LatencyRecorder

#: default request mix: (bulk-lengths fraction, arbitrary-point fraction,
#: path fraction); the remainder are single vertex-pair lengths
DEFAULT_MIX = (0.5, 0.2, 0.02)

#: verbs a weighted ``--mix`` spec may name (wire ops plus ``arbitrary``,
#: which is a ``length`` op with off-vertex endpoints)
MIX_VERBS = ("length", "lengths", "arbitrary", "path", "minlink", "links", "pareto")


def parse_mix(spec: str) -> dict[str, float]:
    """``"length:0.6,minlink:0.3,pareto:0.1"`` → normalized weight dict.

    Weights are relative (they need not sum to 1); unknown verbs and
    non-positive totals are one-line :class:`ClusterError`\\ s."""
    weights: dict[str, float] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        verb, sep, raw = part.partition(":")
        verb = verb.strip()
        if verb not in MIX_VERBS:
            raise ClusterError(
                f"unknown mix verb {verb!r} (want one of {', '.join(MIX_VERBS)})"
            )
        try:
            w = float(raw) if sep else 1.0
        except ValueError:
            raise ClusterError(f"bad mix weight {raw!r} for verb {verb!r}")
        if w < 0:
            raise ClusterError(f"negative mix weight {w} for verb {verb!r}")
        weights[verb] = weights.get(verb, 0.0) + w
    total = sum(weights.values())
    if total <= 0:
        raise ClusterError(f"mix {spec!r} has no positive weight")
    return {v: w / total for v, w in weights.items()}


async def _rpc(reader, writer, msg: dict, *, max_skip: int = 16) -> dict:
    """One matched request/response exchange.  Frames whose id does not
    match are skipped (a faulty or adversarial server may duplicate
    frames; counting a stale duplicate as this request's answer would
    desync every response after it)."""
    await write_frame(writer, msg)
    want = msg.get("id")
    for _ in range(max_skip):
        resp = await read_frame(reader)
        if resp is None:
            raise ClusterError("server closed the connection")
        if want is None or resp.get("id") == want:
            return resp
    raise ClusterError(f"no response for id {want!r} within {max_skip} frames")


async def discover(host: str, port: int, *, seed: int = 0, k: int = 48) -> dict:
    """Scene → ``{"vertices": [...], "free": [...]}`` pools, via the
    ``scenes`` and ``endpoints`` protocol verbs."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        resp = await _rpc(reader, writer, {"id": 0, "op": "scenes"})
        if not resp.get("ok"):
            raise ClusterError(f"scenes verb failed: {resp.get('error')}")
        pools: dict[str, dict] = {}
        for scene in sorted(resp["result"]["scenes"]):
            ep = await _rpc(
                reader,
                writer,
                {"id": 0, "op": "endpoints", "scene": scene, "k": k, "seed": seed},
            )
            if not ep.get("ok"):
                raise ClusterError(
                    f"endpoints for {scene!r} failed: {ep.get('error')}"
                )
            pools[scene] = ep["result"]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    if not pools:
        raise ClusterError("cluster serves no scenes")
    return pools


def build_requests(
    pools: dict,
    n_requests: int,
    *,
    seed: int = 0,
    mix: Sequence[float] = DEFAULT_MIX,
    pairs_per_request: int = 16,
    verb_mix: Optional[dict] = None,
) -> list[dict]:
    """A seeded wire-request stream over the discovered pools.

    ``mix`` is the legacy ``(bulk, arbitrary, path)`` triple: *bulk*
    requests are ``lengths`` ops carrying ``pairs_per_request`` vertex
    pairs (the coalescing path), *arbitrary* requests exercise §6.4 with
    off-vertex endpoints, *path* requests ask for polylines, and the
    remainder are single vertex-pair lookups.

    ``verb_mix`` (a :func:`parse_mix` weight dict) supersedes ``mix``
    entirely: each request draws its verb from the weighted set —
    including the link family (``minlink``/``links``/``pareto``), which
    only draws vertex endpoints (link queries over arbitrary points go
    through grid extension; the load model keeps them on the fast path).
    """
    if verb_mix is not None:
        key = ",".join(f"{v}:{verb_mix[v]:.6g}" for v in sorted(verb_mix))
    else:
        bulk_frac, arb_frac, path_frac = mix
        key = f"{bulk_frac}|{arb_frac}|{path_frac}"
    rng = random.Random(f"loadgen|{seed}|{n_requests}|{key}")
    names = sorted(pools)
    out: list[dict] = []

    def draw_verb() -> str:
        if verb_mix is not None:
            verbs = sorted(verb_mix)
            roll = rng.random()
            acc = 0.0
            for v in verbs:
                acc += verb_mix[v]
                if roll < acc:
                    return v
            return verbs[-1]
        bulk_frac, arb_frac, path_frac = mix
        roll = rng.random()
        if roll < bulk_frac:
            return "lengths"
        if roll < bulk_frac + arb_frac:
            return "arbitrary"
        if roll < bulk_frac + arb_frac + path_frac:
            return "path"
        return "length"

    for _ in range(n_requests):
        scene = names[rng.randrange(len(names))]
        verts = pools[scene]["vertices"]
        free = pools[scene]["free"]
        verb = draw_verb()
        if verb in ("lengths", "links") and len(verts) >= 2:
            # bulk lengths draw from vertices *and* free points: free
            # endpoints push the batch through the §6.4 machinery, which
            # is the CPU-bound work multi-worker scaling exists to spread.
            # bulk links stay on vertices (link answers for off-grid
            # points would rebuild the grid per distinct endpoint).
            pool = verts + free if verb == "lengths" else verts
            pairs = [
                [rng.choice(pool), rng.choice(pool)]
                for _ in range(pairs_per_request)
            ]
            out.append({"op": verb, "scene": scene, "pairs": pairs})
        elif verb == "arbitrary" and free and verts:
            p = rng.choice(free)
            q = rng.choice(verts) if rng.random() < 0.5 else rng.choice(free)
            out.append({"op": "length", "scene": scene, "p": p, "q": q})
        elif verb in ("path", "minlink", "pareto") and len(verts) >= 2:
            p, q = rng.sample(verts, 2)
            out.append({"op": verb, "scene": scene, "p": p, "q": q})
        else:
            out.append(
                {
                    "op": "length",
                    "scene": scene,
                    "p": rng.choice(verts),
                    "q": rng.choice(verts),
                }
            )
    return out


def _classify(resp: dict) -> str:
    """One-word error class for a failed response (report aggregation)."""
    if resp.get("shed"):
        return "shed"
    if resp.get("deadline_expired"):
        return "deadline_expired"
    err = str(resp.get("error") or "unknown")
    return err.split(":")[0].strip()[:48] or "unknown"


def _retryable(resp: dict) -> bool:
    """Safe to re-send?  Every cluster op is an idempotent read, so the
    question is only whether a retry could plausibly succeed."""
    return bool(
        resp.get("shed") or resp.get("retryable") or resp.get("deadline_expired")
    )


def _backoff_s(attempt: int, rng: random.Random) -> float:
    """Jittered exponential backoff: 50ms doubling, capped at 1s."""
    return min(0.05 * (2 ** (attempt - 1)), 1.0) * (0.5 + rng.random())


def _mark_traced(requests: Sequence[dict], trace_sample: int) -> list[dict]:
    """Copy the stream with ``trace_sample`` requests marked ``trace: true``,
    spread evenly so the sample sees steady state, not just warm-up."""
    out = [dict(r) for r in requests]
    scene_idx = [i for i, r in enumerate(out) if "scene" in r]
    n = min(max(0, int(trace_sample)), len(scene_idx))
    if n:
        stride = max(1, len(scene_idx) // n)
        for k in scene_idx[::stride][:n]:
            out[k]["trace"] = True
    return out


def _jsonify_expected(values) -> list:
    """Oracle values in the worker's wire form (see worker._jsonify), so
    a checked probe compares the exact JSON payloads."""
    out = []
    for v in values:
        f = float(v)
        out.append("inf" if (f != f or f in (float("inf"), float("-inf"))) else f)
    return out


class SceneMutator:
    """Periodic ``update`` verbs riding along a load-generation run.

    Alternates deleting and re-inserting one seeded-random rectangle of
    one updatable scene, so the cluster rolls between exactly two known
    generations while queries hammer it.  With ``check=True`` both
    versions of the scene are built *locally* through the pipeline and,
    after every acknowledged rollover, a probe batch of vertex-pair
    ``lengths`` must match the oracle of the just-published generation
    **exactly** — an acknowledged update followed by an old-generation
    answer is a stale read, which is precisely what the rollover protocol
    promises cannot happen.
    """

    def __init__(
        self, scene: str, scene_dict: dict, *, check: bool = False, seed: int = 0
    ) -> None:
        from repro.scene import Scene, SceneDelta

        self.scene = scene
        base = Scene.from_dict(scene_dict)
        rects = base.rects
        if not rects:
            raise ClusterError(
                f"scene {scene!r} has no rectangle obstacles to mutate"
            )
        rng = random.Random(f"mutate|{scene}|{seed}")
        victim = rects[rng.randrange(len(rects))]
        self.deltas = [
            SceneDelta.delete(victim).to_dict(),   # parity 0 -> 1
            SceneDelta.insert(victim).to_dict(),   # parity 1 -> 0
        ]
        self.parity = 0  # which scene version is live (0 = base)
        self.probe_pairs: list = []
        self.expected: list = []
        if check:
            from repro.pipeline import StageCache, build_index

            edited = base.apply_delta(SceneDelta.delete(victim))
            # vertices present in *both* generations: corners of the
            # surviving rects (the victim's corners leave the index with it)
            corners = [
                [int(c[0]), int(c[1])]
                for r in rects
                if r != victim
                for c in ((r.xlo, r.ylo), (r.xhi, r.yhi))
            ]
            k = min(8, len(corners) - 1)
            self.probe_pairs = [[corners[i], corners[-1 - i]] for i in range(k)]
            cache = StageCache(max_entries=256, max_bytes=256 << 20)
            oracles = (
                build_index(base, cache=cache),
                build_index(edited, cache=cache),
            )
            self.expected = [
                _jsonify_expected(
                    o.lengths([(tuple(p), tuple(q)) for p, q in self.probe_pairs])
                )
                for o in oracles
            ]

    async def step(self, reader, writer, mid: int, report: "Report") -> None:
        """One rollover (plus, when checking, its post-ack probe)."""
        resp = await asyncio.wait_for(
            _rpc(
                reader,
                writer,
                {
                    "id": f"mut{mid}",
                    "op": "update",
                    "scene": self.scene,
                    "delta": self.deltas[self.parity],
                },
            ),
            60.0,
        )
        if not resp.get("ok"):
            report.mutation_errors += 1
            if report.first_mutation_error is None:
                report.first_mutation_error = str(resp.get("error"))
            return
        report.mutations += 1
        self.parity ^= 1
        report.last_generation = int(resp["result"]["generation"])
        if not self.probe_pairs:
            return
        probe = await asyncio.wait_for(
            _rpc(
                reader,
                writer,
                {
                    "id": f"probe{mid}",
                    "op": "lengths",
                    "scene": self.scene,
                    "pairs": self.probe_pairs,
                },
            ),
            60.0,
        )
        want = self.expected[self.parity]
        if not probe.get("ok") or probe.get("result") != want:
            report.stale_answers += 1
            if report.first_stale is None:
                report.first_stale = (
                    f"after rollover to generation {report.last_generation}: "
                    f"got {probe.get('result')!r:.200}, want {want!r:.200}"
                )


class _RetryBudget:
    """A run-wide token pool shared by every connection: each retry
    spends one token, so a down cluster costs at most ``tokens`` extra
    requests instead of ``retries × requests``."""

    def __init__(self, tokens: int) -> None:
        self.tokens = max(0, int(tokens))

    def take(self) -> bool:
        if self.tokens <= 0:
            return False
        self.tokens -= 1
        return True


class Report:
    """Aggregated outcome of one load-generation run."""

    def __init__(self, mode: str) -> None:
        self.mode = mode
        self.sent = 0
        self.ok = 0
        self.errors = 0
        self.shed = 0
        self.retries = 0
        self.timeouts = 0
        self.deadline_expired = 0
        self.error_classes: dict[str, int] = {}
        self.latency = LatencyRecorder(capacity=1 << 16)
        self.elapsed_s = 0.0
        self.first_error: Optional[str] = None
        # scene-mutation bookkeeping (--mutate-every)
        self.mutations = 0
        self.mutation_errors = 0
        self.stale_answers = 0
        self.last_generation = 0
        self.first_mutation_error: Optional[str] = None
        self.first_stale: Optional[str] = None
        # traced-request sample: per-hop breakdowns plus the aggregated
        # queue-wait vs service-time split (where does latency come from?)
        self.traces: list[dict] = []
        self.queue_wait = LatencyRecorder()
        self.service = LatencyRecorder()
        # per-verb outcome split (wire op → counts + latency); what the
        # --mix flag reports on
        self.by_verb: dict[str, dict] = {}

    def record(self, resp: dict, seconds: float, verb: Optional[str] = None) -> None:
        self.latency.record(seconds)
        if verb is not None:
            vb = self.by_verb.setdefault(
                verb,
                {"sent": 0, "ok": 0, "errors": 0, "shed": 0,
                 "latency": LatencyRecorder()},
            )
            vb["sent"] += 1
            vb["latency"].record(seconds)
            if resp.get("ok"):
                vb["ok"] += 1
            elif resp.get("shed"):
                vb["shed"] += 1
            else:
                vb["errors"] += 1
        if isinstance(resp.get("trace"), dict):
            self._add_trace(resp["trace"])
        if resp.get("ok"):
            self.ok += 1
            return
        cls = _classify(resp)
        self.error_classes[cls] = self.error_classes.get(cls, 0) + 1
        if resp.get("shed"):
            self.shed += 1
            return
        if resp.get("deadline_expired"):
            self.deadline_expired += 1
        self.errors += 1
        if self.first_error is None:
            self.first_error = str(resp.get("error"))

    def _add_trace(self, trace: dict) -> None:
        spans = trace.get("spans") or []
        by_name: dict[str, float] = {}
        for sp in spans:
            name = str(sp.get("name"))
            by_name[name] = by_name.get(name, 0.0) + float(sp.get("dur") or 0.0)
        root = next((sp for sp in spans if sp.get("name") == "request"), None)
        self.traces.append(
            {
                "trace_id": trace.get("trace_id"),
                "total_ms": float(root.get("dur") or 0.0) * 1e3 if root else None,
                "queue_ms": by_name.get("queue_wait", 0.0) * 1e3,
                "rpc_ms": by_name.get("worker_rpc", 0.0) * 1e3,
                "service_ms": by_name.get("worker.service", 0.0) * 1e3,
                "redirects": sum(1 for sp in spans if sp.get("name") == "redirect"),
                "spans": spans,
            }
        )
        self.queue_wait.record(by_name.get("queue_wait", 0.0))
        self.service.record(by_name.get("worker.service", 0.0))

    def split_line(self) -> Optional[str]:
        """One line: where traced-request time went (queue vs service)."""
        if not self.traces:
            return None
        q = self.queue_wait.summary()
        s = self.service.summary()
        return (
            f"traced {len(self.traces)}:"
            f"  queue-wait p50 {q['p50_ms']:.3g}ms p95 {q['p95_ms']:.3g}ms "
            f"p99 {q['p99_ms']:.3g}ms"
            f"  |  service p50 {s['p50_ms']:.3g}ms p95 {s['p95_ms']:.3g}ms "
            f"p99 {s['p99_ms']:.3g}ms"
        )

    def summary(self) -> dict:
        qps = self.sent / self.elapsed_s if self.elapsed_s else float("nan")
        out = {
            "mode": self.mode,
            "sent": self.sent,
            "ok": self.ok,
            "errors": self.errors,
            "shed": self.shed,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "deadline_expired": self.deadline_expired,
            "error_classes": dict(sorted(self.error_classes.items())),
            "elapsed_s": self.elapsed_s,
            "qps": qps,
            "latency": self.latency.summary(),
        }
        if self.by_verb:
            out["verbs"] = {
                verb: {
                    "sent": vb["sent"],
                    "ok": vb["ok"],
                    "errors": vb["errors"],
                    "shed": vb["shed"],
                    "latency": vb["latency"].summary(),
                }
                for verb, vb in sorted(self.by_verb.items())
            }
        if self.traces:
            out["trace_sample"] = list(self.traces)
            out["queue_wait"] = self.queue_wait.summary()
            out["service"] = self.service.summary()
        if self.first_error is not None:
            out["first_error"] = self.first_error
        if self.mutations or self.mutation_errors or self.stale_answers:
            out["mutations"] = self.mutations
            out["mutation_errors"] = self.mutation_errors
            out["stale_answers"] = self.stale_answers
            out["last_generation"] = self.last_generation
            if self.first_mutation_error is not None:
                out["first_mutation_error"] = self.first_mutation_error
            if self.first_stale is not None:
                out["first_stale"] = self.first_stale
        return out


async def run_closed(
    host: str,
    port: int,
    requests: Sequence[dict],
    conns: int = 4,
    *,
    retries: int = 0,
    retry_budget: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    timeout_s: float = 30.0,
    trace_sample: int = 0,
    mutator: Optional[SceneMutator] = None,
    mutate_every: int = 0,
) -> Report:
    """Closed loop: ``conns`` connections, one request in flight each.

    With ``retries > 0``, retryable failures are re-sent with jittered
    backoff (reconnecting first when the failure was a timeout or a
    broken/desynced connection), bounded by the shared retry budget
    (default: half the request count).  ``trace_sample=N`` marks N
    requests with the protocol's ``trace`` flag; their end-to-end span
    breakdowns land in the report (``trace_sample`` / ``queue_wait`` /
    ``service``).  With a ``mutator`` and ``mutate_every=N``, one extra
    connection issues an ``update`` rollover every N completed requests
    (and its oracle probes, when checking) while the query load runs."""
    report = Report("closed")
    budget = _RetryBudget(
        retry_budget if retry_budget is not None else max(1, len(requests) // 2)
    )
    requests = _mark_traced(requests, trace_sample)
    chunks = [list(requests[i::conns]) for i in range(conns)]
    t0 = time.perf_counter()

    async def one_conn(cid: int, chunk: list[dict]) -> None:
        if not chunk:
            return
        rng = random.Random(f"retry|{cid}|{len(chunk)}")
        reader = writer = None

        async def connect() -> None:
            nonlocal reader, writer
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass
            last: Optional[BaseException] = None
            for i in range(3):
                try:
                    reader, writer = await asyncio.open_connection(host, port)
                    return
                except (ConnectionError, OSError) as exc:
                    last = exc
                    await asyncio.sleep(0.05 * (i + 1))
            raise ClusterError(f"cannot reconnect to {host}:{port}: {last}")

        await connect()
        try:
            for k, wire in enumerate(chunk):
                msg = dict(wire, id=k)
                if deadline_ms is not None and "scene" in msg:
                    msg["deadline_ms"] = deadline_ms
                t = time.perf_counter()
                attempt = 0
                while True:
                    try:
                        resp = await asyncio.wait_for(
                            _rpc(reader, writer, msg), timeout_s
                        )
                    except asyncio.TimeoutError:
                        report.timeouts += 1
                        resp = {
                            "ok": False,
                            "retryable": True,
                            "error": f"timeout: no response in {timeout_s}s",
                        }
                        await connect()  # the stream is desynced; start clean
                    except (ClusterError, ConnectionError, OSError) as exc:
                        resp = {
                            "ok": False,
                            "retryable": True,
                            "error": f"connection: {exc}",
                        }
                        await connect()
                    if resp.get("ok") or not _retryable(resp):
                        break
                    if attempt >= retries or not budget.take():
                        break
                    attempt += 1
                    report.retries += 1
                    await asyncio.sleep(_backoff_s(attempt, rng))
                report.record(resp, time.perf_counter() - t, verb=wire.get("op"))
                report.sent += 1
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass

    queries_done = asyncio.Event()

    async def mutate_loop() -> None:
        """The mutating client: one dedicated connection, one rollover
        every ``mutate_every`` completed requests.  Post-ack probes run
        on this same connection, so the stale-read check observes the
        cluster strictly *after* the acknowledged rollover."""
        reader = writer = None
        try:
            reader, writer = await asyncio.open_connection(host, port)
            next_at, mid = mutate_every, 0
            while not queries_done.is_set():
                if report.sent >= next_at:
                    next_at += mutate_every
                    mid += 1
                    try:
                        await mutator.step(reader, writer, mid, report)
                    except (ClusterError, ConnectionError, OSError,
                            asyncio.TimeoutError) as exc:
                        report.mutation_errors += 1
                        if report.first_mutation_error is None:
                            report.first_mutation_error = str(exc)
                        return
                else:
                    await asyncio.sleep(0.002)
        finally:
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):  # pragma: no cover
                    pass

    tasks = [one_conn(i, c) for i, c in enumerate(chunks)]
    mut_task = None
    if mutator is not None and mutate_every > 0:
        mut_task = asyncio.create_task(mutate_loop())
    await asyncio.gather(*tasks)
    queries_done.set()
    if mut_task is not None:
        await mut_task
    report.elapsed_s = time.perf_counter() - t0
    return report


async def run_open(
    host: str,
    port: int,
    requests: Sequence[dict],
    rps: float,
    conns: int = 4,
    *,
    deadline_ms: Optional[float] = None,
    trace_sample: int = 0,
) -> Report:
    """Open loop: fire at ``rps`` on a fixed schedule across ``conns``
    pipelined connections; responses are matched by id.  Duplicate or
    unsolicited frames (a faulty server) are dropped, never recorded."""
    if rps <= 0:
        raise ClusterError(f"open loop needs rps > 0, got {rps}")
    report = Report("open")
    interval = 1.0 / rps
    requests = _mark_traced(requests, trace_sample)
    chunks = [list(requests[i::conns]) for i in range(conns)]
    t0 = time.perf_counter()

    async def one_conn(cid: int, chunk: list[dict]) -> None:
        if not chunk:
            return
        reader, writer = await asyncio.open_connection(host, port)
        sent_at: dict[int, tuple[float, Optional[str]]] = {}
        done = asyncio.Event()

        async def read_loop() -> None:
            remaining = len(chunk)
            while remaining:
                resp = await read_frame(reader)
                if resp is None:
                    break
                entry = sent_at.pop(resp.get("id"), None)
                if entry is None:
                    continue  # duplicate or unsolicited frame
                t_sent, verb = entry
                report.record(resp, time.perf_counter() - t_sent, verb=verb)
                remaining -= 1
            done.set()

        reader_task = asyncio.create_task(read_loop())
        try:
            for k, wire in enumerate(chunk):
                # this connection owns every conns-th tick of the schedule
                target = t0 + (cid + k * conns) * interval
                delay = target - time.perf_counter()
                if delay > 0:
                    await asyncio.sleep(delay)
                msg = dict(wire, id=k)
                if deadline_ms is not None and "scene" in msg:
                    msg["deadline_ms"] = deadline_ms
                sent_at[k] = (time.perf_counter(), wire.get("op"))
                await write_frame(writer, msg)
                report.sent += 1
            await asyncio.wait_for(done.wait(), timeout=60.0)
        finally:
            reader_task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    await asyncio.gather(*(one_conn(i, c) for i, c in enumerate(chunks)))
    report.elapsed_s = time.perf_counter() - t0
    return report


async def _discover_mutator(
    host: str, port: int, *, check: bool, seed: int
) -> SceneMutator:
    """Pick the first updatable scene (``scenes`` verb) and fetch its
    geometry (``describe`` verb) to drive seeded rollovers against."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        resp = await _rpc(reader, writer, {"id": 0, "op": "scenes"})
        if not resp.get("ok"):
            raise ClusterError(f"scenes verb failed: {resp.get('error')}")
        updatable = resp["result"].get("updatable") or []
        if not updatable:
            raise ClusterError(
                "no updatable scene (the front-end needs obstacle-list "
                "sources to serve the update verb)"
            )
        scene = sorted(updatable)[0]
        desc = await _rpc(reader, writer, {"id": 1, "op": "describe", "scene": scene})
        if not desc.get("ok"):
            raise ClusterError(f"describe {scene!r} failed: {desc.get('error')}")
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):  # pragma: no cover
            pass
    return SceneMutator(scene, desc["result"]["scene"], check=check, seed=seed)


async def run(
    host: str,
    port: int,
    *,
    mode: str = "closed",
    n_requests: int = 500,
    rps: float = 500.0,
    conns: int = 4,
    seed: int = 0,
    mix: Sequence[float] = DEFAULT_MIX,
    verb_mix: Optional[dict] = None,
    pairs_per_request: int = 16,
    retries: int = 0,
    retry_budget: Optional[int] = None,
    deadline_ms: Optional[float] = None,
    timeout_s: float = 30.0,
    trace_sample: int = 0,
    mutate_every: int = 0,
    check_updates: bool = False,
) -> Report:
    """Discover, generate, and drive one full load-generation run.

    ``mutate_every=N`` (closed loop only) adds a mutating client that
    rolls one updatable scene to a new generation every N completed
    requests; ``check_updates=True`` additionally builds local oracles
    of both scene versions and fails the probe after any acknowledged
    rollover whose answers are not byte-identical to the oracle."""
    pools = await discover(host, port, seed=seed)
    requests = build_requests(
        pools, n_requests, seed=seed, mix=mix, verb_mix=verb_mix,
        pairs_per_request=pairs_per_request,
    )
    mutator = None
    if mutate_every > 0:
        if mode != "closed":
            raise ClusterError("--mutate-every requires the closed loop")
        mutator = await _discover_mutator(
            host, port, check=check_updates, seed=seed
        )
    if mode == "closed":
        return await run_closed(
            host,
            port,
            requests,
            conns=conns,
            retries=retries,
            retry_budget=retry_budget,
            deadline_ms=deadline_ms,
            timeout_s=timeout_s,
            trace_sample=trace_sample,
            mutator=mutator,
            mutate_every=mutate_every,
        )
    if mode == "open":
        return await run_open(  # mutator is closed-loop only (checked above)
            host,
            port,
            requests,
            rps,
            conns=conns,
            deadline_ms=deadline_ms,
            trace_sample=trace_sample,
        )
    raise ClusterError(f"unknown loadgen mode {mode!r}")
