"""Worker supervision policy: restart backoff and a crash-loop breaker.

The :class:`Supervisor` is the front-end's book-keeper for worker-slot
failures.  It owns no processes and schedules nothing itself — the
front-end calls it at three points and obeys its answers:

* :meth:`record_crash` when a worker dies (pipe EOF, readiness failure,
  respawn error) — appends to the slot's crash window;
* :meth:`allow_restart` before attempting a respawn — ``False`` once a
  slot has crashed more than ``max_restarts`` times inside ``window_s``
  (the *crash-loop circuit breaker*: a scene that segfaults its worker
  on every attach must not burn CPU respawning forever; the slot stays
  down and its scenes fail over to the survivors);
* :meth:`next_backoff` for the pre-respawn sleep — exponential in the
  slot's consecutive-failure count, capped, with multiplicative jitter
  so N slots killed by one event don't respawn in lockstep;
* :meth:`record_restart` when a respawned worker passes readiness —
  resets the consecutive-failure counter (but *not* the crash window:
  a worker that passes readiness and dies again still trips the
  breaker).

Everything is observable through :meth:`stats`, which the cluster
``stats`` verb embeds.  Crash and restart *counts* live in the shared
:class:`~repro.obs.registry.MetricsRegistry` (``repro.supervisor.crashes``
/ ``repro.supervisor.restarts``, labeled by worker slot) — the front-end
passes its registry in, so the ``stats`` verb, the ``health`` verb, and a
``/metrics`` scrape all read the *same* counter instead of three
book-keeping copies that can drift.
"""

from __future__ import annotations

import random
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.obs.logging import get_logger
from repro.obs.registry import MetricsRegistry


@dataclass(frozen=True)
class RestartPolicy:
    """Knobs for one cluster's restart behavior."""

    #: crashes tolerated inside ``window_s`` before the breaker opens
    max_restarts: int = 5
    #: sliding crash-window length, seconds
    window_s: float = 30.0
    #: first backoff; doubles per consecutive failure
    backoff_base_s: float = 0.05
    #: backoff ceiling
    backoff_max_s: float = 2.0
    #: multiplicative jitter fraction (sleep is uniform in [b, b*(1+jitter)])
    jitter: float = 0.5

    def as_dict(self) -> dict:
        return {
            "max_restarts": self.max_restarts,
            "window_s": self.window_s,
            "backoff_base_s": self.backoff_base_s,
            "backoff_max_s": self.backoff_max_s,
            "jitter": self.jitter,
        }


class _Slot:
    """Failure history of one worker id (counts live in the registry)."""

    __slots__ = ("crashes", "attempts", "last_crash", "breaker_open")

    def __init__(self) -> None:
        self.crashes: deque = deque()  # monotonic timestamps inside the window
        self.attempts = 0  # consecutive failures since the last good restart
        self.last_crash: Optional[str] = None
        self.breaker_open = False


class Supervisor:
    """Per-worker-slot restart accounting under one :class:`RestartPolicy`."""

    def __init__(
        self,
        policy: Optional[RestartPolicy] = None,
        *,
        seed: int = 0,
        time_fn: Callable[[], float] = time.monotonic,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.policy = policy or RestartPolicy()
        self._time = time_fn
        self._rng = random.Random(f"supervisor|{seed}")
        self._slots: Dict[int, _Slot] = {}
        self.registry = registry if registry is not None else MetricsRegistry()
        self._m_crashes = self.registry.counter(
            "repro.supervisor.crashes",
            "worker-slot crashes (pipe EOF, readiness failure, respawn error)",
            labels=["worker"],
        )
        self._m_restarts = self.registry.counter(
            "repro.supervisor.restarts",
            "worker-slot respawns that passed the readiness gate",
            labels=["worker"],
        )

    def _slot(self, wid: int) -> _Slot:
        if wid not in self._slots:
            self._slots[wid] = _Slot()
        return self._slots[wid]

    def _prune(self, slot: _Slot) -> None:
        horizon = self._time() - self.policy.window_s
        while slot.crashes and slot.crashes[0] < horizon:
            slot.crashes.popleft()

    # -- the front-end's three questions --------------------------------
    def record_crash(self, wid: int, reason: str) -> None:
        slot = self._slot(wid)
        slot.crashes.append(self._time())
        slot.attempts += 1
        slot.last_crash = str(reason).splitlines()[0][:200] if reason else "unknown"
        self._m_crashes.inc(worker=str(wid))

    def allow_restart(self, wid: int) -> bool:
        slot = self._slot(wid)
        if slot.breaker_open:
            return False
        self._prune(slot)
        if len(slot.crashes) > self.policy.max_restarts:
            slot.breaker_open = True
            get_logger("supervisor").event(
                "breaker_open", force=True, worker=wid,
                crashes_in_window=len(slot.crashes),
                window_s=self.policy.window_s,
            )
            return False
        return True

    def next_backoff(self, wid: int) -> float:
        slot = self._slot(wid)
        base = min(
            self.policy.backoff_base_s * (2 ** max(0, slot.attempts - 1)),
            self.policy.backoff_max_s,
        )
        return base * (1.0 + self._rng.random() * self.policy.jitter)

    def record_restart(self, wid: int) -> None:
        slot = self._slot(wid)
        slot.attempts = 0
        self._m_restarts.inc(worker=str(wid))
        get_logger("supervisor").event("restart", worker=wid)

    # -- introspection --------------------------------------------------
    def last_crash(self, wid: int) -> Optional[str]:
        return self._slots[wid].last_crash if wid in self._slots else None

    @property
    def total_restarts(self) -> int:
        return int(self._m_restarts.total())

    @property
    def total_crashes(self) -> int:
        return int(self._m_crashes.total())

    def stats(self) -> dict:
        out: dict = {
            "policy": self.policy.as_dict(),
            "total_restarts": self.total_restarts,
            "total_crashes": self.total_crashes,
            "workers": {},
        }
        for wid in sorted(self._slots):
            slot = self._slots[wid]
            self._prune(slot)
            out["workers"][str(wid)] = {
                "restarts": int(self._m_restarts.value(worker=str(wid))),
                "crashes": int(self._m_crashes.value(worker=str(wid))),
                "crashes_in_window": len(slot.crashes),
                "consecutive_failures": slot.attempts,
                "last_crash": slot.last_crash,
                "breaker_open": slot.breaker_open,
            }
        return out
