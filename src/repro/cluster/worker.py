"""The cluster worker: one process, one shard of scenes, one QueryServer.

A worker is deliberately thin: it wraps the *existing* serving stack —
a :class:`~repro.serve.store.SceneStore` whose resident scenes attach
from shared memory (or load snapshots / build, for unshared deployments)
under a :class:`~repro.serve.server.QueryServer` — behind a blocking
request loop on a ``multiprocessing`` pipe.  The front-end sends one
batch at a time per worker (lockstep), so the loop needs no internal
concurrency; parallelism comes from running N workers.

Batches take the coalescing fast path: every ``length``/``lengths``
entry in the batch is expanded into ``QueryServer`` requests and
answered in a single ``submit`` (one matrix gather per scene).  If any
request in the batch is individually bad — unknown scene, endpoint
inside an obstacle — the batch falls back to per-request answering so
one poisoned request fails alone instead of failing its batchmates.

``worker_main`` is a module-level function with JSON-plain arguments, so
it spawns identically under the ``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import os
import time
from typing import Optional, Sequence

import numpy as np

from repro.errors import ObsError, ReproError
from repro.obs.recorders import BatchHistogram, LatencyRecorder
from repro.obs.registry import (
    DEFAULT_SIZE_BUCKETS,
    MetricsRegistry,
    default_registry,
)
from repro.serve.server import QueryServer, Request
from repro.serve.store import SceneStore


def _as_point(v) -> tuple:
    try:
        x, y = v
        return (int(x), int(y))
    except (TypeError, ValueError):
        raise ReproError(f"not a point: {v!r}")


def register_scene(store: SceneStore, spec: dict) -> None:
    """Register one scene spec: ``{"name", "kind", ...}`` where kind is
    ``shm`` (manifest), ``snapshot`` (path), or ``build`` (a JSON scene
    dict under ``"scene"`` — the canonical :mod:`repro.scene` schema, so
    specs survive pickling under spawn and a malformed scene fails with
    the same one-line message the CLI prints)."""
    name, kind = spec["name"], spec["kind"]
    if kind == "shm":
        manifest = spec["manifest"]

        def attach_builder():
            from repro.serve.shm import attach

            return attach(manifest)

        store.add_builder(name, attach_builder)
    elif kind == "snapshot":
        fallback = None
        if spec.get("scene") is not None:
            from repro.scene import Scene

            scene = Scene.from_dict(spec["scene"])

            def fallback():
                from repro.pipeline import build_index

                return build_index(
                    scene,
                    engine=spec.get("engine", "parallel"),
                    cache=store.stage_cache,
                )

        store.add_snapshot(name, spec["path"], fallback=fallback)
    elif kind == "build":
        from repro.scene import Scene

        scene = Scene.from_dict(spec["scene"])

        def build_builder():
            from repro.pipeline import build_index

            return build_index(
                scene, engine=spec.get("engine", "parallel"), cache=store.stage_cache
            )

        store.add_builder(name, build_builder)
    else:
        raise ReproError(f"unknown scene spec kind {kind!r}")


def memory_info() -> dict:
    """This process's memory footprint: total RSS plus the *private*
    portion (``smaps_rollup``), which is the number that must stay flat
    when scenes are shared — RSS counts shared pages once per process
    that touches them, private counts only what a copy would cost."""
    out = {"rss_bytes": None, "private_bytes": None}
    try:
        page = os.sysconf("SC_PAGE_SIZE")
        with open("/proc/self/statm") as fh:
            out["rss_bytes"] = int(fh.read().split()[1]) * page
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-linux
        pass
    try:
        private = 0
        with open("/proc/self/smaps_rollup") as fh:
            for line in fh:
                if line.startswith(("Private_Clean:", "Private_Dirty:")):
                    private += int(line.split()[1]) * 1024
        out["private_bytes"] = private
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-linux
        pass
    return out


class _WorkerState:
    """Everything one worker process owns, factored for direct testing."""

    def __init__(
        self,
        worker_id: int,
        scene_specs: Sequence[dict],
        options: dict,
        registry: Optional[MetricsRegistry] = None,
    ):
        self.worker_id = worker_id
        self.store = SceneStore(max_bytes=options.get("max_bytes"))
        for spec in scene_specs:
            register_scene(self.store, spec)
        self.server = QueryServer(self.store)
        self.service = LatencyRecorder()
        self.batch_hist = BatchHistogram()
        self.scene_counts: dict[str, int] = {}
        self.requests = 0
        self.errors = 0
        self.updates = 0  # scene-generation rollovers applied
        self.started = time.monotonic()
        # the process registry: what the `metrics` verb snapshots.  In a
        # spawned worker this is the (reset) process default, so pipeline
        # builds running inside this process land in the same snapshot.
        self.registry = registry if registry is not None else default_registry()
        self._m_requests = self.registry.counter(
            "repro.worker.requests", "requests answered by this worker",
            labels=["scene"],
        )
        self._m_errors = self.registry.counter(
            "repro.worker.errors", "requests answered not-ok by this worker"
        )
        self._m_service = self.registry.histogram(
            "repro.worker.service_seconds", "per-batch service time"
        )
        self._m_batch = self.registry.histogram(
            "repro.worker.batch_size", "batch sizes as seen by the worker",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self._m_updates = self.registry.counter(
            "repro.worker.updates", "scene-generation rollovers applied",
            labels=["scene"],
        )
        self.registry.add_collector(self._collect)

    def _collect(self) -> None:
        """Refresh store/server gauges at snapshot time (not per request)."""
        g = self.registry.gauge
        st = self.store.stats()
        for key in ("scenes", "resident", "resident_bytes", "pinned",
                    "hits", "misses", "evictions", "loads", "builds",
                    "quarantined", "swaps", "retired_generations",
                    "retired_pins"):
            g(f"repro.store.{key}", f"SceneStore {key}").set(float(st[key]))
        sv = self.server.stats()
        for key in ("requests", "batches", "coalesced_groups", "largest_group"):
            g(f"repro.server.{key}", f"QueryServer {key}").set(float(sv[key]))
        cache = self.store.stage_cache
        if cache is None:  # store delegates to the process-default cache
            from repro.pipeline import default_cache

            cache = default_cache()
        cs = cache.stats()
        g("repro.stage_cache.entries", "stage-cache entries").set(float(cs["entries"]))
        g("repro.stage_cache.bytes", "stage-cache resident bytes").set(float(cs["bytes"]))
        hits = g("repro.stage_cache.hits", "stage-cache hits", labels=["stage"])
        misses = g("repro.stage_cache.misses", "stage-cache misses", labels=["stage"])
        for stage, n in cs["hits"].items():
            hits.set(float(n), stage=stage)
        for stage, n in cs["misses"].items():
            misses.set(float(n), stage=stage)

    # -- batch answering ------------------------------------------------
    def answer_batch(self, requests: Sequence[dict]) -> list[dict]:
        t0 = time.perf_counter()
        wall0 = time.time()
        try:
            results = self._answer_coalesced(requests)
        except (ReproError, KeyError, ValueError, TypeError):
            # one poisoned request — bad endpoint, missing field,
            # malformed pair list — must not fail its batchmates (let
            # alone the worker): retry each alone, catching per-request
            results = [self._answer_one(r) for r in requests]
        dt = time.perf_counter() - t0
        self.service.record(dt)
        self._m_service.observe(dt)
        if requests:
            self.batch_hist.observe(len(requests))
            self._m_batch.observe(len(requests))
        self.requests += len(requests)
        n_err = sum(1 for r in results if not r.get("ok"))
        self.errors += n_err
        if n_err:
            self._m_errors.inc(n_err)
        for r, res in zip(requests, results):
            scene = r.get("scene")
            if scene:
                self.scene_counts[scene] = self.scene_counts.get(scene, 0) + 1
                try:
                    self._m_requests.inc(scene=str(scene))
                except ObsError:  # scene count past the cardinality bound
                    self._m_requests.inc(scene="other")
            if r.get("trace") and isinstance(res, dict):
                # the front-end folds this into the request's span tree;
                # wall-clock t0 so it lines up on a shared timeline
                res["worker_span"] = {
                    "name": "worker.service",
                    "t0": wall0,
                    "dur": dt,
                    "attrs": {"worker": self.worker_id, "batch_size": len(requests)},
                }
        return results

    def _answer_coalesced(self, requests: Sequence[dict]) -> list[dict]:
        flat: list[Request] = []
        # per request: ("one", k, op) | ("many", k, count, op) | ("local", r)
        spans: list = []
        for r in requests:
            op = r.get("op")
            if op in ("length", "path", "minlink", "pareto"):
                spans.append(("one", len(flat), op))
                flat.append(
                    Request(r["scene"], _as_point(r["p"]), _as_point(r["q"]), op=op)
                )
            elif op in ("lengths", "links"):
                pairs = r.get("pairs") or []
                spans.append(("many", len(flat), len(pairs), op))
                sub = "length" if op == "lengths" else "minlink"
                for p, q in pairs:
                    flat.append(
                        Request(r["scene"], _as_point(p), _as_point(q), op=sub)
                    )
            else:
                # defer local ops (stats/sleep/...) to the output phase:
                # if a later request poisons this parse, the fallback
                # path must not execute them a second time
                spans.append(("local", r))
        values = self.server.submit(flat) if flat else []
        out: list[dict] = []
        for span in spans:
            if span[0] == "one":
                _, k, op = span
                out.append({"ok": True, "result": _jsonify_op(op, values[k])})
            elif span[0] == "many":
                _, k, count, op = span
                conv = _jsonify if op == "lengths" else _jsonify_link
                out.append(
                    {"ok": True, "result": [conv(v) for v in values[k : k + count]]}
                )
            else:
                out.append(self._answer_local(span[1]))
        return out

    def _answer_one(self, r: dict) -> dict:
        try:
            op = r.get("op")
            if op == "length":
                with self.store.using(r["scene"]) as idx:
                    return {"ok": True, "result": _jsonify(idx.length(_as_point(r["p"]), _as_point(r["q"])))}
            if op == "lengths":
                with self.store.using(r["scene"]) as idx:
                    vals = idx.lengths(
                        [(_as_point(p), _as_point(q)) for p, q in r.get("pairs") or []]
                    )
                return {"ok": True, "result": [_jsonify(v) for v in np.asarray(vals).tolist()]}
            if op == "path":
                with self.store.using(r["scene"]) as idx:
                    path = idx.shortest_path(_as_point(r["p"]), _as_point(r["q"]))
                return {"ok": True, "result": [[int(x), int(y)] for x, y in path]}
            if op == "minlink":
                with self.store.using(r["scene"]) as idx:
                    links = idx.min_links(_as_point(r["p"]), _as_point(r["q"]))
                return {"ok": True, "result": _jsonify_op("minlink", links)}
            if op == "links":
                with self.store.using(r["scene"]) as idx:
                    counts = idx.link_counts(
                        [(_as_point(p), _as_point(q)) for p, q in r.get("pairs") or []]
                    )
                return {"ok": True, "result": [_jsonify_link(v) for v in counts]}
            if op == "pareto":
                with self.store.using(r["scene"]) as idx:
                    front = idx.paretos([(_as_point(r["p"]), _as_point(r["q"]))])[0]
                return {"ok": True, "result": _jsonify_op("pareto", front)}
            return self._answer_local(r)
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        except KeyError as exc:
            return {"ok": False, "error": f"request missing field {exc}"}
        except (ValueError, TypeError) as exc:
            return {"ok": False, "error": f"malformed request: {exc}"}

    def _answer_local(self, r: dict) -> dict:
        """Ops answered by the worker itself, outside the query path."""
        try:
            op = r.get("op")
            if op == "stats":
                return {"ok": True, "result": self.stats()}
            if op == "metrics":
                return {"ok": True, "result": self.registry.snapshot()}
            if op == "endpoints":
                return {"ok": True, "result": self._endpoints(r)}
            if op == "ping":
                return {"ok": True, "result": "pong"}
            if op == "health":
                return {
                    "ok": True,
                    "result": {
                        "worker": self.worker_id,
                        "status": "serving",
                        "uptime_s": time.monotonic() - self.started,
                    },
                }
            if op == "update":
                return {"ok": True, "result": self._apply_update(r["spec"])}
            if op == "sleep":
                # diagnostic: occupy this worker for a bounded interval
                # (load-shedding tests and drain drills)
                time.sleep(min(float(r.get("ms", 1.0)), 1000.0) / 1e3)
                return {"ok": True, "result": "slept"}
            return {"ok": False, "error": f"unknown op {op!r}"}
        except ReproError as exc:
            return {"ok": False, "error": str(exc)}
        except (KeyError, ValueError, TypeError) as exc:
            return {"ok": False, "error": f"malformed request: {exc!r}"}

    def _apply_update(self, spec: dict) -> dict:
        """Roll scene ``spec["name"]`` to its next generation.

        The rollover protocol's worker half: the front-end republished
        the scene (a new shm segment, or a new scene dict to build from)
        and broadcasts the new spec to every worker.  A worker holding
        the scene *resident* attaches/builds the new generation eagerly
        and :meth:`SceneStore.swap`\\ s it in — in-flight readers finish
        on the pinned old index, every later request sees the new one.
        A worker that does not have the scene resident only replaces the
        source (:meth:`SceneStore.replace_source`) and attaches lazily
        if routing ever sends it a request — acknowledging a rollover
        for a scene you don't serve costs O(1).
        """
        name, kind = spec["name"], spec["kind"]
        if kind == "shm":
            manifest = spec["manifest"]

            def builder():
                from repro.serve.shm import attach

                return attach(manifest)

        elif kind in ("build", "snapshot") and spec.get("scene") is not None:
            from repro.scene import Scene

            scene = Scene.from_dict(spec["scene"])

            def builder():
                from repro.pipeline import build_index

                return build_index(
                    scene,
                    engine=spec.get("engine", "parallel"),
                    cache=self.store.stage_cache,
                )

        else:
            raise ReproError(f"cannot roll scene {name!r} from spec kind {kind!r}")
        resident = name in self.store.resident()
        if resident:
            old_idx = self.store.get(name)
            gen = self.store.swap(name, builder(), source=builder)
            # the superseded attachment: close the mapping once no
            # retired pins reference it (best effort; with live views
            # close() is a no-op and process exit reclaims the mapping)
            handle = getattr(old_idx, "shm_handle", None)
            if handle is not None and not self.store.leaked_pins():
                del old_idx
                handle.close()
        else:
            gen = self.store.replace_source(name, builder)
        self.updates += 1
        try:
            self._m_updates.inc(scene=str(name))
        except ObsError:  # scene count past the cardinality bound
            self._m_updates.inc(scene="other")
        return {"scene": name, "generation": gen, "resident": resident}

    def _endpoints(self, r: dict) -> dict:
        from repro.workloads.requests import scene_endpoints

        with self.store.using(r["scene"]) as idx:
            verts, free = scene_endpoints(
                idx, k_free=int(r.get("k", 32)), seed=int(r.get("seed", 0))
            )
        cap = int(r.get("cap", 128))
        return {
            "vertices": [[int(x), int(y)] for x, y in verts[:cap]],
            "free": [[int(x), int(y)] for x, y in free[:cap]],
        }

    # -- introspection --------------------------------------------------
    def stats(self) -> dict:
        return {
            "worker": self.worker_id,
            "uptime_s": time.monotonic() - self.started,
            "requests": self.requests,
            "errors": self.errors,
            "updates": self.updates,
            "service": self.service.summary(),
            "batch_size_hist": self.batch_hist.as_dict(),
            "scenes": dict(self.scene_counts),
            "store": self.store.stats(),
            "server": self.server.stats(),
            "memory": memory_info(),
        }

    def close(self) -> None:
        """Detach shm-backed scenes (best effort; process exit finishes)."""
        for name in list(self.store.resident()):
            entry_idx = self.store.get(name)
            handle = getattr(entry_idx, "shm_handle", None)
            if handle is not None:
                handle.close()


def worker_main(
    conn, worker_id: int, scene_specs: Sequence[dict], options: Optional[dict] = None
) -> None:
    """Entry point of a worker process: serve batches from ``conn`` until
    a ``shutdown`` message (or EOF) arrives."""
    import signal

    # the front-end coordinates shutdown; a terminal ^C must not kill
    # workers mid-batch before the front-end has failed their futures
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    # under the fork start method the child inherits the parent's default
    # registry contents; this worker's snapshot must cover only its own life
    default_registry().reset()
    state = _WorkerState(worker_id, scene_specs, options or {})
    # fault injection (chaos harness): stall every Nth batch; absent from
    # the options dict in production, so the hot loop only pays an `if`
    faults = (options or {}).get("faults") or {}
    stall_every = int(faults.get("stall_every") or 0)
    stall_ms = float(faults.get("stall_ms") or 0.0)
    batches = 0
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            op = msg.get("op")
            if op == "shutdown":
                conn.send({"seq": msg.get("seq"), "bye": True})
                break
            if op == "batch":
                batches += 1
                if stall_every and stall_ms > 0 and batches % stall_every == 0:
                    time.sleep(min(stall_ms, 5000.0) / 1e3)
                requests = msg.get("requests") or []
                try:
                    results = state.answer_batch(requests)
                except Exception as exc:  # noqa: BLE001 - last-resort guard:
                    # no request content may ever take the worker down
                    results = [
                        {"ok": False, "error": f"worker error: {exc!r:.200}"}
                        for _ in requests
                    ]
                conn.send({"seq": msg.get("seq"), "results": results})
            else:  # protocol error from the front-end side; answer, don't die
                conn.send(
                    {"seq": msg.get("seq"), "results": [],
                     "error": f"unknown worker op {op!r}"}
                )
    finally:
        state.close()
        try:
            conn.close()
        except OSError:  # pragma: no cover - already closed
            pass


def _jsonify(v):
    """A query result as a JSON-safe value (floats stay floats; inf is
    JSON-hostile, so disconnected pairs travel as the string "inf")."""
    if isinstance(v, list):  # a path polyline
        return [[int(x), int(y)] for x, y in v]
    f = float(v)
    if f != f or f in (float("inf"), float("-inf")):
        return "inf"
    return f


def _jsonify_link(v):
    """A min-link count as a JSON-safe value: an int, or "inf" for a
    disconnected (or obstacle-enclosed) pair."""
    f = float(v)
    if f != f or f in (float("inf"), float("-inf")):
        return "inf"
    return int(f)


def _jsonify_op(op: str, v):
    """One QueryServer answer as its wire shape, per verb: length →
    float, path → ``[[x, y], ...]``, minlink → ``{"links", "bends"}``,
    pareto → ``[[length, bends], ...]`` (frontier order: increasing
    bends, strictly decreasing length)."""
    if op == "minlink":
        links = _jsonify_link(v)
        bends = max(links - 1, 0) if links != "inf" else "inf"
        return {"links": links, "bends": bends}
    if op == "pareto":
        return [[float(length), int(bends)] for length, bends in v]
    return _jsonify(v)
