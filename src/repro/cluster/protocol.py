"""The cluster wire protocol: length-prefixed JSON frames.

One frame = a 4-byte big-endian unsigned length followed by that many
bytes of UTF-8 JSON encoding one object.  Requests carry a client-chosen
``id`` that the response echoes; responses on one connection always come
back in request order (the front-end guarantees it), so a lockstep client
never needs the id at all — it exists for pipelined clients.

Request objects::

    {"id": 7, "op": "length",  "scene": "a", "p": [x, y], "q": [x, y]}
    {"id": 8, "op": "lengths", "scene": "a", "pairs": [[[x,y],[x,y]], ...]}
    {"id": 9, "op": "path",    "scene": "a", "p": [x, y], "q": [x, y]}
    {"id": 4, "op": "minlink", "scene": "a", "p": [x, y], "q": [x, y]}
    {"id": 5, "op": "links",   "scene": "a", "pairs": [[[x,y],[x,y]], ...]}
    {"id": 6, "op": "pareto",  "scene": "a", "p": [x, y], "q": [x, y]}
    {"id": 0, "op": "endpoints", "scene": "a", "k": 32, "seed": 0}
    {"id": 1, "op": "scenes"}          # scene → worker assignment + live set
    {"id": 2, "op": "stats"}           # cluster-wide stats (registry view)
    {"id": 3, "op": "ping"}
    {"id": 4, "op": "health"}          # liveness: status/workers_alive/restarts
    {"id": 5, "op": "drain"}           # graceful drain; acks once queues empty
    {"id": 6, "op": "metrics"}         # merged MetricsRegistry snapshot
                                       # (front-end + every live worker,
                                       # worker series labeled worker="<id>")
    {"id": 7, "op": "trace",           # recent spans from the front-end's
     "limit": 512,                     # bounded SpanBuffer; optionally one
     "trace_id": "..."}                # trace only
    {"id": 8, "op": "describe",        # a scene's full geometry (the v2
     "scene": "a"}                     # JSON dict), generation, and hash
    {"id": 9, "op": "update",          # apply an obstacle delta: zero-
     "scene": "a",                     # downtime rollover to the next
     "delta": {"ops": [               # scene generation
         {"op": "delete", "rect": [xlo, ylo, xhi, yhi]},
         {"op": "insert", "polygon": [[x, y], ...]}]}}

The link-query family rides the same scene-op plumbing as lengths:
``minlink`` answers ``{"links": k, "bends": max(k-1, 0)}`` (the string
``"inf"`` for both when the pair is disconnected), ``links`` is its bulk
form answering a list of counts (paralleling ``lengths``), and
``pareto`` answers the full (length, bends) frontier as
``[[length, bends], ...]`` sorted by increasing bends with strictly
decreasing length.  All three coalesce inside the worker's QueryServer
— same-scene same-verb requests in one micro-batch share DP runs — and
all three honor ``deadline_ms`` and ``trace`` like any scene op.

The ``update`` verb is the cluster's only mutation path.  The delta is
the JSON form of :class:`repro.scene.SceneDelta`; the front-end repairs
its index incrementally (byte-identical to a cold rebuild of the edited
scene), republishes the scene's shared-memory segment under generation
N+1, and broadcasts the new manifest to every worker.  In-flight batches
finish on the *pinned* old generation; requests admitted after the
``update`` response returns ``ok`` are answered from the new one — the
response is the linearization point.  The result carries the new
``generation``, the new ``scene_hash``, and a ``repair`` provenance dict
(entries reused vs recomputed).  ``describe`` returns the geometry that
deltas apply to — only scenes registered with geometry (obstacle lists,
or pipeline-built indexes) are describable/updatable.

Every scene op may carry ``"deadline_ms": <number>`` — a *relative*
latency budget.  A request still queued when its budget runs out is
expired with a distinct error instead of serving stale work.

Every scene op may also carry ``"trace": true`` to request end-to-end
tracing: the front-end generates (or adopts, from ``"trace_id"``) a
trace id, records spans for queue wait, worker RPC, redirect hops, and
the worker's service time, and attaches them to the response as
``"trace": {"trace_id": ..., "spans": [...]}``.  Traced responses also
land in the front-end's span buffer, where the ``trace`` verb (and
``python -m repro trace``) can read them later.

Response objects::

    {"id": 7, "ok": true,  "result": 42.0}
    {"id": 8, "ok": false, "error": "one-line reason"}
    {"id": 9, "ok": false, "error": "overloaded: ...", "shed": true}
    {"id": 5, "ok": false, "error": "worker 1 died: ...", "retryable": true}
    {"id": 6, "ok": false, "error": "deadline expired ...",
     "deadline_expired": true}

``shed: true`` marks a load-shedding rejection — the request was never
queued and it is safe (and expected) for the client to retry elsewhere
or later.  ``retryable: true`` marks a failure the front-end could not
redirect (a worker died and no survivor could take the work *right
now*); every scene op is an idempotent read, so re-sending is always
safe and usually succeeds once the supervisor restarts the worker.
``deadline_expired: true`` means the work was *not* executed — the
request aged out in a queue; a retry starts a fresh budget.  Any other
error is a real per-request failure that a retry will not fix.

Frames above :data:`MAX_FRAME` are refused on both sides: a front-end
must never be OOM-able by one client, and a malformed length prefix
(e.g. a client speaking HTTP at us) dies quickly with a one-line error.
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
from typing import Optional

from repro.errors import ClusterError

#: frame length prefix: 4-byte big-endian unsigned
_PREFIX = struct.Struct(">I")

#: hard cap on one frame's body (requests *and* responses)
MAX_FRAME = 32 << 20


def encode_frame(obj) -> bytes:
    """Serialize one protocol object to its wire bytes."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ClusterError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    return _PREFIX.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        obj = json.loads(body.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ClusterError(f"undecodable frame: {exc}")
    if not isinstance(obj, dict):
        raise ClusterError(f"frame must encode an object, got {type(obj).__name__}")
    return obj


async def read_frame(reader: asyncio.StreamReader) -> Optional[dict]:
    """One frame from an asyncio stream; ``None`` on clean EOF."""
    try:
        prefix = await reader.readexactly(_PREFIX.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ClusterError("connection closed mid-frame")
    (length,) = _PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise ClusterError(f"frame of {length} bytes exceeds MAX_FRAME")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ClusterError("connection closed mid-frame")
    return decode_body(body)


async def write_frame(writer: asyncio.StreamWriter, obj) -> None:
    writer.write(encode_frame(obj))
    await writer.drain()


# -- synchronous helpers (simple clients, tests, examples) --------------
def send_frame(sock: socket.socket, obj) -> None:
    sock.sendall(encode_frame(obj))


def recv_frame(sock: socket.socket) -> Optional[dict]:
    """One frame from a blocking socket; ``None`` on clean EOF."""
    prefix = _recv_exactly(sock, _PREFIX.size)
    if prefix is None:
        return None
    (length,) = _PREFIX.unpack(prefix)
    if length > MAX_FRAME:
        raise ClusterError(f"frame of {length} bytes exceeds MAX_FRAME")
    body = _recv_exactly(sock, length)
    if body is None:
        raise ClusterError("connection closed mid-frame")
    return decode_body(body)


def _recv_exactly(sock: socket.socket, n: int) -> Optional[bytes]:
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(n - got)
        if not chunk:
            return None if not chunks else _raise_midframe()
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def _raise_midframe():
    raise ClusterError("connection closed mid-frame")
