"""Scene → worker routing by rendezvous (highest-random-weight) hashing.

Every scene is served by exactly one worker (its matrices live in shared
memory, but the §6.4/§8 lazy substructures and the per-scene LRU state
are per-process — sharding keeps those warm in one place).  Rendezvous
hashing gives the assignment three properties a modulo scheme lacks:

* **stateless** — any process computes the same assignment from the
  scene name and the worker count alone; nothing to gossip;
* **minimal disruption** — removing one worker only moves the scenes
  that worker owned; everything else keeps its assignment (tested);
* **pinnable** — explicit overrides win over the hash, for operators
  who know one scene is hot enough to deserve a dedicated worker.

Hashes are SHA-256 over ``scene|worker`` — stable across processes,
machines, and Python releases (unlike ``hash()``, which is salted).
"""

from __future__ import annotations

import hashlib
from typing import Mapping, Optional, Sequence


def hrw_score(scene: str, worker: int) -> int:
    """The rendezvous weight of ``worker`` for ``scene`` (256-bit int)."""
    digest = hashlib.sha256(f"{scene}|{worker}".encode("utf-8")).digest()
    return int.from_bytes(digest, "big")


def assign_worker(
    scene: str,
    n_workers: int,
    pins: Optional[Mapping[str, int]] = None,
) -> int:
    """The worker id (``0 .. n_workers-1``) that owns ``scene``.

    ``pins`` maps scene names to explicit worker ids and wins over the
    hash; a pin outside the worker range is a configuration error.
    """
    if n_workers <= 0:
        raise ValueError(f"need at least one worker, got {n_workers}")
    if pins and scene in pins:
        wid = int(pins[scene])
        if not 0 <= wid < n_workers:
            raise ValueError(
                f"scene {scene!r} is pinned to worker {wid}, but only "
                f"{n_workers} workers exist"
            )
        return wid
    return max(range(n_workers), key=lambda w: hrw_score(scene, w))


def assignment(
    scenes: Sequence[str],
    n_workers: int,
    pins: Optional[Mapping[str, int]] = None,
) -> dict[str, int]:
    """Scene name → owning worker id for a whole scene set."""
    return {s: assign_worker(s, n_workers, pins) for s in scenes}


def shards(
    scenes: Sequence[str],
    n_workers: int,
    pins: Optional[Mapping[str, int]] = None,
) -> list[list[str]]:
    """Per-worker scene lists (inverse of :func:`assignment`), every
    worker present even when its shard is empty."""
    out: list[list[str]] = [[] for _ in range(n_workers)]
    for scene, wid in assignment(scenes, n_workers, pins).items():
        out[wid].append(scene)
    for shard in out:
        shard.sort()
    return out
