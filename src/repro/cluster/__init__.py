"""Horizontal serving: sharded workers over shared-memory snapshots.

``repro.serve`` answers queries in one process; this package is the
layer that spreads the same stack across N processes without copying a
single distance matrix — and keeps it serving while pieces of it fail:

* :mod:`repro.cluster.hashing` — rendezvous (HRW) scene → worker
  routing with explicit pin overrides;
* :mod:`repro.cluster.protocol` — the length-prefixed JSON wire format,
  including deadlines and the ``health``/``drain`` lifecycle verbs;
* :mod:`repro.cluster.worker` — the worker process: a
  :class:`~repro.serve.server.QueryServer` over a
  :class:`~repro.serve.store.SceneStore` whose scenes attach from
  :mod:`repro.serve.shm` segments;
* :mod:`repro.cluster.frontend` — the asyncio TCP front-end:
  micro-batching, bounded queues, load shedding, deadline expiry,
  ordered responses, and failover routing over the live worker set;
* :mod:`repro.cluster.supervisor` — restart backoff policy and the
  crash-loop circuit breaker behind worker supervision;
* :mod:`repro.cluster.faults` — the deterministic fault-injection
  harness (worker kills, frame faults, batch stalls, snapshot bitflips);
* :mod:`repro.cluster.loadgen` — open/closed-loop load generation with
  percentile reporting and retry/backoff with a run-wide retry budget.

``python -m repro cluster`` and ``python -m repro loadgen`` are the CLI
faces of this package; see README "Cluster serving" and "Failure
semantics".
"""

from repro.cluster.faults import FaultInjector, FaultPlan, bitflip_file
from repro.cluster.frontend import ClusterFrontend, run_cluster
from repro.cluster.hashing import assign_worker, assignment, hrw_score, shards
from repro.cluster.loadgen import Report, build_requests, discover
from repro.cluster.protocol import (
    MAX_FRAME,
    encode_frame,
    read_frame,
    recv_frame,
    send_frame,
    write_frame,
)
from repro.cluster.supervisor import RestartPolicy, Supervisor
from repro.cluster.worker import register_scene, worker_main

__all__ = [
    "ClusterFrontend",
    "run_cluster",
    "assign_worker",
    "assignment",
    "hrw_score",
    "shards",
    "Report",
    "build_requests",
    "discover",
    "MAX_FRAME",
    "encode_frame",
    "read_frame",
    "recv_frame",
    "send_frame",
    "write_frame",
    "register_scene",
    "worker_main",
    "FaultPlan",
    "FaultInjector",
    "bitflip_file",
    "RestartPolicy",
    "Supervisor",
]
