"""Deterministic fault injection for the cluster (the chaos harness).

A :class:`FaultPlan` is a plain, JSON-serializable description of the
faults one run should suffer; a :class:`FaultInjector` is its runtime —
counters plus the hooks the front-end calls.  With no plan configured
every hook site is a no-op (``frontend.injector is None``), so the
production data path pays one attribute check and nothing else.

Fault classes, and where they bite:

* **kill_every** — after every Nth admitted scene request, SIGKILL one
  live worker process (``kill_worker`` pins the victim; by default the
  victims rotate).  Exercises the whole recovery stack: pipe-EOF
  detection, in-flight batch redirection, failover routing, supervised
  respawn and rejoin.
* **delay_every/delay_ms, duplicate_every, truncate_every** — response
  frame faults injected in the front-end's per-connection writer:
  a late frame, the same frame twice, or half a frame followed by a
  closed connection.  Exercises client-side timeouts, duplicate-id
  skipping, and reconnect-and-retry.
* **stall_every/stall_ms** — worker-side: every Nth batch sleeps before
  answering.  Exercises deadline expiry of queued requests (the stalled
  worker's queue goes stale while it naps).

``bitflip_file`` flips one bit of an on-disk artifact — the canonical
way to manufacture a corrupt ``.rsp`` snapshot for quarantine tests.

>>> plan = FaultPlan(kill_every=200)
>>> plan = FaultPlan.from_dict({"delay_every": 10, "delay_ms": 50})
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import pathlib
import random
import signal
from dataclasses import dataclass
from typing import Optional, Union

from repro.cluster.protocol import encode_frame, write_frame
from repro.errors import ClusterError

PathLike = Union[str, pathlib.Path]


@dataclass(frozen=True)
class FaultPlan:
    """One run's faults; all counts are 1-based 'every Nth' triggers."""

    #: SIGKILL a live worker after every Nth admitted scene request
    kill_every: int = 0
    #: fixed victim worker id (None → rotate over live workers)
    kill_worker: Optional[int] = None
    #: stop killing after this many kills (0 → unlimited)
    max_kills: int = 0
    #: delay every Nth response frame ...
    delay_every: int = 0
    #: ... by this many milliseconds
    delay_ms: float = 0.0
    #: write every Nth response frame twice
    duplicate_every: int = 0
    #: cut every Nth response frame in half and close the connection
    truncate_every: int = 0
    #: worker-side: sleep before answering every Nth batch ...
    stall_every: int = 0
    #: ... for this many milliseconds
    stall_ms: float = 0.0

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        bad = sorted(set(d) - known)
        if bad:
            raise ClusterError(
                f"unknown fault plan field(s) {bad} (known: {sorted(known)})"
            )
        return cls(**d)

    @classmethod
    def from_file(cls, path: PathLike) -> "FaultPlan":
        try:
            return cls.from_dict(json.loads(pathlib.Path(path).read_text()))
        except (OSError, ValueError) as exc:
            raise ClusterError(f"unreadable fault plan {path}: {exc}")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    def worker_options(self) -> dict:
        """The slice of the plan each worker process enforces itself."""
        if not self.stall_every:
            return {}
        return {"stall_every": self.stall_every, "stall_ms": self.stall_ms}


class FaultInjector:
    """Runtime counters for one :class:`FaultPlan`."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.requests = 0
        self.responses = 0
        self.kills: list[dict] = []
        self.delays = 0
        self.duplicates = 0
        self.truncations = 0

    # -- front-end hooks -------------------------------------------------
    def on_request(self, frontend) -> None:
        """Called per admitted scene request; may SIGKILL a worker."""
        plan = self.plan
        if not plan.kill_every:
            return
        self.requests += 1
        if self.requests % plan.kill_every:
            return
        if plan.max_kills and len(self.kills) >= plan.max_kills:
            return
        live = [
            w
            for w in frontend.workers
            if not w.dead and w.proc.pid is not None and w.proc.is_alive()
        ]
        if plan.kill_worker is not None:
            live = [w for w in live if w.id == plan.kill_worker]
        if not live:
            return
        victim = live[len(self.kills) % len(live)]
        try:
            os.kill(victim.proc.pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):  # already gone
            return
        self.kills.append({"worker": victim.id, "at_request": self.requests})

    async def on_response(self, writer, resp: dict) -> bool:
        """Frame faults in the writer loop; True = the frame was handled
        here (written, duplicated, or destroyed) — skip the normal write."""
        plan = self.plan
        self.responses += 1
        if plan.delay_every and self.responses % plan.delay_every == 0:
            self.delays += 1
            await asyncio.sleep(plan.delay_ms / 1e3)
        if plan.duplicate_every and self.responses % plan.duplicate_every == 0:
            self.duplicates += 1
            await write_frame(writer, resp)
            await write_frame(writer, resp)
            return True
        if plan.truncate_every and self.responses % plan.truncate_every == 0:
            self.truncations += 1
            data = encode_frame(resp)
            writer.write(data[: max(1, len(data) // 2)])
            try:
                await writer.drain()
            except (ConnectionError, OSError):
                pass
            writer.close()
            return True
        return False

    def stats(self) -> dict:
        return {
            "plan": self.plan.to_dict(),
            "requests_seen": self.requests,
            "kills": list(self.kills),
            "delays": self.delays,
            "duplicates": self.duplicates,
            "truncations": self.truncations,
        }


def bitflip_file(path: PathLike, *, offset: Optional[int] = None, seed: int = 0) -> int:
    """Flip one bit of ``path`` in place; returns the byte offset flipped.

    With no explicit ``offset`` a seeded position in the back half of the
    file is chosen — for ``.rsp`` snapshots that lands in array payload,
    the case the checksum (not the header parser) must catch.
    """
    p = pathlib.Path(path)
    data = bytearray(p.read_bytes())
    if not data:
        raise ClusterError(f"cannot bitflip empty file {path}")
    if offset is None:
        offset = random.Random(f"bitflip|{seed}").randrange(len(data) // 2, len(data))
    if not 0 <= offset < len(data):
        raise ClusterError(f"bitflip offset {offset} outside file of {len(data)} bytes")
    data[offset] ^= 0x01
    p.write_bytes(data)
    return offset
