"""``repro.scene`` — the canonical scene layer.

A :class:`Scene` is the one domain object every entry point shares: the
obstacle list (``Rect`` and/or ``RectilinearPolygon``), the optional
rectilinear-convex container ``P`` of the paper, and any extra points to
index.  Parsing, validation, and normalization live *here* and nowhere
else — the CLI, :mod:`repro.workloads.scenefile`, the
:class:`~repro.serve.store.SceneStore`, the cluster worker's scene specs,
and the fuzz/bench drivers all call this single authoritative path, so a
malformed scene produces the identical one-line
:class:`~repro.errors.GeometryError`-family message no matter which door
it came in through.

The JSON interchange schema (shared with the fuzz tools)::

    {"version": 2,
     "rects": [[xlo, ylo, xhi, yhi], ...],
     "polygons": [[[x, y], [x, y], ...], ...],
     "container": [[x, y], ...],          # optional, rectilinear convex
     "extra_points": [[x, y], ...]}       # optional, indexed free points

The bare v1 form ``{"rects": [...]}`` is still accepted.
``Scene.to_dict`` / ``Scene.from_dict`` round-trip every rect, polygon,
container, and extra point exactly, which is what makes shrunk fuzz
failures replayable.  One normalization is inherent to the schema: rects
and polygons live in separate JSON lists, so a *mixed* scene's obstacle
interleaving comes back rects-first (same geometry and answers; the
vertex ordering of a rebuilt index — and hence ``content_hash`` — can
differ from the original's).

A scene also has a stable :meth:`Scene.content_hash` — the
content-addressed identity used by :mod:`repro.pipeline` to key its
per-stage artifact cache (same geometry ⇒ same hash ⇒ cached decompose
and graph stages, whatever engine solves on top).
"""

from __future__ import annotations

import hashlib
import json
import math
import numbers
import pathlib
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple, Union

from repro.errors import GeometryError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Point, Rect, validate_disjoint

#: current scene-file schema version (v1 scenes still load)
SCENE_VERSION = 2

Obstacle = Union[Rect, RectilinearPolygon]
PathLike = Union[str, pathlib.Path]

__all__ = [
    "SCENE_VERSION",
    "Obstacle",
    "Scene",
    "SceneDelta",
    "load_scene_cli",
]


@dataclass(frozen=True)
class Scene:
    """One immutable scene: obstacles + optional container + extra points.

    Construct through :meth:`from_obstacles` (programmatic),
    :meth:`from_dict` (JSON payloads), or :meth:`load` (scene files) —
    all three funnel every entry through the real geometry constructors,
    so a malformed scene fails with one ``GeometryError`` message.
    """

    obstacles: Tuple[Obstacle, ...]
    container: Optional[RectilinearPolygon] = None
    extra_points: Tuple[Point, ...] = ()

    # -- construction ---------------------------------------------------
    @classmethod
    def from_obstacles(
        cls,
        obstacles: Sequence[Obstacle],
        container: Optional[RectilinearPolygon] = None,
        extra_points: Sequence[Point] = (),
    ) -> "Scene":
        """Normalize a raw obstacle sequence into a ``Scene``."""
        obs = tuple(obstacles)
        for o in obs:
            if isinstance(o, Rect):
                coords = (o.xlo, o.ylo, o.xhi, o.yhi)
            elif isinstance(o, RectilinearPolygon):
                coords = tuple(c for v in o.loop for c in v)
            else:
                raise GeometryError(
                    f"obstacle must be a Rect or RectilinearPolygon, got {o!r}"
                )
            # fractional obstacles are rejected loudly: the engines
            # *silently disagree* on them (the parallel engine's Hanan
            # machinery returns sub-metric values like d=2 for two
            # corners 2.5 apart), and the int-typed JSON schema could
            # only truncate them
            if not all(_integral(c) for c in coords):
                raise GeometryError(
                    f"obstacle coordinates must be integers: {o!r}"
                )
        if container is not None:
            if not isinstance(container, RectilinearPolygon):
                raise GeometryError(
                    f"container must be a RectilinearPolygon, got {container!r}"
                )
            if not all(_integral(c) for v in container.loop for c in v):
                raise GeometryError(
                    f"container coordinates must be integers: {container!r}"
                )
        try:
            # value-preserving (2.5 stays 2.5; integral values normalize
            # to exact ints) but validated: non-numeric or non-finite
            # coordinates must fail here with one line, not deep inside
            # an engine or the hash
            extras = tuple((_coord(x), _coord(y)) for x, y in extra_points)
        except (TypeError, ValueError, OverflowError) as exc:
            raise GeometryError(f"bad extra point list: {exc}") from None
        return cls(obs, container, extras)

    @classmethod
    def from_dict(cls, data: object) -> "Scene":
        """Parse and construct a v1/v2 scene dict (the authoritative JSON
        path; every entry is validated through the geometry constructors)."""
        if not isinstance(data, dict):
            raise GeometryError("scene file must be a JSON object")
        version = data.get("version", 1)
        if version not in (1, SCENE_VERSION):
            raise GeometryError(
                f"scene schema version {version!r}; this build reads 1 and {SCENE_VERSION}"
            )
        obstacles: list[Obstacle] = []
        rows = data.get("rects", [])
        if not isinstance(rows, list):
            raise GeometryError("'rects' must be a list of [xlo, ylo, xhi, yhi] rows")
        for row in rows:
            try:
                obstacles.append(Rect(*map(_int_coord, row)))
            except (TypeError, ValueError, OverflowError) as exc:
                raise GeometryError(f"bad rect row {row!r}: {exc}") from None
        loops = data.get("polygons", [])
        if version == 1 and loops:
            raise GeometryError("schema v1 scenes cannot carry polygons")
        if not isinstance(loops, list):
            raise GeometryError("'polygons' must be a list of vertex loops")
        for loop in loops:
            try:
                obstacles.append(
                    RectilinearPolygon(
                        [(_int_coord(x), _int_coord(y)) for x, y in loop]
                    )
                )
            except (TypeError, ValueError, OverflowError) as exc:
                raise GeometryError(f"bad polygon loop {loop!r}: {exc}") from None
        container = None
        if data.get("container") is not None:
            loop = data["container"]
            try:
                container = RectilinearPolygon(
                    [(_int_coord(x), _int_coord(y)) for x, y in loop]
                )
            except (TypeError, ValueError, OverflowError) as exc:
                raise GeometryError(f"bad container loop {loop!r}: {exc}") from None
        extras: tuple = ()
        rows = data.get("extra_points") or []
        if rows:  # a stray empty list is ignored, matching the polygons guard
            if version == 1:
                raise GeometryError("schema v1 scenes cannot carry extra points")
            try:
                # the exact validator the programmatic door uses, so both
                # entry points accept/reject (and normalize) identically
                extras = tuple((_coord(x), _coord(y)) for x, y in rows)
            except (TypeError, ValueError, OverflowError) as exc:
                raise GeometryError(
                    f"bad extra point list {rows!r}: {exc}"
                ) from None
        if not obstacles and not extras:
            # an obstacle-free scene is meaningful only when it carries
            # extra points to index (free-plane distances) — and must
            # round-trip, since from_obstacles/cluster specs allow it
            raise GeometryError("scene has no obstacles")
        return cls(tuple(obstacles), container, extras)

    @classmethod
    def load(cls, path: PathLike) -> "Scene":
        """Parse a scene file (raises ``GeometryError`` / ``OSError``)."""
        with open(path) as fh:
            try:
                data = json.load(fh)
            except ValueError as exc:
                raise GeometryError(f"{path}: not valid JSON: {exc}") from None
        return cls.from_dict(data)

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """The v2 JSON-ready dict of this scene.  Round-trips all
        geometry and extras; a mixed scene's rect/polygon interleaving is
        normalized rects-first (see the module docstring)."""
        # geometry is integral by construction (from_obstacles/from_dict
        # both enforce it); int() only normalizes numpy scalars and
        # integral floats to JSON-native ints
        rects = [
            [int(o.xlo), int(o.ylo), int(o.xhi), int(o.yhi)]
            for o in self.obstacles
            if isinstance(o, Rect)
        ]
        polygons = [
            [[int(x), int(y)] for x, y in o.loop]
            for o in self.obstacles
            if isinstance(o, RectilinearPolygon)
        ]
        out: dict = {"version": SCENE_VERSION, "rects": rects, "polygons": polygons}
        if self.container is not None:
            out["container"] = [[int(x), int(y)] for x, y in self.container.loop]
        if self.extra_points:
            out["extra_points"] = [[_canon(x), _canon(y)] for x, y in self.extra_points]
        return out

    def save(self, path: PathLike) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=1))
        return path

    # -- validation -----------------------------------------------------
    def validate(self) -> "Scene":
        """Disjointness / degeneracy / containment checks; raises with a
        one-line message naming the offending geometry, returns ``self``
        so ``Scene.load(p).validate()`` chains."""
        from repro.core.api import split_obstacles

        _, _, all_rects, _ = split_obstacles(self.obstacles)
        validate_disjoint(all_rects)
        if self.container is not None:
            if not self.container.is_convex:
                raise GeometryError("container polygon is not rectilinear convex")
            for r in all_rects:
                if not self.container.contains_rect(r):
                    raise GeometryError(
                        f"obstacle rect {r} is not inside the container"
                    )
        return self

    # -- views ----------------------------------------------------------
    @property
    def rects(self) -> list[Rect]:
        """The plain rectangle obstacles (polygon tiles not included)."""
        return [o for o in self.obstacles if isinstance(o, Rect)]

    @property
    def polygons(self) -> list[RectilinearPolygon]:
        return [o for o in self.obstacles if isinstance(o, RectilinearPolygon)]

    def describe(self) -> str:
        """One human line: obstacle counts + container + extras."""
        parts = [f"{len(self.rects)} rects", f"{len(self.polygons)} polygons"]
        parts.append("container" if self.container is not None else "no container")
        if self.extra_points:
            parts.append(f"{len(self.extra_points)} extra points")
        return ", ".join(parts)

    # -- identity -------------------------------------------------------
    def geometry_hash(self) -> str:
        """Content hash of the geometry alone (obstacles + container).

        This keys the engine-independent pipeline stages: two builds that
        differ only in ``extra_points`` (or engine) still share their
        decompose artifact.  Memoized — the dataclass is frozen.
        """
        h = self.__dict__.get("_geometry_hash")
        if h is None:
            h = _digest(self._geometry_key())
            object.__setattr__(self, "_geometry_hash", h)
        return h

    def content_hash(self) -> str:
        """Content hash of the full scene (geometry + extra points).

        Coordinates are canonicalized (``2.0`` hashes like ``2``, numpy
        scalars like their exact Python value), so equal scenes hash
        equally across the ``to_dict``/``from_dict`` boundary.  Memoized.
        """
        h = self.__dict__.get("_content_hash")
        if h is None:
            extras = [[_canon(x), _canon(y)] for x, y in self.extra_points]
            h = _digest(self._geometry_key() + [["extras", extras]])
            object.__setattr__(self, "_content_hash", h)
        return h

    # -- mutation (the only mutation path) ------------------------------
    def apply_delta(self, delta: "SceneDelta") -> "Scene":
        """Apply an obstacle insert/delete batch and return the **new**
        scene.

        This is the one supported mutation path: the result is built from
        scratch through :meth:`from_obstacles` (then disjointness-checked),
        so it can never inherit this scene's memoized hashes — a repaired
        index keyed by the new scene's ``content_hash`` is a genuinely new
        generation.  Raises ``GeometryError`` with a one-line message when
        a delete names an obstacle the scene does not contain, an insert
        duplicates an existing obstacle, or the edited scene is no longer
        disjoint.
        """
        obstacles = list(self.obstacles)
        for op, obstacle in delta.ops:
            if op == "insert":
                if any(_same_obstacle(obstacle, o) for o in obstacles):
                    raise GeometryError(
                        f"delta inserts an obstacle already in the scene: {obstacle}"
                    )
                obstacles.append(obstacle)
            elif op == "delete":
                for i, o in enumerate(obstacles):
                    if _same_obstacle(obstacle, o):
                        del obstacles[i]
                        break
                else:
                    raise GeometryError(
                        f"delta deletes an obstacle not in the scene: {obstacle}"
                    )
            else:  # pragma: no cover - SceneDelta construction forbids it
                raise GeometryError(f"unknown delta op {op!r}")
        scene = Scene.from_obstacles(obstacles, self.container, self.extra_points)
        return scene.validate()

    def _geometry_key(self) -> list:
        # every coordinate goes through _canon so numerically equal
        # scenes (Rect(2.0, ...) vs Rect(2, ...), numpy scalars) key the
        # same cache entries
        key: list = []
        for o in self.obstacles:
            if isinstance(o, Rect):
                key.append(["r", *map(_canon, (o.xlo, o.ylo, o.xhi, o.yhi))])
            else:
                key.append(["p", [[_canon(x), _canon(y)] for x, y in o.loop]])
        key.append(
            ["c", [[_canon(x), _canon(y)] for x, y in self.container.loop]]
            if self.container is not None
            else ["c", None]
        )
        return key


@dataclass(frozen=True)
class SceneDelta:
    """An ordered batch of obstacle edits: ``("insert"|"delete", obstacle)``.

    Built through :meth:`insert` / :meth:`delete` (chainable) or the JSON
    form :meth:`from_dict`; applied with :meth:`Scene.apply_delta` — the
    single supported scene-mutation path.  Deletes match obstacles by
    geometry (a ``Rect`` by coordinates, a polygon by its normalized
    vertex loop), so a delta serialized by one process applies cleanly to
    another process's copy of the same scene.

    The JSON interchange form (used by the cluster ``update`` verb)::

        {"ops": [{"op": "insert", "rect": [xlo, ylo, xhi, yhi]},
                 {"op": "delete", "polygon": [[x, y], ...]}]}
    """

    ops: Tuple[Tuple[str, Obstacle], ...] = ()

    @classmethod
    def insert(cls, *obstacles: Obstacle) -> "SceneDelta":
        return cls()._extend("insert", obstacles)

    @classmethod
    def delete(cls, *obstacles: Obstacle) -> "SceneDelta":
        return cls()._extend("delete", obstacles)

    def then_insert(self, *obstacles: Obstacle) -> "SceneDelta":
        return self._extend("insert", obstacles)

    def then_delete(self, *obstacles: Obstacle) -> "SceneDelta":
        return self._extend("delete", obstacles)

    def _extend(self, op: str, obstacles: Sequence[Obstacle]) -> "SceneDelta":
        ops = list(self.ops)
        for o in obstacles:
            if not isinstance(o, (Rect, RectilinearPolygon)):
                raise GeometryError(
                    f"delta obstacle must be a Rect or RectilinearPolygon, got {o!r}"
                )
            ops.append((op, o))
        return SceneDelta(tuple(ops))

    def __len__(self) -> int:
        return len(self.ops)

    def describe(self) -> str:
        ins = sum(1 for op, _ in self.ops if op == "insert")
        return f"{ins} inserts, {len(self.ops) - ins} deletes"

    def to_dict(self) -> dict:
        rows = []
        for op, o in self.ops:
            if isinstance(o, Rect):
                rows.append(
                    {"op": op, "rect": [int(o.xlo), int(o.ylo), int(o.xhi), int(o.yhi)]}
                )
            else:
                rows.append({"op": op, "polygon": [[int(x), int(y)] for x, y in o.loop]})
        return {"ops": rows}

    @classmethod
    def from_dict(cls, data: object) -> "SceneDelta":
        if not isinstance(data, dict) or not isinstance(data.get("ops"), list):
            raise GeometryError("scene delta must be a JSON object with an 'ops' list")
        ops: list[Tuple[str, Obstacle]] = []
        for row in data["ops"]:
            if not isinstance(row, dict) or row.get("op") not in ("insert", "delete"):
                raise GeometryError(f"bad delta op row {row!r}")
            try:
                if "rect" in row:
                    obstacle: Obstacle = Rect(*map(_int_coord, row["rect"]))
                elif "polygon" in row:
                    obstacle = RectilinearPolygon(
                        [(_int_coord(x), _int_coord(y)) for x, y in row["polygon"]]
                    )
                else:
                    raise GeometryError("op row carries neither 'rect' nor 'polygon'")
            except (TypeError, ValueError, OverflowError) as exc:
                raise GeometryError(f"bad delta op row {row!r}: {exc}") from None
            ops.append((row["op"], obstacle))
        return cls(tuple(ops))


def _same_obstacle(a: Obstacle, b: Obstacle) -> bool:
    """Geometry equality: rects by coordinates, polygons by normalized loop."""
    if isinstance(a, Rect) and isinstance(b, Rect):
        return a == b
    if isinstance(a, RectilinearPolygon) and isinstance(b, RectilinearPolygon):
        return tuple(a.loop) == tuple(b.loop)
    return False


def _num(v):
    """A JSON scalar as an exact coordinate: int when integral, else a
    finite float.  Ints pass through untouched (no float round trip, so
    magnitudes beyond 2^53 stay exact); inf/nan raise for the caller's
    one-line rejection."""
    if isinstance(v, bool):
        raise TypeError(f"not a coordinate: {v!r}")
    if isinstance(v, int):
        return v
    f = float(v)
    i = int(f)  # OverflowError on inf, ValueError on nan — caller catches
    return i if i == f else f


def _int_coord(v):
    """A JSON scalar as an exact integer coordinate.  Digit strings stay
    accepted (the legacy ``int(row)`` parser allowed them), but a
    fractional value is *rejected*, never truncated — a scene file saying
    ``2.5`` must not silently load as different geometry."""
    n = _num(v)
    if not isinstance(n, int):
        raise ValueError(f"not an integer coordinate: {v!r}")
    return n


def _coord(v):
    """A finite real coordinate, exact: integral values (python or numpy,
    ``2.0`` included) normalize to ``int``; fractional floats pass
    through unchanged; anything else raises for the caller's one-line
    rejection."""
    if isinstance(v, bool) or not isinstance(v, numbers.Real):
        raise TypeError(f"not a coordinate: {v!r}")
    if isinstance(v, numbers.Integral):
        return int(v)
    f = float(v)
    if not math.isfinite(f):
        raise ValueError(f"non-finite coordinate: {v!r}")
    i = int(f)
    return i if i == f else f


def _integral(c) -> bool:
    """Is this coordinate an exact integer value (2, 2.0, np.int64(2))?"""
    try:
        return int(c) == c
    except (TypeError, OverflowError, ValueError):
        return False


def _canon(v):
    """A coordinate's canonical hash form — total (never raises), exact
    for integers of any magnitude (numpy scalars included), and identical
    for numerically equal values like ``2`` and ``2.0``."""
    try:
        i = int(v)
    except (OverflowError, ValueError):  # inf/nan: stable, non-numeric token
        return repr(float(v))
    return i if i == v else float(v)


def _digest(key: list) -> str:
    # every scalar in the key went through _canon, so the payload is
    # JSON-native and exact (no numpy scalars, no large-int collapse)
    blob = json.dumps(key, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def load_scene_cli(path: str) -> Scene:
    """Parse **and validate** a scene file for a CLI verb, exiting with
    the canonical one-line message on any failure.

    This is the single CLI-facing door (the old per-command ``_load_scene``
    duplicates are gone); the error text is locked by tests so server-side
    consumers of :meth:`Scene.from_dict` fail identically.
    """
    try:
        return Scene.load(path).validate()
    except GeometryError as exc:
        raise SystemExit(f"{path}: invalid scene: {exc}")
    except OSError as exc:
        raise SystemExit(str(exc))
