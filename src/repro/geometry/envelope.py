"""Envelopes ``Env(R')`` and rectilinear convex hulls (§2, Fig. 2).

The boundary of an envelope is assembled from the four ``MAX_XY``
frontier staircases: the *top* profile follows ``MAX_NW`` up to the topmost
obstacle and ``MAX_NE`` after it; the *bottom* profile follows ``MAX_SW``
then ``MAX_SE``; the west/east extremes are closed by the leftmost and
rightmost obstacles' outer edges.  When the top and bottom profiles stay
strictly apart the rectilinear convex hull exists and equals the envelope.

Degenerate inputs (the paper's cases (i)/(ii), Fig. 2(a)–(b), where two of
the frontiers intersect and the hull does not exist) are detected and
reported by :attr:`Envelope.is_degenerate`.  For those inputs this module
keeps the *fat* region bounded by the profiles, clamping the profiles
together where they cross (which follows the paper's bridge along the
``MAX_NE`` — resp. ``MAX_NW`` — finite segments up to the width-zero
degeneracy).  The shortest-path engines never build degenerate envelopes —
separators always split along clear staircases — so the substitution only
affects renderings and is recorded in DESIGN.md.

Profiles are step functions over x represented as runs ``(x_from, x_to,
y)``; this representation is shared with convex rectilinear polygons
(:mod:`repro.geometry.polygon`) so that visibility and ``B(Q)`` extraction
(:mod:`repro.geometry.visibility`) work on either region type.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import GeometryError
from repro.geometry.frontier import max_staircase_of_rects
from repro.geometry.primitives import Point, Rect, bbox_of_rects
from repro.geometry.staircase import Staircase


@dataclass(frozen=True)
class StepProfile:
    """A piecewise-constant function of x: runs ``(x_from, x_to, y)`` with
    contiguous coverage of ``[xlo, xhi]``; runs are half-open on the right
    except the last."""

    runs: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        if not self.runs:
            raise GeometryError("empty profile")
        for (a, b, _y), (c, _d, _y2) in zip(self.runs, self.runs[1:]):
            if b != c or a >= b:
                raise GeometryError("profile runs not contiguous")
        a, b, _ = self.runs[-1]
        if a >= b:
            raise GeometryError("profile runs not contiguous")

    @property
    def xlo(self) -> int:
        return self.runs[0][0]

    @property
    def xhi(self) -> int:
        return self.runs[-1][1]

    def _run_index(self, x: int) -> int:
        starts = [r[0] for r in self.runs]
        i = bisect_right(starts, x) - 1
        return max(i, 0)

    def value_max_at(self, x: int) -> int:
        """max y of the (closed) boundary at column x — at a jump this is
        the higher adjacent run."""
        i = self._run_index(x)
        y = self.runs[i][2]
        if self.runs[i][0] == x and i > 0:
            y = max(y, self.runs[i - 1][2])
        return y

    def value_min_at(self, x: int) -> int:
        i = self._run_index(x)
        y = self.runs[i][2]
        if self.runs[i][0] == x and i > 0:
            y = min(y, self.runs[i - 1][2])
        return y

    def run_value(self, x: int) -> int:
        """The run value covering the open interval ``(x, x+1)`` — i.e. the
        profile height strictly between grid columns (no jump merging)."""
        return self.runs[self._run_index(x)][2]

    def polyline(self) -> list[Point]:
        """Corner chain west→east, including jump corners."""
        out: list[Point] = []
        for a, b, y in self.runs:
            out.append((a, y))
            out.append((b, y))
        # remove duplicates; keep jumps
        dedup: list[Point] = []
        for p in out:
            if not dedup or dedup[-1] != p:
                dedup.append(p)
        return dedup

    def breakpoints(self) -> list[int]:
        return [r[0] for r in self.runs] + [self.xhi]


def _profile_from_polyline(pts: Sequence[Point]) -> StepProfile:
    """Build a profile from a west→east rectilinear corner chain."""
    runs: list[tuple[int, int, int]] = []
    for a, b in zip(pts, pts[1:]):
        if a[1] == b[1] and a[0] < b[0]:
            if runs and runs[-1][2] == a[1] and runs[-1][1] == a[0]:
                runs[-1] = (runs[-1][0], b[0], a[1])
            else:
                runs.append((a[0], b[0], a[1]))
    return StepProfile(tuple(runs))


class Envelope:
    """``Env(R')``: the convex connected region spanned by a rect set."""

    def __init__(self, rects: Sequence[Rect]) -> None:
        if not rects:
            raise GeometryError("envelope of empty obstacle set")
        self.rects = list(rects)
        self.bbox = bbox_of_rects(self.rects)
        xlo, ylo, xhi, yhi = self.bbox
        self.max_stair = {
            q: max_staircase_of_rects(self.rects, q) for q in ("NE", "NW", "SE", "SW")
        }
        top_pts = self._merge_top()
        bot_pts = self._merge_bottom()
        top = _profile_from_polyline(top_pts)
        bot = _profile_from_polyline(bot_pts)
        # Hull existence (Fig. 2): a connecting band through obstacle-free
        # columns (or rows) can be thinned indefinitely, so the minimum-area
        # hull is not attained; the envelope then bridges degenerately.
        self.is_degenerate = _has_projection_gap(self.rects)
        if _profiles_touch_or_cross(top, bot):
            top, bot = _clamp_profiles(top, bot)
        self.top = top
        self.bottom = bot

    # -- construction ----------------------------------------------------
    def _merge_top(self) -> list[Point]:
        nw, ne = self.max_stair["NW"], self.max_stair["NE"]
        t_nw = nw.pts[-1]  # topmost rect's NW corner (last NW-maximal)
        t_ne = ne.pts[0]  # topmost rect's NE corner (first NE-maximal)
        if t_nw[1] != t_ne[1]:
            raise GeometryError("frontier chains disagree on the top edge")
        pts = list(nw.pts) + [t_ne] + [p for p in ne.pts if p[0] >= t_ne[0]]
        return pts

    def _merge_bottom(self) -> list[Point]:
        sw, se = self.max_stair["SW"], self.max_stair["SE"]
        b_sw = sw.pts[-1]  # bottommost rect's SW corner
        b_se = se.pts[0]
        if b_sw[1] != b_se[1]:
            raise GeometryError("frontier chains disagree on the bottom edge")
        pts = list(sw.pts) + [b_se] + [p for p in se.pts if p[0] >= b_se[0]]
        return pts

    # -- region protocol (shared with RectilinearPolygon) -----------------
    def top_at(self, x: int) -> int:
        return self.top.value_max_at(x)

    def bottom_at(self, x: int) -> int:
        return self.bottom.value_min_at(x)

    def contains(self, p: Point) -> bool:
        x, y = p
        xlo, _, xhi, _ = self.bbox
        if not (xlo <= x <= xhi):
            return False
        return self.bottom_at(x) <= y <= self.top_at(x)

    def vertices_loop(self) -> list[Point]:
        """Closed CCW boundary corner loop (last point != first)."""
        return _loop_from_profiles(self.top, self.bottom)

    def boundary_chain(self, quadrant: str) -> Staircase:
        """The bounded monotone boundary piece facing a quadrant, used for
        the Monge orderings of Lemma 1."""
        if self.is_degenerate:
            raise GeometryError("degenerate envelope has no clean chains")
        if quadrant == "NW":
            pts = [p for p in self.top.polyline() if p[0] <= self._top_peak()[0]]
            return Staircase(tuple(pts), increasing=True)
        if quadrant == "NE":
            pts = [p for p in self.top.polyline() if p[0] >= self._top_peak()[0]]
            return Staircase(tuple(pts), increasing=False)
        if quadrant == "SW":
            pts = [p for p in self.bottom.polyline() if p[0] <= self._bottom_valley()[0]]
            return Staircase(tuple(pts), increasing=False)
        if quadrant == "SE":
            pts = [p for p in self.bottom.polyline() if p[0] >= self._bottom_valley()[0]]
            return Staircase(tuple(pts), increasing=True)
        raise GeometryError(f"unknown quadrant {quadrant!r}")

    def _top_peak(self) -> Point:
        return max(self.top.polyline(), key=lambda p: (p[1], -p[0]))

    def _bottom_valley(self) -> Point:
        return min(self.bottom.polyline(), key=lambda p: (p[1], p[0]))

    def intersects_rect_interior(self, r: Rect) -> bool:
        """Does this envelope meet the *interior* of ``r``?  (Used to check
        the §4 requirement that Env(R') avoid obstacles of R - R'.)"""
        xlo, _, xhi, _ = self.bbox
        lo = max(r.xlo, xlo)
        hi = min(r.xhi, xhi)
        if lo >= hi:
            return False
        xs = sorted(
            {lo, hi}
            | {x for x in self.top.breakpoints() if lo <= x <= hi}
            | {x for x in self.bottom.breakpoints() if lo <= x <= hi}
        )
        for a, b in zip(xs, xs[1:]):
            # column (a, b): profiles are constant on the open interval
            t = min(self.top.value_min_at(a), self.top.value_min_at(b))
            bot = max(self.bottom.value_max_at(a), self.bottom.value_max_at(b))
            t2 = min(t, r.yhi)
            b2 = max(bot, r.ylo)
            if t2 > b2:
                return True
        return False


def _loop_from_profiles(top: StepProfile, bottom: StepProfile) -> list[Point]:
    """CCW boundary loop of the region between two profiles."""
    bot_pts = bottom.polyline()
    top_pts = top.polyline()
    loop: list[Point] = list(bot_pts)
    if top_pts[-1] != loop[-1]:
        loop.append(top_pts[-1])
    loop.extend(reversed(top_pts[:-1]))
    out: list[Point] = []
    for p in loop:
        if not out or out[-1] != p:
            out.append(p)
    if len(out) > 1 and out[0] == out[-1]:
        out.pop()
    return out


def _has_projection_gap(rects: Sequence[Rect]) -> bool:
    """True when the x- or y-projections of the rect set leave a gap inside
    the bounding box (the hull-nonexistence condition of [30]/Fig. 2)."""
    for key in (lambda r: (r.xlo, r.xhi), lambda r: (r.ylo, r.yhi)):
        ivs = sorted(key(r) for r in rects)
        reach = ivs[0][1]
        for lo, hi in ivs[1:]:
            if lo > reach:
                return True
            reach = max(reach, hi)
    return False


def _profiles_touch_or_cross(top: StepProfile, bot: StepProfile) -> bool:
    xs = sorted(set(top.breakpoints()) | set(bot.breakpoints()))
    for x in xs:
        if bot.value_max_at(x) >= top.value_min_at(x):
            # touching counts as degenerate only when the region pinches to
            # zero width, i.e. the *interiors* meet or coincide
            if bot.value_min_at(x) >= top.value_max_at(x):
                return True
    return False


def _clamp_profiles(top: StepProfile, bot: StepProfile) -> tuple[StepProfile, StepProfile]:
    """Clamp crossing profiles to their pointwise median band (the
    degenerate bridge of Fig. 2(a)/(b))."""
    xs = sorted(set(top.breakpoints()) | set(bot.breakpoints()))
    t_runs: list[tuple[int, int, int]] = []
    b_runs: list[tuple[int, int, int]] = []
    for a, b in zip(xs, xs[1:]):
        tv = top.value_min_at(a) if top.value_min_at(a) == top.value_min_at(b - 0) else top.value_min_at(a)
        tv = min(top.value_max_at(a), top.value_max_at(b))
        bv = max(bot.value_min_at(a), bot.value_min_at(b))
        if bv > tv:
            tv = bv = max(tv, bv)
        t_runs.append((a, b, tv))
        b_runs.append((a, b, bv))
    return (
        StepProfile(tuple(_coalesce(t_runs))),
        StepProfile(tuple(_coalesce(b_runs))),
    )


def _coalesce(runs: list[tuple[int, int, int]]) -> list[tuple[int, int, int]]:
    out: list[tuple[int, int, int]] = []
    for r in runs:
        if out and out[-1][2] == r[2] and out[-1][1] == r[0]:
            out[-1] = (out[-1][0], r[1], r[2])
        else:
            out.append(r)
    return out


def envelope(rects: Sequence[Rect]) -> Envelope:
    """Construct ``Env(R')``."""
    return Envelope(rects)


def rectilinear_hull_exists(rects: Sequence[Rect]) -> bool:
    """True when the rectilinear convex hull of the set exists (the
    envelope is non-degenerate), per §2/Fig. 2 of the paper."""
    return not Envelope(rects).is_degenerate
