"""Exact rectilinear geometry substrate.

Everything in this package works on integer (or exact rational) coordinates;
no floating point enters any shortest-path length, which lets every test in
the suite assert *exact* equality between independent engines.
"""

from repro.geometry.primitives import (
    Point,
    Rect,
    Transform,
    ALL_TRANSFORMS,
    IDENTITY,
    dist,
    bbox_of_points,
    bbox_of_rects,
    validate_disjoint,
)
from repro.geometry.staircase import Staircase
from repro.geometry.frontier import (
    maximal_points,
    max_staircase,
    all_max_staircases,
)
from repro.geometry.envelope import Envelope, envelope, rectilinear_hull_exists
from repro.geometry.decompose import (
    Seam,
    decompose_loop,
    polygon_seams,
)
from repro.geometry.polygon import RectilinearPolygon, pockets_to_rects, rect_polygon
from repro.geometry.rayshoot import RayShooter
from repro.geometry.trapezoid import trapezoidal_decomposition, hit_sets
from repro.geometry.visibility import boundary_points, BoundarySet
from repro.geometry.hanan import hanan_graph, HananGraph

__all__ = [
    "Point",
    "Rect",
    "Transform",
    "ALL_TRANSFORMS",
    "IDENTITY",
    "dist",
    "bbox_of_points",
    "bbox_of_rects",
    "validate_disjoint",
    "Staircase",
    "maximal_points",
    "max_staircase",
    "all_max_staircases",
    "Envelope",
    "envelope",
    "rectilinear_hull_exists",
    "RectilinearPolygon",
    "pockets_to_rects",
    "rect_polygon",
    "Seam",
    "decompose_loop",
    "polygon_seams",
    "RayShooter",
    "trapezoidal_decomposition",
    "hit_sets",
    "boundary_points",
    "BoundarySet",
    "hanan_graph",
    "HananGraph",
]
