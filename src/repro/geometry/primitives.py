"""Points, rectangles, the L1 metric, and the 8-element axis symmetry group.

Points are plain ``(x, y)`` tuples throughout the library: they are created
in the millions by the engines, and tuples are the cheapest hashable exact
representation Python offers.

The :class:`Transform` group is the workhorse that lets the rest of the code
implement *one* canonical orientation of every directional construction
(path tracing ``NE(p)``, Pareto frontiers ``MAX_NE``, the four monotone DAG
cases of §9 ...) and derive the other orientations mechanically, which is
how the paper itself argues ("the other cases are symmetrical").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import DisjointnessError, GeometryError

Point = Tuple[int, int]


def dist(p: Point, q: Point) -> int:
    """L1 (rectilinear) distance between two points (§2)."""
    return abs(p[0] - q[0]) + abs(p[1] - q[1])


@dataclass(frozen=True, slots=True, order=True)
class Rect:
    """A closed axis-parallel rectangle ``[xlo, xhi] × [ylo, yhi]``.

    Degenerate (zero width/height) rectangles are rejected: the paper's
    obstacles are full-dimensional, and several constructions (ray shooting,
    tracing) rely on edges having two distinct endpoints.
    """

    xlo: int
    ylo: int
    xhi: int
    yhi: int

    def __post_init__(self) -> None:
        if not (self.xlo < self.xhi and self.ylo < self.yhi):
            raise GeometryError(f"degenerate rectangle {self!r}")

    # -- corners (paper's V_R consists of these, 4 per obstacle) ----------
    @property
    def sw(self) -> Point:
        return (self.xlo, self.ylo)

    @property
    def se(self) -> Point:
        return (self.xhi, self.ylo)

    @property
    def nw(self) -> Point:
        return (self.xlo, self.yhi)

    @property
    def ne(self) -> Point:
        return (self.xhi, self.yhi)

    @property
    def vertices(self) -> Tuple[Point, Point, Point, Point]:
        """The four corners in counterclockwise order starting at SW."""
        return (self.sw, self.se, self.ne, self.nw)

    @property
    def center2(self) -> Point:
        """Twice the center (kept integral to stay exact)."""
        return (self.xlo + self.xhi, self.ylo + self.yhi)

    @property
    def width(self) -> int:
        return self.xhi - self.xlo

    @property
    def height(self) -> int:
        return self.yhi - self.ylo

    # -- containment -------------------------------------------------------
    def contains(self, p: Point) -> bool:
        """Closed containment (boundary included)."""
        return self.xlo <= p[0] <= self.xhi and self.ylo <= p[1] <= self.yhi

    def contains_interior(self, p: Point) -> bool:
        """Open containment (boundary excluded) — obstacles are *opaque
        interiors*; paths may run along their boundaries (§2)."""
        return self.xlo < p[0] < self.xhi and self.ylo < p[1] < self.yhi

    def on_boundary(self, p: Point) -> bool:
        return self.contains(p) and not self.contains_interior(p)

    # -- rect/rect relations ------------------------------------------------
    def interiors_intersect(self, other: "Rect") -> bool:
        return (
            self.xlo < other.xhi
            and other.xlo < self.xhi
            and self.ylo < other.yhi
            and other.ylo < self.yhi
        )

    def touches_or_intersects(self, other: "Rect") -> bool:
        return (
            self.xlo <= other.xhi
            and other.xlo <= self.xhi
            and self.ylo <= other.yhi
            and other.ylo <= self.yhi
        )

    # -- segment blocking ---------------------------------------------------
    def blocks_h_segment(self, y: int, x1: int, x2: int) -> bool:
        """Does the *open* horizontal segment at height ``y`` from ``x1`` to
        ``x2`` pass through this rectangle's interior?"""
        if x1 > x2:
            x1, x2 = x2, x1
        return self.ylo < y < self.yhi and x1 < self.xhi and self.xlo < x2

    def blocks_v_segment(self, x: int, y1: int, y2: int) -> bool:
        """Vertical analogue of :meth:`blocks_h_segment`."""
        if y1 > y2:
            y1, y2 = y2, y1
        return self.xlo < x < self.xhi and y1 < self.yhi and self.ylo < y2


@dataclass(frozen=True, slots=True)
class Transform:
    """An element of the dihedral symmetry group of the coordinate axes.

    ``apply((x, y))`` computes ``(sx*x, sy*y)`` and then swaps the
    coordinates when ``swap`` is set.  The 8 group elements map the
    canonical "north-primary / east-detour" orientation onto every other
    orientation used by the paper.
    """

    sx: int = 1
    sy: int = 1
    swap: bool = False

    def apply(self, p: Point) -> Point:
        x, y = self.sx * p[0], self.sy * p[1]
        return (y, x) if self.swap else (x, y)

    def apply_rect(self, r: Rect) -> Rect:
        ax, ay = self.apply(r.sw)
        bx, by = self.apply(r.ne)
        return Rect(min(ax, bx), min(ay, by), max(ax, bx), max(ay, by))

    def apply_rects(self, rects: Sequence[Rect]) -> list[Rect]:
        return [self.apply_rect(r) for r in rects]

    def apply_points(self, pts: Iterable[Point]) -> list[Point]:
        return [self.apply(p) for p in pts]

    def inverse(self) -> "Transform":
        if not self.swap:
            return Transform(self.sx, self.sy, False)
        # apply: (x,y) -> (sy*y, sx*x); the inverse swaps first.
        return Transform(self.sy, self.sx, True)

    def compose(self, inner: "Transform") -> "Transform":
        """Return the transform equivalent to ``self ∘ inner``."""
        if inner.swap:
            sx, sy = self.sy * inner.sx, self.sx * inner.sy
        else:
            sx, sy = self.sx * inner.sx, self.sy * inner.sy
        return Transform(sx, sy, self.swap != inner.swap)


IDENTITY = Transform()
FLIP_X = Transform(sx=-1)
FLIP_Y = Transform(sy=-1)
FLIP_XY = Transform(sx=-1, sy=-1)
TRANSPOSE = Transform(swap=True)

ALL_TRANSFORMS: Tuple[Transform, ...] = tuple(
    Transform(sx, sy, swap) for swap in (False, True) for sx in (1, -1) for sy in (1, -1)
)


def bbox_of_points(pts: Iterable[Point]) -> Tuple[int, int, int, int]:
    """``(xlo, ylo, xhi, yhi)`` of a non-empty point collection."""
    it = iter(pts)
    try:
        x, y = next(it)
    except StopIteration:  # pragma: no cover - caller bug
        raise GeometryError("bbox of empty point set") from None
    xlo = xhi = x
    ylo = yhi = y
    for x, y in it:
        xlo = x if x < xlo else xlo
        xhi = x if x > xhi else xhi
        ylo = y if y < ylo else ylo
        yhi = y if y > yhi else yhi
    return (xlo, ylo, xhi, yhi)


def bbox_of_rects(rects: Sequence[Rect]) -> Tuple[int, int, int, int]:
    if not rects:
        raise GeometryError("bbox of empty rectangle set")
    return (
        min(r.xlo for r in rects),
        min(r.ylo for r in rects),
        max(r.xhi for r in rects),
        max(r.yhi for r in rects),
    )


def rect_coord_array(rects: Sequence[Rect]) -> np.ndarray:
    """``(n, 4)`` array of ``(xlo, ylo, xhi, yhi)`` rows — the vectorized
    view the batched containment tests below gather against."""
    return np.array(
        [(r.xlo, r.ylo, r.xhi, r.yhi) for r in rects], dtype=np.float64
    ).reshape(-1, 4)


def points_in_any_interior(
    rect_arr: np.ndarray, points: Sequence[Point], chunk: int = 1 << 20
) -> np.ndarray:
    """Boolean mask: does each point lie strictly inside *some* rectangle?

    One broadcasted comparison instead of a Python loop over rectangles —
    the batched-query APIs validate whole point sets with this.  ``chunk``
    caps the temporary point×rect matrix.
    """
    pts = np.asarray(points, dtype=np.float64).reshape(-1, 2)
    out = np.zeros(len(pts), dtype=bool)
    if rect_arr.size == 0 or pts.size == 0:
        return out
    step = max(1, chunk // len(rect_arr))
    for lo in range(0, len(pts), step):
        x = pts[lo : lo + step, 0][:, None]
        y = pts[lo : lo + step, 1][:, None]
        inside = (
            (rect_arr[None, :, 0] < x)
            & (x < rect_arr[None, :, 2])
            & (rect_arr[None, :, 1] < y)
            & (y < rect_arr[None, :, 3])
        )
        out[lo : lo + step] = inside.any(axis=1)
    return out


def validate_disjoint(rects: Sequence[Rect]) -> None:
    """Check pairwise-disjoint interiors via a sweep; raise otherwise.

    ``O(n log n + k)`` with an active-set sweep over x; the paper's input
    contract (§1) is *pairwise disjoint* rectangles, and every engine in the
    library assumes it, so the public entry points call this eagerly.
    """
    events: list[tuple[int, int, int]] = []  # (x, kind, index); kind 0=open 1=close
    for i, r in enumerate(rects):
        events.append((r.xlo, 0, i))
        events.append((r.xhi, 1, i))
    events.sort(key=lambda e: (e[0], e[1]))
    active: list[int] = []
    for _x, kind, i in events:
        if kind == 1:
            active.remove(i)
            continue
        ri = rects[i]
        for j in active:
            if ri.interiors_intersect(rects[j]):
                raise DisjointnessError(
                    f"obstacles {j} and {i} overlap: {rects[j]!r} vs {ri!r}"
                )
        active.append(i)


def all_coords(rects: Sequence[Rect], pts: Iterable[Point] = ()) -> tuple[list[int], list[int]]:
    """Sorted deduplicated x- and y-coordinate lists (the Hanan grid lines)."""
    xs = {r.xlo for r in rects} | {r.xhi for r in rects}
    ys = {r.ylo for r in rects} | {r.yhi for r in rects}
    for x, y in pts:
        xs.add(x)
        ys.add(y)
    return sorted(xs), sorted(ys)
