"""Staircases: monotone rectilinear chains (§2 of the paper).

A *staircase* is a convex path — monotone with respect to both axes.  The
paper uses bounded staircases (portions of envelope boundaries, separators
clipped to a region) and unbounded ones (``MAX_XY`` frontiers, separators,
``XY(p)`` paths extended to infinity).

Representation: the finite corner chain ``pts`` ordered by *non-decreasing
x* plus two optional semi-infinite rays attached to the chain ends
(``left_dir`` ∈ {W, N, S}, ``right_dir`` ∈ {E, N, S}).  All side tests,
crossing computations and clipping are implemented once here and reused by
the separator theorem, the conquer steps and the §7 chunk machinery.
"""

from __future__ import annotations

import math
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

from repro.errors import GeometryError
from repro.geometry.primitives import Point, Rect, Transform, dist

NEG = -math.inf
POS = math.inf

_RAY_VECTOR = {"W": (-1, 0), "E": (1, 0), "N": (0, 1), "S": (0, -1)}


def _dedupe(pts: Sequence[Point]) -> list[Point]:
    out: list[Point] = []
    for p in pts:
        if not out or out[-1] != p:
            out.append(p)
    return out


def _drop_collinear(pts: list[Point]) -> list[Point]:
    """Remove interior points that lie on a straight run."""
    if len(pts) < 3:
        return pts
    out = [pts[0]]
    for p in pts[1:-1]:
        a = out[-1]
        # peek next retained direction by comparing with the following point
        out.append(p)
        if len(out) >= 3:
            b, c = out[-3], out[-1]
            m = out[-2]
            if (b[0] == m[0] == c[0]) or (b[1] == m[1] == c[1]):
                del out[-2]
        del a
    out.append(pts[-1])
    if len(out) >= 3:
        b, m, c = out[-3], out[-2], out[-1]
        if (b[0] == m[0] == c[0]) or (b[1] == m[1] == c[1]):
            del out[-2]
    return out


@dataclass(frozen=True)
class Staircase:
    """A monotone rectilinear chain, optionally unbounded at either end.

    ``increasing`` is True when y rises with x along the chain.  For chains
    with no y extent (a horizontal run) either label is geometrically valid
    and the constructor defaults to increasing; for chains with no x extent
    (a vertical line, which arises as a degenerate separator) the label
    fixes which side is called "above".
    """

    pts: tuple[Point, ...]
    increasing: bool = True
    left_dir: Optional[str] = None  # 'W' | 'N' | 'S' | None
    right_dir: Optional[str] = None  # 'E' | 'N' | 'S' | None
    _xs: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        pts = tuple(_drop_collinear(_dedupe(self.pts)))
        object.__setattr__(self, "pts", pts)
        if not pts:
            raise GeometryError("staircase needs at least one point")
        self._validate()
        object.__setattr__(self, "_xs", tuple(p[0] for p in pts))

    # ------------------------------------------------------------------
    def _validate(self) -> None:
        pts = self.pts
        sgn = 1 if self.increasing else -1
        for a, b in zip(pts, pts[1:]):
            if a[0] != b[0] and a[1] != b[1]:
                raise GeometryError(f"non-rectilinear step {a} -> {b}")
            if b[0] < a[0]:
                raise GeometryError(f"x not monotone at {a} -> {b}")
            if sgn * (b[1] - a[1]) < 0:
                raise GeometryError(
                    f"y not monotone ({'increasing' if self.increasing else 'decreasing'})"
                    f" at {a} -> {b}"
                )
        if self.left_dir is not None:
            allowed = {"W", "S"} if self.increasing else {"W", "N"}
            if self.left_dir not in allowed:
                raise GeometryError(f"bad left ray {self.left_dir}")
        if self.right_dir is not None:
            allowed = {"E", "N"} if self.increasing else {"E", "S"}
            if self.right_dir not in allowed:
                raise GeometryError(f"bad right ray {self.right_dir}")

    # ------------------------------------------------------------------
    @property
    def unbounded(self) -> bool:
        return self.left_dir is not None and self.right_dir is not None

    @property
    def num_segments(self) -> int:
        n = len(self.pts) - 1
        n += self.left_dir is not None
        n += self.right_dir is not None
        return n

    def endpoints(self) -> tuple[Point, Point]:
        return self.pts[0], self.pts[-1]

    def reverse_oriented(self) -> "Staircase":
        """The same staircase (orientation is canonical; returns self)."""
        return self

    # ------------------------------------------------------------------
    def y_range_at_x(self, x: int) -> Optional[tuple[float, float]]:
        """The (min y, max y) of the staircase on the vertical line at ``x``,
        or None when the line misses the staircase entirely."""
        pts, xs = self.pts, self._xs
        x0, x1 = xs[0], xs[-1]
        if x < x0:
            if self.left_dir == "W":
                y = pts[0][1]
                return (y, y)
            return None
        if x > x1:
            if self.right_dir == "E":
                y = pts[-1][1]
                return (y, y)
            return None
        lo = bisect_left(xs, x)
        hi = bisect_right(xs, x)
        ys: list[float] = [pts[i][1] for i in range(lo, hi)]
        if lo > 0 and xs[lo - 1] < x:  # inside horizontal segment pts[lo-1] -> pts[lo]
            ys.append(pts[lo - 1][1])
        if not ys:  # x strictly inside a horizontal segment
            ys = [pts[lo - 1][1]]
        ymin: float = min(ys)
        ymax: float = max(ys)
        if x == x0 and self.left_dir == "S":
            ymin = NEG
        if x == x0 and self.left_dir == "N":
            ymax = POS
        if x == x1 and self.right_dir == "S":
            ymin = NEG
        if x == x1 and self.right_dir == "N":
            ymax = POS
        if x == x0 and self.left_dir == "W":
            pass  # ray is horizontal; chain y already included
        return (ymin, ymax)

    def x_range_at_y(self, y: int) -> Optional[tuple[float, float]]:
        """Symmetric to :meth:`y_range_at_x` (horizontal line)."""
        pts = self.pts
        ys = [p[1] for p in pts]
        if self.increasing:
            ylo, yhi = ys[0], ys[-1]
        else:
            ylo, yhi = ys[-1], ys[0]
        covered_low = None
        if y < ylo:
            d = self.left_dir if self.increasing else self.right_dir
            if d == "S":
                x = pts[0][0] if self.increasing else pts[-1][0]
                return (x, x)
            return None
        if y > yhi:
            d = self.right_dir if self.increasing else self.left_dir
            if d == "N":
                x = pts[-1][0] if self.increasing else pts[0][0]
                return (x, x)
            return None
        del covered_low
        xs_hit: list[float] = []
        for i, p in enumerate(pts):
            if p[1] == y:
                xs_hit.append(p[0])
            if i + 1 < len(pts):
                q = pts[i + 1]
                lo, hi = min(p[1], q[1]), max(p[1], q[1])
                if lo < y < hi:  # strictly inside a vertical segment
                    xs_hit.append(p[0])
        if not xs_hit:
            return None  # can happen only at gaps which monotone chains lack
        xmin: float = min(xs_hit)
        xmax: float = max(xs_hit)
        first_y, last_y = pts[0][1], pts[-1][1]
        if y == first_y and self.left_dir == "W":
            xmin = NEG
        if y == last_y and self.right_dir == "E":
            xmax = POS
        return (xmin, xmax)

    # ------------------------------------------------------------------
    def side_of(self, p: Point) -> int:
        """+1 when ``p`` is strictly on the upper side, -1 strictly lower,
        0 on the staircase.

        For an increasing staircase the upper side is the NW region; for a
        decreasing one it is the NE region.  The staircase must be unbounded
        (every separator and frontier is) so the two sides are well defined
        for every point of the plane.
        """
        if not self.unbounded:
            raise GeometryError("side_of requires an unbounded staircase")
        x, y = p
        rng = self.y_range_at_x(x)
        if rng is not None:
            ymin, ymax = rng
            if y > ymax:
                return 1
            if y < ymin:
                return -1
            return 0
        # The vertical line at x misses the chain: p lies beyond a vertical
        # end ray, strictly west or east of everything.
        if x < self._xs[0]:
            d = self.left_dir
            if self.increasing:
                return 1 if d == "S" else -1  # west of a south-ray is above-left
            return -1 if d == "N" else 1
        d = self.right_dir
        if self.increasing:
            return -1 if d == "N" else 1
        return 1 if d == "S" else -1

    def contains_point(self, p: Point) -> bool:
        return self.side_of(p) == 0 if self.unbounded else self._contains_bounded(p)

    def _contains_bounded(self, p: Point) -> bool:
        x, y = p
        pts = self.pts
        for a, b in zip(pts, pts[1:]):
            if a[0] == b[0] == x and min(a[1], b[1]) <= y <= max(a[1], b[1]):
                return True
            if a[1] == b[1] == y and min(a[0], b[0]) <= x <= max(a[0], b[0]):
                return True
        return len(pts) == 1 and pts[0] == p

    def side_of_rect(self, r: Rect) -> int:
        """Which side a rectangle lies on, assuming the staircase does not
        cross its interior: the side of its center (0 never returned for a
        full-dimensional rect whose interior is clear of the staircase)."""
        cx2, cy2 = r.center2
        s = self._side_of_scaled(cx2, cy2)
        if s != 0:
            return s
        # Center exactly on the chain can only happen when the chain runs
        # along the rectangle's boundary degenerately; classify by a corner.
        for corner in r.vertices:
            s = self.side_of(corner)
            if s != 0:
                return s
        raise GeometryError(f"cannot classify rect {r!r} against staircase")

    def _side_of_scaled(self, x2: int, y2: int) -> int:
        """Side test for the half-integral point (x2/2, y2/2)."""
        if x2 % 2 == 0:
            rng = self.y_range_at_x(x2 // 2)
        else:
            lo = self.y_range_at_x((x2 - 1) // 2)
            hi = self.y_range_at_x((x2 + 1) // 2)
            if lo is None and hi is None:
                rng = None
            elif lo is None:
                rng = hi
            elif hi is None:
                rng = lo
            else:
                # between two columns: the chain's y there is the overlap
                rng = (min(lo[0], hi[0]), max(lo[1], hi[1]))
        if rng is None:
            return self.side_of((x2 // 2, y2 // 2))
        ymin, ymax = rng
        if y2 > 2 * ymax:
            return 1
        if y2 < 2 * ymin:
            return -1
        return 0

    # ------------------------------------------------------------------
    def is_clear(self, rects: Iterable[Rect]) -> bool:
        """True when no segment of the staircase meets any rect interior.

        O(m·n): used by tests and debug assertions, not by the engines.
        """
        segs = list(zip(self.pts, self.pts[1:]))
        rays: list[tuple[Point, str]] = []
        if self.left_dir:
            rays.append((self.pts[0], self.left_dir))
        if self.right_dir:
            rays.append((self.pts[-1], self.right_dir))
        for r in rects:
            for a, b in segs:
                if a[1] == b[1]:
                    if r.blocks_h_segment(a[1], a[0], b[0]):
                        return False
                else:
                    if r.blocks_v_segment(a[0], a[1], b[1]):
                        return False
            for origin, d in rays:
                dx, dy = _RAY_VECTOR[d]
                if dx != 0:
                    x2 = POS if dx > 0 else NEG
                    if r.ylo < origin[1] < r.yhi:
                        lo, hi = (origin[0], x2) if dx > 0 else (x2, origin[0])
                        if max(lo, r.xlo) < min(hi, r.xhi):  # type: ignore[arg-type]
                            return False
                else:
                    y2 = POS if dy > 0 else NEG
                    if r.xlo < origin[0] < r.xhi:
                        lo, hi = (origin[1], y2) if dy > 0 else (y2, origin[1])
                        if max(lo, r.ylo) < min(hi, r.yhi):  # type: ignore[arg-type]
                            return False
        return True

    # ------------------------------------------------------------------
    def crossings_with_vline(self, x: int) -> list[Point]:
        """Integral points where the vertical line at ``x`` meets the chain
        (endpoints of the meeting segment; 1 or 2 points, possibly none)."""
        rng = self.y_range_at_x(x)
        if rng is None:
            return []
        ymin, ymax = rng
        out = []
        if ymin not in (NEG, POS) and ymin == int(ymin):
            out.append((x, int(ymin)))
        if ymax != ymin and ymax not in (NEG, POS) and ymax == int(ymax):
            out.append((x, int(ymax)))
        return out

    def crossings_with_hline(self, y: int) -> list[Point]:
        rng = self.x_range_at_y(y)
        if rng is None:
            return []
        xmin, xmax = rng
        out = []
        if xmin not in (NEG, POS) and xmin == int(xmin):
            out.append((int(xmin), y))
        if xmax != xmin and xmax not in (NEG, POS) and xmax == int(xmax):
            out.append((int(xmax), y))
        return out

    def clip_points_to_bbox(
        self, xlo: int, ylo: int, xhi: int, yhi: int
    ) -> list[Point]:
        """Corner points of the chain inside the closed box."""
        return [
            p
            for p in self.pts
            if xlo <= p[0] <= xhi and ylo <= p[1] <= yhi
        ]

    # ------------------------------------------------------------------
    def arc_dist(self, p: Point, q: Point) -> int:
        """Length along the staircase between two of its points.

        A staircase is monotone in both axes, so the along-chain distance
        *is* the L1 distance (this is the "staircases are shortest paths"
        fact of §2 that the single-intersection shortcut argument uses)."""
        return dist(p, q)

    def subchain(self, p: Point, q: Point) -> list[Point]:
        """Corner list of the portion of the chain between two on-chain
        points, inclusive, ordered from ``p`` to ``q``."""
        a, b = (p, q) if (p[0], p[1]) <= (q[0], q[1]) else (q, p)
        lo = min(a[0], b[0])
        hi = max(a[0], b[0])
        mid = [pt for pt in self.pts if lo <= pt[0] <= hi]
        chain = _drop_collinear(_dedupe([a] + [m for m in mid if self._between(a, m, b)] + [b]))
        if chain[0] != p:
            chain.reverse()
        return chain

    def _between(self, a: Point, m: Point, b: Point) -> bool:
        if self.increasing:
            return a[1] <= m[1] <= b[1] or b[1] <= m[1] <= a[1]
        return min(a[1], b[1]) <= m[1] <= max(a[1], b[1])

    # ------------------------------------------------------------------
    def transform(self, t: Transform) -> "Staircase":
        """Map through a symmetry; re-canonicalise orientation and rays."""
        newpts = [t.apply(p) for p in self.pts]
        ldir = _map_dir(self.left_dir, t)
        rdir = _map_dir(self.right_dir, t)
        if len(newpts) > 1 and (
            newpts[0][0] > newpts[-1][0]
            or (newpts[0][0] == newpts[-1][0] and _dir_is_left(rdir))
        ):
            newpts.reverse()
            ldir, rdir = rdir, ldir
        elif len(newpts) == 1 and _dir_is_left(rdir) and not _dir_is_left(ldir):
            ldir, rdir = rdir, ldir
        inc = _infer_increasing(newpts, ldir, rdir, self.increasing, t)
        return Staircase(tuple(newpts), inc, ldir, rdir)

    def __iter__(self):
        return iter(self.pts)

    def __len__(self) -> int:
        return len(self.pts)


def _map_dir(d: Optional[str], t: Transform) -> Optional[str]:
    if d is None:
        return None
    vx, vy = _RAY_VECTOR[d]
    vx, vy = t.sx * vx, t.sy * vy
    if t.swap:
        vx, vy = vy, vx
    for name, vec in _RAY_VECTOR.items():
        if vec == (vx, vy):
            return name
    raise AssertionError


def _dir_is_left(d: Optional[str]) -> bool:
    return d == "W"


def _infer_increasing(
    pts: list[Point],
    ldir: Optional[str],
    rdir: Optional[str],
    old_inc: bool,
    t: Transform,
) -> bool:
    for a, b in zip(pts, pts[1:]):
        if b[1] > a[1]:
            return True
        if b[1] < a[1]:
            return False
    # No y extent in the chain; infer from rays, else from the transform's
    # effect on the original label.
    if ldir == "S" or rdir == "N":
        return True
    if ldir == "N" or rdir == "S":
        return False
    flips = (t.sx < 0) != (t.sy < 0)
    return old_inc != flips
