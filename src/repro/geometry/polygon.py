"""Rectilinear simple polygons — containers *and* polygonal obstacles.

A :class:`RectilinearPolygon` is any simple rectilinear polygon given by
its boundary vertex loop (holes are rejected with a one-line error).  Two
distinct roles use it:

* **Container** ``P`` of the paper (§2): must additionally be rectilinear
  *convex* — containing every axis-parallel segment between any two of its
  points.  The convex machinery (top/bottom :class:`StepProfile` pair,
  shared with :class:`~repro.geometry.envelope.Envelope`) is built lazily;
  a non-convex polygon raises :class:`ConvexityError` only when used as a
  container (or when :attr:`top`/:attr:`bottom` are touched), not at
  construction.

* **Polygonal obstacle**: any simple polygon.  :meth:`decomposition`
  splits it into disjoint maximal rectangles plus interior :class:`Seam`
  records (see :mod:`repro.geometry.decompose`), which is how
  ``ShortestPathIndex.build`` threads it through the rectangle-only
  engines.  Containment tests are exact and decomposition-based, so they
  work for every simple polygon.

:func:`pockets_to_rects` decomposes ``bbox(P) \\ P`` into axis-parallel
rectangles.  This is how the engines support a polygon container: the free
space inside ``P`` equals the free space among ``R ∪ pockets``, so every
obstacle-only algorithm applies unchanged (substitution recorded in
DESIGN.md §2).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConvexityError, GeometryError
from repro.geometry.decompose import (
    Seam,
    decompose_loop,
    normalize_loop,
    polygon_seams,
)
from repro.geometry.envelope import StepProfile, _profile_from_polyline
from repro.geometry.primitives import Point, Rect


class RectilinearPolygon:
    """A simple rectilinear polygon given by its boundary vertex loop."""

    def __init__(self, loop: Sequence[Point], holes: Sequence[Sequence[Point]] = ()) -> None:
        if holes:
            raise GeometryError("polygons with holes are not supported")
        self.loop = normalize_loop(loop)
        # full O(V²) simplicity validation is deferred to decomposition()
        # (obstacle role); the container role's convexity check subsumes it
        self.bbox = (
            min(p[0] for p in self.loop),
            min(p[1] for p in self.loop),
            max(p[0] for p in self.loop),
            max(p[1] for p in self.loop),
        )
        self._top: Optional[StepProfile] = None
        self._bottom: Optional[StepProfile] = None
        self._convex: Optional[bool] = None
        self._decomp: Optional[Tuple[List[Rect], List[Seam]]] = None

    # -- decomposition (obstacle role) ------------------------------------
    def decomposition(self) -> Tuple[List[Rect], List[Seam]]:
        """Disjoint maximal rectangle tiles plus interior seams (cached)."""
        if self._decomp is None:
            rects = decompose_loop(self.loop)
            self._decomp = (rects, polygon_seams(rects))
        return self._decomp

    # -- convex machinery (container role) --------------------------------
    @property
    def is_convex(self) -> bool:
        """Rectilinear convexity (required for the container role)."""
        if self._convex is None:
            try:
                self._ensure_profiles()
            except ConvexityError:
                pass  # _ensure_profiles records the verdict
        return bool(self._convex)

    @property
    def top(self) -> StepProfile:
        self._ensure_profiles()
        return self._top  # type: ignore[return-value]

    @property
    def bottom(self) -> StepProfile:
        self._ensure_profiles()
        return self._bottom  # type: ignore[return-value]

    def _ensure_profiles(self) -> None:
        if self._top is not None:
            return
        if self._convex is False:
            raise ConvexityError("polygon is not rectilinear convex")
        try:
            self._build_profiles()
            self._convex = True
        except ConvexityError:
            self._convex = False
            raise

    def _build_profiles(self) -> None:
        loop = self.loop
        n = len(loop)
        xlo, _, xhi, _ = self.bbox
        # south-west-most and south-east-most vertices anchor the bottom walk
        sw = min(range(n), key=lambda i: (loop[i][0], loop[i][1]))
        se = max(range(n), key=lambda i: (loop[i][0], -loop[i][1]))
        bottom: list[Point] = []
        i = sw
        while True:
            bottom.append(loop[i])
            if i == se:
                break
            i = (i + 1) % n
            if len(bottom) > n:
                raise ConvexityError("bottom walk does not reach the east side")
        top: list[Point] = []
        i = se
        while True:
            top.append(loop[i])
            if i == sw:
                break
            i = (i + 1) % n
            if len(top) > n:
                raise ConvexityError("top walk does not reach the west side")
        top.reverse()
        for chain, name in ((bottom, "bottom"), (top, "top")):
            for a, b in zip(chain, chain[1:]):
                if b[0] < a[0]:
                    raise ConvexityError(f"{name} boundary not x-monotone at {a}->{b}")
        if bottom[0][0] != xlo or top[0][0] != xlo or bottom[-1][0] != xhi:
            raise ConvexityError("extreme vertices inconsistent")
        top_profile = _profile_from_polyline(top)
        bottom_profile = _profile_from_polyline(bottom)
        _check_unimodal(top_profile, peak=True)
        _check_unimodal(bottom_profile, peak=False)
        self._top = top_profile
        self._bottom = bottom_profile

    # -- region protocol ---------------------------------------------------
    def top_at(self, x: int) -> int:
        return self.top.value_max_at(x)

    def bottom_at(self, x: int) -> int:
        return self.bottom.value_min_at(x)

    def _use_profiles(self) -> bool:
        """Prefer the O(log V) convex profile tests when legal: they avoid
        the one-time O(V²) simplicity sweep that decomposition runs, which
        matters for the §7 many-vertex containers."""
        if self._decomp is not None:
            return False
        return self.is_convex

    def contains(self, p: Point) -> bool:
        """Closed containment, exact for any simple polygon."""
        x, y = p
        xlo, ylo, xhi, yhi = self.bbox
        if not (xlo <= x <= xhi and ylo <= y <= yhi):
            return False
        if self._use_profiles():
            return self.bottom_at(x) <= y <= self.top_at(x)
        rects, _ = self.decomposition()
        return any(r.contains(p) for r in rects)

    def contains_interior(self, p: Point) -> bool:
        """Open containment — tile interiors plus interior seam points."""
        x, y = p
        xlo, ylo, xhi, yhi = self.bbox
        if not (xlo < x < xhi and ylo < y < yhi):
            return False
        if self._use_profiles():
            return self.bottom.value_max_at(x) < y < self.top.value_min_at(x)
        rects, seams = self.decomposition()
        return any(r.contains_interior(p) for r in rects) or any(
            s.contains_open(p) for s in seams
        )

    def contains_rect(self, r: Rect) -> bool:
        """Is the closed rectangle inside the closed polygon?"""
        if self._use_profiles():
            return all(self.contains(v) for v in r.vertices) and not any(
                _rect_pokes_out(self, r, x) for x in (r.xlo, r.xhi)
            )
        # exact via tile-overlap areas (the tiles partition the polygon)
        rects, _ = self.decomposition()
        covered = 0
        for t in rects:
            w = min(r.xhi, t.xhi) - max(r.xlo, t.xlo)
            h = min(r.yhi, t.yhi) - max(r.ylo, t.ylo)
            if w > 0 and h > 0:
                covered += w * h
        return covered == r.width * r.height

    def vertices_loop(self) -> list[Point]:
        return list(self.loop)

    @property
    def size(self) -> int:
        """|P|: the number of boundary vertices."""
        return len(self.loop)

    def boundary_vertices_ccw(self) -> list[Point]:
        return list(self.loop)

    def on_boundary(self, p: Point) -> bool:
        x, y = p
        for a, b in zip(self.loop, self.loop[1:] + [self.loop[0]]):
            if a[0] == b[0] == x and min(a[1], b[1]) <= y <= max(a[1], b[1]):
                return True
            if a[1] == b[1] == y and min(a[0], b[0]) <= x <= max(a[0], b[0]):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RectilinearPolygon({self.loop[:4]}...x{len(self.loop)})"


def _rect_pokes_out(poly: RectilinearPolygon, r: Rect, x: int) -> bool:
    return not (poly.bottom_at(x) <= r.ylo and r.yhi <= poly.top_at(x))


def _check_unimodal(profile: StepProfile, peak: bool) -> None:
    ys = [r[2] for r in profile.runs]
    direction = 1
    for a, b in zip(ys, ys[1:]):
        d = b - a
        if not peak:
            d = -d
        if direction == 1 and d < 0:
            direction = -1
        elif direction == -1 and d > 0:
            raise ConvexityError("profile not unimodal: polygon is not convex")


def rect_polygon(xlo: int, ylo: int, xhi: int, yhi: int) -> RectilinearPolygon:
    """The rectangle ``[xlo,xhi] × [ylo,yhi]`` as a polygon."""
    return RectilinearPolygon([(xlo, ylo), (xhi, ylo), (xhi, yhi), (xlo, yhi)])


def pockets_to_rects(poly: RectilinearPolygon) -> list[Rect]:
    """Decompose ``bbox(P) \\ P`` into rectangles (one per profile step).

    Requires the container role's convexity (raises ``ConvexityError``
    otherwise).  The rectangles may share edges with each other; their
    interiors are pairwise disjoint and disjoint from ``P``.
    """
    xlo, ylo, xhi, yhi = poly.bbox
    out: list[Rect] = []
    for a, b, y in poly.top.runs:
        if y < yhi:
            out.append(Rect(a, y, b, yhi))
    for a, b, y in poly.bottom.runs:
        if y > ylo:
            out.append(Rect(a, ylo, b, y))
    return out
