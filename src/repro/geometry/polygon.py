"""Rectilinear convex polygons — the container ``P`` of the paper.

A rectilinear convex polygon is a rectilinear simple polygon containing
every axis-parallel segment between any two of its points (§2).  Internally
a polygon is normalised to the same top/bottom :class:`StepProfile` pair as
:class:`~repro.geometry.envelope.Envelope`, which gives containment tests,
boundary walks and ray exits in one shared representation.

:func:`pockets_to_rects` decomposes ``bbox(P) \\ P`` into axis-parallel
rectangles.  This is how the engines support a polygon container: the free
space inside ``P`` equals the free space among ``R ∪ pockets``, so every
obstacle-only algorithm applies unchanged (substitution recorded in
DESIGN.md §2).
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConvexityError, GeometryError
from repro.geometry.envelope import StepProfile, _profile_from_polyline
from repro.geometry.primitives import Point, Rect


def _signed_area2(loop: Sequence[Point]) -> int:
    s = 0
    for (x1, y1), (x2, y2) in zip(loop, list(loop[1:]) + [loop[0]]):
        s += x1 * y2 - x2 * y1
    return s


class RectilinearPolygon:
    """A rectilinear *convex* polygon given by its boundary vertex loop."""

    def __init__(self, loop: Sequence[Point]) -> None:
        loop = list(loop)
        if len(loop) >= 2 and loop[0] == loop[-1]:
            loop = loop[:-1]
        if len(loop) < 4:
            raise GeometryError("polygon needs at least 4 vertices")
        for a, b in zip(loop, loop[1:] + [loop[0]]):
            if (a[0] != b[0]) == (a[1] != b[1]):
                raise GeometryError(f"non-rectilinear or zero edge {a} -> {b}")
        if _signed_area2(loop) < 0:
            loop.reverse()
        self.loop = loop
        self._build_profiles()

    # ------------------------------------------------------------------
    def _build_profiles(self) -> None:
        loop = self.loop
        n = len(loop)
        xlo = min(p[0] for p in loop)
        xhi = max(p[0] for p in loop)
        # south-west-most and south-east-most vertices anchor the bottom walk
        sw = min(range(n), key=lambda i: (loop[i][0], loop[i][1]))
        se = max(range(n), key=lambda i: (loop[i][0], -loop[i][1]))
        bottom: list[Point] = []
        i = sw
        while True:
            bottom.append(loop[i])
            if i == se:
                break
            i = (i + 1) % n
            if len(bottom) > n:
                raise ConvexityError("bottom walk does not reach the east side")
        top: list[Point] = []
        i = se
        while True:
            top.append(loop[i])
            if i == sw:
                break
            i = (i + 1) % n
            if len(top) > n:
                raise ConvexityError("top walk does not reach the west side")
        top.reverse()
        for chain, name in ((bottom, "bottom"), (top, "top")):
            for a, b in zip(chain, chain[1:]):
                if b[0] < a[0]:
                    raise ConvexityError(f"{name} boundary not x-monotone at {a}->{b}")
        if bottom[0][0] != xlo or top[0][0] != xlo or bottom[-1][0] != xhi:
            raise ConvexityError("extreme vertices inconsistent")
        self.top = _profile_from_polyline(top)
        self.bottom = _profile_from_polyline(bottom)
        self.bbox = (xlo, min(p[1] for p in loop), xhi, max(p[1] for p in loop))
        _check_unimodal(self.top, peak=True)
        _check_unimodal(self.bottom, peak=False)

    # -- region protocol ---------------------------------------------------
    def top_at(self, x: int) -> int:
        return self.top.value_max_at(x)

    def bottom_at(self, x: int) -> int:
        return self.bottom.value_min_at(x)

    def contains(self, p: Point) -> bool:
        x, y = p
        if not (self.bbox[0] <= x <= self.bbox[2]):
            return False
        return self.bottom_at(x) <= y <= self.top_at(x)

    def contains_interior(self, p: Point) -> bool:
        x, y = p
        if not (self.bbox[0] < x < self.bbox[2]):
            return False
        return self.bottom.value_max_at(x) < y < self.top.value_min_at(x)

    def contains_rect(self, r: Rect) -> bool:
        return all(self.contains(v) for v in r.vertices) and not any(
            _rect_pokes_out(self, r, x) for x in (r.xlo, r.xhi)
        )

    def vertices_loop(self) -> list[Point]:
        return list(self.loop)

    @property
    def size(self) -> int:
        """|P|: the number of boundary vertices."""
        return len(self.loop)

    def boundary_vertices_ccw(self) -> list[Point]:
        return list(self.loop)

    def on_boundary(self, p: Point) -> bool:
        x, y = p
        for a, b in zip(self.loop, self.loop[1:] + [self.loop[0]]):
            if a[0] == b[0] == x and min(a[1], b[1]) <= y <= max(a[1], b[1]):
                return True
            if a[1] == b[1] == y and min(a[0], b[0]) <= x <= max(a[0], b[0]):
                return True
        return False


def _rect_pokes_out(poly: RectilinearPolygon, r: Rect, x: int) -> bool:
    return not (poly.bottom_at(x) <= r.ylo and r.yhi <= poly.top_at(x))


def _check_unimodal(profile: StepProfile, peak: bool) -> None:
    ys = [r[2] for r in profile.runs]
    direction = 1
    for a, b in zip(ys, ys[1:]):
        d = b - a
        if not peak:
            d = -d
        if direction == 1 and d < 0:
            direction = -1
        elif direction == -1 and d > 0:
            raise ConvexityError("profile not unimodal: polygon is not convex")


def rect_polygon(xlo: int, ylo: int, xhi: int, yhi: int) -> RectilinearPolygon:
    """The rectangle ``[xlo,xhi] × [ylo,yhi]`` as a polygon."""
    return RectilinearPolygon([(xlo, ylo), (xhi, ylo), (xhi, yhi), (xlo, yhi)])


def pockets_to_rects(poly: RectilinearPolygon) -> list[Rect]:
    """Decompose ``bbox(P) \\ P`` into rectangles (one per profile step).

    The rectangles may share edges with each other; their interiors are
    pairwise disjoint and disjoint from ``P``.
    """
    xlo, ylo, xhi, yhi = poly.bbox
    out: list[Rect] = []
    for a, b, y in poly.top.runs:
        if y < yhi:
            out.append(Rect(a, y, b, yhi))
    for a, b, y in poly.bottom.runs:
        if y > ylo:
            out.append(Rect(a, ylo, b, y))
    return out
