"""Pareto frontiers and the four ``MAX_XY`` unbounded staircases (§2, Fig. 1).

``MAX_NE(R')`` is the lowest-leftmost decreasing unbounded staircase above
every rectangle of ``R'``; it passes through the maximal elements of the
rectangles' NE corners.  The other three staircases are obtained from the
canonical NE construction through the axis symmetry group, exactly as the
paper treats them ("one can similarly define...").
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import GeometryError
from repro.geometry.primitives import (
    FLIP_X,
    FLIP_XY,
    FLIP_Y,
    IDENTITY,
    Point,
    Rect,
    Transform,
)
from repro.geometry.staircase import Staircase

_QUADRANT_TRANSFORM: dict[str, Transform] = {
    "NE": IDENTITY,
    "NW": FLIP_X,
    "SE": FLIP_Y,
    "SW": FLIP_XY,
}

_QUADRANT_CORNER = {
    "NE": lambda r: r.ne,
    "NW": lambda r: r.nw,
    "SE": lambda r: r.se,
    "SW": lambda r: r.sw,
}


def maximal_points(pts: Iterable[Point]) -> list[Point]:
    """NE-maximal elements: points not dominated by another point with both
    coordinates ≥.  Returned sorted by increasing x (hence decreasing y).

    Classic `O(m log m)` sweep; see [32] for the definition the paper cites.
    """
    ordered = sorted(set(pts), key=lambda p: (-p[0], -p[1]))
    out: list[Point] = []
    best_y = None
    for p in ordered:
        if best_y is None or p[1] > best_y:
            out.append(p)
            best_y = p[1]
    out.reverse()
    return out


def _ne_frontier_staircase(pts: Sequence[Point]) -> Staircase:
    """The canonical MAX_NE staircase over a point set."""
    maxima = maximal_points(pts)
    if not maxima:
        raise GeometryError("frontier of empty point set")
    chain: list[Point] = [maxima[0]]
    for prev, cur in zip(maxima, maxima[1:]):
        chain.append((cur[0], prev[1]))  # east along the shelf ...
        chain.append(cur)  # ... then drop at the next maximal x
    return Staircase(tuple(chain), increasing=False, left_dir="W", right_dir="E")


def max_staircase(pts: Iterable[Point], quadrant: str) -> Staircase:
    """``MAX_quadrant`` of a point set, for quadrant in NE/NW/SE/SW.

    Used directly on projection point sets in §7, and via
    :func:`all_max_staircases` on rectangle corners for envelopes.
    """
    try:
        t = _QUADRANT_TRANSFORM[quadrant]
    except KeyError:
        raise GeometryError(f"unknown quadrant {quadrant!r}") from None
    canonical = _ne_frontier_staircase([t.apply(p) for p in pts])
    return canonical.transform(t.inverse())


def max_staircase_of_rects(rects: Sequence[Rect], quadrant: str) -> Staircase:
    """``MAX_quadrant(R')`` — the frontier over the relevant rect corners."""
    corner = _QUADRANT_CORNER[quadrant]
    return max_staircase([corner(r) for r in rects], quadrant)


def all_max_staircases(rects: Sequence[Rect]) -> dict[str, Staircase]:
    """All four ``MAX_XY(R')`` staircases keyed by quadrant name."""
    return {q: max_staircase_of_rects(rects, q) for q in ("NE", "NW", "SE", "SW")}
