"""Trapezoidal decompositions and ``Hit(e)`` sets (§6.1, §8, §9).

The paper uses the parallel trapezoidal decomposition of [4] for three
things: the parent pointers of the path-tracing forests (Lemma 6), the
planar subdivisions ``H₁``/``H₂`` answering arbitrary-point ray shooting in
§6.4, and the ``Hit(e)`` vertex lists that drive both the shortest-path
trees of §8 and the monotone DAGs of §9.  All three reduce to first-hit ray
shooting, provided here on top of :class:`RayShooter`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Optional, Sequence

from repro.geometry.primitives import Point, Rect
from repro.geometry.rayshoot import Hit, RayShooter


def trapezoidal_decomposition(
    rects: Sequence[Rect],
    points: Sequence[Point],
    direction: str = "N",
    shooter: Optional[RayShooter] = None,
) -> list[Optional[Hit]]:
    """For each point, the first obstacle edge hit in ``direction`` — the
    point's trapezoidal segment (None = the segment at infinity)."""
    shooter = shooter or RayShooter(rects)
    return [shooter.shoot(p, direction) for p in points]


def hit_sets(
    rects: Sequence[Rect],
    points: Sequence[Point],
    direction: str = "W",
    shooter: Optional[RayShooter] = None,
) -> tuple[list[Optional[Hit]], dict[int, list[int]]]:
    """Per-point hits plus the paper's ``Hit(e)`` lists.

    Returns ``(hits, by_edge)`` where ``hits[i]`` is the first hit of the
    ray from ``points[i]`` and ``by_edge[rect_index]`` lists the indices of
    the points whose ray lands on that obstacle, sorted by where the rays
    land along the edge (for W/E shots, by y; for N/S shots, by x).
    """
    shooter = shooter or RayShooter(rects)
    hits = [shooter.shoot(p, direction) for p in points]
    by_edge: dict[int, list[int]] = defaultdict(list)
    for i, h in enumerate(hits):
        if h is not None:
            by_edge[h.rect_index].append(i)
    axis = 1 if direction in ("W", "E") else 0
    for idx in by_edge:
        by_edge[idx].sort(key=lambda i: points[i][axis])
    return hits, dict(by_edge)
