"""The Hanan grid graph of a rectangular-obstacle scene.

Classic fact (used implicitly throughout the paper and explicitly by every
rectilinear shortest-path oracle): between any two points there is a
shortest obstacle-avoiding rectilinear path whose segments lie on the grid
induced by the x/y coordinates of the obstacle vertices and the two
endpoints.  The grid graph is therefore an exact — if quadratic-sized —
model of the metric, and :mod:`repro.core.baseline` runs Dijkstra on it as
the ground-truth oracle every other engine is validated against.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.primitives import Point, Rect


@dataclass
class HananGraph:
    """Grid-graph view of a scene: coordinates plus blocked-edge masks.

    ``block_h[yi, xi]`` — the horizontal edge from ``(xs[xi], ys[yi])`` to
    ``(xs[xi+1], ys[yi])`` crosses an obstacle interior.  ``block_v[yi, xi]``
    is the vertical edge from ``(xs[xi], ys[yi])`` upward.  Node ``(xi, yi)``
    is indexed ``yi * len(xs) + xi``.
    """

    xs: list[int]
    ys: list[int]
    block_h: np.ndarray
    block_v: np.ndarray
    _xindex: dict[int, int] = field(default_factory=dict, repr=False)
    _yindex: dict[int, int] = field(default_factory=dict, repr=False)
    _csr: Optional[tuple[np.ndarray, np.ndarray, np.ndarray]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self._xindex = {x: i for i, x in enumerate(self.xs)}
        self._yindex = {y: i for i, y in enumerate(self.ys)}

    @property
    def num_nodes(self) -> int:
        return len(self.xs) * len(self.ys)

    def node_id(self, p: Point) -> int:
        try:
            xi = self._xindex[p[0]]
            yi = self._yindex[p[1]]
        except KeyError:
            raise GeometryError(f"{p} is not a grid point") from None
        return yi * len(self.xs) + xi

    def node_point(self, nid: int) -> Point:
        w = len(self.xs)
        return (self.xs[nid % w], self.ys[nid // w])

    def neighbors(self, nid: int) -> Iterable[tuple[int, int]]:
        """(neighbor id, edge length) pairs."""
        w = len(self.xs)
        xi, yi = nid % w, nid // w
        xs, ys = self.xs, self.ys
        if xi + 1 < w and not self.block_h[yi, xi]:
            yield nid + 1, xs[xi + 1] - xs[xi]
        if xi > 0 and not self.block_h[yi, xi - 1]:
            yield nid - 1, xs[xi] - xs[xi - 1]
        if yi + 1 < len(ys) and not self.block_v[yi, xi]:
            yield nid + w, ys[yi + 1] - ys[yi]
        if yi > 0 and not self.block_v[yi - 1, xi]:
            yield nid - w, ys[yi] - ys[yi - 1]

    def csr(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """The grid graph as CSR ``(indptr, indices, weights)`` arrays.

        Built lazily from the blocked-edge masks with pure array
        arithmetic — both directions of every open edge are materialised,
        so the graph is a symmetric directed CSR ready for batched
        multi-source Dijkstra (:class:`repro.core.baseline.GridOracle`).
        """
        if self._csr is None:
            nx = len(self.xs)
            n = self.num_nodes
            dx = np.diff(np.asarray(self.xs, dtype=np.int64))
            dy = np.diff(np.asarray(self.ys, dtype=np.int64))
            srcs, dsts, wts = [], [], []
            yi, xi = np.nonzero(~self.block_h)  # open horizontal edges
            u = yi * nx + xi
            w = dx[xi]
            srcs += [u, u + 1]
            dsts += [u + 1, u]
            wts += [w, w]
            yi, xi = np.nonzero(~self.block_v)  # open vertical edges
            u = yi * nx + xi
            w = dy[yi]
            srcs += [u, u + nx]
            dsts += [u + nx, u]
            wts += [w, w]
            src = np.concatenate(srcs)
            order = np.argsort(src, kind="stable")
            indices = np.concatenate(dsts)[order]
            weights = np.concatenate(wts)[order].astype(np.float64)
            indptr = np.zeros(n + 1, dtype=np.int64)
            np.cumsum(np.bincount(src, minlength=n), out=indptr[1:])
            self._csr = (indptr, indices, weights)
        return self._csr


def hanan_graph(
    rects: Sequence[Rect],
    extra_points: Iterable[Point] = (),
    seams: Sequence = (),
) -> HananGraph:
    """Build the grid graph over obstacle vertices plus any extra points.

    ``seams`` are interior shared edges of polygon-obstacle decompositions
    (:class:`repro.geometry.decompose.Seam`): the vertical grid edges that
    run *along* a seam are blocked — they lie strictly inside the source
    polygon even though they touch no rectangle interior.  Seam endpoint
    coordinates join the grid so bends around a seam stay representable.
    """
    xs_set = {r.xlo for r in rects} | {r.xhi for r in rects}
    ys_set = {r.ylo for r in rects} | {r.yhi for r in rects}
    for s in seams:
        xs_set.add(s.x)
        ys_set.add(s.ylo)
        ys_set.add(s.yhi)
    for x, y in extra_points:
        xs_set.add(x)
        ys_set.add(y)
    if not xs_set or not ys_set:
        raise GeometryError("empty scene")
    xs = sorted(xs_set)
    ys = sorted(ys_set)
    nx, ny = len(xs), len(ys)
    # Difference-array accumulation of blocked-edge ranges, one 2-D range
    # addition per rectangle, then prefix sums.
    dh = np.zeros((ny + 1, nx + 1), dtype=np.int32)
    dv = np.zeros((ny + 1, nx + 1), dtype=np.int32)
    for r in rects:
        x0 = bisect_left(xs, r.xlo)
        x1 = bisect_left(xs, r.xhi)
        y0 = bisect_left(ys, r.ylo)
        y1 = bisect_left(ys, r.yhi)
        # horizontal edges: rows y0+1..y1-1 (strictly inside), cols x0..x1-1
        if y0 + 1 <= y1 - 1 and x0 <= x1 - 1:
            dh[y0 + 1, x0] += 1
            dh[y0 + 1, x1] -= 1
            dh[y1, x0] -= 1
            dh[y1, x1] += 1
        # vertical edges: rows y0..y1-1, cols x0+1..x1-1 (strictly inside)
        if x0 + 1 <= x1 - 1 and y0 <= y1 - 1:
            dv[y0, x0 + 1] += 1
            dv[y0, x1] -= 1
            dv[y1, x0 + 1] -= 1
            dv[y1, x1] += 1
    cov_h = np.cumsum(np.cumsum(dh, axis=0), axis=1)
    cov_v = np.cumsum(np.cumsum(dv, axis=0), axis=1)
    block_h = cov_h[:ny, : nx - 1] > 0
    block_v = cov_v[: ny - 1, :nx] > 0
    for s in seams:
        xi = bisect_left(xs, s.x)
        y0 = bisect_left(ys, s.ylo)
        y1 = bisect_left(ys, s.yhi)
        block_v[y0:y1, xi] = True
    return HananGraph(xs, ys, block_h, block_v)
