"""Axis-parallel first-hit ray shooting among disjoint rectangles.

This is the workhorse behind the trapezoidal decompositions of [4] that the
paper uses for path tracing (Lemma 6), for the planar subdivisions ``H₁,
H₂`` that answer arbitrary-point queries in §6.4, and for the ``Hit(e)``
sets of §8–§9.  A static segment tree over the x (resp. y) coordinate slabs
stores, per node, the sorted bottom (resp. top/left/right) edge positions of
the rectangles spanning it; a query walks one root-to-leaf path and takes
the best bisect over ``O(log n)`` sorted lists, i.e. ``O(log² n)`` per shot
after ``O(n log n)`` preprocessing — the same preprocessing/query trade the
paper gets from [4] (its point-location queries are ``O(log n)``; the extra
log factor here is irrelevant to every bound we measure and is noted in
DESIGN.md).

Obstacle *interiors* are opaque; boundaries are not.  A ray starting on the
near boundary of a rectangle hits it at distance zero; a ray grazing along
an edge (query coordinate equal to ``xlo``/``xhi``) does not hit.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import GeometryError
from repro.geometry.primitives import Point, Rect, Transform

_DIR_TRANSFORMS = {
    "N": Transform(),
    "S": Transform(sy=-1),
    "E": Transform(sx=1, sy=1, swap=True),
    "W": Transform(sx=-1, sy=1, swap=True),
}

# Which rectangle edge a ray travelling in each direction hits first.
_HIT_EDGE = {"N": "bottom", "S": "top", "E": "left", "W": "right"}


@dataclass(frozen=True, slots=True)
class Hit:
    """Result of a ray shot: the obstacle index, the point where the ray
    lands on its boundary, and the two endpoints of the edge that was hit
    (the ``u₁, u₂`` of §8–§9)."""

    rect_index: int
    point: Point
    edge: tuple[Point, Point]


class _NorthShooter:
    """First bottom-edge strictly-interior hit for rays going +y."""

    __slots__ = ("_xs", "_size", "_nodes")

    def __init__(self, rects: Sequence[Rect]) -> None:
        xs = sorted({r.xlo for r in rects} | {r.xhi for r in rects})
        self._xs = xs
        nslots = 2 * len(xs) + 1
        size = 1
        while size < nslots:
            size <<= 1
        self._size = size
        nodes: list[list[tuple[int, int]]] = [[] for _ in range(2 * size)]
        for idx, r in enumerate(rects):
            i = bisect_left(xs, r.xlo)
            j = bisect_left(xs, r.xhi)
            lo, hi = 2 * i + 2, 2 * j + 1  # open x-interval -> slot range [lo, hi)
            lo += size
            hi += size
            item = (r.ylo, idx)
            while lo < hi:
                if lo & 1:
                    nodes[lo].append(item)
                    lo += 1
                if hi & 1:
                    hi -= 1
                    nodes[hi].append(item)
                lo >>= 1
                hi >>= 1
        for lst in nodes:
            lst.sort()
        self._nodes = nodes

    def query(self, x: int, y: int) -> Optional[tuple[int, int]]:
        """Lowest ``(ylo, rect_index)`` with ``ylo >= y`` among rectangles
        whose open x-extent contains ``x``; None if the ray escapes."""
        xs = self._xs
        i = bisect_left(xs, x)
        slot = 2 * i + 1 if i < len(xs) and xs[i] == x else 2 * i
        node = slot + self._size
        best: Optional[tuple[int, int]] = None
        while node >= 1:
            lst = self._nodes[node]
            k = bisect_left(lst, (y, -1))
            if k < len(lst) and (best is None or lst[k] < best):
                best = lst[k]
            node >>= 1
        return best


class RayShooter:
    """Four-direction first-hit queries against a fixed obstacle set."""

    def __init__(self, rects: Sequence[Rect]) -> None:
        self.rects = list(rects)
        self._shooters: dict[str, _NorthShooter] = {}
        self._worlds: dict[str, list[Rect]] = {}
        for d, t in _DIR_TRANSFORMS.items():
            world = t.apply_rects(self.rects)
            self._worlds[d] = world
            self._shooters[d] = _NorthShooter(world)
        self._transforms = _DIR_TRANSFORMS

    def shoot(self, p: Point, direction: str) -> Optional[Hit]:
        """First obstacle hit by the ray from ``p`` in ``direction``.

        ``p`` must not lie strictly inside an obstacle (the paper never
        shoots from inside one); shots from a boundary point toward the
        interior report the same obstacle at distance zero.
        """
        try:
            t = self._transforms[direction]
            shooter = self._shooters[direction]
        except KeyError:
            raise GeometryError(f"unknown direction {direction!r}") from None
        qx, qy = t.apply(p)
        res = shooter.query(qx, qy)
        if res is None:
            return None
        ylo, idx = res
        hit_world: Point = (qx, ylo)
        hit = t.inverse().apply(hit_world)
        r = self.rects[idx]
        edge = _edge_of(r, _HIT_EDGE[direction])
        return Hit(rect_index=idx, point=hit, edge=edge)

    def first_hit_coordinate(self, p: Point, direction: str) -> Optional[int]:
        """Just the axis coordinate of the hit (y for N/S, x for E/W)."""
        h = self.shoot(p, direction)
        if h is None:
            return None
        return h.point[1] if direction in ("N", "S") else h.point[0]


def _edge_of(r: Rect, which: str) -> tuple[Point, Point]:
    if which == "bottom":
        return (r.sw, r.se)
    if which == "top":
        return (r.nw, r.ne)
    if which == "left":
        return (r.sw, r.nw)
    return (r.se, r.ne)


def brute_force_shoot(rects: Sequence[Rect], p: Point, direction: str) -> Optional[Hit]:
    """O(n) reference implementation used by the tests."""
    x, y = p
    best: Optional[tuple[int, int]] = None
    for idx, r in enumerate(rects):
        if direction == "N" and r.xlo < x < r.xhi and r.ylo >= y:
            cand = (r.ylo, idx)
        elif direction == "S" and r.xlo < x < r.xhi and r.yhi <= y:
            cand = (-r.yhi, idx)
        elif direction == "E" and r.ylo < y < r.yhi and r.xlo >= x:
            cand = (r.xlo, idx)
        elif direction == "W" and r.ylo < y < r.yhi and r.xhi <= x:
            cand = (-r.xhi, idx)
        else:
            continue
        if best is None or cand < best:
            best = cand
    if best is None:
        return None
    idx = best[1]
    r = rects[idx]
    if direction == "N":
        pt: Point = (x, r.ylo)
    elif direction == "S":
        pt = (x, r.yhi)
    elif direction == "E":
        pt = (r.xlo, y)
    else:
        pt = (r.xhi, y)
    return Hit(idx, pt, _edge_of(r, _HIT_EDGE[direction]))
