"""``B(Q)`` boundary point sets and boundary visibility (Definition 1, Figs. 3 & 7).

Given a convex connected region ``Q`` (an :class:`Envelope` or a
:class:`RectilinearPolygon`) containing an obstacle subset ``R'``, ``B(Q)``
consists of the vertices of ``Q`` together with every boundary point that is
horizontally or vertically visible from a vertex of ``Q`` or of an obstacle.
``|B(Q)| = O(|Q| + |R'|)``, which is the size bound all the path-length
matrices of §4–§6 rely on.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Optional, Sequence, Union

from repro.errors import GeometryError
from repro.geometry.envelope import Envelope
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Point, Rect, dist
from repro.geometry.rayshoot import RayShooter

Region = Union[Envelope, RectilinearPolygon]


def _north_exit(region: Region, x: int) -> int:
    return region.top.value_min_at(x)


def _south_exit(region: Region, x: int) -> int:
    return region.bottom.value_max_at(x)


class BoundarySet:
    """``B(Q)`` with the circular ordering of §2 and gap-visibility helpers.

    The points are stored in counterclockwise order starting from the
    south-west-most boundary vertex; ``positions`` holds each point's arc
    length along the boundary, which implements the paper's circular
    ordering and the neighbour searches of the Discretization Lemma.
    """

    def __init__(self, region: Region, rects: Sequence[Rect]) -> None:
        self.region = region
        self.rects = list(rects)
        self.shooter = RayShooter(self.rects)
        self.loop = region.vertices_loop()
        self._edge_starts: list[int] = []
        total = 0
        loop = self.loop
        for a, b in zip(loop, loop[1:] + [loop[0]]):
            self._edge_starts.append(total)
            total += dist(a, b)
        self.perimeter = total
        pts = set(loop)
        xlo, ylo, xhi, yhi = region.bbox
        sources: list[Point] = list(loop)
        for r in self.rects:
            sources.extend(r.vertices)
        for v in sources:
            for d in ("N", "S", "E", "W"):
                p = self._exit_point(v, d)
                if p is not None:
                    pts.add(p)
        positioned = []
        for p in pts:
            pos = self.boundary_pos(p)
            if pos is not None:
                positioned.append((pos, p))
        positioned.sort()
        self.points: list[Point] = [p for _pos, p in positioned]
        self.positions: list[int] = [pos for pos, _p in positioned]
        self.index = {p: i for i, p in enumerate(self.points)}
        del xlo, ylo, xhi, yhi

    # ------------------------------------------------------------------
    def _exit_point(self, v: Point, direction: str) -> Optional[Point]:
        """Boundary point seen from ``v`` in ``direction`` (None if an
        obstacle blocks the view first)."""
        x, y = v
        region = self.region
        xlo, ylo, xhi, yhi = region.bbox
        if not region.contains(v):
            return None
        if direction == "N":
            exit_pt: Point = (x, _north_exit(region, x))
            ok = exit_pt[1] >= y
        elif direction == "S":
            exit_pt = (x, _south_exit(region, x))
            ok = exit_pt[1] <= y
        elif direction == "E":
            ex = self._east_exit_at_row(y, x)
            if ex is None:
                return None
            exit_pt = (ex, y)
            ok = ex >= x
        else:
            wx = self._west_exit_at_row(y, x)
            if wx is None:
                return None
            exit_pt = (wx, y)
            ok = wx <= x
        if not ok:
            return None
        hit = self.shooter.shoot(v, direction)
        if hit is not None:
            if direction == "N" and hit.point[1] < exit_pt[1]:
                return None
            if direction == "S" and hit.point[1] > exit_pt[1]:
                return None
            if direction == "E" and hit.point[0] < exit_pt[0]:
                return None
            if direction == "W" and hit.point[0] > exit_pt[0]:
                return None
        return exit_pt

    def _east_exit_at_row(self, y: int, from_x: int) -> Optional[int]:
        """Largest x with (x, y) in Q, scanning the boundary columns."""
        region = self.region
        xlo, _, xhi, _ = region.bbox
        # whole-row extent: rightmost column whose [bottom, top] contains y
        cols = sorted(
            set(region.top.breakpoints()) | set(region.bottom.breakpoints())
        )
        best = None
        for a, b in zip(cols, cols[1:]):
            if b <= from_x:
                continue
            top = min(region.top.value_max_at(a), region.top.value_max_at(b))
            bot = max(region.bottom.value_min_at(a), region.bottom.value_min_at(b))
            lo_t = min(region.top.value_min_at(a), region.top.value_min_at(b))
            hi_b = max(region.bottom.value_max_at(a), region.bottom.value_max_at(b))
            if hi_b <= y <= lo_t:
                best = b
            elif bot <= y <= top and best is None:
                best = max(from_x, a)
            else:
                if best is not None and a >= from_x:
                    break
        del xlo, xhi
        return best

    def _west_exit_at_row(self, y: int, from_x: int) -> Optional[int]:
        region = self.region
        cols = sorted(
            set(region.top.breakpoints()) | set(region.bottom.breakpoints())
        )
        best = None
        for b, a in zip(reversed(cols), list(reversed(cols))[1:]):
            if a >= from_x:
                continue
            lo_t = min(region.top.value_min_at(a), region.top.value_min_at(b))
            hi_b = max(region.bottom.value_max_at(a), region.bottom.value_max_at(b))
            if hi_b <= y <= lo_t:
                best = a
            else:
                if best is not None and b <= from_x:
                    break
        return best

    # ------------------------------------------------------------------
    def boundary_pos(self, p: Point) -> Optional[int]:
        """Arc-length position of ``p`` along the CCW boundary, or None if
        ``p`` is not on the boundary."""
        loop = self.loop
        for i, (a, b) in enumerate(zip(loop, loop[1:] + [loop[0]])):
            if a[0] == b[0] == p[0]:
                lo, hi = min(a[1], b[1]), max(a[1], b[1])
                if lo <= p[1] <= hi:
                    return self._edge_starts[i] + abs(p[1] - a[1])
            elif a[1] == b[1] == p[1]:
                lo, hi = min(a[0], b[0]), max(a[0], b[0])
                if lo <= p[0] <= hi:
                    return self._edge_starts[i] + abs(p[0] - a[0])
        return None

    def neighbors(self, b: Point) -> tuple[Point, Point]:
        """The first B(Q) points met from ``b`` walking clockwise and
        counterclockwise (the ``v``/``w`` of the Discretization Lemma)."""
        pos = self.boundary_pos(b)
        if pos is None:
            raise GeometryError(f"{b} is not on the boundary")
        i = self.index.get(b)
        if i is not None:
            return b, b
        j = bisect_right(self.positions, pos) % len(self.points)
        return self.points[j - 1], self.points[j]

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self):
        return iter(self.points)


def boundary_points(region: Region, rects: Sequence[Rect]) -> BoundarySet:
    """Compute ``B(Q)`` for a region and the obstacles it contains."""
    return BoundarySet(region, rects)
