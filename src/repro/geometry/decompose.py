"""Rectangle decomposition of simple rectilinear polygons.

The paper's engines understand exactly one obstacle shape: the axis-parallel
rectangle.  A general rectilinear *polygonal* obstacle is supported by
splitting it into disjoint maximal rectangles with a vertical-slab sweep
(:func:`decompose_loop`) and handing those rectangles to the engines.

One subtlety makes the decomposition more than a tiling.  Obstacle
*interiors* are opaque but boundaries are traversable (§2), and any tiling
of a polygon by interior-disjoint rectangles leaves *seams* — shared edges
between adjacent tiles whose open segments lie strictly inside the polygon.
A path running along a seam would cross straight through the "solid"
obstacle (think of the middle chord of a plus shape).  No disjoint rectangle
set can close a seam (a rectangle whose interior covered a seam point would
overlap both tiles), so seams are carried *explicitly*: :class:`Seam`
records each interior shared edge, and every blocking-sensitive primitive
(Hanan grid, clear-L-path sweeps, engines) also refuses to travel *along*
a seam.  ``rects + seams`` together block precisely the polygon's interior:

* a segment through the 2-D interior crosses some tile's interior;
* a segment along a seam is blocked by the seam itself;
* transversal seam *crossings* already pass through tile interiors on both
  sides, so seams only need to forbid collinear overlap.

The vertical-slab sweep yields only **vertical** seams (tiles in one slab
are separated by gaps; merged tiles never stack), which is what keeps the
seam checks one comparison per segment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.primitives import Point, Rect

__all__ = [
    "Seam",
    "decompose_loop",
    "normalize_loop",
    "polygon_seams",
    "seams_block_v_segment",
    "staircase_clear_of_seams",
    "validate_simple_loop",
]


@dataclass(frozen=True, slots=True, order=True)
class Seam:
    """A vertical interior shared edge between two decomposition tiles.

    The *open* segment ``{x} × (ylo, yhi)`` lies strictly inside the source
    polygon; its endpoints are tile corners (and polygon reflex vertices),
    which is why they are always part of the engines' vertex set.
    """

    x: int
    ylo: int
    yhi: int

    def __post_init__(self) -> None:
        if not self.ylo < self.yhi:
            raise GeometryError(f"degenerate seam {self!r}")

    @property
    def endpoints(self) -> Tuple[Point, Point]:
        return ((self.x, self.ylo), (self.x, self.yhi))

    def contains_open(self, p: Point) -> bool:
        """Is ``p`` strictly inside the seam segment (= polygon interior)?"""
        return p[0] == self.x and self.ylo < p[1] < self.yhi

    def blocks_v_segment(self, x: int, y1: int, y2: int) -> bool:
        """Does the open vertical segment overlap the seam collinearly?"""
        if x != self.x:
            return False
        if y1 > y2:
            y1, y2 = y2, y1
        return max(y1, self.ylo) < min(y2, self.yhi)


def seams_block_v_segment(seams: Sequence[Seam], x: int, y1: int, y2: int) -> bool:
    """True when any seam blocks the open vertical segment at ``x``."""
    return any(s.blocks_v_segment(x, y1, y2) for s in seams)


# ----------------------------------------------------------------------
def normalize_loop(loop: Sequence[Point]) -> List[Point]:
    """Canonical vertex loop: closing duplicate dropped, collinear runs
    merged, orientation counterclockwise.  Raises on anything that is not
    a rectilinear loop of positive area."""
    pts = [tuple(p) for p in loop]
    if len(pts) >= 2 and pts[0] == pts[-1]:
        pts = pts[:-1]
    if len(pts) < 4:
        raise GeometryError("polygon needs at least 4 vertices")
    for a, b in zip(pts, pts[1:] + [pts[0]]):
        if (a[0] != b[0]) == (a[1] != b[1]):
            raise GeometryError(f"non-rectilinear or zero edge {a} -> {b}")
    # merge collinear runs (A->B->C with all three on one axis line)
    out: List[Point] = []
    for p in pts:
        out.append(p)
        while len(out) >= 3 and (
            (out[-3][0] == out[-2][0] == out[-1][0])
            or (out[-3][1] == out[-2][1] == out[-1][1])
        ):
            del out[-2]
    while len(out) >= 3 and (
        (out[-2][0] == out[-1][0] == out[0][0])
        or (out[-2][1] == out[-1][1] == out[0][1])
    ):
        out.pop()
    while len(out) >= 3 and (
        (out[-1][0] == out[0][0] == out[1][0])
        or (out[-1][1] == out[0][1] == out[1][1])
    ):
        del out[0]
    if len(out) < 4:
        raise GeometryError("polygon collapses to a line")
    if _signed_area2(out) == 0:
        raise GeometryError("polygon has zero area")
    if _signed_area2(out) < 0:
        out.reverse()
    return out


def _signed_area2(loop: Sequence[Point]) -> int:
    s = 0
    for (x1, y1), (x2, y2) in zip(loop, list(loop[1:]) + [loop[0]]):
        s += x1 * y2 - x2 * y1
    return s


def _segments_touch(a: Tuple[Point, Point], b: Tuple[Point, Point]) -> bool:
    """Do two axis-parallel closed segments share any point?"""
    (ax1, ay1), (ax2, ay2) = a
    (bx1, by1), (bx2, by2) = b
    axlo, axhi = min(ax1, ax2), max(ax1, ax2)
    aylo, ayhi = min(ay1, ay2), max(ay1, ay2)
    bxlo, bxhi = min(bx1, bx2), max(bx1, bx2)
    bylo, byhi = min(by1, by2), max(by1, by2)
    return (
        max(axlo, bxlo) <= min(axhi, bxhi)
        and max(aylo, bylo) <= min(ayhi, byhi)
    )


def validate_simple_loop(loop: Sequence[Point]) -> None:
    """Reject self-intersecting or self-touching (pinched) boundaries.

    A simple rectilinear loop's non-adjacent edges share no point at all;
    adjacent edges share exactly their common vertex.  O(|loop|²) — loops
    are small and this runs once per polygon.
    """
    n = len(loop)
    edges = [(loop[i], loop[(i + 1) % n]) for i in range(n)]
    for i in range(n):
        for j in range(i + 1, n):
            adjacent = j == i + 1 or (i == 0 and j == n - 1)
            if adjacent:
                continue
            if _segments_touch(edges[i], edges[j]):
                raise GeometryError(
                    f"polygon boundary is not simple: edge {edges[i]} "
                    f"touches edge {edges[j]}"
                )


# ----------------------------------------------------------------------
def decompose_loop(loop: Sequence[Point], holes: Sequence[Sequence[Point]] = ()) -> List[Rect]:
    """Disjoint maximal rectangles tiling the simple rectilinear polygon.

    Vertical-slab sweep: between consecutive vertex x-coordinates the
    polygon's cross-section is a set of disjoint y-intervals (even–odd rule
    over the horizontal edges spanning the slab); identical intervals in
    adjacent slabs are merged, so every tile is maximal in x for its
    y-interval and all remaining shared edges are vertical.
    """
    if holes:
        raise GeometryError("polygons with holes are not supported")
    pts = normalize_loop(loop)
    validate_simple_loop(pts)
    hedges = [
        (a[1], min(a[0], b[0]), max(a[0], b[0]))
        for a, b in zip(pts, pts[1:] + [pts[0]])
        if a[1] == b[1]
    ]
    xs = sorted({p[0] for p in pts})
    out: List[Rect] = []
    open_runs: dict[tuple[int, int], int] = {}  # (ylo, yhi) -> start x
    for a, b in zip(xs, xs[1:]):
        mid2 = a + b  # 2 * slab midpoint, exact
        ys = sorted(y for y, x1, x2 in hedges if 2 * x1 < mid2 < 2 * x2)
        if len(ys) % 2:
            raise GeometryError("polygon boundary parity broken (not simple?)")
        intervals = {(ys[k], ys[k + 1]) for k in range(0, len(ys), 2)}
        for iv, start in list(open_runs.items()):
            if iv not in intervals:
                out.append(Rect(start, iv[0], a, iv[1]))
                del open_runs[iv]
        for iv in intervals:
            open_runs.setdefault(iv, a)
    for iv, start in open_runs.items():
        out.append(Rect(start, iv[0], xs[-1], iv[1]))
    area2 = sum(2 * r.width * r.height for r in out)
    if area2 != abs(_signed_area2(pts)):  # pragma: no cover - internal check
        raise GeometryError("decomposition does not tile the polygon")
    return sorted(out)


def polygon_seams(rects: Sequence[Rect]) -> List[Seam]:
    """The interior shared vertical edges of one polygon's tiling.

    Every pair of tiles with a common vertical boundary of positive length
    contributes the open overlap as a :class:`Seam`.  (The slab sweep never
    stacks tiles, so there are no horizontal seams to find.)
    """
    by_xlo: dict[int, List[Rect]] = {}
    for r in rects:
        by_xlo.setdefault(r.xlo, []).append(r)
    seams: List[Seam] = []
    for r in rects:
        for other in by_xlo.get(r.xhi, ()):
            lo = max(r.ylo, other.ylo)
            hi = min(r.yhi, other.yhi)
            if lo < hi:
                seams.append(Seam(r.xhi, lo, hi))
    return sorted(seams)


# ----------------------------------------------------------------------
def staircase_clear_of_seams(chain, seams: Iterable[Seam]) -> bool:
    """True when no chain segment (or end ray) runs along a seam.

    Separator staircases must not travel through polygon interiors: the
    conquer step both places crossing candidates on the chain and slides
    path portions along it, so a seam-overlapping chain is rejected by the
    parallel engine (it falls back to the exact leaf solve).  Horizontal
    chain segments can only *cross* a vertical seam, which already passes
    through tile interiors and is excluded by the chain's rect-clearance.
    """
    seams = list(seams)
    if not seams:
        return True
    pts = chain.pts
    for a, b in zip(pts, pts[1:]):
        if a[0] == b[0] and seams_block_v_segment(seams, a[0], a[1], b[1]):
            return False
    for origin, d in ((pts[0], chain.left_dir), (pts[-1], chain.right_dir)):
        if d == "N" and any(
            s.x == origin[0] and s.yhi > origin[1] for s in seams
        ):
            return False
        if d == "S" and any(
            s.x == origin[0] and s.ylo < origin[1] for s in seams
        ):
            return False
    return True
