"""High-level facade: one object that builds and serves everything.

``ShortestPathIndex`` wires together the build engines (§5/§6 parallel on
the simulated PRAM, or §9 sequential), the arbitrary-point query structure
(§6.4) and the path reporter (§8), with optional rectilinear-convex
container support (``P`` of the paper) via pocket decomposition.
"""

from __future__ import annotations

import threading
from typing import Literal, Optional, Sequence

import numpy as np

from repro.core.allpairs import DistanceIndex, ParallelEngine
from repro.core.pathreport import PathReporter
from repro.core.query import QueryStructure
from repro.core.sequential import SequentialEngine
from repro.errors import QueryError
from repro.geometry.polygon import RectilinearPolygon, pockets_to_rects
from repro.geometry.primitives import (
    Point,
    Rect,
    points_in_any_interior,
    rect_coord_array,
    validate_disjoint,
)
from repro.pram.machine import PRAM

Engine = Literal["parallel", "sequential"]


class ShortestPathIndex:
    """All-pairs rectilinear shortest paths among rectangular obstacles.

    >>> from repro import Rect, ShortestPathIndex
    >>> idx = ShortestPathIndex.build([Rect(2, 2, 4, 8), Rect(6, 0, 9, 5)])
    >>> idx.length((2, 2), (9, 5))
    10
    >>> idx.shortest_path((2, 2), (9, 5))[0]
    (2, 2)

    Lengths between obstacle vertices (and pre-registered points) are O(1)
    matrix lookups; arbitrary points go through the O(log n) machinery of
    §6.4; ``shortest_path`` reports an actual polyline per §8.
    """

    def __init__(
        self,
        rects: Sequence[Rect],
        index: DistanceIndex,
        pram: PRAM,
        container: Optional[RectilinearPolygon] = None,
        engine: str = "parallel",
        query_parents: Optional[np.ndarray] = None,
    ) -> None:
        self.rects = list(rects)
        self.index = index
        self.pram = pram
        self.container = container
        self.engine = engine
        self._query: Optional[QueryStructure] = None
        self._query_parents = query_parents  # persisted §6.4 forests, if any
        self._reporter: Optional[PathReporter] = None
        self._rect_arr = rect_coord_array(self.rects)
        # the lazy substructures are built at most once even when a
        # QueryServer drives this index from many threads
        self._lazy_lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        rects: Sequence[Rect],
        extra_points: Sequence[Point] = (),
        engine: Engine = "parallel",
        container: Optional[RectilinearPolygon] = None,
        pram: Optional[PRAM] = None,
        leaf_size: int = 6,
    ) -> "ShortestPathIndex":
        """Build the index.

        ``container``: a rectilinear convex polygon ``P``; its pockets are
        decomposed into rectangles and added as obstacles, so the metric
        becomes "inside P" exactly as in the paper (§1).
        """
        pram = pram or PRAM("build")
        rects = list(rects)
        validate_disjoint(rects)
        all_rects = list(rects)
        if container is not None:
            for r in rects:
                if not container.contains_rect(r):
                    raise QueryError(f"obstacle {r} is not inside the container")
            all_rects += pockets_to_rects(container)
        if engine == "parallel":
            idx = ParallelEngine(
                all_rects, extra_points, pram, leaf_size=leaf_size, validate=False
            ).build()
        elif engine == "sequential":
            idx = SequentialEngine(all_rects, extra_points, validate=False).build(pram)
        else:
            raise ValueError(f"unknown engine {engine!r}")
        return cls(all_rects, idx, pram, container, engine)

    # ------------------------------------------------------------------
    @property
    def query(self) -> QueryStructure:
        if self._query is None:
            with self._lazy_lock:
                if self._query is None:
                    self._query = QueryStructure(
                        self.rects,
                        self.index,
                        self.pram,
                        world_parents=self._query_parents,
                    )
        return self._query

    @property
    def reporter(self) -> PathReporter:
        if self._reporter is None:
            with self._lazy_lock:
                if self._reporter is None:
                    self._reporter = PathReporter(self.rects, self.index, self.pram)
        return self._reporter

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist this fully built index as a ``.rsp`` snapshot artifact
        (see :mod:`repro.serve.snapshot`); reload with :meth:`load`."""
        from repro.serve.snapshot import save as _save

        _save(self, path)

    @classmethod
    def load(cls, path) -> "ShortestPathIndex":
        """Reload a snapshot saved by :meth:`save` — milliseconds instead
        of re-running the parallel build."""
        from repro.serve.snapshot import load as _load

        return _load(path)

    # ------------------------------------------------------------------
    def length(self, p: Point, q: Point) -> float:
        """Shortest-path length; O(1) for indexed vertices, O(log n)
        otherwise (§6.4)."""
        self._check_inside(p)
        self._check_inside(q)
        if self.index.has_point(p) and self.index.has_point(q):
            return self.index.length(p, q)
        return self.query.length(p, q)

    def lengths(self, pairs: Sequence[tuple[Point, Point]]) -> np.ndarray:
        """Batched :meth:`length` over ``(p, q)`` pairs.

        A batch whose endpoints are all indexed is always answered with a
        single matrix gather — indexed points are obstacle vertices or
        build-validated extras, never obstacle interiors, so no further
        validation (and no §6.4 structure) is needed.  Batches containing
        arbitrary endpoints go through :meth:`QueryStructure.lengths`,
        whose one vectorized containment test validates every endpoint.
        """
        if not pairs:
            return np.empty(0)
        flat: list[Point] = [pt for pair in pairs for pt in pair]
        if self.container is not None:
            for pt in flat:
                if not self.container.contains(pt):
                    raise QueryError(f"{pt} lies outside the container polygon")
        if all(self.index.has_point(pt) for pt in flat):
            return self.index.lengths(
                [p for p, _ in pairs], [q for _, q in pairs]
            )
        return self.query.lengths(pairs)

    def shortest_path(self, p: Point, q: Point) -> list[Point]:
        """An actual shortest path polyline (§8).

        Arbitrary endpoints are attached to the vertex trees with the
        two-candidate rule of §6.4.
        """
        self._check_inside(p)
        self._check_inside(q)
        if self.index.has_point(p) and self.index.has_point(q):
            return self.reporter.path(p, q)
        return self._arbitrary_path(p, q)

    def vertices(self) -> list[Point]:
        return list(self.index.points)

    def build_stats(self) -> tuple[int, int]:
        """(simulated parallel time, work) of everything built so far."""
        return self.pram.time, self.pram.work

    # ------------------------------------------------------------------
    def _check_inside(self, p: Point) -> None:
        if self.container is not None and not self.container.contains(p):
            raise QueryError(f"{p} lies outside the container polygon")
        if points_in_any_interior(self._rect_arr, [p])[0]:
            raise QueryError(f"{p} lies inside an obstacle")

    def _arbitrary_path(self, p: Point, q: Point) -> list[Point]:
        """Assemble a path for arbitrary endpoints: try every (anchor p,
        anchor q) vertex pair produced by the §6.4 candidate machinery."""
        total = self.query.length(p, q)
        if total == abs(p[0] - q[0]) + abs(p[1] - q[1]):
            direct = self._staircase_between(p, q)
            if direct is not None:
                return direct
        best: Optional[list[Point]] = None
        for u in self._anchors(p):
            for v in self._anchors(q):
                lu = self.query.length(p, u)
                lv = self.query.length(v, q)
                mid = self.index.length(u, v)
                if lu + mid + lv == total:
                    head = self._staircase_between(p, u)
                    tail = self._staircase_between(v, q)
                    if head is None or tail is None:
                        continue
                    middle = self.reporter.path(u, v)
                    path = head[:-1] + middle + tail[1:]
                    best = _dedupe_polyline(path)
                    return best
        raise QueryError(
            f"could not assemble a path {p} -> {q}; lengths are still exact"
        )

    def _anchors(self, p: Point) -> list[Point]:
        """Obstacle vertices that can serve as the first hop from p."""
        if self.index.has_point(p):
            return [p]
        out = []
        from repro.geometry.rayshoot import RayShooter

        shooter = getattr(self, "_shooter", None)
        if shooter is None:
            shooter = RayShooter(self.rects)
            self._shooter = shooter
        for d in ("N", "S", "E", "W"):
            h = shooter.shoot(p, d)
            if h is not None:
                out.extend(h.edge)
        # dedupe preserving order
        return list(dict.fromkeys(out)) or []

    def _staircase_between(self, a: Point, b: Point) -> Optional[list[Point]]:
        """A clear monotone staircase a→b of length d(a,b), or None.

        Tries the two extreme L-shapes and a mid bend; falls back to the
        oracle-free greedy walk used by the examples.
        """
        from repro.core.baseline import path_is_clear

        candidates = [
            [a, (b[0], a[1]), b],
            [a, (a[0], b[1]), b],
        ]
        for cand in candidates:
            cand = _dedupe_polyline(cand)
            if path_is_clear(cand, self.rects):
                return cand
        # general monotone staircase via a small local grid
        from repro.core.baseline import GridOracle

        xlo, xhi = min(a[0], b[0]), max(a[0], b[0])
        ylo, yhi = min(a[1], b[1]), max(a[1], b[1])
        local = [
            r
            for r in self.rects
            if r.xlo <= xhi and xlo <= r.xhi and r.ylo <= yhi and ylo <= r.yhi
        ]
        if not local:
            return _dedupe_polyline([a, (b[0], a[1]), b])
        try:
            oracle = GridOracle(local, [a, b])
            if oracle.dist(a, b) == abs(a[0] - b[0]) + abs(a[1] - b[1]):
                return oracle.path(a, b)
        except Exception:  # noqa: BLE001 - fall through to None
            return None
        return None


def _dedupe_polyline(pts: list[Point]) -> list[Point]:
    out: list[Point] = []
    for p in pts:
        if not out or out[-1] != p:
            if len(out) >= 2 and (
                (out[-2][0] == out[-1][0] == p[0]) or (out[-2][1] == out[-1][1] == p[1])
            ):
                out[-1] = p
            else:
                out.append(p)
    return out
