"""High-level facade: one object that builds and serves everything.

``ShortestPathIndex`` wires together the build engines (§5/§6 parallel on
the simulated PRAM, or §9 sequential), the arbitrary-point query structure
(§6.4) and the path reporter (§8), with optional rectilinear-convex
container support (``P`` of the paper) via pocket decomposition.

Obstacles may be plain :class:`Rect` objects or general simple
:class:`RectilinearPolygon` obstacles.  Polygons are decomposed into
disjoint maximal rectangles plus interior :class:`Seam` records
(:mod:`repro.geometry.decompose`); the rectangles feed the paper's
engines while the seams are threaded through every blocking-sensitive
primitive, so the computed metric treats each polygon as one solid
obstacle.  Tracing-based structures (§6.4 queries, §8 path reports)
assume rectangle obstacles, so polygon scenes answer arbitrary-point
queries and report paths through the exact corner-graph machinery
instead (see :class:`_SolidQuery`).
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence, Union

import numpy as np

from repro.core.allpairs import DistanceIndex
from repro.core.baseline import clear_l1_block, path_is_clear
from repro.core.pathreport import PathReporter
from repro.core.query import QueryStructure
from repro.errors import GeometryError, QueryError
from repro.geometry.decompose import Seam
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import (
    Point,
    Rect,
    points_in_any_interior,
    rect_coord_array,
)
from repro.pram.machine import PRAM

#: engine names are resolved through :mod:`repro.pipeline`'s registry —
#: any registered name is valid ("parallel", "sequential", "grid", ...)
Engine = str

#: every query verb a freshly built index answers; snapshot reloads may
#: narrow this (older artifact formats predate the link-query family)
FULL_CAPABILITIES = ("length", "path", "minlink", "pareto")

#: what ``ShortestPathIndex.build`` accepts as one obstacle
Obstacle = Union[Rect, RectilinearPolygon]


def split_obstacles(
    obstacles: Sequence[Obstacle],
) -> tuple[list[Rect], list[RectilinearPolygon], list[Rect], list[Seam]]:
    """``(plain rects, polygons, all engine rects, seams)`` of a mixed
    obstacle list.  ``all engine rects`` preserves the input order, with
    each polygon expanded in place into its decomposition tiles."""
    plain: list[Rect] = []
    polys: list[RectilinearPolygon] = []
    all_rects: list[Rect] = []
    seams: list[Seam] = []
    for obs in obstacles:
        if isinstance(obs, Rect):
            plain.append(obs)
            all_rects.append(obs)
        elif isinstance(obs, RectilinearPolygon):
            polys.append(obs)
            prects, pseams = obs.decomposition()
            all_rects.extend(prects)
            seams.extend(pseams)
        else:
            raise GeometryError(
                f"obstacle must be a Rect or RectilinearPolygon, got {obs!r}"
            )
    return plain, polys, all_rects, seams


class ShortestPathIndex:
    """All-pairs rectilinear shortest paths among rectangular obstacles.

    >>> from repro import Rect, ShortestPathIndex
    >>> idx = ShortestPathIndex.build([Rect(2, 2, 4, 8), Rect(6, 0, 9, 5)])
    >>> idx.length((2, 2), (9, 5))
    10
    >>> idx.shortest_path((2, 2), (9, 5))[0]
    (2, 2)

    Lengths between obstacle vertices (and pre-registered points) are O(1)
    matrix lookups; arbitrary points go through the O(log n) machinery of
    §6.4; ``shortest_path`` reports an actual polyline per §8.
    """

    def __init__(
        self,
        rects: Sequence[Rect],
        index: DistanceIndex,
        pram: PRAM,
        container: Optional[RectilinearPolygon] = None,
        engine: str = "parallel",
        query_parents: Optional[np.ndarray] = None,
        polygons: Sequence[RectilinearPolygon] = (),
        seams: Sequence[Seam] = (),
    ) -> None:
        self.rects = list(rects)
        self.index = index
        self.pram = pram
        self.container = container
        self.engine = engine
        self.polygons = list(polygons)
        self.seams = list(seams)
        #: stage-by-stage build report (engine, timings, cache hits) set
        #: by :func:`repro.pipeline.build_index`; None for indexes built
        #: by hand or reloaded from pre-provenance snapshots
        self.provenance: Optional[dict] = None
        self._query: Optional[object] = None
        self._query_parents = query_parents  # persisted §6.4 forests, if any
        self._reporter: Optional[PathReporter] = None
        #: query verbs this index can answer; snapshot reloads narrow it
        #: (with `capability_note` explaining why) for artifact formats
        #: that predate a verb
        self.capabilities: tuple[str, ...] = FULL_CAPABILITIES
        self.capability_note: Optional[str] = None
        self._links: Optional[object] = None
        self._link_matrix: Optional[np.ndarray] = None  # persisted, if any
        self._adhoc_links: "dict[frozenset, object]" = {}
        self._rect_arr = rect_coord_array(self.rects)
        self._seam_arr = np.array(
            [(s.x, s.ylo, s.yhi) for s in self.seams], dtype=np.float64
        ).reshape(-1, 3)
        # the lazy substructures are built at most once even when a
        # QueryServer drives this index from many threads
        self._lazy_lock = threading.Lock()

    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        obstacles: Sequence[Obstacle],
        extra_points: Sequence[Point] = (),
        engine: Engine = "parallel",
        container: Optional[RectilinearPolygon] = None,
        pram: Optional[PRAM] = None,
        leaf_size: int = 6,
        jobs: Optional[int] = None,
        jit: bool = False,
    ) -> "ShortestPathIndex":
        """Build the index over a mix of ``Rect`` and ``RectilinearPolygon``
        obstacles.

        Polygons are decomposed into disjoint maximal rectangles plus
        interior seams, and the metric treats each polygon as one solid
        obstacle (a point strictly inside a polygon — seam points included
        — is rejected by every query).  ``container``: a rectilinear convex
        polygon ``P``; its pockets are decomposed into rectangles and added
        as obstacles, so the metric becomes "inside P" exactly as in the
        paper (§1).

        This is a thin call into the staged pipeline of
        :mod:`repro.pipeline` (``decompose → graph → solve[engine] →
        query-structures``): ``engine`` resolves through the engine
        registry (an unknown name fails with one line listing what is
        registered), stage artifacts are cached content-addressed by the
        scene (so rebuilding the same scene — or solving it under a second
        engine — reuses the geometry stages), and the per-stage report is
        attached as ``idx.provenance``.  Use
        :func:`repro.pipeline.build_index` directly to control the cache.

        ``jobs`` sizes the worker pool of the ``parallel-mp`` engine
        (ignored by the others); ``jit=True`` opts the solve into the
        compiled kernels of :mod:`repro.kernels` when numba is present
        (byte-identical results either way — see
        ``idx.provenance["jit"]``).
        """
        from repro.pipeline import build_index
        from repro.scene import Scene

        scene = Scene.from_obstacles(
            obstacles, container=container, extra_points=extra_points
        )
        return build_index(
            scene, engine=engine, pram=pram, leaf_size=leaf_size,
            jobs=jobs, jit=jit,
        )

    # ------------------------------------------------------------------
    @property
    def query(self):
        """Arbitrary-point query structure: §6.4 for rectangle scenes, the
        exact corner-graph substitute for polygon scenes (the §6.4 tracing
        subdivisions assume rectangle obstacles)."""
        if self._query is None:
            with self._lazy_lock:
                if self._query is None:
                    if self.seams:
                        self._query = _SolidQuery(self)
                    else:
                        self._query = QueryStructure(
                            self.rects,
                            self.index,
                            self.pram,
                            world_parents=self._query_parents,
                        )
        return self._query

    @property
    def reporter(self) -> PathReporter:
        if self.seams:
            # the §8 tracing reporter assumes rectangle obstacles and would
            # happily route straight through polygon-interior seams; polygon
            # scenes report paths via shortest_path's corner-hop assembly
            raise QueryError(
                "the §8 path reporter is rectangle-only; use shortest_path() "
                "on scenes with polygon obstacles"
            )
        if self._reporter is None:
            with self._lazy_lock:
                if self._reporter is None:
                    self._reporter = PathReporter(self.rects, self.index, self.pram)
        return self._reporter

    @property
    def links(self):
        """Minimum-link / bicriteria oracle (:mod:`repro.links`) over the
        indexed point set, built lazily from the same scene geometry."""
        if self._links is None:
            with self._lazy_lock:
                if self._links is None:
                    from repro.links import LinkDistanceIndex

                    self._links = LinkDistanceIndex(
                        self.rects,
                        self.index.points,
                        seams=self.seams,
                        container=self.container,
                        link_matrix=self._link_matrix,
                    )
        return self._links

    # -- the (length, bends) query family ------------------------------
    def _require_verb(self, verb: str) -> None:
        if verb not in self.capabilities:
            note = f" ({self.capability_note})" if self.capability_note else ""
            raise QueryError(
                f"this index cannot answer '{verb}' queries{note}"
            )

    def _links_for(self, pts: Sequence[Point]):
        """The shared link index, or an ad-hoc one whose grid also
        carries any off-grid endpoints (tiny keyed cache: a client
        re-asking about the same arbitrary pair pays one grid build)."""
        links = self.links
        missing = [p for p in pts if not links.has_point(p)]
        if not missing:
            return links
        key = frozenset(missing)
        hit = self._adhoc_links.get(key)
        if hit is None:
            hit = links.extended(missing)
            if len(self._adhoc_links) >= 8:
                self._adhoc_links.pop(next(iter(self._adhoc_links)))
            self._adhoc_links[key] = hit
        return hit

    def min_links(self, p: Point, q: Point) -> int:
        """Minimum number of maximal straight segments of any p → q path
        (0 iff ``p == q``); bends = ``max(min_links - 1, 0)``."""
        self._require_verb("minlink")
        self._check_inside(p)
        self._check_inside(q)
        return self._links_for([p, q]).min_links(p, q)

    def min_link_path(self, p: Point, q: Point) -> list[Point]:
        """A witness polyline achieving :meth:`min_links` (minimum length
        among minimum-link paths)."""
        self._require_verb("minlink")
        self._check_inside(p)
        self._check_inside(q)
        return self._links_for([p, q]).min_link_path(p, q)

    def link_counts(self, pairs: Sequence[tuple[Point, Point]]) -> list[int]:
        """Batched :meth:`min_links`; pairs sharing endpoints share one
        solver run."""
        self._require_verb("minlink")
        flat = [pt for pair in pairs for pt in pair]
        for pt in flat:
            self._check_inside(pt)
        return self._links_for(flat).link_counts(pairs)

    def bicriteria(
        self, p: Point, q: Point, with_paths: bool = True
    ) -> list[tuple[float, int, Optional[list[Point]]]]:
        """The Pareto frontier of ``(length, bends)`` pairs p → q with one
        witness path per point (sorted by increasing bends; lengths are
        strictly decreasing)."""
        self._require_verb("pareto")
        self._check_inside(p)
        self._check_inside(q)
        return self._links_for([p, q]).bicriteria(p, q, with_paths=with_paths)

    def paretos(
        self, pairs: Sequence[tuple[Point, Point]]
    ) -> list[list[tuple[float, int]]]:
        """Batched witness-free Pareto frontiers, one ``[(length, bends),
        ...]`` list per pair."""
        self._require_verb("pareto")
        flat = [pt for pair in pairs for pt in pair]
        for pt in flat:
            self._check_inside(pt)
        return self._links_for(flat).paretos(pairs)

    # ------------------------------------------------------------------
    def save(self, path) -> None:
        """Persist this fully built index as a ``.rsp`` snapshot artifact
        (see :mod:`repro.serve.snapshot`); reload with :meth:`load`."""
        from repro.serve.snapshot import save as _save

        _save(self, path)

    @classmethod
    def load(cls, path) -> "ShortestPathIndex":
        """Reload a snapshot saved by :meth:`save` — milliseconds instead
        of re-running the parallel build."""
        from repro.serve.snapshot import load as _load

        return _load(path)

    # ------------------------------------------------------------------
    def length(self, p: Point, q: Point) -> float:
        """Shortest-path length; O(1) for indexed vertices, O(log n)
        otherwise (§6.4)."""
        self._check_inside(p)
        self._check_inside(q)
        if self.index.has_point(p) and self.index.has_point(q):
            return self.index.length(p, q)
        return self.query.length(p, q)

    def lengths(self, pairs: Sequence[tuple[Point, Point]]) -> np.ndarray:
        """Batched :meth:`length` over ``(p, q)`` pairs.

        A batch whose endpoints are all indexed is always answered with a
        single matrix gather — indexed points are obstacle vertices or
        build-validated extras, never obstacle interiors, so no further
        validation (and no §6.4 structure) is needed.  Batches containing
        arbitrary endpoints go through :meth:`QueryStructure.lengths`,
        whose one vectorized containment test validates every endpoint.
        """
        if not pairs:
            return np.empty(0)
        flat: list[Point] = [pt for pair in pairs for pt in pair]
        if self.container is not None:
            for pt in flat:
                if not self.container.contains(pt):
                    raise QueryError(f"{pt} lies outside the container polygon")
        if all(self.index.has_point(pt) for pt in flat):
            return self.index.lengths(
                [p for p, _ in pairs], [q for _, q in pairs]
            )
        # both query backends validate the endpoints themselves (one
        # vectorized containment pass each) — no pre-check here
        return self.query.lengths(pairs)

    def shortest_path(self, p: Point, q: Point) -> list[Point]:
        """An actual shortest path polyline (§8).

        Arbitrary endpoints are attached to the vertex trees with the
        two-candidate rule of §6.4.  Polygon scenes assemble the polyline
        from clear L-legs and corner-graph hops instead (the §8 tracing
        reporter assumes rectangle obstacles).
        """
        self._check_inside(p)
        self._check_inside(q)
        if self.seams:
            return self._solid_path(p, q)
        if self.index.has_point(p) and self.index.has_point(q):
            path = self.reporter.path(p, q)
        elif self.container is None:
            return self._arbitrary_path(p, q)
        else:
            try:
                path = self._arbitrary_path(p, q)
            except QueryError:
                return self._solid_path(p, q)
        return self._confine(path, p, q)

    def _confine(self, path: list[Point], p: Point, q: Point) -> list[Point]:
        """Container-confinement pass over an assembled polyline.

        The §8 tracing reporter knows obstacles only as rectangle
        *interiors*, so on container scenes it can graze along
        pocket-pocket shared edges that lie strictly outside ``P`` (the
        reported length is still the correct in-``P`` distance — ``P`` is
        rectilinear convex, so leaving it never shortens a path).  When
        any polyline vertex escapes, reassemble with the container-aware
        corner-hop machinery instead; ``P``'s convexity means checking
        the vertices confines every axis-parallel segment between them.
        """
        if self.container is not None and any(
            not self.container.contains(pt) for pt in path
        ):
            return self._solid_path(p, q)
        return path

    def vertices(self) -> list[Point]:
        return list(self.index.points)

    def build_stats(self) -> tuple[int, int]:
        """(simulated parallel time, work) of everything built so far."""
        return self.pram.time, self.pram.work

    # ------------------------------------------------------------------
    def _check_inside(self, p: Point) -> None:
        if self.container is not None and not self.container.contains(p):
            raise QueryError(f"{p} lies outside the container polygon")
        if points_in_any_interior(self._rect_arr, [p])[0]:
            raise QueryError(f"{p} lies inside an obstacle")
        # a point on a decomposition seam is strictly inside its polygon
        # even though it touches no rectangle interior
        for s in self.seams:
            if s.contains_open(p):
                raise QueryError(f"{p} lies inside a polygon obstacle")

    def _check_points_free(self, pts: Sequence[Point]) -> None:
        """Vectorized obstacle-interior rejection for a point batch (rect
        interiors plus polygon seam interiors)."""
        bad = points_in_any_interior(self._rect_arr, pts)
        if self._seam_arr.size:
            arr = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
            on_seam = (
                (arr[:, 0][:, None] == self._seam_arr[None, :, 0])
                & (arr[:, 1][:, None] > self._seam_arr[None, :, 1])
                & (arr[:, 1][:, None] < self._seam_arr[None, :, 2])
            ).any(axis=1)
            bad = bad | on_seam
        if bad.any():
            p = list(pts)[int(np.argmax(bad))]
            raise QueryError(f"{p} lies inside an obstacle")

    def _arbitrary_path(self, p: Point, q: Point) -> list[Point]:
        """Assemble a path for arbitrary endpoints: try every (anchor p,
        anchor q) vertex pair produced by the §6.4 candidate machinery."""
        total = self.query.length(p, q)
        if total == abs(p[0] - q[0]) + abs(p[1] - q[1]):
            direct = self._staircase_between(p, q)
            if direct is not None:
                return direct
        best: Optional[list[Point]] = None
        for u in self._anchors(p):
            for v in self._anchors(q):
                lu = self.query.length(p, u)
                lv = self.query.length(v, q)
                mid = self.index.length(u, v)
                if lu + mid + lv == total:
                    head = self._staircase_between(p, u)
                    tail = self._staircase_between(v, q)
                    if head is None or tail is None:
                        continue
                    middle = self.reporter.path(u, v)
                    path = head[:-1] + middle + tail[1:]
                    best = _dedupe_polyline(path)
                    return best
        raise QueryError(
            f"could not assemble a path {p} -> {q}; lengths are still exact"
        )

    def _anchors(self, p: Point) -> list[Point]:
        """Obstacle vertices that can serve as the first hop from p."""
        if self.index.has_point(p):
            return [p]
        out = []
        from repro.geometry.rayshoot import RayShooter

        shooter = getattr(self, "_shooter", None)
        if shooter is None:
            shooter = RayShooter(self.rects)
            self._shooter = shooter
        for d in ("N", "S", "E", "W"):
            h = shooter.shoot(p, d)
            if h is not None:
                out.extend(h.edge)
        # dedupe preserving order
        return list(dict.fromkeys(out)) or []

    # -- polygon-scene (solid) path assembly ----------------------------
    def _clear_lpath(self, a: Point, b: Point) -> Optional[list[Point]]:
        """A clear extreme L-path a→b (one of the two), or None.

        Matches :func:`repro.core.baseline.clear_l1_block`'s notion of
        clearance, seams included.  With a container the leg must also stay
        inside ``P``: a rect-clear L can graze along pocket-pocket seams
        strictly outside ``P``.  ``P`` is rectilinear convex, so checking
        the bend point (the endpoints are already inside) confines the
        whole leg."""
        for mid in ((b[0], a[1]), (a[0], b[1])):
            if self.container is not None and not self.container.contains(mid):
                continue
            cand = _dedupe_polyline([a, mid, b])
            if path_is_clear(cand, self.rects, seams=self.seams):
                return cand
        return None

    def _clear_row(self, p: Point) -> np.ndarray:
        """Clear-L-path distances from ``p`` to every indexed vertex."""
        return clear_l1_block([p], self.index.points, self.rects, seams=self.seams)[0]

    def _solid_vertex_path(self, u: Point, v: Point) -> list[Point]:
        """Vertex-to-vertex polyline on polygon scenes: greedy corner-graph
        descent — every shortest path splits as ``clear L-leg + shorter
        suffix`` at some indexed corner (the leaf-solve argument of
        :func:`corner_graph_matrix`, which also covers polygon seams since
        seam endpoints are tile corners)."""
        mat = self.index.matrix
        pts = self.index.points
        j = self.index.index[v]
        out: list[Point] = [u]
        cur = u
        remaining = float(mat[self.index.index[u], j])
        if not np.isfinite(remaining):
            raise QueryError(f"{u} and {v} are disconnected")
        guard = 0
        while cur != v:
            guard += 1
            if guard > len(pts) + 1:  # pragma: no cover - broken matrix
                raise QueryError("solid path reconstruction did not converge")
            row = self._clear_row(cur)
            if row[j] == remaining:
                leg = self._clear_lpath(cur, v)
                if leg is not None:
                    out.extend(leg[1:])
                    break
            suffix = row + mat[:, j]
            cand = np.where(
                (suffix == remaining) & (mat[:, j] < remaining)
            )[0]
            for k in cand:
                if self.container is not None and not self.container.contains(
                    pts[k]
                ):
                    continue  # pocket corner strictly outside P
                leg = self._clear_lpath(cur, pts[k])
                if leg is not None:
                    out.extend(leg[1:])
                    cur = pts[k]
                    remaining = float(mat[k, j])
                    break
            else:  # pragma: no cover - contradicts the leaf-solve argument
                raise QueryError(f"no clear hop from {cur} toward {v}")
        return _dedupe_polyline(out)

    def _solid_path(self, p: Point, q: Point) -> list[Point]:
        """Shortest polyline on a polygon scene, arbitrary endpoints."""
        if self.index.has_point(p) and self.index.has_point(q):
            return self._solid_vertex_path(p, q)
        total = self.length(p, q)
        direct = clear_l1_block([p], [q], self.rects, seams=self.seams)[0, 0]
        if direct == total:
            leg = self._clear_lpath(p, q)
            if leg is not None:
                return leg
        cp = self._clear_row(p)
        cq = self._clear_row(q)
        via = cp[:, None] + self.index.matrix + cq[None, :]
        hits = np.argwhere(via == total)
        pts = self.index.points
        for i, j in hits:
            if self.container is not None and not (
                self.container.contains(pts[i]) and self.container.contains(pts[j])
            ):
                continue
            head = self._clear_lpath(p, pts[i])
            tail = self._clear_lpath(pts[j], q)
            if head is None or tail is None:  # pragma: no cover - defensive
                continue
            middle = self._solid_vertex_path(pts[i], pts[j])
            return _dedupe_polyline(head[:-1] + middle + tail[1:])
        raise QueryError(  # pragma: no cover - contradicts exactness argument
            f"could not assemble a polygon-scene path {p} -> {q}"
        )

    def _staircase_between(self, a: Point, b: Point) -> Optional[list[Point]]:
        """A clear monotone staircase a→b of length d(a,b), or None.

        Tries the two extreme L-shapes and a mid bend; falls back to the
        oracle-free greedy walk used by the examples.
        """
        from repro.core.baseline import path_is_clear

        candidates = [
            [a, (b[0], a[1]), b],
            [a, (a[0], b[1]), b],
        ]
        for cand in candidates:
            cand = _dedupe_polyline(cand)
            if path_is_clear(cand, self.rects):
                return cand
        # general monotone staircase via a small local grid
        from repro.core.baseline import GridOracle

        xlo, xhi = min(a[0], b[0]), max(a[0], b[0])
        ylo, yhi = min(a[1], b[1]), max(a[1], b[1])
        local = [
            r
            for r in self.rects
            if r.xlo <= xhi and xlo <= r.xhi and r.ylo <= yhi and ylo <= r.yhi
        ]
        if not local:
            return _dedupe_polyline([a, (b[0], a[1]), b])
        try:
            oracle = GridOracle(local, [a, b])
            if oracle.dist(a, b) == abs(a[0] - b[0]) + abs(a[1] - b[1]):
                return oracle.path(a, b)
        except Exception:  # noqa: BLE001 - fall through to None
            return None
        return None


def _obstacle_rect_groups(obstacles: Sequence[Obstacle]) -> list[list[Rect]]:
    """Per-obstacle rectangle lists (one rect, or a polygon's tiles)."""
    out: list[list[Rect]] = []
    for obs in obstacles:
        if isinstance(obs, Rect):
            out.append([obs])
        else:
            out.append(list(obs.decomposition()[0]))
    return out


class _SolidQuery:
    """Exact arbitrary-point queries for polygon scenes.

    The §6.4 structure walks tracing subdivisions that only exist for
    rectangle obstacles.  For polygon scenes the same answers come from
    the corner-graph identity the engines' leaves already rely on::

        d(p, q) = min( clear(p, q),
                       min_{u,v ∈ V} clear(p, u) + D(u, v) + clear(v, q) )

    where ``clear`` is the seam-aware single-L-path distance and ``V`` the
    indexed vertex set (every tile corner — seam endpoints included — so
    the taut-path decomposition argument applies verbatim).  O(|V|²) per
    pair, vectorized; exactness is cross-checked against the grid-Dijkstra
    baseline by the differential fuzz suite.
    """

    def __init__(self, owner: ShortestPathIndex) -> None:
        self._owner = owner

    def length(self, p: Point, q: Point) -> float:
        from repro.core.allpairs import exact_length

        return exact_length(self.lengths([(p, q)])[0])

    def lengths(self, pairs: Sequence[tuple[Point, Point]]) -> np.ndarray:
        owner = self._owner
        if not pairs:
            return np.empty(0)
        flat = [pt for pair in pairs for pt in pair]
        owner._check_points_free(flat)
        uniq = list(dict.fromkeys(flat))
        pos = {pt: i for i, pt in enumerate(uniq)}
        clear_uv = clear_l1_block(
            uniq, owner.index.points, owner.rects, seams=owner.seams
        )
        clear_uu = clear_l1_block(uniq, uniq, owner.rects, seams=owner.seams)
        mat = owner.index.matrix
        # g[i][v] = min_u clear(p_i, u) + D(u, v): one O(n²) min-plus row
        # per distinct left endpoint, so a coalesced batch that repeats
        # endpoints pays O(n) per pair instead of a fresh n×n reduction
        g_rows: dict[int, np.ndarray] = {}

        def g(i: int) -> np.ndarray:
            row = g_rows.get(i)
            if row is None:
                row = np.min(clear_uv[i][:, None] + mat, axis=0)
                g_rows[i] = row
            return row

        out = np.empty(len(pairs))
        for k, (p, q) in enumerate(pairs):
            if p == q:
                out[k] = 0.0
                continue
            i, j = pos[p], pos[q]
            if owner.index.has_point(p) and owner.index.has_point(q):
                out[k] = owner.index.length(p, q)
                continue
            via = np.min(g(i) + clear_uv[j])
            out[k] = min(clear_uu[i, j], via)
        return out


def _dedupe_polyline(pts: list[Point]) -> list[Point]:
    out: list[Point] = []
    for p in pts:
        if not out or out[-1] != p:
            if len(out) >= 2 and (
                (out[-2][0] == out[-1][0] == p[0]) or (out[-2][1] == out[-1][1] == p[1])
            ):
                out[-1] = p
            else:
                out.append(p)
    return out
