"""The sequential O(n²) all-pairs builder (§9 of the paper).

For a source ``v``, every shortest path to a target is monotone in x or in
y ([11], restated in §8–§9).  The paper therefore builds, per source, four
directed acyclic graphs — one per monotone family — whose edges hop from
the two endpoints ``u₁, u₂`` of the obstacle edge hit by each target's
backward ray, and relaxes them in topological (coordinate) order.  Summed
over ``O(n)`` sources this is ``O(n²)`` after an ``O(n log n)``
preprocessing of ray hits and sorted orders.

We implement the single *east* case (x-monotone, source on the left) and
obtain the other three families by running it in reflected worlds, the
same way the paper waves at "the other cases are handled similarly":

=========  ======================  ==========================
world      transform               covers paths heading
=========  ======================  ==========================
east       identity                x-monotone, source left
west       flip x                  x-monotone, source right
north      transpose               y-monotone, source below
south      transpose ∘ flip y      y-monotone, source above
=========  ======================  ==========================

Any finite value the DAG produces is the length of a realisable path, so
taking the minimum over the four worlds is always sound; for at least one
world the paper's region argument makes it exact.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.core.allpairs import DistanceIndex
from repro.core.tracing import TraceForests, TracedPath
from repro.errors import GeometryError
from repro.geometry.primitives import (
    Point,
    Rect,
    Transform,
    dist,
    validate_disjoint,
)
from repro.geometry.rayshoot import Hit, RayShooter
from repro.pram.machine import PRAM

INF = float("inf")

_WORLD_TRANSFORMS = (
    Transform(),  # east
    Transform(sx=-1),  # west
    Transform(swap=True),  # north: (x,y) -> (y,x)
    Transform(sx=1, sy=-1, swap=True),  # south: (x,y) -> (-y, x)
)


@dataclass
class _Barrier:
    """``NE(v) ∪ SE(v)`` as x-at-y pieces, queryable during a y-merge."""

    ys: list[float]  # piece lower bounds, ascending (first = -inf)
    xs: list[int]  # piece x values (crossing of a horizontal line)

    def x_at(self, y: int) -> float:
        i = bisect_right(self.ys, y) - 1
        x = self.xs[i]
        # boundary y may be covered by the neighbouring piece too; the
        # barrier crossing relevant to a ray from the east is the rightmost
        if i + 1 < len(self.ys) and self.ys[i + 1] == y:
            x = max(x, self.xs[i + 1])
        return x


def _build_barrier(ne: TracedPath, se: TracedPath) -> _Barrier:
    """Piecewise x(y) of the barrier, ascending in y, covering all y."""
    pieces: list[tuple[float, int]] = []  # (y_low, x) ascending
    # SE path descends: walk it from the bottom (deep south) upward
    se_pts = se.points
    pieces.append((-math.inf, se_pts[-1][0]))  # terminal S-ray
    for a, b in zip(reversed(se_pts[1:]), reversed(se_pts[:-1])):
        # b is above a in the reversed walk when the segment is vertical
        if a[0] == b[0] and a[1] != b[1]:
            lo, hi = min(a[1], b[1]), max(a[1], b[1])
            pieces.append((lo, a[0]))
            del hi
    ne_pts = ne.points
    for a, b in zip(ne_pts, ne_pts[1:]):
        if a[0] == b[0] and a[1] != b[1]:
            pieces.append((min(a[1], b[1]), a[0]))
    pieces.append((ne_pts[-1][1], ne_pts[-1][0]))  # terminal N-ray
    pieces.sort(key=lambda t: (t[0], t[1]))
    ys = [p[0] for p in pieces]
    xs = [p[1] for p in pieces]
    return _Barrier(ys, xs)


class _World:
    """Preprocessed structures for one of the four reflected worlds."""

    def __init__(self, t: Transform, points: Sequence[Point], rects: Sequence[Rect]):
        self.t = t
        self.rects = t.apply_rects(list(rects))
        self.points = [t.apply(p) for p in points]
        self.shooter = RayShooter(self.rects)
        self.forests = TraceForests(self.rects)
        self.west_hits: list[Optional[Hit]] = [
            self.shooter.shoot(p, "W") for p in self.points
        ]
        self.order_x = sorted(range(len(self.points)), key=lambda i: self.points[i])
        self.order_y = sorted(
            range(len(self.points)), key=lambda i: (self.points[i][1], self.points[i][0])
        )
        self.point_id = {p: i for i, p in enumerate(self.points)}

    def case_east(self, vid: int, out: np.ndarray) -> None:
        """Relax the x-monotone (source-left) DAG from source ``vid`` into
        ``out`` (global-id indexed), taking minima with existing values."""
        v = self.points[vid]
        ne = self.forests.trace(v, "NE")
        se = self.forests.trace(v, "SE")
        barrier = _build_barrier(ne, se)
        n = len(self.points)
        dist_w = np.full(n, INF)
        dist_w[vid] = 0.0
        vx = v[0]
        for i in self.order_x:
            if i == vid:
                continue
            w = self.points[i]
            if w[0] < vx:
                continue
            bx = barrier.x_at(w[1])
            if bx > w[0]:
                continue  # w is strictly left of the barrier: другой case
            hit = self.west_hits[i]
            if hit is None or hit.point[0] < bx or (hit.point[0] == bx == w[0]):
                # the backward ray meets the barrier first: straight shot
                dist_w[i] = dist(v, w)
                continue
            u1, u2 = hit.edge
            best = INF
            for u in (u1, u2):
                uid = self.point_id.get(u)
                if uid is not None and dist_w[uid] < INF:
                    cand = dist_w[uid] + dist(u, w)
                    if cand < best:
                        best = cand
            dist_w[i] = best
        np.minimum(out, dist_w, out=out)


class SequentialEngine:
    """§9: the V_R-to-V_R length matrix in O(n²) sequential time."""

    def __init__(
        self,
        rects: Sequence[Rect],
        extra_points: Sequence[Point] = (),
        validate: bool = True,
        seams: Sequence = (),
    ) -> None:
        self.rects = list(rects)
        if validate:
            validate_disjoint(self.rects)
        self.seams = list(seams)
        pts: dict[Point, None] = {}
        for r in self.rects:
            for v in r.vertices:
                pts.setdefault(v, None)
        for p in extra_points:
            if any(r.contains_interior(p) for r in self.rects) or any(
                s.contains_open(p) for s in self.seams
            ):
                raise GeometryError(f"extra point {p} is inside an obstacle")
            pts.setdefault(p, None)
        self.points: list[Point] = list(pts)
        self._point_set = frozenset(self.points)
        # The four-world monotone-DAG machinery is specified for disjoint
        # *rectangles* only: its hop and straight-shot realisability
        # arguments run paths along whole obstacle edges, which may overlap
        # the interior seams of a decomposed polygon.  With seams present
        # we substitute the [11]-style repeated single-source sweep over
        # the seam-aware Hanan grid — the sequential comparator the paper's
        # §1 credits — and keep the DAG for pure-rectangle scenes.
        self.worlds = (
            []
            if self.seams
            else [_World(t, self.points, self.rects) for t in _WORLD_TRANSFORMS]
        )
        self._oracle: Optional["GridOracle"] = None

    # ------------------------------------------------------------------
    def _seam_oracle(self) -> "GridOracle":
        from repro.core.baseline import GridOracle

        if self._oracle is None:
            self._oracle = GridOracle(self.rects, self.points, seams=self.seams)
        return self._oracle

    def single_source(self, source: Point) -> np.ndarray:
        """Distances from one registered point to all points (O(n))."""
        if source not in self._point_set:
            raise GeometryError(f"{source} is not a registered point")
        if self.seams:
            return self._seam_oracle().dist_matrix([source], self.points)[0]
        out = np.full(len(self.points), INF)
        for world in self.worlds:
            vid = world.point_id.get(world.t.apply(source))
            if vid is None:
                raise GeometryError(f"{source} is not a registered point")
            world.case_east(vid, out)
        out[self.points.index(source)] = 0.0
        return out

    def build(self, pram: Optional[PRAM] = None) -> DistanceIndex:
        """All-pairs matrix (one DAG sweep per source per world, or one
        seam-aware Dijkstra per source on polygon scenes)."""
        n = len(self.points)
        if self.seams:
            from repro.core.baseline import repeated_single_source_matrix

            mat = repeated_single_source_matrix(
                self.rects, self.points, oracle=self._seam_oracle()
            )
        else:
            mat = np.full((n, n), INF)
            for i, p in enumerate(self.points):
                mat[i, :] = self.single_source(p)
            # the metric is symmetric; keep the smaller direction (the two
            # are equal for exact sweeps, but this also hardens against
            # region edge-cases at zero cost)
            np.minimum(mat, mat.T, out=mat)
        if pram is not None:
            pram.charge(time=n, work=n * n, width=n)
        return DistanceIndex(self.points, mat)


def build_sequential_index(
    rects: Sequence[Rect], extra_points: Sequence[Point] = ()
) -> DistanceIndex:
    """Convenience wrapper for the §9 engine."""
    return SequentialEngine(rects, extra_points).build()
