"""The ``parallel-mp`` engine: the §5/§6 divide-and-conquer on real cores.

:class:`ParallelMPEngine` subclasses :class:`ParallelEngine` and keeps
its algorithm byte-for-byte — same separators, same crossing candidates,
same (min,+) conquer, same PRAM charges — but executes independent
pieces of the recursion in worker *processes* (:mod:`repro.core.pool`):

1. **Plan.**  The divide half of the recursion (separator, seam guard,
   crossing candidates, interface construction) is deterministic and
   needs no child matrices, so the parent runs it alone, splitting the
   largest frontier nodes first (a max-heap on obstacle count) until the
   frontier holds ``~4×jobs`` independent nodes.  Nodes that hit the
   leaf size or a separator fallback become *leaf tasks*; frontier nodes
   still above the leaf size become *subtree tasks* (the worker runs the
   whole subtree).  Subtree-cache hits resolve in the parent during
   planning, exactly as on the single-core path — repaired multicore
   builds reuse the same content-addressed entries.
2. **Dispatch.**  Tasks go to the worker pool largest-first (simulated
   work is the schedule key), results return over shared memory.
3. **Conquer.**  The parent merges children as results arrive; the
   (min,+) cross products of the merge dispatch their chain-grouped
   column blocks to the pool too, when big enough to pay for the hop.

Byte-identity with ``parallel`` holds because every matrix entry is a
min over the *same* float64 candidate sums: the three (min,+) paths
(SMAWK/Monge, vectorized naive, compiled) are exact and workers run the
identical code on identical deterministically-ordered inputs.  Chain
*grouping* may differ across engines (tag ids are assigned in traversal
order), which can only re-route a block between two exact products.
PRAM totals match the single-core engine because every charge is either
replayed in the parent or accumulated worker-side and merged with the
same ``parallel()`` semantics (time ``+= max``, work ``+= sum``).

Each node's bookkeeping happens exactly once: the parent does the
``_solve`` preamble (stats, tracked points, cache probe) for every node
it materializes — including dispatch roots — and workers run only the
node *body* (``_leaf`` / ``_solve_node``), counting just the nodes they
create below the dispatch root.
"""

from __future__ import annotations

import heapq
import itertools
import time as _time
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.allpairs import (
    INF,
    DistanceIndex,
    ParallelEngine,
)
from repro.core.separator import staircase_separator
from repro.errors import EngineError
from repro.geometry.decompose import staircase_clear_of_seams
from repro.monge.matrix import MongeFlag
from repro.monge.multiply import minplus_monge, minplus_naive
from repro.pram.machine import PRAM

__all__ = ["ParallelMPEngine"]

#: plan until the task frontier holds about this many nodes per worker
TASKS_PER_WORKER = 4

#: dispatch a conquer column block to the pool only above this many
#: fused multiply-min element operations (below it the hop costs more)
MIN_REMOTE_CONQUER_OPS = 1 << 18

_STAT_SUMS = (
    "nodes",
    "leaves",
    "separator_fallbacks",
    "crossing_candidates",
    "monge_fast_blocks",
    "conquer_pairs",
)
_STAT_MAXES = ("max_interface", "max_tracked")


class _Node:
    """One materialized recursion node in the parent's plan tree."""

    __slots__ = (
        "rect_idx", "interface", "depth", "parent", "machine", "pts",
        "kind", "key", "snap", "children", "pending", "chain", "chain_sig",
        "zs", "side_of", "sub_rects", "upper_idx", "lower_idx",
        "result", "aux", "task_id",
    )

    def __init__(self, rect_idx, interface, depth, parent, machine):
        self.rect_idx = rect_idx
        self.interface = interface
        self.depth = depth
        self.parent = parent
        self.machine = machine
        self.pts = None
        self.kind = None  # "resolved" | "leaf" | "subtree" | "internal"
        self.key = None
        self.snap = None
        self.children = None
        self.pending = 0
        self.chain = None
        self.chain_sig = None
        self.zs = None
        self.side_of = None
        self.sub_rects = None
        self.upper_idx = None
        self.lower_idx = None
        self.result = None
        self.aux = None
        self.task_id = None


class ParallelMPEngine(ParallelEngine):
    """Multicore :class:`ParallelEngine`; see the module docstring."""

    def __init__(self, *args, pool=None, jobs: int = 1, **kwargs):
        super().__init__(*args, **kwargs)
        self._pool = pool
        self._jobs = max(1, int(jobs))
        self._arrived: Dict[int, tuple] = {}
        self._pending: Dict[int, _Node] = {}
        #: surfaced through ``idx.provenance["pool"]``
        self.pool_stats: dict = {
            "workers": 0 if pool is None else self._jobs,
            "inline": pool is None,
            "tasks": 0,
            "leaf_tasks": 0,
            "subtree_tasks": 0,
            "conquer_tasks": 0,
            "worker_wall_s": 0.0,
        }

    # ------------------------------------------------------------------
    def build(self) -> DistanceIndex:
        if self._pool is None or not self.rects:
            # no pool (failed probe, forced inline): the inherited
            # single-core path — identical output by construction
            return super().build()
        root_machine = self._node_machine("root")
        root = _Node(
            list(range(len(self.rects))), list(self.extra_points), 0, None,
            root_machine,
        )
        try:
            with self._pool.exclusive():
                tasks, resolved = self._plan(root)
                self._dispatch(tasks)
                for node in resolved:
                    self._bubble(node)
                while root.result is None:
                    if self._arrived:
                        # a solve result that landed while a conquer was
                        # collecting its own column blocks
                        tid, (wall, body, arrays) = self._arrived.popitem()
                    else:
                        tid, wall, body, arrays = self._pool.next_result()
                    node = self._pending.pop(tid, None)
                    if node is None:
                        continue
                    self._finish_task(node, wall, body, arrays)
                    self._bubble(node)
        except BaseException:
            self._pending.clear()
            self._arrived.clear()
            if not getattr(self._pool, "closed", True):
                self._pool.abandon()
            raise
        pts, mat = root.result
        self.pram.charge(
            time=root_machine.time, work=root_machine.work,
            width=root_machine.max_ops,
        )
        return DistanceIndex(pts, mat)

    # ------------------------------------------------------------------
    def _node_machine(self, label: str) -> PRAM:
        return PRAM(f"{self.pram.name}/mp-{label}")

    def _admit(self, node: _Node, tasks: list, heap: list, resolved: list,
               seq) -> None:
        """The ``_solve`` preamble for one materialized node: stats,
        tracked points, subtree-cache probe.  Classifies cache hits as
        resolved and at/below-leaf-size nodes as leaf tasks; everything
        else stays expandable on the heap."""
        self.stats.nodes += 1
        self.stats.max_interface = max(
            self.stats.max_interface, len(node.interface)
        )
        node.pts = self._tracked_points(node.rect_idx, node.interface)
        self.stats.max_tracked = max(self.stats.max_tracked, len(node.pts))
        lvl = self.stats.per_level_points
        lvl[node.depth] = lvl.get(node.depth, 0) + len(node.pts)
        if self._sub_cache is not None:
            node.key = self._subtree_key(node.rect_idx)
            entry = self._sub_cache.get(node.key)
            if entry is not None:
                reused = self._reuse_entry(
                    node.key, entry, node.rect_idx, node.pts, node.machine
                )
                if reused is not None:
                    node.kind = "resolved"
                    node.result = reused
                    resolved.append(node)
                    return
            self.stats.subtree_misses += 1
            node.snap = node.machine.snapshot()
        if len(node.rect_idx) <= self.leaf_size:
            node.kind = "leaf"
            tasks.append(node)
        else:
            heapq.heappush(heap, (-len(node.rect_idx), next(seq), node))

    def _expand(self, node: _Node) -> Optional[tuple]:
        """The divide half of ``_solve_node`` (separator, candidates,
        interfaces), charged on the node's own machine exactly as the
        single-core recursion would; ``None`` on a separator fallback."""
        m = node.machine
        sub_rects = [self.rects[i] for i in node.rect_idx]
        sep = staircase_separator(sub_rects, m, pivot=self.divide)
        if not sep.upper or not sep.lower:
            self.stats.separator_fallbacks += 1
            return None
        chain = sep.staircase
        if self.seams and not staircase_clear_of_seams(chain, self.seams):
            self.stats.separator_fallbacks += 1
            return None
        zs = self._crossing_candidates(chain, sub_rects, node.pts, m)
        if not zs:
            self.stats.separator_fallbacks += 1
            return None
        node.upper_idx = [node.rect_idx[i] for i in sep.upper]
        node.lower_idx = [node.rect_idx[i] for i in sep.lower]
        m.step(len(node.pts))
        node.side_of = {p: chain.side_of(p) for p in node.pts}
        up_iface = list(dict.fromkeys(
            [p for p in node.pts if node.side_of[p] >= 0] + zs))
        lo_iface = list(dict.fromkeys(
            [p for p in node.pts if node.side_of[p] <= 0] + zs))
        node.chain = chain
        node.chain_sig = (chain.pts, chain.increasing, chain.left_dir,
                          chain.right_dir)
        node.zs = zs
        node.sub_rects = sub_rects
        return up_iface, lo_iface

    def _plan(self, root: _Node) -> Tuple[List[_Node], List[_Node]]:
        target = max(2, self._jobs * TASKS_PER_WORKER)
        tasks: List[_Node] = []
        resolved: List[_Node] = []
        heap: list = []
        seq = itertools.count()
        self._admit(root, tasks, heap, resolved, seq)
        while heap and (len(tasks) + len(heap)) < target:
            _, _, node = heapq.heappop(heap)
            split = self._expand(node)
            if split is None:
                # separator fallback: the worker brute-forces the leaf;
                # the divide charges already sit on node.machine
                node.kind = "leaf"
                tasks.append(node)
                continue
            up_iface, lo_iface = split
            node.kind = "internal"
            node.pending = 2
            kid_u = _Node(node.upper_idx, up_iface, node.depth + 1, node,
                          self._node_machine(f"d{node.depth + 1}u"))
            kid_l = _Node(node.lower_idx, lo_iface, node.depth + 1, node,
                          self._node_machine(f"d{node.depth + 1}l"))
            node.children = [kid_u, kid_l]
            self._admit(kid_u, tasks, heap, resolved, seq)
            self._admit(kid_l, tasks, heap, resolved, seq)
        while heap:  # the rest run as whole subtrees in workers
            _, _, node = heapq.heappop(heap)
            node.kind = "subtree"
            tasks.append(node)
        return tasks, resolved

    # ------------------------------------------------------------------
    def _dispatch(self, tasks: List[_Node]) -> None:
        from repro import kernels

        # largest simulated work first: the schedule key that keeps the
        # pool busy while small leaves fill the gaps
        tasks.sort(
            key=lambda n: len(n.pts) * len(n.pts) * max(1, len(n.rect_idx)),
            reverse=True,
        )
        jit = kernels.jit_requested()
        ctx = {
            "rects": self.rects,
            "seams": self.seams,
            "leaf_size": self.leaf_size,
            "monge_dispatch": self.monge_dispatch,
            "divide": self.divide,
        }
        for node in tasks:
            m = len(node.pts)
            tags = {
                p: self._chain_tags[p]
                for p in node.interface
                if p in self._chain_tags
            }
            payload = {
                "ctx": ctx,
                "kind": node.kind,
                "rect_idx": node.rect_idx,
                "interface": node.interface,
                "depth": node.depth,
                "tags": tags,
                "next_chain_id": self._next_chain_id,
            }
            node.task_id = self._pool.submit(
                "repro.core.mpengine:_task_solve",
                payload,
                arrays_spec={"matrix": ((m, m), "<f8")},
                kind=node.kind,
                jit=jit,
            )
            self._pending[node.task_id] = node
            self.pool_stats["tasks"] += 1
            self.pool_stats[f"{node.kind}_tasks"] += 1

    def _finish_task(self, node: _Node, wall: float, body: dict,
                     arrays: Optional[dict]) -> None:
        if int(body["n"]) != len(node.pts):
            raise EngineError(
                f"pool worker tracked {body['n']} points for a subtree the "
                f"parent tracked {len(node.pts)} — divergent plan descent"
            )
        mat = arrays["matrix"]
        t, w, width = body["pram"]
        node.machine.charge(time=t, work=w, width=width)
        self._merge_stats(body["stats"], node.depth)
        # adopt the worker's new chains under fresh local ids; setdefault
        # keeps any ancestor-minted tag, exactly as the DFS would have
        for members in body.get("tags") or ():
            cid = self._fresh_chain_id()
            for p, k in members:
                self._chain_tags.setdefault(p, (cid, k))
        node.aux = body.get("aux")
        node.result = (node.pts, mat)
        self.pool_stats["worker_wall_s"] += float(wall)
        self._emit_span(node, wall)
        self._deposit(node)

    def _merge_stats(self, stats: dict, base_depth: int) -> None:
        for name in _STAT_SUMS:
            setattr(self.stats, name,
                    getattr(self.stats, name) + int(stats.get(name, 0)))
        for name in _STAT_MAXES:
            setattr(self.stats, name,
                    max(getattr(self.stats, name), int(stats.get(name, 0))))
        lvl = self.stats.per_level_points
        for depth, pts in (stats.get("per_level_points") or {}).items():
            d = int(depth)
            lvl[d] = lvl.get(d, 0) + int(pts)

    def _deposit(self, node: _Node) -> None:
        if self._sub_cache is None or node.key is None:
            return
        dt, dw = node.machine.since(node.snap)
        self._store_entry(node.key, node.result, node.aux,
                          (dt, dw, node.machine.max_ops))

    def _emit_span(self, node: _Node, wall: float) -> None:
        try:
            from repro.pipeline import BUILD_SPANS, current_build_trace
            from repro.obs.tracing import finish, span
        except ImportError:  # pragma: no cover - pipeline not loaded
            return
        now = _time.time()
        sp = span(
            "build.solve.subtree",
            current_build_trace(),
            t0=now - max(0.0, float(wall)),
            kind=node.kind,
            n_rects=len(node.rect_idx),
            n_points=len(node.pts),
            depth=node.depth,
        )
        BUILD_SPANS.add(finish(sp, t1=now))

    # ------------------------------------------------------------------
    def _bubble(self, node: _Node) -> None:
        while node.parent is not None:
            parent = node.parent
            parent.pending -= 1
            if parent.pending > 0:
                return
            self._conquer_node(parent)
            node = parent

    def _conquer_node(self, node: _Node) -> None:
        upper = node.children[0].result
        lower = node.children[1].result
        m = node.machine
        cu = node.children[0].machine
        cl = node.children[1].machine
        # the pram.parallel() merge of the two child branches
        m.charge(time=max(cu.time, cl.time), work=cu.work + cl.work,
                 width=max(cu.max_ops, cl.max_ops))
        delta = self._try_delta_conquer(
            node.pts, node.side_of, node.chain, node.chain_sig, node.zs,
            node.sub_rects, node.rect_idx, node.upper_idx, node.lower_idx,
            upper, lower, m,
        )
        if delta is not None:
            node.result = delta
        else:
            node.result = self._conquer(
                node.pts, node.side_of, node.chain, node.zs, node.sub_rects,
                upper, lower, m,
            )
        node.aux = (node.chain_sig, tuple(node.zs))
        self._deposit(node)

    # ------------------------------------------------------------------
    def _cross_product(self, DU, DL, cols, pram):
        """The chain-grouped (min,+) dispatch of the parent class, with
        big column blocks shipped to the pool.  Grouping, products, and
        PRAM merge semantics are identical; only the executor differs."""
        if (
            self._pool is None
            or getattr(self._pool, "closed", True)
            or not self.monge_dispatch
        ):
            return super()._cross_product(DU, DL, cols, pram)
        groups: Dict[int, List[int]] = {}
        scattered: List[int] = []
        for j, p in enumerate(cols):
            tag = self._chain_tags.get(p)
            if tag is None:
                scattered.append(j)
            else:
                groups.setdefault(tag[0], []).append(j)
        out = np.full((DU.shape[0], DL.shape[1]), INF)
        jobs: List[Tuple[List[int], bool]] = []
        for cid, idxs in groups.items():
            idxs.sort(key=lambda j: self._chain_tags[cols[j]][1])
            jobs.append((idxs, True))
        if scattered:
            jobs.append((scattered, False))
        from repro import kernels

        jit = kernels.jit_requested()
        nz = DU.shape[1]
        remote: Dict[int, List[int]] = {}
        merged: List[Tuple[int, int, int]] = []  # (time, work, max_ops)
        flags = 0
        for idxs, certify in jobs:
            ops = DU.shape[0] * len(idxs) * max(1, nz)
            if ops >= MIN_REMOTE_CONQUER_OPS:
                block = np.ascontiguousarray(DL[:, idxs])
                tid = self._pool.submit(
                    "repro.core.mpengine:_task_minplus",
                    {"a": DU, "b": block, "certify": certify},
                    arrays_spec={
                        "matrix": ((DU.shape[0], len(idxs)), "<f8")
                    },
                    kind="conquer",
                    jit=jit,
                )
                remote[tid] = idxs
                self.pool_stats["tasks"] += 1
                self.pool_stats["conquer_tasks"] += 1
            else:
                jm = PRAM(f"{pram.name}/mp-x")
                if certify:
                    flag = MongeFlag(DL[:, idxs])
                    jm.charge(time=1, work=flag.array.size,
                              width=flag.array.size)
                    if flag.monge():
                        flags += 1
                        out[:, idxs] = minplus_monge(DU, flag, jm)
                    else:
                        out[:, idxs] = minplus_naive(DU, flag.array, jm)
                else:
                    out[:, idxs] = minplus_naive(DU, DL[:, idxs], jm)
                merged.append((jm.time, jm.work, jm.max_ops))
        for tid, (wall, body, arrays) in self._collect(set(remote)).items():
            out[:, remote[tid]] = arrays["matrix"]
            merged.append(tuple(body["pram"]))
            flags += int(body.get("fast", 0))
            self.pool_stats["worker_wall_s"] += float(wall)
        self.stats.monge_fast_blocks += flags
        if merged:  # the pram.parallel() merge across all column jobs
            pram.charge(
                time=max(t for t, _, _ in merged),
                work=sum(w for _, w, _ in merged),
                width=max(mx for _, _, mx in merged),
            )
        return out

    def _collect(self, tids: set) -> Dict[int, tuple]:
        """Wait for exactly ``tids``, buffering any other build results
        that arrive meanwhile (they are handled by the main loop)."""
        got: Dict[int, tuple] = {}
        for tid in list(tids):
            if tid in self._arrived:
                got[tid] = self._arrived.pop(tid)
        while len(got) < len(tids):
            tid, wall, body, arrays = self._pool.next_result()
            if tid in tids:
                got[tid] = (wall, body, arrays)
            else:
                self._arrived[tid] = (wall, body, arrays)
        return got


# ----------------------------------------------------------------------
# worker-side task handlers (resolved by name; see repro.core.pool)

def _worker_engine(ctx: dict, tags: dict, next_chain_id: int) -> ParallelEngine:
    eng = ParallelEngine(
        ctx["rects"],
        extra_points=(),
        leaf_size=ctx["leaf_size"],
        validate=False,
        monge_dispatch=ctx["monge_dispatch"],
        seams=ctx["seams"],
        divide=ctx["divide"],
    )
    eng._chain_tags.update(tags)
    # fresh worker-side chain ids must never collide with the parent's
    eng._next_chain_id = max(
        int(next_chain_id), max((t[0] for t in tags.values()), default=0)
    )
    return eng


def _task_solve(payload: dict):
    """Leaf or whole-subtree solve; returns the matrix plus the PRAM and
    stats bookkeeping the parent merges (the parent already did the
    ``_solve`` preamble for this dispatch-root node)."""
    ctx = payload["ctx"]
    eng = _worker_engine(ctx, payload["tags"], payload["next_chain_id"])
    pre = frozenset(eng._chain_tags)
    w = PRAM("pool-task")
    pts = eng._tracked_points(payload["rect_idx"], payload["interface"])
    if payload["kind"] == "leaf":
        pts, mat = eng._leaf(payload["rect_idx"], pts, w)
        aux = None
    else:
        (pts, mat), aux = eng._solve_node(
            payload["rect_idx"], pts, w, payload["depth"]
        )
    stats = {name: getattr(eng.stats, name) for name in _STAT_SUMS}
    stats.update({name: getattr(eng.stats, name) for name in _STAT_MAXES})
    stats["per_level_points"] = dict(eng.stats.per_level_points)
    # chain tags minted while solving this subtree: the parent needs them
    # for the Monge grouping of *its* conquers above this dispatch root
    # (see ParallelMPEngine._finish_task, which re-ids each chain — the
    # values of chain ids affect nothing, only the point partition does)
    chains: Dict[int, list] = {}
    for p, (cid, k) in eng._chain_tags.items():
        if p not in pre:
            chains.setdefault(cid, []).append((p, k))
    tags_out = [
        sorted(chains[cid], key=lambda pk: pk[1]) for cid in sorted(chains)
    ]
    result = {
        "n": len(pts),
        "pram": (w.time, w.work, w.max_ops),
        "aux": aux,
        "stats": stats,
        "tags": tags_out,
    }
    return result, {"matrix": np.ascontiguousarray(mat, dtype=np.float64)}


def _task_minplus(payload: dict):
    """One chain-grouped conquer column block, replicating the parent
    class's ``group_job`` exactly (certify → SMAWK/Monge, else naive)."""
    a = payload["a"]
    b = payload["b"]
    m = PRAM("pool-minplus")
    fast = 0
    if payload["certify"]:
        flag = MongeFlag(b)
        m.charge(time=1, work=flag.array.size, width=flag.array.size)
        if flag.monge():
            fast = 1
            out = minplus_monge(a, flag, m)
        else:
            out = minplus_naive(a, flag.array, m)
    else:
        out = minplus_naive(a, b, m)
    result = {"pram": (m.time, m.work, m.max_ops), "fast": fast}
    return result, {"matrix": np.ascontiguousarray(out, dtype=np.float64)}
