"""Path tracing: the eight ``XY(p)``/``YX(p)`` paths (§3, Lemma 6, Fig. 5).

An ``XY(p)`` path starts at ``p``, travels in its *primary* direction
whenever it can, and slides along obstacle boundaries in its *detour*
direction to get around them.  The paper computes all eight families as
forests (parent pointers from obstacle to obstacle through trapezoidal
segments) and extracts explicit paths with the Euler-tour technique; we
build the same forests on top of :class:`RayShooter` and meter the
extraction with the paper's cost profile.

Key invariant (Lemma 12, proved here as a test property): an ``X(p)`` path
crosses any clear staircase at most once, because one of its two segment
classes runs along obstacle boundaries.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import GeometryError
from repro.geometry.primitives import Point, Rect
from repro.geometry.rayshoot import RayShooter
from repro.geometry.staircase import Staircase
from repro.pram.machine import PRAM, ambient

#: mode name -> (primary direction, detour direction)
MODES: dict[str, tuple[str, str]] = {
    "NE": ("N", "E"),
    "NW": ("N", "W"),
    "SE": ("S", "E"),
    "SW": ("S", "W"),
    "EN": ("E", "N"),
    "ES": ("E", "S"),
    "WN": ("W", "N"),
    "WS": ("W", "S"),
}

_DIR_VEC = {"N": (0, 1), "S": (0, -1), "E": (1, 0), "W": (-1, 0)}


def _resume_corner(r: Rect, primary: str, detour: str) -> Point:
    """Corner of ``r`` where the path resumes its primary direction: the
    endpoint, extreme in the detour direction, of the face the path hit."""
    if primary == "N":
        return (r.xhi, r.ylo) if detour == "E" else (r.xlo, r.ylo)
    if primary == "S":
        return (r.xhi, r.yhi) if detour == "E" else (r.xlo, r.yhi)
    if primary == "E":
        return (r.xlo, r.yhi) if detour == "N" else (r.xlo, r.ylo)
    if primary == "W":
        return (r.xhi, r.yhi) if detour == "N" else (r.xhi, r.ylo)
    raise GeometryError(f"bad primary {primary!r}")


class TracedPath:
    """An explicit ``X(p)`` path: finite corners plus the escape ray.

    ``points`` starts at the origin ``p``; ``ray_dir`` is the direction of
    the final semi-infinite segment (always the mode's primary direction).
    """

    __slots__ = ("mode", "points", "ray_dir")

    def __init__(self, mode: str, points: list[Point], ray_dir: str) -> None:
        self.mode = mode
        self.points = points
        self.ray_dir = ray_dir

    @property
    def origin(self) -> Point:
        return self.points[0]

    @property
    def size(self) -> int:
        """Number of segments, counting the final ray."""
        return len(self.points)  # len-1 finite segments + 1 ray

    def __repr__(self) -> str:  # pragma: no cover
        return f"TracedPath({self.mode}, {self.points[:3]}...x{len(self.points)})"


class TraceForests:
    """The eight tracing forests over one obstacle set (Lemma 6).

    ``parent(mode, i)`` is the obstacle the path runs into after rounding
    obstacle ``i`` (None when it escapes to infinity) — the forest the
    paper builds from the trapezoidal decomposition of [4].
    """

    def __init__(self, rects: Sequence[Rect], pram: Optional[PRAM] = None) -> None:
        pram = pram or ambient()
        self.rects = list(rects)
        n = len(self.rects)
        self.shooter = RayShooter(self.rects)
        # segment-tree construction: O(log n) time, O(n log n) work
        pram.charge(time=pram.log2ceil(n or 1), work=4 * n * pram.log2ceil(n or 1), width=4 * n)
        self._parents: dict[str, list[Optional[int]]] = {}
        for mode, (primary, detour) in MODES.items():
            parents: list[Optional[int]] = []
            pram.step(n)
            for r in self.rects:
                corner = _resume_corner(r, primary, detour)
                hit = self.shooter.shoot(corner, primary)
                parents.append(None if hit is None else hit.rect_index)
            self._parents[mode] = parents

    def parents(self, mode: str) -> list[Optional[int]]:
        return self._parents[mode]

    # ------------------------------------------------------------------
    def trace(self, p: Point, mode: str, pram: Optional[PRAM] = None) -> TracedPath:
        """The explicit ``mode(p)`` path.

        Executed by chasing forest parents (each obstacle is visited at
        most once — the detour coordinate is strictly monotone); metered as
        the paper's Euler-tour extraction: O(log n) time, O(|path|) work.
        """
        pram = pram or ambient()
        try:
            primary, detour = MODES[mode]
        except KeyError:
            raise GeometryError(f"unknown trace mode {mode!r}") from None
        if any(r.contains_interior(p) for r in self.rects):
            raise GeometryError(f"cannot trace from {p}: inside an obstacle")
        pts: list[Point] = [p]
        # one ray shot attaches p to the forest; the rest of the path is the
        # root chain of parent pointers (Lemma 6's Euler-tour extraction)
        hit = self.shooter.shoot(p, primary)
        parents = self._parents[mode]
        axis = 0 if primary in ("N", "S") else 1
        cur: Optional[int] = None if hit is None else hit.rect_index
        prev_corner: Point = p
        guard = 0
        while cur is not None:
            guard += 1
            if guard > len(self.rects) + 1:  # pragma: no cover
                raise GeometryError("tracing failed to terminate")
            r = self.rects[cur]
            corner = _resume_corner(r, primary, detour)
            entry = _entry_point(prev_corner, corner, axis)
            if entry != pts[-1]:
                pts.append(entry)
            if corner != pts[-1]:
                pts.append(corner)
            prev_corner = corner
            cur = parents[cur]
        pram.charge(time=pram.log2ceil(len(self.rects) or 1), work=max(1, len(pts)))
        return TracedPath(mode, pts, primary)

    def all_vertex_paths(self, mode: str, pram: Optional[PRAM] = None) -> dict[Point, TracedPath]:
        """Explicit paths from every obstacle vertex — the §6.1
        pre-processing (O(n²) work in the worst case, as in the paper)."""
        out: dict[Point, TracedPath] = {}
        for r in self.rects:
            for v in r.vertices:
                if v not in out:
                    out[v] = self.trace(v, mode, pram)
        return out


def _entry_point(prev_corner: Point, corner: Point, axis: int) -> Point:
    """Where the primary run from ``prev_corner`` meets the obstacle whose
    resume corner is ``corner``: it shares ``axis`` with the start and the
    other coordinate with the obstacle face (= the corner)."""
    if axis == 0:  # vertical primary: keep x, adopt the face's y
        return (prev_corner[0], corner[1])
    return (corner[0], prev_corner[1])


def trace_heading(mode: str) -> str:
    """The quadrant an ``X(p)`` path heads toward: x moves with whichever
    of (primary, detour) is horizontal, y with the vertical one."""
    primary, detour = MODES[mode]
    xd = primary if primary in ("E", "W") else detour
    yd = primary if primary in ("N", "S") else detour
    return yd + xd  # e.g. 'SW', 'NE'


def combine_traces(path_a: TracedPath, path_b: TracedPath) -> Staircase:
    """Glue two opposite-heading traces from a common origin into one
    unbounded staircase (the separator shapes of Theorem 2:
    ``NE(p) ∪ SW(p)``, ``EN(p) ∪ WS(p)`` and their reflections).

    The two traces must head into opposite quadrants: SW+NE gives an
    increasing separator, NW+SE a decreasing one.
    """
    if path_a.origin != path_b.origin:
        raise GeometryError("traces do not share an origin")
    ha, hb = trace_heading(path_a.mode), trace_heading(path_b.mode)
    headings = {ha, hb}
    if headings == {"SW", "NE"}:
        increasing = True
    elif headings == {"NW", "SE"}:
        increasing = False
    else:
        raise GeometryError(f"traces head {ha}/{hb}: not opposite quadrants")
    lo, hi = (path_a, path_b) if ha in ("SW", "NW") else (path_b, path_a)
    chain = list(reversed(lo.points)) + hi.points[1:]
    return Staircase(tuple(chain), increasing, lo.ray_dir, hi.ray_dir)
