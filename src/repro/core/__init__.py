"""The paper's algorithms: separators, engines, queries, path reporting.

Module map (paper section → module):

* §3 Theorem 2 → :mod:`repro.core.separator`
* §3 Lemma 6 → :mod:`repro.core.tracing`
* §5/§6.3 → :mod:`repro.core.allpairs` (parallel engine)
* §6.4 → :mod:`repro.core.query`
* §7 → :mod:`repro.core.implicit`
* §8 → :mod:`repro.core.pathreport`
* §9 → :mod:`repro.core.sequential`
* oracle/baselines → :mod:`repro.core.baseline`
* cross-engine differential checking → :mod:`repro.core.crosscheck`
* facade → :mod:`repro.core.api`
"""

from repro.core.allpairs import DistanceIndex, ParallelEngine, build_vertex_index
from repro.core.api import ShortestPathIndex, split_obstacles
from repro.core.crosscheck import check_scene, shrink_scene
from repro.core.baseline import GridOracle, repeated_single_source_matrix
from repro.core.discretize import DiscretizedBoundary
from repro.core.implicit import ImplicitBoundaryStructure
from repro.core.pathreport import PathReporter, ShortestPathTree
from repro.core.query import QueryStructure
from repro.core.separator import Separator, staircase_separator
from repro.core.sequential import SequentialEngine, build_sequential_index
from repro.core.tracing import TraceForests, TracedPath, combine_traces

__all__ = [
    "DistanceIndex",
    "ParallelEngine",
    "build_vertex_index",
    "ShortestPathIndex",
    "split_obstacles",
    "check_scene",
    "shrink_scene",
    "GridOracle",
    "repeated_single_source_matrix",
    "DiscretizedBoundary",
    "ImplicitBoundaryStructure",
    "PathReporter",
    "ShortestPathTree",
    "QueryStructure",
    "Separator",
    "staircase_separator",
    "SequentialEngine",
    "build_sequential_index",
    "TraceForests",
    "TracedPath",
    "combine_traces",
]
