"""The implicit representation for ``|P| = N ≫ n`` (§7 of the paper).

When the container polygon has far more vertices than there are obstacles,
materialising the ``Θ(N²)`` boundary-to-boundary matrix is wasteful.  The
paper partitions ``Bound(P)`` into at most eight *chunks* with the four
axis lines through the extreme edges of ``Env(R)``, projects ``O(n)``
representative points ``K`` onto those lines, and answers every
boundary query through a constant number of ``K`` candidates — giving
``O(N + n²·f(n))`` work and O(1)-candidate queries.

Implementation notes (kink-exactness, same argument as the engine conquer):
the four axis lines are clear of obstacle interiors, so the distance
function restricted to a line is piecewise linear with slopes ±1 and kinks
only at obstacle grid coordinates — all of which are projected into ``K``.
A boundary point's *own* projections are therefore handled by Lipschitz
interpolation between its two adjacent ``K`` points, which is the paper's
"associate each p with q and q′" preprocessing.  Pairs whose spanning
rectangle misses the obstacle bounding box entirely are *trivial*: a clear
staircase exists inside ``P`` (Containment Lemma) and the length is the L1
distance.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Optional, Sequence

from repro.core.allpairs import DistanceIndex
from repro.core.sequential import SequentialEngine
from repro.errors import QueryError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Point, Rect, bbox_of_rects, dist
from repro.pram.machine import PRAM, ambient

INF = float("inf")


class _LineK:
    """The K candidates on one axis line, with neighbour lookups."""

    def __init__(self, pts: list[Point], axis: int):
        # axis = coordinate that varies along the line (0 = horizontal line)
        self.axis = axis
        self.pts = sorted(set(pts), key=lambda p: p[axis])
        self.keys = [p[axis] for p in self.pts]

    def neighbors(self, coord: int) -> list[Point]:
        i = bisect_left(self.keys, coord)
        out = []
        if i > 0:
            out.append(self.pts[i - 1])
        if i < len(self.pts):
            out.append(self.pts[i])
        return out


class ImplicitBoundaryStructure:
    """§7: boundary queries against ``O(n)`` registered points.

    Answers ``length(p, w)`` for ``p`` on ``Bound(P)`` (or anywhere outside
    the obstacle bounding box, inside ``P``) and ``w`` either an obstacle
    vertex or another such boundary point — without ever indexing the
    ``N²`` boundary pairs.
    """

    def __init__(
        self,
        polygon: RectilinearPolygon,
        rects: Sequence[Rect],
        pram: Optional[PRAM] = None,
    ) -> None:
        pram = pram or ambient()
        self.polygon = polygon
        self.rects = list(rects)
        for r in self.rects:
            if not polygon.contains_rect(r):
                raise QueryError(f"obstacle {r} is not inside P")
        self.bbox = bbox_of_rects(self.rects)
        xlo, ylo, xhi, yhi = self.bbox
        xs = sorted({v for r in self.rects for v in (r.xlo, r.xhi)})
        ys = sorted({v for r in self.rects for v in (r.ylo, r.yhi)})
        self.k_top = _LineK([(x, yhi) for x in xs] + [(xlo, yhi), (xhi, yhi)], axis=0)
        self.k_bottom = _LineK([(x, ylo) for x in xs] + [(xlo, ylo), (xhi, ylo)], axis=0)
        self.k_east = _LineK([(xhi, y) for y in ys] + [(xhi, ylo), (xhi, yhi)], axis=1)
        self.k_west = _LineK([(xlo, y) for y in ys] + [(xlo, ylo), (xlo, yhi)], axis=1)
        kpts = (
            self.k_top.pts + self.k_bottom.pts + self.k_east.pts + self.k_west.pts
        )
        # one O(n)-point index: N never enters this build
        self.index: DistanceIndex = SequentialEngine(
            self.rects, extra_points=kpts
        ).build()
        n = len(self.rects)
        m = len(self.index)
        pram.charge(
            time=pram.log2ceil(max(n, 2)) ** 2,
            work=m * m,
            width=m,
        )
        # O(N) part: boundary vertices get classified once (the paper's
        # chunk association); queries for non-vertex boundary points
        # classify on the fly in O(1)
        pram.charge(time=1, work=polygon.size, width=polygon.size)

    # ------------------------------------------------------------------
    def _entry_candidates(self, p: Point) -> list[tuple[Point, int]]:
        """(K candidate, straight-distance from p) pairs covering every way
        a shortest path from ``p`` can enter the obstacle bounding box."""
        xlo, ylo, xhi, yhi = self.bbox
        x, y = p
        out: list[tuple[Point, int]] = []

        def add_line(line: _LineK, entry: Point) -> None:
            d0 = dist(p, entry)
            for k in line.neighbors(entry[line.axis]):
                out.append((k, d0 + dist(entry, k)))

        if y >= yhi:  # can enter through the top line
            add_line(self.k_top, (min(max(x, xlo), xhi), yhi))
        if y <= ylo:
            add_line(self.k_bottom, (min(max(x, xlo), xhi), ylo))
        if x >= xhi:
            add_line(self.k_east, (xhi, min(max(y, ylo), yhi)))
        if x <= xlo:
            add_line(self.k_west, (xlo, min(max(y, ylo), yhi)))
        if not out:
            raise QueryError(
                f"{p} is inside the obstacle bounding box; use the full "
                "query structure for interior points"
            )
        return out

    # ------------------------------------------------------------------
    def length(self, p: Point, w: Point) -> float:
        """Shortest-path length from boundary/outside point ``p`` to ``w``
        (an obstacle vertex, a K point, or another outside point)."""
        if not self.polygon.contains(p) or not self.polygon.contains(w):
            raise QueryError("query points must lie inside P")
        p_out = _outside(self.bbox, p)
        w_out = _outside(self.bbox, w)
        if p_out and w_out and not _rect_hits_bbox(self.bbox, p, w):
            # trivial pair: a staircase between them avoids the obstacle
            # box entirely and stays in P (Containment Lemma)
            return dist(p, w)
        if not p_out:
            if not self.index.has_point(p):
                raise QueryError(
                    f"{p} is inside the bounding box but not an indexed point"
                )
            if w_out:
                return self.length(w, p)
            return self.index.length(p, w)
        cands = self._entry_candidates(p)
        best = INF
        if w_out:
            w_cands = self._entry_candidates(w)
            for k1, d1 in cands:
                for k2, d2 in w_cands:
                    v = d1 + self.index.length(k1, k2) + d2
                    if v < best:
                        best = v
            # also: both outside but the spanning rect clips the box corner
            if not _rect_hits_bbox(self.bbox, p, w):
                best = min(best, dist(p, w))
            return best
        for k1, d1 in cands:
            v = d1 + self.index.length(k1, w)
            if v < best:
                best = v
        return best

    @property
    def registered_points(self) -> int:
        return len(self.index)


def _outside(bbox, p: Point) -> bool:
    xlo, ylo, xhi, yhi = bbox
    return p[0] <= xlo or p[0] >= xhi or p[1] <= ylo or p[1] >= yhi


def _rect_hits_bbox(bbox, p: Point, q: Point) -> bool:
    xlo, ylo, xhi, yhi = bbox
    lo_x, hi_x = min(p[0], q[0]), max(p[0], q[0])
    lo_y, hi_y = min(p[1], q[1]), max(p[1], q[1])
    return lo_x < xhi and xlo < hi_x and lo_y < yhi and ylo < hi_y
