"""Reporting actual shortest paths (§8 of the paper).

The data structure is a *shortest-path tree per obstacle vertex*: for root
``v`` and any other vertex ``w``, a parent pointer encodes the last hop of
a shortest ``v→w`` path —

* if ``w``'s backward ray (in the world where ``w`` sits NE of ``v``)
  crosses ``NE(v)`` before any obstacle, ``w`` hangs off the staircase at
  the crossing point;
* otherwise the ray hits an obstacle edge ``u₁u₂`` and ``w``'s parent is
  the endpoint minimising ``D(v, uᵢ) + d(uᵢ, w)`` (ties toward ``u₁``),
  using the all-pairs matrix of §6.

Tree depths give the segment count ``k`` ahead of time; a level-ancestor
structure (§8 cites Berkman–Vishkin; see :mod:`repro.pram.ancestors` for
the substitution) cuts the parent chain into ``⌈k/log n⌉`` pieces of
``O(log n)`` segments, which is exactly the processor schedule the paper
uses to report a path in ``O(log n)`` time.  The simulator meters that
schedule; extraction itself runs sequentially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from repro.core.allpairs import DistanceIndex
from repro.core.tracing import TraceForests, TracedPath
from repro.errors import QueryError
from repro.geometry.primitives import (
    IDENTITY,
    Point,
    Rect,
    Transform,
    dist,
)
from repro.geometry.rayshoot import RayShooter
from repro.pram.machine import PRAM, ambient

INF = float("inf")

_WORLDS = {
    (1, 1): IDENTITY,  # w NE of v
    (-1, 1): Transform(sx=-1),  # w NW of v
    (1, -1): Transform(sy=-1),  # w SE of v
    (-1, -1): Transform(sx=-1, sy=-1),
}


@dataclass(frozen=True)
class _Parent:
    """One tree edge: either a hop to a vertex or an attachment to the
    root's staircase at a crossing point."""

    kind: str  # 'vertex' | 'staircase' | 'root'
    via: Optional[Point]  # ray landing point (bend), None for root
    target: Optional[Point]  # parent vertex or staircase crossing


class ShortestPathTree:
    """The §8 tree for one root vertex."""

    def __init__(
        self,
        root: Point,
        rects: Sequence[Rect],
        index: DistanceIndex,
        worlds: dict,
        pram: PRAM,
    ) -> None:
        self.root = root
        self.index = index
        self.parent: dict[Point, _Parent] = {root: _Parent("root", None, None)}
        self.depth: dict[Point, int] = {root: 0}
        self._stairs: dict[tuple[int, int], TracedPath] = {}
        n = len(rects)
        pram.charge(time=pram.log2ceil(n or 1), work=4 * n, width=4 * n)
        order = sorted(index.points, key=lambda w: dist(root, w))
        for w in order:
            if w == root or w in self.parent:
                continue
            self._attach(w, worlds)
        # depths by chasing (memoised); the paper gets them from the Euler
        # tour — same counts, metered below
        pram.charge(time=pram.log2ceil(n or 1), work=len(order), width=len(order))
        for w in order:
            self._depth_of(w)

    # ------------------------------------------------------------------
    def _attach(self, w: Point, worlds: dict) -> None:
        v = self.root
        sx = 1 if w[0] >= v[0] else -1
        sy = 1 if w[1] >= v[1] else -1
        world = worlds[(sx, sy)]
        t: Transform = world["t"]
        wv, ww = t.apply(v), t.apply(w)
        stair = self._staircase(world, (sx, sy))
        # decide above/below NE(v) in the world, mirroring §6.4
        y_here = _path_y_at_x(stair, ww[0])
        below = y_here is None or ww[1] <= y_here
        shooter: RayShooter = world["shooter"]
        if below:
            hit = shooter.shoot(ww, "W")
            bx = _path_x_at_y(stair, ww[1])
            if bx is not None and (hit is None or hit.point[0] <= bx):
                cross = t.inverse().apply((int(bx), ww[1]))
                self.parent[w] = _Parent("staircase", None, cross)
                return
        else:
            hit = shooter.shoot(ww, "S")
            by = _path_y_at_x(stair, ww[0])
            if by is not None and (hit is None or hit.point[1] <= by):
                cross = t.inverse().apply((ww[0], int(by)))
                self.parent[w] = _Parent("staircase", None, cross)
                return
        assert hit is not None
        u1, u2 = (t.inverse().apply(e) for e in hit.edge)
        best_u, best_len = None, INF
        for u in (u1, u2):
            if not self.index.has_point(u):
                continue
            cand = self.index.length(v, u) + dist(u, w)
            if cand < best_len:
                best_len = cand
                best_u = u
        if best_u is None:  # pragma: no cover - disjoint rects are connected
            raise QueryError(f"no parent for {w} in tree of {v}")
        bend = t.inverse().apply(hit.point)
        self.parent[w] = _Parent("vertex", bend, best_u)

    def _staircase(self, world: dict, key: tuple[int, int]) -> TracedPath:
        entry = self._stairs.get(key)
        if entry is None:
            forests: TraceForests = world["forests"]
            tp = forests.trace(world["t"].apply(self.root), "NE")
            self._stairs[key] = (world["t"], tp)
            return tp
        return entry[1]

    def _depth_of(self, w: Point) -> int:
        d = self.depth.get(w)
        if d is not None:
            return d
        par = self.parent[w]
        if par.kind == "staircase":
            assert par.target is not None
            d = 2 + self._stair_tail_segments(par.target)
        else:
            d = self._depth_of(par.target) + 2  # type: ignore[arg-type]
        self.depth[w] = d
        return d

    def _stair_tail_segments(self, cross: Point) -> int:
        """Segments of the along-staircase tail from the crossing to the
        root, via one bisect on the traced corner list (O(log n))."""
        from bisect import bisect_right

        v = self.root
        sx = 1 if cross[0] >= v[0] else -1
        sy = 1 if cross[1] >= v[1] else -1
        entry = self._stairs.get((sx, sy))
        if entry is None:
            return 1
        t, tp = entry
        cw = t.apply(cross)
        xs = [p[0] for p in tp.points]
        return bisect_right(xs, cw[0]) + 1

    # ------------------------------------------------------------------
    def segment_count(self, w: Point) -> int:
        """Upper bound on the number of segments of the reported path —
        available in O(1) before extraction (the paper's processor
        allocation needs it)."""
        if w not in self.parent:
            raise QueryError(f"{w} is not in this tree")
        return self.depth[w] + 2

    def path_to(self, w: Point, world_key=None) -> list[Point]:
        """The actual root→w shortest path as a corner polyline."""
        v = self.root
        if w == v:
            return [v]
        if w not in self.parent:
            raise QueryError(f"{w} is not in this tree")
        # assemble backwards: w, bends, vertices, staircase portion, root
        rev: list[Point] = [w]
        cur = w
        guard = 0
        while True:
            guard += 1
            if guard > len(self.parent) + 4:  # pragma: no cover
                raise QueryError("parent chain does not reach the root")
            par = self.parent[cur]
            if par.kind == "root":
                break
            if par.kind == "staircase":
                cross = par.target
                assert cross is not None
                _append(rev, _bend_corner(cur, cross))
                _append(rev, cross)
                # walk the staircase from the crossing back to the root:
                # both lie on a common monotone staircase, so the L-corner
                # suffices corner-by-corner via the traced path
                chain = self._stair_chain(cross)
                for pt in chain:
                    _append(rev, pt)
                _append(rev, v)
                break
            assert par.via is not None and par.target is not None
            _append(rev, par.via)
            _append(rev, par.target)
            cur = par.target
        rev.reverse()
        return _compress(rev)

    def _stair_chain(self, cross: Point) -> list[Point]:
        """Corners of the root's staircase between cross and root (original
        coordinates), ordered from the crossing toward the root."""
        v = self.root
        sx = 1 if cross[0] >= v[0] else -1
        sy = 1 if cross[1] >= v[1] else -1
        entry = self._stairs.get((sx, sy))
        if entry is None:
            return []
        t, tp = entry
        inv = t.inverse()
        pts = [inv.apply(p) for p in tp.points]
        out = []
        for p in reversed(pts):
            if min(v[0], cross[0]) <= p[0] <= max(v[0], cross[0]) and min(
                v[1], cross[1]
            ) <= p[1] <= max(v[1], cross[1]):
                out.append(p)
        return out


def _bend_corner(a: Point, b: Point) -> Point:
    """The intermediate corner of an axis-aligned L between a and b (a's
    ray travels horizontally or vertically to b)."""
    if a[0] == b[0] or a[1] == b[1]:
        return b
    return (b[0], a[1])


def _append(seq: list[Point], p: Point) -> None:
    if seq[-1] != p:
        if seq[-1][0] != p[0] and seq[-1][1] != p[1]:
            seq.append((p[0], seq[-1][1]))
        seq.append(p)


def _compress(pts: list[Point]) -> list[Point]:
    out = [pts[0]]
    for p in pts[1:]:
        if p == out[-1]:
            continue
        if len(out) >= 2 and (
            (out[-2][0] == out[-1][0] == p[0]) or (out[-2][1] == out[-1][1] == p[1])
        ):
            out[-1] = p
        else:
            out.append(p)
    return out


def _path_y_at_x(tp: TracedPath, x: int) -> Optional[float]:
    pts = tp.points
    if x < pts[0][0]:
        return None
    best: Optional[float] = None
    for a, b in zip(pts, pts[1:]):
        if min(a[0], b[0]) <= x <= max(a[0], b[0]):
            best = float(max(a[1], b[1])) if best is None else max(best, float(max(a[1], b[1])))
    if best is not None:
        return best
    if x == pts[-1][0]:
        return INF  # the N-ray
    if x > pts[-1][0]:
        return None
    return None


def _path_x_at_y(tp: TracedPath, y: int) -> Optional[float]:
    pts = tp.points
    if y < pts[0][1]:
        return None
    best: Optional[float] = None
    for a, b in zip(pts, pts[1:]):
        if min(a[1], b[1]) <= y <= max(a[1], b[1]):
            cand = float(max(a[0], b[0]))
            best = cand if best is None else max(best, cand)
    if best is not None:
        return best
    return float(pts[-1][0])  # the N-ray column


class PathReporter:
    """§8 front end: lazy per-root trees + metered parallel reporting."""

    def __init__(
        self,
        rects: Sequence[Rect],
        index: DistanceIndex,
        pram: Optional[PRAM] = None,
    ) -> None:
        self.rects = list(rects)
        self.index = index
        self.pram = pram or ambient()
        self.worlds = {}
        for key, t in _WORLDS.items():
            w_rects = t.apply_rects(self.rects)
            self.worlds[key] = {
                "t": t,
                "shooter": RayShooter(w_rects),
                "forests": TraceForests(w_rects),
            }
        self._trees: dict[Point, ShortestPathTree] = {}

    def tree(self, root: Point) -> ShortestPathTree:
        tr = self._trees.get(root)
        if tr is None:
            if not self.index.has_point(root):
                raise QueryError(f"{root} is not an indexed vertex")
            tr = ShortestPathTree(root, self.rects, self.index, self.worlds, self.pram)
            self._trees[root] = tr
        return tr

    def path(self, p: Point, q: Point) -> list[Point]:
        """An actual shortest path between two indexed points.

        Metered as the paper reports it: ``O(log n)`` time with
        ``⌈k/log n⌉`` processors (level-ancestor cuts).
        """
        tr = self.tree(p)
        out = tr.path_to(q)
        k = max(1, len(out) - 1)
        lg = self.pram.log2ceil(len(self.rects) or 1)
        self.pram.charge(time=lg, work=k + lg, width=max(1, -(-k // lg)))
        return out

    def segment_count(self, p: Point, q: Point) -> int:
        return self.tree(p).segment_count(q)
