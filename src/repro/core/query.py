"""Arbitrary-point length queries (§6.4 of the paper).

Given the ``V_R``-to-``V_R`` length matrix, a query between arbitrary
points costs ``O(log n)`` with one processor:

* locate the query pair's relative quadrant and reduce, by reflection, to
  "``q`` is to the lower-left of ``p``";
* decide whether ``p`` lies above or below the implicit ``NE(q)`` path by
  binary search on the tracing forest (the paper's subdivisions ``H₁/H₂``
  answer the same ray-shooting queries; our segment-tree
  :class:`RayShooter` plays that role, see DESIGN.md);
* below: shoot a leftward ray from ``p``.  If it crosses ``NE(q)`` before
  any obstacle the length is ``d(p, q)`` (there is a staircase); otherwise
  it hits an obstacle edge ``q₁q₂`` and the answer is
  ``min_i d(p, qᵢ) + D(qᵢ, q)`` — the two-candidate rule proved in [11].
  Above: symmetric with a downward ray;
* when ``q`` is itself arbitrary, the inner ``D(qᵢ, q)`` terms recurse one
  level (``qᵢ`` is always an obstacle vertex, so the recursion grounds in
  the matrix).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.allpairs import DistanceIndex
from repro.core.tracing import TraceForests, _resume_corner
from repro.errors import QueryError
from repro.geometry.primitives import (
    IDENTITY,
    Point,
    Rect,
    Transform,
    dist,
    points_in_any_interior,
    rect_coord_array,
)
from repro.geometry.rayshoot import RayShooter
from repro.pram.machine import PRAM, ambient

INF = float("inf")

_QUADRANT_WORLD = {
    (1, 1): IDENTITY,  # q lower-left of p already
    (-1, 1): Transform(sx=-1),  # q lower-right -> reflect x
    (1, -1): Transform(sy=-1),  # q upper-left -> reflect y
    (-1, -1): Transform(sx=-1, sy=-1),
}

#: fixed world order for the persistence hooks (rows of the parents array)
_WORLD_ORDER: tuple[tuple[int, int], ...] = ((1, 1), (-1, 1), (1, -1), (-1, -1))


class _ImplicitPath:
    """O(log n)-searchable view of the canonical NE(q) path in one world.

    The path's corner sequence is ``q, (qx, b₀), (e₀, b₀), (e₀, b₁),
    (e₁, b₁), …`` where ``bᵢ``/``eᵢ`` are the bottom/right coordinates of
    the obstacles rounded; both sequences are strictly monotone, which is
    what the binary searches exploit.
    """

    def __init__(self, q: Point, chain: list[Rect]):
        self.q = q
        self.bots = [r.ylo for r in chain]  # strictly increasing
        self.easts = [r.xhi for r in chain]  # strictly increasing

    def y_at_x(self, x: int) -> float:
        """Path height at vertical line ``x`` (≥ qx); +inf on the N-ray."""
        if not self.bots:
            return INF if x == self.q[0] else None  # type: ignore[return-value]
        if x > self.easts[-1]:
            return None  # type: ignore[return-value]  # beyond the last corner
        # first obstacle whose east edge reaches x
        lo, hi = 0, len(self.easts) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.easts[mid] >= x:
                hi = mid
            else:
                lo = mid + 1
        return float(self.bots[lo])

    def x_crossing_at_y(self, y: int) -> Optional[float]:
        """x where the path crosses the horizontal line at ``y`` (≥ qy)."""
        if not self.bots or y <= self.bots[0]:
            return float(self.q[0])  # the initial vertical run (or N-ray)
        if y > self.bots[-1]:
            return float(self.easts[-1])  # the terminal N-ray
        lo, hi = 0, len(self.bots) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self.bots[mid] >= y:
                hi = mid
            else:
                lo = mid + 1
        # vertical segment between obstacle lo-1 and lo sits at east[lo-1]
        return float(self.easts[lo - 1])


class _QueryWorld:
    def __init__(
        self,
        t: Transform,
        rects: Sequence[Rect],
        ne_parents: Optional[Sequence[Optional[int]]] = None,
    ):
        self.t = t
        self.inv = t.inverse()
        self.rects = t.apply_rects(list(rects))
        self.shooter = RayShooter(self.rects)
        if ne_parents is None:
            # derive the NE forest by tracing (the expensive path)
            self.parents = TraceForests(self.rects).parents("NE")
        else:
            # snapshot fast path: the forest was persisted, only the ray
            # shooter (cheap, shared with the forests anyway) is rebuilt
            self.parents = list(ne_parents)

    def ne_chain(self, q: Point, nmax: int) -> _ImplicitPath:
        chain: list[Rect] = []
        hit = self.shooter.shoot(q, "N")
        cur = None if hit is None else hit.rect_index
        guard = 0
        while cur is not None:
            guard += 1
            if guard > nmax + 1:  # pragma: no cover
                raise QueryError("NE chain did not terminate")
            chain.append(self.rects[cur])
            cur = self.parents[cur]
        return _ImplicitPath(q, chain)


class QueryStructure:
    """§6.4: O(log n) length queries between arbitrary plane points."""

    def __init__(
        self,
        rects: Sequence[Rect],
        index: DistanceIndex,
        pram: Optional[PRAM] = None,
        world_parents: Optional[np.ndarray] = None,
    ) -> None:
        """``world_parents`` — optional ``(4, n)`` array of persisted NE
        tracing-forest parents (one row per world of :data:`_WORLD_ORDER`,
        ``-1`` for "escapes to infinity"), as produced by
        :meth:`export_world_parents`; skips re-tracing the forests."""
        pram = pram or ambient()
        self.rects = list(rects)
        self._rect_arr = rect_coord_array(self.rects)
        self.index = index
        n = len(self.rects)
        if world_parents is not None:
            arr = np.asarray(world_parents)
            if arr.shape != (4, n):
                raise QueryError(
                    f"world_parents shape {arr.shape} does not match "
                    f"(4, {n}) for {n} obstacles"
                )
            self.worlds = {
                key: _QueryWorld(
                    _QUADRANT_WORLD[key],
                    self.rects,
                    [None if v < 0 else int(v) for v in arr[k]],
                )
                for k, key in enumerate(_WORLD_ORDER)
            }
            # shooters only; the persisted forests cost nothing to reload
            pram.charge(time=pram.log2ceil(n or 1), work=4 * n, width=4 * n)
        else:
            self.worlds = {
                key: _QueryWorld(t, self.rects) for key, t in _QUADRANT_WORLD.items()
            }
            # forest + shooter construction, charged once (the paper's H₁/H₂
            # and indicator pre-processing)
            pram.charge(time=pram.log2ceil(n or 1), work=8 * n * pram.log2ceil(n or 1), width=4 * n)

    # -- persistence hooks (repro.serve.snapshot) ------------------------
    def export_world_parents(self) -> np.ndarray:
        """The four worlds' NE tracing-forest parent arrays as one
        ``(4, n)`` int array (``-1`` encodes None), in :data:`_WORLD_ORDER`
        order — everything :class:`QueryStructure` derives from the scene
        that is worth persisting (shooters are cheap to rebuild)."""
        n = len(self.rects)
        out = np.full((4, n), -1, dtype=np.int64)
        for k, key in enumerate(_WORLD_ORDER):
            for i, parent in enumerate(self.worlds[key].parents):
                if parent is not None:
                    out[k, i] = parent
        return out

    # ------------------------------------------------------------------
    def length(self, p: Point, q: Point) -> float:
        """Length of a shortest obstacle-avoiding rectilinear p-q path."""
        for r in self.rects:
            if r.contains_interior(p) or r.contains_interior(q):
                raise QueryError("query point inside an obstacle")
        if self.index.has_point(p) and self.index.has_point(q):
            return self.index.length(p, q)
        return self._length_arbitrary(p, q)

    def lengths(self, pairs: Sequence[tuple[Point, Point]]) -> np.ndarray:
        """Batched :meth:`length`: one vectorized containment check for
        every endpoint, one matrix gather for all indexed pairs, and only
        the genuinely arbitrary pairs walk the §6.4 machinery."""
        out = np.empty(len(pairs))
        if not pairs:
            return out
        flat: list[Point] = [pt for pair in pairs for pt in pair]
        bad = points_in_any_interior(self._rect_arr, flat)
        if bad.any():
            raise QueryError(
                f"query point {flat[int(np.flatnonzero(bad)[0])]} inside "
                "an obstacle"
            )
        pos: list[int] = []
        fast: list[tuple[Point, Point]] = []
        for n, (p, q) in enumerate(pairs):
            if self.index.has_point(p) and self.index.has_point(q):
                pos.append(n)
                fast.append((p, q))
            else:
                # already validated above — skip length()'s per-rect loop
                out[n] = self._length_arbitrary(p, q)
        if pos:
            out[np.array(pos, dtype=np.intp)] = self.index.lengths(
                [p for p, _ in fast], [q for _, q in fast]
            )
        return out

    # ------------------------------------------------------------------
    def _length_arbitrary(self, p: Point, q: Point) -> float:
        if p == q:
            return 0
        if self.index.has_point(p) and not self.index.has_point(q):
            p, q = q, p  # ground the two-candidate rule in the matrix
        sx = 1 if q[0] <= p[0] else -1
        sy = 1 if q[1] <= p[1] else -1
        world = self.worlds[(sx, sy)]
        wp, wq = world.t.apply(p), world.t.apply(q)
        path = world.ne_chain(wq, len(self.rects))
        y_here = path.y_at_x(wp[0])
        if y_here is None or wp[1] <= y_here:
            return self._below_case(world, wp, wq, path, q)
        return self._above_case(world, wp, wq, path, q)

    def _below_case(self, world: _QueryWorld, wp, wq, path: _ImplicitPath, q: Point) -> float:
        bx = path.x_crossing_at_y(wp[1])
        hit = world.shooter.shoot(wp, "W")
        if bx is not None and (hit is None or hit.point[0] <= bx):
            return dist(wp, wq)
        assert hit is not None
        u1, u2 = hit.edge
        return self._two_candidates(world, wp, (u1, u2), q)

    def _above_case(self, world: _QueryWorld, wp, wq, path: _ImplicitPath, q: Point) -> float:
        by = path.y_at_x(wp[0])
        hit = world.shooter.shoot(wp, "S")
        if by is not None and (hit is None or hit.point[1] <= by):
            return dist(wp, wq)
        assert hit is not None
        u1, u2 = hit.edge
        return self._two_candidates(world, wp, (u1, u2), q)

    def _two_candidates(self, world: _QueryWorld, wp, candidates, q: Point) -> float:
        best = INF
        for wu in candidates:
            u = world.inv.apply(wu)
            if self.index.has_point(q):
                inner = self.index.length(u, q)
            else:
                # q arbitrary: recurse with the roles swapped so the next
                # level's barrier sits at the vertex u — which is always in
                # the matrix, so the recursion grounds at depth one
                inner = self._length_arbitrary(q, u)
            cand = dist(wp, wu) + inner
            if cand < best:
                best = cand
        return best
