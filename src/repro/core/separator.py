"""The Staircase Separator Theorem (§3, Theorem 2, Fig. 6).

Finds an unbounded clear staircase ``Sep`` splitting the obstacle set into
two sides of at most ``7n/8`` obstacles each, with ``O(n)`` segments, in
``O(log n)`` simulated time and ``O(n)``-ish work (our median/count steps
charge sort/scan costs; the paper's constant-factor tighter kernels would
not change any measured exponent).

Algorithm, exactly as in the paper:

1. Vertical median line ``V``.  If ≥ n/4 obstacles cross it, pick ``p`` on
   ``V`` in the gap splitting the crossers evenly: ``Sep = NE(p) ∪ SW(p)``.
2. Else horizontal median line ``H``; same with ``Sep = EN(p) ∪ WS(p)``.
3. Else ``p = V ∩ H`` (nudged to an obstacle boundary if it falls inside
   one); reflect the plane so the most populated quadrant is NW and take
   ``Sep = NE(p) ∪ WS(p)``.

The sides are classified with the staircase side test; obstacles the
separator merely touches are classified by their interior.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.errors import GeometryError
from repro.geometry.primitives import ALL_TRANSFORMS, IDENTITY, Point, Rect, Transform
from repro.geometry.staircase import Staircase
from repro.core.tracing import MODES, TraceForests, combine_traces
from repro.pram.machine import PRAM, ambient
from repro.pram.primitives import parallel_sort

_QUADRANT_FIX = {
    "NW": IDENTITY,
    "NE": Transform(sx=-1),
    "SW": Transform(sy=-1),
    "SE": Transform(sx=-1, sy=-1),
}


@dataclass
class Separator:
    """Result of Theorem 2: the staircase and the two obstacle index sets.

    ``upper`` holds the indices on the staircase's +1 side (NW side of an
    increasing ``Sep``), ``lower`` the -1 side.
    """

    staircase: Staircase
    upper: list[int]
    lower: list[int]
    origin: Point
    branch: str  # 'vertical' | 'horizontal' | 'quadrant'

    @property
    def balanced(self) -> bool:
        n = len(self.upper) + len(self.lower)
        lo = min(len(self.upper), len(self.lower))
        return 8 * lo >= n - 8  # n/8 with O(1) slack for the nudge cases

    @property
    def max_side(self) -> int:
        return max(len(self.upper), len(self.lower))


def _median_coordinate(values: list[int]) -> int:
    """Midpoint of the two middle elements, so the median line separates
    the vertex multiset evenly instead of landing on a popular coordinate."""
    k = len(values) // 2
    return (values[k - 1] + values[k]) // 2


def _stable_coordinate(values: list[int]) -> int:
    """The median snapped down to a coarse power-of-two grid scaled to the
    coordinate span.

    This is the ``pivot="stable"`` rule: the exact multiset median moves
    whenever a single obstacle is inserted or deleted, which re-partitions
    every subtree and makes incremental repair worthless.  Snapping to a
    grid of about span/8 keeps the split near the median (balance within
    one grid cell) while making the pivot — and hence the divide tree —
    insensitive to single-obstacle edits that stay inside the subtree's
    bounding box.
    """
    m = _median_coordinate(values)
    span = values[-1] - values[0]
    if span <= 1:
        return m
    g = 1 << max(0, (span // 8).bit_length() - 1)  # largest 2^k <= span/8
    if g <= 1:
        return m
    return (m // g) * g


def _gap_point_on_vline(x: int, crossers: list[Rect]) -> int:
    """y on the line ``V`` between the two middle crossing obstacles."""
    tops = sorted(r.yhi for r in crossers)
    bots = sorted(r.ylo for r in crossers)
    k = len(crossers) // 2
    if k == 0:
        return crossers[0].ylo - 1
    # crossers stack vertically along V (disjointness); gap between the
    # k-th top and the (k+1)-th bottom
    lo = tops[k - 1]
    hi = bots[k]
    return (lo + hi) // 2


def staircase_separator(
    rects: Sequence[Rect],
    pram: Optional[PRAM] = None,
    forests: Optional[TraceForests] = None,
    pivot: str = "median",
) -> Separator:
    """Compute a staircase separator for ``rects`` (Theorem 2).

    ``pivot`` selects the split-coordinate rule: ``"median"`` (the paper's
    exact multiset median, best balance) or ``"stable"`` (the median
    snapped to a coarse span-scaled grid — slightly worse balance, but the
    divide tree survives single-obstacle edits, which is what makes
    :func:`repro.pipeline.update_index`'s subtree reuse possible).
    """
    pram = pram or ambient()
    n = len(rects)
    if n < 2:
        raise GeometryError("separator needs at least two obstacles")
    if pivot not in ("median", "stable"):
        raise GeometryError(f"unknown separator pivot {pivot!r}")
    forests = forests or TraceForests(rects, pram)
    coordinate = _median_coordinate if pivot == "median" else _stable_coordinate

    xs = parallel_sort([x for r in rects for x in (r.xlo, r.xlo, r.xhi, r.xhi)], pram=pram)
    ys = parallel_sort([y for r in rects for y in (r.ylo, r.ylo, r.yhi, r.yhi)], pram=pram)
    vx = coordinate(xs)
    hy = coordinate(ys)

    pram.step(2 * n)  # crossing counts
    v_cross = [r for r in rects if r.xlo < vx < r.xhi]
    h_cross = [r for r in rects if r.ylo < hy < r.yhi]

    if 4 * len(v_cross) >= n:
        py = _gap_point_on_vline(vx, v_cross)
        p = (vx, py)
        sep = combine_traces(forests.trace(p, "SW", pram), forests.trace(p, "NE", pram))
        return _classify(rects, sep, p, "vertical", pram)

    if 4 * len(h_cross) >= n:
        # symmetric: gap point on H between the middle horizontal crossers
        lefts = sorted(r.xhi for r in h_cross)
        rights = sorted(r.xlo for r in h_cross)
        k = len(h_cross) // 2
        px = (lefts[k - 1] + rights[k]) // 2 if k else h_cross[0].xlo - 1
        p = (px, hy)
        sep = combine_traces(forests.trace(p, "WS", pram), forests.trace(p, "EN", pram))
        return _classify(rects, sep, p, "horizontal", pram)

    p = (vx, hy)
    inside = next((r for r in rects if r.contains_interior(p)), None)
    if inside is not None:
        # the paper's "easily modified" case: slide p to the obstacle's
        # boundary along V; try both sides and keep the better balance
        candidates = [(vx, inside.ylo), (vx, inside.yhi)]
    else:
        candidates = [p]

    pram.step(4 * n)  # quadrant population counts
    best: Optional[Separator] = None
    for cand in candidates:
        cx, cy = cand
        counts = {"NW": 0, "NE": 0, "SW": 0, "SE": 0}
        for r in rects:
            if r.xhi <= cx and r.ylo >= cy:
                counts["NW"] += 1
            elif r.xlo >= cx and r.ylo >= cy:
                counts["NE"] += 1
            elif r.xhi <= cx and r.yhi <= cy:
                counts["SW"] += 1
            elif r.xlo >= cx and r.yhi <= cy:
                counts["SE"] += 1
        quadrant = max(counts, key=lambda q: counts[q])
        t = _QUADRANT_FIX[quadrant]
        lo_mode = _mode_under(t, "WS")
        hi_mode = _mode_under(t, "NE")
        lo_path = forests.trace(cand, lo_mode, pram)
        hi_path = forests.trace(cand, hi_mode, pram)
        sep = combine_traces(lo_path, hi_path)
        result = _classify(rects, sep, cand, "quadrant", pram)
        if best is None or result.max_side < best.max_side:
            best = result
    assert best is not None
    return best


def _mode_under(t: Transform, mode: str) -> str:
    """The original-world mode whose image under ``t`` is ``mode``.

    ``t`` maps original to reflected coordinates; tracing mode ``m`` in the
    reflected world equals tracing ``t⁻¹(m)`` in the original world.
    """
    inv = t.inverse()
    primary, detour = MODES[mode]
    pv = _apply_dir(inv, primary)
    dv = _apply_dir(inv, detour)
    for name, (pp, dd) in MODES.items():
        if (pp, dd) == (pv, dv):
            return name
    raise GeometryError(f"no mode for {mode} under {t}")  # pragma: no cover


_VEC = {"N": (0, 1), "S": (0, -1), "E": (1, 0), "W": (-1, 0)}


def _apply_dir(t: Transform, d: str) -> str:
    vx, vy = _VEC[d]
    wx, wy = t.sx * vx, t.sy * vy
    if t.swap:
        wx, wy = wy, wx
    for name, vec in _VEC.items():
        if vec == (wx, wy):
            return name
    raise GeometryError("direction lost under transform")  # pragma: no cover


def _classify(
    rects: Sequence[Rect],
    sep: Staircase,
    origin: Point,
    branch: str,
    pram: PRAM,
) -> Separator:
    pram.step(len(rects))
    upper: list[int] = []
    lower: list[int] = []
    for i, r in enumerate(rects):
        side = sep.side_of_rect(r)
        (upper if side > 0 else lower).append(i)
    return Separator(sep, upper, lower, origin, branch)
