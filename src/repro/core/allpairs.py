"""The parallel all-pairs engine (§5 + §6.3 of the paper, simulated).

Divide-and-conquer on staircase separators (Theorem 2), conquering with
(min,+) products through crossing candidates on the separator — the
Monge-multiply conquer of Theorem 3 / Lemma 5, with the paper's flow
pipeline replaced by explicit interface accumulation (substitution table in
DESIGN.md §2).

Correctness skeleton (mirrors §4's lemma toolkit):

* Each recursion node solves the *free-plane* all-pairs problem among its
  tracked points ``T_v`` avoiding only its own obstacles ``R_v``.
* **Soundness** — for any ``z`` on the clear separator,
  ``D_L(a,z) + D_R(z,b) ≥ dist_{R_v}(a,b)``: an ``R_L``-avoiding path can be
  shortcut along the separator (staircases are L1-geodesics, the paper's
  Containment Lemma 10 argument) into a weakly-left path avoiding all of
  ``R_v``, and symmetrically on the right.
* **Completeness** — some optimal path crosses the separator in one
  connected component (Single Intersection, Lemma 11).  The functions
  ``t ↦ dist_{R_L}(a, Sep(t))`` and ``t ↦ dist_{R_R}(Sep(t), b)`` are
  piecewise linear in arc length with slopes ±1 and kinks only at (a) the
  crossings of Hanan grid lines through obstacle corners with the
  separator, (b) separator corners, and (c) the endpoint's own grid-line
  projections.  Hence the optimal crossing is found by a (min,+) product
  over the O(n_v) core candidates (a)+(b) plus O(1) per-pair candidates
  (c), evaluated directly with a visibility test.

The per-node core candidate set is ``O(n_v)``, so interfaces grow only
additively along a root-leaf path; measured totals are reported in
EXPERIMENTS.md E3.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro.core.baseline import GridOracle, clear_l1_block, corner_graph_matrix
from repro.core.separator import staircase_separator
from repro.errors import GeometryError, QueryError
from repro.geometry.decompose import (
    seams_block_v_segment,
    staircase_clear_of_seams,
)
from repro.geometry.primitives import Point, Rect, bbox_of_points, dist, validate_disjoint
from repro.geometry.rayshoot import RayShooter
from repro.geometry.staircase import Staircase
from repro.monge.matrix import MongeFlag
from repro.monge.multiply import minplus_auto, minplus_monge, minplus_naive
from repro.pram.machine import PRAM, ambient

INF = float("inf")

#: stop recursing below this many obstacles (Theorem 2 guarantees balance
#: only for n ≥ 8; smaller sets are brute-forced on the Hanan grid)
DEFAULT_LEAF_SIZE = 6


def exact_length(v) -> float:
    """A matrix entry as a query answer: int for the integer domain,
    exact float for fractional lengths (non-integer extra points), inf
    passed through.  Single lookups and batched gathers must agree, so
    every length accessor normalizes through this one helper."""
    if not np.isfinite(v):
        return float(v)
    i_v = int(v)
    return i_v if i_v == v else float(v)


@dataclass
class BuildStats:
    """Instrumentation for the experiments (E3) and incremental repair."""

    nodes: int = 0
    leaves: int = 0
    max_interface: int = 0
    max_tracked: int = 0
    separator_fallbacks: int = 0
    crossing_candidates: int = 0
    monge_fast_blocks: int = 0
    conquer_pairs: int = 0
    per_level_points: dict = field(default_factory=dict)
    # subtree-cache traffic (incremental builds only; zero otherwise)
    subtree_hits: int = 0
    subtree_patches: int = 0
    subtree_misses: int = 0
    delta_conquers: int = 0
    patched_points: int = 0


@dataclass
class SubtreeEntry:
    """One cached subtree solve: exact distances of a *sub-scene*.

    The key insight behind incremental repair: a recursion node's matrix
    holds exact rectilinear distances among its tracked points avoiding
    only *its own* obstacle set, so the entry is addressed by the subtree's
    rect multiset alone — the interface handed down by ancestors decides
    which rows exist, never their values.  A later build whose interface
    differs (the usual case after an edit elsewhere) can therefore reuse
    the entry as a submatrix, and missing interface points are appended by
    the exact first-corner-contact patch (:meth:`ParallelEngine._patch_entry`).
    ``chain_sig``/``zs`` record the node's separator so a delete repair can
    prove the divide is unchanged and take the monotone delta conquer.
    """

    pts: list
    index: dict
    matrix: np.ndarray
    chain_sig: Optional[tuple]  # (pts, increasing, left_dir, right_dir)
    zs: Optional[tuple]
    pram_cost: tuple  # (time, work, width) of the original full solve
    lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def nbytes(self) -> int:
        return int(self.matrix.nbytes) + 48 * len(self.pts) + 256


class DistanceIndex:
    """All-pairs length matrix over a fixed point set with O(1) lookups.

    This is the data structure of the paper's abstract: one processor
    obtains any vertex-pair length in constant time.
    """

    def __init__(self, points: Sequence[Point], matrix: np.ndarray) -> None:
        self.points = list(points)
        self.matrix = matrix
        self.index = {p: i for i, p in enumerate(self.points)}

    def length(self, p: Point, q: Point) -> int:
        try:
            i = self.index[p]
            j = self.index[q]
        except KeyError as exc:
            raise QueryError(f"{exc.args[0]} is not an indexed point") from None
        return exact_length(self.matrix[i, j])  # type: ignore[return-value]

    def has_point(self, p: Point) -> bool:
        return p in self.index

    def ids(self, pts: Sequence[Point]) -> np.ndarray:
        """Row/column ids of the given indexed points."""
        try:
            return np.array([self.index[p] for p in pts], dtype=np.intp)
        except KeyError as exc:
            raise QueryError(f"{exc.args[0]} is not an indexed point") from None

    def lengths(self, ps: Sequence[Point], qs: Sequence[Point]) -> np.ndarray:
        """Pairwise lengths ``d(ps[i], qs[i])`` as one vectorized gather."""
        if len(ps) != len(qs):
            raise QueryError(f"pair arrays differ in length: {len(ps)} vs {len(qs)}")
        return self.matrix[self.ids(ps), self.ids(qs)]

    def submatrix(
        self, pts: Sequence[Point], cols: Optional[Sequence[Point]] = None
    ) -> np.ndarray:
        """Distance block ``pts × cols`` (``pts × pts`` when ``cols`` is
        omitted) in one fancy-indexing gather."""
        ids = self.ids(pts)
        cids = ids if cols is None else self.ids(cols)
        return self.matrix[np.ix_(ids, cids)]

    # -- persistence hooks (repro.serve.snapshot) ------------------------
    def export_arrays(self) -> dict[str, np.ndarray]:
        """The index as plain arrays: vertex order ``(n, 2)`` plus the
        matrix.  Together with :meth:`from_arrays` this is the whole
        persistence contract — row/column ``i`` belongs to ``points[i]``.

        Points are int64 when every coordinate is an integer (the normal
        domain — exact at any magnitude, byte-compatible with existing
        snapshots) and float64 otherwise — non-integer extra points are
        indexed verbatim and must not be silently truncated on the way
        to disk (the snapshot TOC records the dtype, so either loads
        back exactly)."""
        pts_list = list(self.points)
        if all(isinstance(c, (int, np.integer)) for p in pts_list for c in p):
            try:
                pts = np.array(pts_list, dtype=np.int64).reshape(len(pts_list), 2)
            except OverflowError:
                raise QueryError(
                    "point coordinates exceed the int64 snapshot range"
                ) from None
        else:
            # float64 must represent every coordinate exactly (a huge
            # integer mixed with one float extra would otherwise round
            # silently); refuse loudly when it cannot
            try:
                exact = all(float(c) == c for p in pts_list for c in p)
            except OverflowError:  # int too large for float at all
                exact = False
            if not exact:
                raise QueryError(
                    "point coordinates cannot be represented exactly in a "
                    "float64 snapshot"
                )
            pts = np.array(pts_list, dtype=np.float64).reshape(len(pts_list), 2)
        return {"points": pts, "matrix": self.matrix}

    @classmethod
    def from_arrays(cls, points: np.ndarray, matrix: np.ndarray) -> "DistanceIndex":
        """Rebuild an index from :meth:`export_arrays` output (no solving)."""
        pts_arr = np.asarray(points)
        mat = np.asarray(matrix, dtype=float)
        if pts_arr.ndim != 2 or pts_arr.shape[1] != 2:
            raise QueryError(f"points array must be (n, 2), got {pts_arr.shape}")
        n = pts_arr.shape[0]
        if mat.shape != (n, n):
            raise QueryError(
                f"matrix shape {mat.shape} does not match {n} points"
            )
        pts = [(x, y) for x, y in pts_arr.tolist()]
        return cls(pts, mat)

    def __len__(self) -> int:
        return len(self.points)


def _arc_pos(p: Point, increasing: bool) -> int:
    """Arc-length parameter along a monotone staircase (x+y or x−y)."""
    return p[0] + p[1] if increasing else p[0] - p[1]


class ParallelEngine:
    """Builds the all-pairs structure among obstacle vertices (plus any
    extra points) on the simulated CREW-PRAM."""

    def __init__(
        self,
        rects: Sequence[Rect],
        extra_points: Sequence[Point] = (),
        pram: Optional[PRAM] = None,
        leaf_size: int = DEFAULT_LEAF_SIZE,
        validate: bool = True,
        extra_chains: Sequence[Sequence[Point]] = (),
        monge_dispatch: bool = True,
        seams: Sequence = (),
        divide: str = "median",
        subtree_cache=None,
        subtree_salt: tuple = (),
        delta_hint: Optional[tuple] = None,
    ) -> None:
        self.rects = list(rects)
        if validate:
            validate_disjoint(self.rects)
        # interior seams of polygon-obstacle decompositions: global blockers
        # threaded into every leaf solve, separator guard and visibility
        # test so the computed metric treats each polygon as solid
        self.seams = list(seams)
        self.extra_points = list(dict.fromkeys(extra_points))
        for chain in extra_chains:
            for p in chain:
                if p not in self.extra_points:
                    self.extra_points.append(p)
        for p in self.extra_points:
            if any(r.contains_interior(p) for r in self.rects) or any(
                s.contains_open(p) for s in self.seams
            ):
                raise GeometryError(f"extra point {p} is inside an obstacle")
        self.pram = pram or ambient()
        self.leaf_size = max(2, leaf_size)
        self.stats = BuildStats()
        # chain provenance: points known to lie, in order, on a common
        # monotone staircase.  This is the paper's boundary-partitioning
        # discipline (Lemmas 1/5): matrix blocks indexed by one chain are
        # Monge and take the SMAWK path in the conquer products.
        self.monge_dispatch = monge_dispatch
        self._chain_tags: dict[Point, tuple[int, int]] = {}
        self._next_chain_id = 0
        for chain in extra_chains:
            cid = self._fresh_chain_id()
            for k, p in enumerate(chain):
                self._chain_tags[p] = (cid, k)
        # incremental-build hooks (see repro.pipeline.update_index):
        # ``divide`` picks the separator pivot rule ("median" keeps the
        # paper's exact behaviour; "stable" snaps it so edits stay local),
        # ``subtree_cache`` is a StageCache-compatible object receiving one
        # entry per recursion node, ``delta_hint`` = ("delete", Rect) when
        # this build repairs a known single-obstacle delete.
        if divide not in ("median", "stable"):
            raise QueryError(f"unknown divide rule {divide!r}")
        self.divide = divide
        self._sub_cache = subtree_cache
        self._sub_salt = tuple(subtree_salt)
        self._delta_hint = delta_hint

    def _fresh_chain_id(self) -> int:
        self._next_chain_id += 1
        return self._next_chain_id

    # ------------------------------------------------------------------
    def build(self) -> DistanceIndex:
        """Compute the index; simulated time O(log² n)-ish, see E3."""
        if not self.rects:
            pts = list(self.extra_points)
            m = np.zeros((len(pts), len(pts)))
            for i, p in enumerate(pts):
                for j, q in enumerate(pts):
                    m[i, j] = dist(p, q)
            return DistanceIndex(pts, m)
        idx = list(range(len(self.rects)))
        pts, mat = self._solve(idx, self.extra_points, self.pram, depth=0)
        return DistanceIndex(pts, mat)

    # ------------------------------------------------------------------
    def _tracked_points(self, rect_idx: list[int], interface: Sequence[Point]) -> list[Point]:
        seen: dict[Point, None] = {}
        for i in rect_idx:
            for v in self.rects[i].vertices:
                seen.setdefault(v, None)
        for p in interface:
            seen.setdefault(p, None)
        return list(seen)

    def _solve(
        self,
        rect_idx: list[int],
        interface: Sequence[Point],
        pram: PRAM,
        depth: int,
    ) -> tuple[list[Point], np.ndarray]:
        self.stats.nodes += 1
        self.stats.max_interface = max(self.stats.max_interface, len(interface))
        pts = self._tracked_points(rect_idx, interface)
        self.stats.max_tracked = max(self.stats.max_tracked, len(pts))
        lvl = self.stats.per_level_points
        lvl[depth] = lvl.get(depth, 0) + len(pts)
        if self._sub_cache is None:
            out, _ = self._solve_node(rect_idx, pts, pram, depth)
            return out
        key = self._subtree_key(rect_idx)
        entry = self._sub_cache.get(key)
        if entry is not None:
            reused = self._reuse_entry(key, entry, rect_idx, pts, pram)
            if reused is not None:
                return reused
        self.stats.subtree_misses += 1
        snap = pram.snapshot()
        out, aux = self._solve_node(rect_idx, pts, pram, depth)
        dt, dw = pram.since(snap)
        self._store_entry(key, out, aux, (dt, dw, pram.max_ops))
        return out

    def _solve_node(
        self,
        rect_idx: list[int],
        pts: list[Point],
        pram: PRAM,
        depth: int,
    ) -> tuple[tuple[list[Point], np.ndarray], Optional[tuple]]:
        """One recursion node (leaf or divide+conquer), cache-oblivious.

        Returns ``((pts, matrix), aux)`` with ``aux`` the separator
        signature ``(chain_sig, zs)`` for internal nodes (``None`` when the
        node was brute-forced as a leaf)."""
        if len(rect_idx) <= self.leaf_size:
            return self._leaf(rect_idx, pts, pram), None
        sub_rects = [self.rects[i] for i in rect_idx]
        sep = staircase_separator(sub_rects, pram, pivot=self.divide)
        if not sep.upper or not sep.lower:
            self.stats.separator_fallbacks += 1
            return self._leaf(rect_idx, pts, pram), None
        chain = sep.staircase
        if self.seams and not staircase_clear_of_seams(chain, self.seams):
            # a separator running along a seam would place crossing
            # candidates inside a polygon and slide paths through it;
            # the exact leaf solve is always sound
            self.stats.separator_fallbacks += 1
            return self._leaf(rect_idx, pts, pram), None
        zs = self._crossing_candidates(chain, sub_rects, pts, pram)
        if not zs:
            self.stats.separator_fallbacks += 1
            return self._leaf(rect_idx, pts, pram), None
        upper_idx = [rect_idx[i] for i in sep.upper]
        lower_idx = [rect_idx[i] for i in sep.lower]
        pram.step(len(pts))
        side_of = {p: chain.side_of(p) for p in pts}
        up_iface = list(dict.fromkeys(
            [p for p in pts if side_of[p] >= 0] + zs))
        lo_iface = list(dict.fromkeys(
            [p for p in pts if side_of[p] <= 0] + zs))
        (ptsU, matU), (ptsL, matL) = pram.parallel(
            [
                lambda m, ui=upper_idx, si=up_iface: self._solve(ui, si, m, depth + 1),
                lambda m, li=lower_idx, si=lo_iface: self._solve(li, si, m, depth + 1),
            ]
        )
        chain_sig = (chain.pts, chain.increasing, chain.left_dir, chain.right_dir)
        delta = self._try_delta_conquer(
            pts, side_of, chain, chain_sig, zs, sub_rects, rect_idx,
            upper_idx, lower_idx, (ptsU, matU), (ptsL, matL), pram,
        )
        if delta is not None:
            return delta, (chain_sig, tuple(zs))
        out = self._conquer(
            pts, side_of, chain, zs, sub_rects, (ptsU, matU), (ptsL, matL), pram
        )
        return out, (chain_sig, tuple(zs))

    # -- subtree cache (incremental builds) ----------------------------
    def _subtree_key(self, rect_idx: list[int]) -> tuple:
        coords = sorted(
            (self.rects[i].xlo, self.rects[i].ylo, self.rects[i].xhi, self.rects[i].yhi)
            for i in rect_idx
        )
        return ("solve", "sub", self._sub_salt, tuple(coords))

    def _old_subtree_key(self, rect_idx: list[int]) -> Optional[tuple]:
        """The key this subtree had *before* the hinted delete (its rect
        multiset plus the removed rect) — where the pre-edit entry lives."""
        if self._delta_hint is None or self._delta_hint[0] != "delete":
            return None
        r = self._delta_hint[1]
        coords = sorted(
            [
                (self.rects[i].xlo, self.rects[i].ylo, self.rects[i].xhi, self.rects[i].yhi)
                for i in rect_idx
            ]
            + [(r.xlo, r.ylo, r.xhi, r.yhi)]
        )
        return ("solve", "sub", self._sub_salt, tuple(coords))

    def _reuse_entry(
        self,
        key: tuple,
        entry: SubtreeEntry,
        rect_idx: list[int],
        pts: list[Point],
        pram: PRAM,
    ) -> Optional[tuple[list[Point], np.ndarray]]:
        """Serve this node from a cached sub-scene entry, patching in up to
        a few missing interface points; ``None`` when the entry cannot
        cover the request (the node is then recomputed)."""
        missing = [p for p in pts if p not in entry.index]
        if missing:
            if self.seams or len(missing) > max(16, len(pts) // 4):
                return None
            # exactness of the patch (and of cross-interface reuse in
            # general) rests on integer arithmetic; a fractional point
            # forces the ordinary recompute path
            if not all(
                isinstance(c, int) or float(c).is_integer()
                for p in missing
                for c in p
            ):
                return None
            with entry.lock:
                still_missing = [p for p in pts if p not in entry.index]
                if still_missing:
                    self._patch_entry(key, entry, rect_idx, still_missing, pram)
            self.stats.subtree_patches += 1
            self.stats.patched_points += len(missing)
        else:
            self.stats.subtree_hits += 1
        sel = [entry.index[p] for p in pts]
        mat = entry.matrix[np.ix_(sel, sel)]
        t, w, width = entry.pram_cost
        pram.charge(time=t, work=w, width=width)
        return pts, mat

    def _patch_entry(
        self,
        key: tuple,
        entry: SubtreeEntry,
        rect_idx: list[int],
        missing: list[Point],
        pram: PRAM,
    ) -> None:
        """Append exact rows/columns for ``missing`` to a sub-scene entry.

        First-corner-contact decomposition: a taut path from a new point
        either runs clear along an extreme L-path to its target, or first
        touches some obstacle corner ``c`` — and every corner of the
        sub-scene is already a tracked row of the entry (``_tracked_points``
        always includes all subtree vertices), so
        ``d(x, q) = min(clear_l1(x, q), min_c clear_l1(x, c) + M[c, q])``
        with integer arithmetic throughout: bit-identical to what the full
        recursion would have produced.
        """
        sub = [self.rects[i] for i in rect_idx]
        corners = list(dict.fromkeys(v for r in sub for v in r.vertices))
        cid = [entry.index[c] for c in corners]
        old_pts = entry.pts
        m, k = len(old_pts), len(missing)
        w_xc = clear_l1_block(missing, corners, sub)  # k x C
        scratch = PRAM(f"{pram.name}/patch")
        # rows vs every stored point (keeps the entry square + canonical)
        via = minplus_naive(w_xc, entry.matrix[cid, :], scratch)  # k x m
        rows = np.minimum(clear_l1_block(missing, old_pts, sub), via)
        # the new-new block, through the just-computed corner columns
        via_xx = minplus_naive(w_xc, rows[:, cid].T, scratch)
        block = np.minimum(clear_l1_block(missing, missing, sub), via_xx)
        np.minimum(block, block.T, out=block)
        np.fill_diagonal(block, 0.0)
        grown = np.full((m + k, m + k), INF)
        grown[:m, :m] = entry.matrix
        grown[m:, :m] = rows
        grown[:m, m:] = rows.T
        grown[m:, m:] = block
        grown.setflags(write=False)
        entry.matrix = grown
        for p in missing:
            entry.index[p] = len(entry.pts)
            entry.pts.append(p)
        pram.charge(time=scratch.time, work=scratch.work, width=scratch.max_ops)
        if self._sub_cache is not None:
            self._sub_cache.put(key, entry, entry.nbytes())

    def _try_delta_conquer(
        self,
        pts: list[Point],
        side_of: dict[Point, int],
        chain: Staircase,
        chain_sig: tuple,
        zs: list[Point],
        sub_rects: list[Rect],
        rect_idx: list[int],
        upper_idx: list[int],
        lower_idx: list[int],
        upper: tuple[list[Point], np.ndarray],
        lower: tuple[list[Point], np.ndarray],
        pram: PRAM,
    ) -> Optional[tuple[list[Point], np.ndarray]]:
        """The monotone delete conquer: repair a node after one obstacle
        was removed, skipping the full (min,+) cross product.

        Deleting an obstacle only *frees* space, so every pre-edit distance
        is still achievable — the old node matrix is a valid (and usually
        tight) upper bound.  A strictly better path must run through the
        freed region, which lies entirely on the dirty side of the (by
        construction unchanged) separator, so at a core crossing candidate
        it must beat the dirty child's *old* separator distances: only
        columns where those improved can lower any cross pair.  The cross
        block is therefore ``min(old block, DU[:, changed] ⊗ DL[changed, :])``
        plus freshly recomputed per-pair projection specials (visibility can
        open up too).  Preconditions checked here — same separator, old zs
        superset, both old entries present, integral points, no seams —
        fall back to the ordinary full conquer when unmet.
        """
        if self._sub_cache is None or self._delta_hint is None or self.seams:
            return None
        if self._delta_hint[0] != "delete":
            return None
        r = self._delta_hint[1]
        side = chain.side_of_rect(r)
        if side == 0:
            return None
        if not all(
            isinstance(c, int) or float(c).is_integer() for p in pts for c in p
        ):
            return None
        old_entry = self._sub_cache.get(self._old_subtree_key(rect_idx))
        if (
            old_entry is None
            or old_entry.chain_sig != chain_sig
            or old_entry.zs is None
            or not set(zs) <= set(old_entry.zs)
            or any(p not in old_entry.index for p in pts)
        ):
            return None
        dirty_idx = upper_idx if side > 0 else lower_idx
        old_child = self._sub_cache.get(self._old_subtree_key(dirty_idx))
        if old_child is None:
            return None
        ptsU, matU = upper
        ptsL, matL = lower
        rows_u = [p for p in pts if side_of[p] >= 0]
        rows_l = [p for p in pts if side_of[p] <= 0]
        dirty_rows = rows_u if side > 0 else rows_l
        if any(p not in old_child.index for p in dirty_rows) or any(
            z not in old_child.index for z in zs
        ):
            return None
        iu = {p: i for i, p in enumerate(ptsU)}
        il = {p: i for i, p in enumerate(ptsL)}
        m = len(pts)
        pidx = {p: i for i, p in enumerate(pts)}
        out = np.full((m, m), INF)
        uid = [iu[p] for p in rows_u]
        lid = [il[p] for p in rows_l]
        sel_u = [pidx[p] for p in rows_u]
        sel_l = [pidx[p] for p in rows_l]
        out[np.ix_(sel_u, sel_u)] = matU[np.ix_(uid, uid)]
        out[np.ix_(sel_l, sel_l)] = np.minimum(
            out[np.ix_(sel_l, sel_l)], matL[np.ix_(lid, lid)]
        )
        t = np.array([_arc_pos(z, chain.increasing) for z in zs], dtype=float)
        zu = [iu[z] for z in zs]
        zl = [il[z] for z in zs]
        DU = matU[np.ix_(uid, zu)]
        DL = matL[np.ix_(zl, lid)]
        cross = old_entry.matrix[
            np.ix_(
                [old_entry.index[p] for p in rows_u],
                [old_entry.index[p] for p in rows_l],
            )
        ].copy()
        if side > 0:
            old_D = old_child.matrix[
                np.ix_([old_child.index[p] for p in rows_u],
                       [old_child.index[z] for z in zs])
            ]
            changed = np.flatnonzero((DU < old_D).any(axis=0))
        else:
            old_D = old_child.matrix[
                np.ix_([old_child.index[z] for z in zs],
                       [old_child.index[p] for p in rows_l])
            ]
            changed = np.flatnonzero((DL < old_D).any(axis=1))
        if changed.size:
            imp = minplus_naive(DU[:, changed], DL[changed, :], pram)
            np.minimum(cross, imp, out=cross)
        cross = self._apply_projection_specials(
            cross, rows_u, rows_l, chain, zs, t, DU, DL, sub_rects, pram
        )
        cur = out[np.ix_(sel_u, sel_l)]
        out[np.ix_(sel_u, sel_l)] = np.minimum(cur, cross)
        out[np.ix_(sel_l, sel_u)] = out[np.ix_(sel_u, sel_l)].T
        np.fill_diagonal(out, 0.0)
        pram.charge(time=2, work=cross.size + old_D.size, width=cross.size)
        self.stats.delta_conquers += 1
        self.stats.conquer_pairs += len(rows_u) * len(rows_l)
        return pts, out

    def _store_entry(
        self,
        key: tuple,
        out: tuple[list[Point], np.ndarray],
        aux: Optional[tuple],
        pram_cost: tuple,
    ) -> None:
        pts, mat = out
        mat.setflags(write=False)
        chain_sig, zs = aux if aux is not None else (None, None)
        entry = SubtreeEntry(
            pts=list(pts),
            index={p: i for i, p in enumerate(pts)},
            matrix=mat,
            chain_sig=chain_sig,
            zs=zs,
            pram_cost=tuple(pram_cost),
        )
        self._sub_cache.put(key, entry, entry.nbytes())

    # ------------------------------------------------------------------
    def _leaf(
        self, rect_idx: list[int], pts: list[Point], pram: PRAM
    ) -> tuple[list[Point], np.ndarray]:
        """Base case: solve the few-obstacle subproblem directly.

        Brute-forces the leaf with the vectorized corner graph
        (:func:`repro.core.baseline.corner_graph_matrix`): one batched
        multi-source Dijkstra on the corner-only Hanan grid plus array
        L-path sweeps build the whole ``m × m`` block — no per-pair Python.
        Charged as the honest PRAM equivalent: one independent single-pair
        computation per point pair, each a [11]-style sweep over the ``c``
        leaf obstacles — time ``O(log m + c log c)``, work
        ``O(m² · c log c)``.  With the constant leaf size this keeps the
        global Θ(log² n) time; with ``c = n`` (no recursion) it exposes
        the Θ(n³)-work/Θ(n log n)-time flat solve the paper's recursion
        exists to avoid (ablation E11).
        """
        self.stats.leaves += 1
        sub = [self.rects[i] for i in rect_idx]
        m = len(pts)
        if not sub:
            mat = np.zeros((m, m))
            for i, p in enumerate(pts):
                for j, q in enumerate(pts):
                    mat[i, j] = dist(p, q)
            pram.step(m * m)
            return pts, mat
        mat = corner_graph_matrix(sub, pts, seams=self.seams)
        lg = pram.log2ceil(m or 1)
        c = len(sub)
        clogc = max(1, c * max(1, (max(c - 1, 1)).bit_length()))
        pram.charge(time=lg + clogc, work=m * m * clogc, width=m * m)
        return pts, mat

    # ------------------------------------------------------------------
    def _crossing_candidates(
        self,
        chain: Staircase,
        sub_rects: list[Rect],
        pts: list[Point],
        pram: PRAM,
    ) -> list[Point]:
        """Core crossing candidates: obstacle grid-line crossings with the
        separator, plus separator corners (clipped to the scene box)."""
        xlo, ylo, xhi, yhi = bbox_of_points(
            [v for r in sub_rects for v in (r.sw, r.ne)] + list(pts)
        )
        xs_set = {r.xlo for r in sub_rects} | {r.xhi for r in sub_rects}
        ys_set = {r.ylo for r in sub_rects} | {r.yhi for r in sub_rects}
        for s in self.seams:
            # seam endpoints are reflex corners of polygon obstacles: their
            # grid lines carry the extra kinks of the seam-aware distance-
            # to-separator functions, so they must be candidate generators
            xs_set.add(s.x)
            ys_set.update((s.ylo, s.yhi))
        xs = sorted(xs_set)
        ys = sorted(ys_set)
        out: dict[Point, None] = {}
        for x in xs:
            for p in chain.crossings_with_vline(x):
                if ylo <= p[1] <= yhi:
                    out.setdefault(p, None)
        for y in ys:
            for p in chain.crossings_with_hline(y):
                if xlo <= p[0] <= xhi:
                    out.setdefault(p, None)
        for p in chain.clip_points_to_bbox(xlo, ylo, xhi, yhi):
            out.setdefault(p, None)
        pram.charge(
            time=pram.log2ceil(len(xs) + len(ys) + 1),
            work=2 * (len(xs) + len(ys)) + len(chain.pts),
            width=len(xs) + len(ys),
        )
        zs = sorted(out, key=lambda p: _arc_pos(p, chain.increasing))
        cid = self._fresh_chain_id()
        for k, z in enumerate(zs):
            self._chain_tags.setdefault(z, (cid, k))
        self.stats.crossing_candidates += len(zs)
        return zs

    # ------------------------------------------------------------------
    def _conquer(
        self,
        pts: list[Point],
        side_of: dict[Point, int],
        chain: Staircase,
        zs: list[Point],
        sub_rects: list[Rect],
        upper: tuple[list[Point], np.ndarray],
        lower: tuple[list[Point], np.ndarray],
        pram: PRAM,
    ) -> tuple[list[Point], np.ndarray]:
        ptsU, matU = upper
        ptsL, matL = lower
        iu = {p: i for i, p in enumerate(ptsU)}
        il = {p: i for i, p in enumerate(ptsL)}
        m = len(pts)
        pidx = {p: i for i, p in enumerate(pts)}
        out = np.full((m, m), INF)
        rows_u = [p for p in pts if side_of[p] >= 0]
        rows_l = [p for p in pts if side_of[p] <= 0]
        # same-side pairs come straight from the children (Containment)
        uid = [iu[p] for p in rows_u]
        lid = [il[p] for p in rows_l]
        sel_u = [pidx[p] for p in rows_u]
        sel_l = [pidx[p] for p in rows_l]
        out[np.ix_(sel_u, sel_u)] = matU[np.ix_(uid, uid)]
        out[np.ix_(sel_l, sel_l)] = np.minimum(
            out[np.ix_(sel_l, sel_l)], matL[np.ix_(lid, lid)]
        )
        self.stats.conquer_pairs += len(rows_u) * len(rows_l)
        # cross pairs through the separator
        t = np.array([_arc_pos(z, chain.increasing) for z in zs], dtype=float)
        zu = [iu[z] for z in zs]
        zl = [il[z] for z in zs]
        DU = matU[np.ix_(uid, zu)]  # upper-side point -> separator
        DL = matL[np.ix_(zl, lid)]  # separator -> lower-side point
        cross = self._cross_product(DU, DL, rows_l, pram)
        cross = self._apply_projection_specials(
            cross, rows_u, rows_l, chain, zs, t, DU, DL, sub_rects, pram
        )
        cur = out[np.ix_(sel_u, sel_l)]
        out[np.ix_(sel_u, sel_l)] = np.minimum(cur, cross)
        out[np.ix_(sel_l, sel_u)] = out[np.ix_(sel_u, sel_l)].T
        np.fill_diagonal(out, 0.0)
        return pts, out

    # ------------------------------------------------------------------
    def _cross_product(
        self,
        DU: np.ndarray,
        DL: np.ndarray,
        cols: list[Point],
        pram: PRAM,
    ) -> np.ndarray:
        """(min,+) product ``DU * DL`` with chain-grouped column dispatch.

        Columns with a common chain provenance are processed together in
        chain order: the block ``DL[Z × group]`` is then Monge whenever
        Lemma 2's side conditions hold (verified at runtime, O(|Z|·|g|)),
        so those groups take the SMAWK path of Lemma 3.  Ungrouped columns
        (obstacle vertices) fall back to the vectorised naive product —
        the quantified substitution of DESIGN.md §2.
        """
        if not self.monge_dispatch:
            return minplus_naive(DU, DL, pram)
        groups: dict[int, list[int]] = {}
        scattered: list[int] = []
        for j, p in enumerate(cols):
            tag = self._chain_tags.get(p)
            if tag is None:
                scattered.append(j)
            else:
                groups.setdefault(tag[0], []).append(j)
        out = np.full((DU.shape[0], DL.shape[1]), INF)

        def group_job(idxs: list[int]):
            def run(m: PRAM):
                # certify once via the flag; minplus_monge's own check
                # then reads the memoised verdict instead of re-paying
                # the O(|Z|·|g|) certification
                block = MongeFlag(DL[:, idxs])
                m.charge(time=1, work=block.array.size, width=block.array.size)
                if block.monge():
                    self.stats.monge_fast_blocks += 1
                    return idxs, minplus_monge(DU, block, m)
                return idxs, minplus_naive(DU, block.array, m)

            return run

        jobs = []
        for cid, idxs in groups.items():
            idxs.sort(key=lambda j: self._chain_tags[cols[j]][1])
            jobs.append(group_job(idxs))
        if scattered:
            jobs.append(
                lambda m: (scattered, minplus_naive(DU, DL[:, scattered], m))
            )
        # independent column groups multiply side by side on the PRAM
        for idxs, block_out in pram.parallel(jobs):
            out[:, idxs] = block_out
        return out

    # ------------------------------------------------------------------
    def _apply_projection_specials(
        self,
        cross: np.ndarray,
        rows_u: list[Point],
        rows_l: list[Point],
        chain: Staircase,
        zs: list[Point],
        t: np.ndarray,
        DU: np.ndarray,
        DL: np.ndarray,
        sub_rects: list[Rect],
        pram: PRAM,
    ) -> np.ndarray:
        """Per-pair candidates (c): each endpoint's own visible grid-line
        projections onto the separator (see module docstring)."""
        shooter = RayShooter(sub_rects)
        su = _projection_table(rows_u, chain, shooter, toward=-1, seams=self.seams)
        sl = _projection_table(rows_l, chain, shooter, toward=+1, seams=self.seams)
        pram.step(2 * (len(rows_u) + len(rows_l)))
        nz = len(zs)
        # (i) upper special -> neighbouring core z -> lower point
        for k in range(su.t.shape[1]):
            valid = np.isfinite(su.val[:, k])
            if not valid.any():
                continue
            pos = np.searchsorted(t, su.t[:, k])
            for nb in (np.clip(pos - 1, 0, nz - 1), np.clip(pos, 0, nz - 1)):
                base = su.val[:, k] + np.abs(su.t[:, k] - t[nb])
                cand = base[:, None] + DL[nb, :]
                cand[~valid, :] = INF
                np.minimum(cross, cand, out=cross)
        # (ii) upper point -> neighbouring core z -> lower special
        for k in range(sl.t.shape[1]):
            valid = np.isfinite(sl.val[:, k])
            if not valid.any():
                continue
            pos = np.searchsorted(t, sl.t[:, k])
            for nb in (np.clip(pos - 1, 0, nz - 1), np.clip(pos, 0, nz - 1)):
                base = sl.val[:, k] + np.abs(sl.t[:, k] - t[nb])
                cand = DU[:, nb] + base[None, :]
                cand[:, ~valid] = INF
                np.minimum(cross, cand, out=cross)
        # (iii) upper special -> lower special directly along the chain
        for k in range(su.t.shape[1]):
            for l in range(sl.t.shape[1]):
                cand = (
                    su.val[:, k][:, None]
                    + np.abs(su.t[:, k][:, None] - sl.t[:, l][None, :])
                    + sl.val[:, l][None, :]
                )
                np.minimum(cross, cand, out=cross)
        pram.charge(time=2, work=cross.size * 12, width=cross.size)
        return cross


@dataclass
class _Specials:
    t: np.ndarray  # (m, 2) arc positions (inf when absent)
    val: np.ndarray  # (m, 2) straight distances (inf when blocked/absent)


def _projection_table(
    points: list[Point],
    chain: Staircase,
    shooter: RayShooter,
    toward: int,
    seams: Sequence = (),
) -> _Specials:
    """For each point: its vertical and horizontal grid-line crossings with
    the separator, with straight L1 distance when the view is clear.

    ``toward=-1`` means the points are on the chain's +1 side and look
    toward it (down for the vertical projection of an upper point, etc.).
    A vertical view must additionally clear the polygon seams — it could
    run straight along one (horizontal views can only cross seams, which
    the rectangle shooter already blocks via the flanking tiles).
    """
    m = len(points)
    tarr = np.full((m, 2), 0.0)
    varr = np.full((m, 2), INF)
    inc = chain.increasing
    for i, p in enumerate(points):
        for k, crossings in enumerate(
            (chain.crossings_with_vline(p[0]), chain.crossings_with_hline(p[1]))
        ):
            if not crossings:
                continue
            # nearest crossing on the segment from p toward the chain
            z = min(crossings, key=lambda c: dist(p, c))
            tarr[i, k] = _arc_pos(z, inc)
            d = dist(p, z)
            if d == 0:
                varr[i, k] = 0.0
                continue
            if k == 0 and seams and seams_block_v_segment(
                seams, p[0], p[1], z[1]
            ):
                continue
            direction = _dir_toward(p, z)
            hit = shooter.shoot(p, direction)
            if hit is None or dist(p, hit.point) >= d:
                varr[i, k] = float(d)
    return _Specials(tarr, varr)


def _dir_toward(p: Point, z: Point) -> str:
    if p[0] == z[0]:
        return "N" if z[1] > p[1] else "S"
    return "E" if z[0] > p[0] else "W"


def build_vertex_index(
    rects: Sequence[Rect],
    extra_points: Sequence[Point] = (),
    pram: Optional[PRAM] = None,
    leaf_size: int = DEFAULT_LEAF_SIZE,
) -> DistanceIndex:
    """Convenience wrapper: the §6.3 all-pairs structure in one call."""
    return ParallelEngine(rects, extra_points, pram, leaf_size).build()
