"""A persistent multiprocessing worker pool for multicore builds.

The ``parallel-mp`` engine (:mod:`repro.core.mpengine`) dispatches
independent separator subtrees and (min,+) conquer blocks to worker
*processes* — real cores, where every other engine is one Python core.
This module owns the process plumbing so the engine stays algorithmic:

* **Persistent workers.**  Spawning a Python process costs tens of
  milliseconds; a build issues dozens of tasks.  The module-level pool
  (:func:`get_pool`) outlives individual builds and is reused until the
  requested job count changes or the process exits (``atexit`` shuts it
  down).  One build at a time drives it (:meth:`WorkerPool.exclusive`).
* **Shared-memory results.**  Large result matrices come back through
  POSIX shared memory using the same TOC layout the cluster publisher
  uses (:func:`repro.serve.shm.build_toc` — segments carry the ``rsp-``
  prefix, so the existing leak audits cover build segments too).  The
  parent pre-creates each segment (it knows the result shape), the
  worker writes into it, and only small metadata rides the result pipe.
  Results below :data:`SHM_MIN_BYTES` skip the segment and ride the
  pipe directly.
* **Crash containment.**  A worker dying mid-task (OOM killer, segfault,
  a deliberate test kill) must not hang the build: the result loop polls
  worker liveness, and a death with tasks outstanding tears the pool
  down — terminating survivors, unlinking every pending segment — and
  surfaces one :class:`~repro.errors.EngineError` line.  The next build
  gets a fresh pool.
* **Spawn-safe task resolution.**  Tasks name their handler as a dotted
  ``"module:function"`` string resolved inside the worker, so the pool
  works identically under ``fork`` and ``spawn`` start methods.

Observability: ``repro.build.pool.*`` counters (tasks by kind, task
wall-clock, bytes moved by transport, worker spawns/crashes) land in the
default metrics registry; see ``metrics.md``.
"""

from __future__ import annotations

import atexit
import importlib
import itertools
import multiprocessing as mp
import os
from multiprocessing import shared_memory
import queue as _queue
import threading
import time
import traceback
from typing import Dict, Iterator, Optional, Tuple

import numpy as np

from repro.errors import EngineError
from repro.obs.registry import default_registry
from repro.serve.shm import (
    _attach_untracked,
    _segment_name,
    build_toc,
    read_array_block,
    write_array_block,
)

__all__ = ["WorkerPool", "SHM_MIN_BYTES", "get_pool", "shutdown_pool", "default_jobs"]

#: result payloads at or above this many bytes travel via shared memory;
#: smaller ones are cheaper to pickle through the result pipe
SHM_MIN_BYTES = 64 * 1024

#: how often the result loop wakes to check worker liveness (seconds)
_POLL_S = 0.1

_task_ids = itertools.count(1)


def default_jobs() -> int:
    """Worker count when ``--jobs`` is not given: the visible cores,
    capped — build task DAGs rarely keep more than 8 workers busy."""
    try:
        n = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        n = os.cpu_count() or 1
    return max(1, min(n, 8))


def _resolve(fn_name: str):
    mod_name, _, attr = fn_name.partition(":")
    return getattr(importlib.import_module(mod_name), attr)


def _worker_main(task_q, result_q) -> None:
    """Worker process body: pull tasks until the ``None`` sentinel."""
    from repro import kernels

    while True:
        try:
            task = task_q.get()
        except (EOFError, OSError, KeyboardInterrupt):  # pragma: no cover
            break
        if task is None:
            break
        tid = task["id"]
        try:
            if task["kind"] == "__crash__":
                # test hook: die the way a segfault would — no cleanup,
                # no exception, just a vanished process
                os._exit(int(task.get("code", 3)))
            kernels.set_jit(bool(task.get("jit", False)))
            t0 = time.perf_counter()
            result, arrays = _resolve(task["fn"])(task["payload"])
            seg_spec = task.get("seg")
            if seg_spec is not None:
                seg_name, toc = seg_spec
                shm = _attach_untracked(seg_name)
                try:
                    write_array_block(shm.buf, toc, arrays)
                finally:
                    shm.close()
                arrays = None
            wall = time.perf_counter() - t0
            result_q.put(("ok", tid, wall, result, arrays))
        except BaseException as exc:  # noqa: BLE001 - must reach the parent
            detail = traceback.format_exc(limit=8)
            result_q.put(
                ("error", tid, 0.0, f"{type(exc).__name__}: {exc}", detail)
            )


class WorkerPool:
    """``jobs`` persistent worker processes fed through one task queue."""

    def __init__(self, jobs: int, start_method: Optional[str] = None) -> None:
        self.jobs = max(1, int(jobs))
        self._ctx = mp.get_context(start_method) if start_method else mp.get_context()
        self._tasks = self._ctx.SimpleQueue()
        self._results = self._ctx.Queue()
        self._lock = threading.RLock()
        self._segments: Dict[int, tuple] = {}  # task id -> (SharedMemory, toc)
        self._outstanding: set = set()  # task ids submitted, not yet returned
        self._kinds: Dict[int, str] = {}  # task id -> kind (for metrics)
        self._workers: list = []
        self.closed = False
        reg = default_registry()
        self._c_tasks = reg.counter(
            "repro.build.pool.tasks", "build tasks dispatched to pool workers",
            labels=["kind"],
        )
        self._c_wall = reg.counter(
            "repro.build.pool.task_seconds", "worker-side task wall clock",
            labels=["kind"],
        )
        self._c_bytes = reg.counter(
            "repro.build.pool.result_bytes", "result payload bytes by transport",
            labels=["transport"],
        )
        self._c_workers = reg.counter(
            "repro.build.pool.workers_spawned", "pool worker processes started"
        )
        self._c_crashes = reg.counter(
            "repro.build.pool.worker_crashes", "pool workers that died mid-build"
        )
        for _ in range(self.jobs):
            self._spawn()

    def _spawn(self) -> None:
        proc = self._ctx.Process(
            target=_worker_main,
            args=(self._tasks, self._results),
            daemon=True,
            name=f"repro-build-{len(self._workers)}",
        )
        proc.start()
        self._workers.append(proc)
        self._c_workers.inc()

    # -- build serialization -------------------------------------------
    def exclusive(self):
        """One build drives the pool at a time (reentrant for the owner)."""
        return self._lock

    # -- submission ------------------------------------------------------
    def submit(
        self,
        fn: str,
        payload: dict,
        arrays_spec: Optional[Dict[str, Tuple[tuple, str]]] = None,
        kind: str = "task",
        jit: bool = False,
    ) -> int:
        """Queue one task; returns its id.  ``fn`` is a ``"module:func"``
        handler returning ``(result_dict, arrays_dict)``.  ``arrays_spec``
        maps array names to ``(shape, dtype_str)`` the handler will
        produce; big ones are routed through a pre-created shm segment."""
        if self.closed:
            raise EngineError("build pool is closed")
        tid = next(_task_ids)
        seg_spec = None
        if arrays_spec:
            toc, size = build_toc(
                {name: _Shaped(shape, dt) for name, (shape, dt) in arrays_spec.items()}
            )
            if size >= SHM_MIN_BYTES:
                shm = shared_memory.SharedMemory(
                    create=True, size=max(size, 1), name=_segment_name()
                )
                self._segments[tid] = (shm, toc)
                seg_spec = (shm.name, toc)
        task = {
            "id": tid,
            "kind": kind,
            "fn": fn,
            "payload": payload,
            "seg": seg_spec,
            "jit": bool(jit),
        }
        self._outstanding.add(tid)
        self._kinds[tid] = kind
        try:
            self._tasks.put(task)
        except BaseException:
            self._outstanding.discard(tid)
            self._kinds.pop(tid, None)
            self._drop_segment(tid)
            raise
        self._c_tasks.inc(kind=kind)
        return tid

    # -- collection ------------------------------------------------------
    def next_result(self) -> Tuple[int, float, dict, Optional[dict]]:
        """Block until one outstanding task completes; returns
        ``(task_id, worker_wall_s, result, arrays)``.  Arrays that came
        via shm are copied out and the segment unlinked immediately.
        Raises :class:`EngineError` (after tearing the pool down) on a
        task exception or a worker death."""
        if not self._outstanding:
            raise EngineError("next_result() with no outstanding pool tasks")
        while True:
            try:
                msg = self._results.get(timeout=_POLL_S)
            except _queue.Empty:
                self._check_alive()
                continue
            status, tid, wall, body = msg[0], msg[1], msg[2], msg[3]
            if tid not in self._outstanding:
                # stale result from an abandoned build; drop its segment
                self._drop_segment(tid)
                continue
            self._outstanding.discard(tid)
            if status == "error":
                detail = msg[4]
                self.fail(f"build task failed in worker: {body}", detail=detail)
            arrays = msg[4]
            seg = self._segments.pop(tid, None)
            if seg is not None:
                shm, toc = seg
                try:
                    views = read_array_block(shm.buf, toc)
                    arrays = {name: np.array(v) for name, v in views.items()}
                    del views
                    self._c_bytes.inc(
                        sum(a.nbytes for a in arrays.values()), transport="shm"
                    )
                finally:
                    shm.close()
                    try:
                        shm.unlink()
                    except FileNotFoundError:  # pragma: no cover
                        pass
            elif arrays:
                self._c_bytes.inc(
                    sum(a.nbytes for a in arrays.values()), transport="pipe"
                )
            kind = self._kinds.pop(tid, "task")
            self._c_wall.inc(max(0.0, float(wall)), kind=kind)
            return tid, float(wall), body, arrays

    def abandon(self) -> None:
        """Forget all outstanding tasks (a build aborted mid-flight);
        late results are dropped and their segments unlinked on sight."""
        self._outstanding.clear()
        self._kinds.clear()
        for tid in list(self._segments):
            self._drop_segment(tid)

    def _check_alive(self) -> None:
        dead = [p for p in self._workers if not p.is_alive()]
        if not dead:
            return
        if not self._outstanding and self.closed:
            return
        self._c_crashes.inc(len(dead))
        codes = ", ".join(str(p.exitcode) for p in dead)
        self.fail(
            f"{len(dead)} build worker(s) died mid-build (exit code(s): "
            f"{codes}); pool torn down, partial results discarded"
        )

    def fail(self, message: str, detail: Optional[str] = None) -> None:
        """Tear the pool down and raise one EngineError line."""
        self.shutdown(force=True)
        raise EngineError(message)

    # -- lifecycle -------------------------------------------------------
    def _drop_segment(self, tid: int) -> None:
        seg = self._segments.pop(tid, None)
        if seg is None:
            return
        shm, _ = seg
        shm.close()
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    def shutdown(self, force: bool = False) -> None:
        """Stop all workers (gracefully unless ``force``), unlink every
        pending segment, close the queues.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        if not force:
            try:
                for _ in self._workers:
                    self._tasks.put(None)
            except BaseException:  # pragma: no cover - broken pipe
                force = True
        deadline = time.monotonic() + (0.0 if force else 5.0)
        for proc in self._workers:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for proc in self._workers:
            if proc.is_alive():
                proc.terminate()
        for proc in self._workers:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - terminate ignored
                proc.kill()
                proc.join(timeout=5.0)
        self._workers.clear()
        self._outstanding.clear()
        for tid in list(self._segments):
            self._drop_segment(tid)
        try:
            self._results.close()
            self._results.join_thread()
            self._tasks.close()
        except BaseException:  # pragma: no cover
            pass

    def __del__(self):  # pragma: no cover - GC timing
        try:
            self.shutdown(force=True)
        except BaseException:
            pass


class _Shaped:
    """Duck-typed stand-in with just the attributes build_toc reads."""

    def __init__(self, shape: tuple, dtype_str: str) -> None:
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype_str)
        self.nbytes = int(self.dtype.itemsize * int(np.prod(self.shape, dtype=np.int64)))


# ----------------------------------------------------------------------
# the module-level pool (one per process, resized on demand)

_POOL: Optional[WorkerPool] = None
_POOL_LOCK = threading.Lock()


def get_pool(jobs: int) -> WorkerPool:
    """The shared pool, (re)created when absent, closed, or sized
    differently than ``jobs``."""
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None and (_POOL.closed or _POOL.jobs != int(jobs)):
            _POOL.shutdown()
            _POOL = None
        if _POOL is None:
            _POOL = WorkerPool(jobs)
        return _POOL


def shutdown_pool() -> None:
    global _POOL
    with _POOL_LOCK:
        if _POOL is not None:
            _POOL.shutdown()
            _POOL = None


atexit.register(shutdown_pool)
