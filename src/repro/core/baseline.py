"""Ground-truth oracle and comparison baselines.

``GridOracle`` runs Dijkstra on the Hanan grid — trivially correct, exact
integer arithmetic, and the reference every engine in this repository is
validated against.  It also serves as the ``O(n² log n)``-ish *repeated
single-source* baseline of experiment E6 (the approach the paper's §1
credits to de Rezende–Lee–Wu [11] when applied once per source).
"""

from __future__ import annotations

from collections import OrderedDict
from heapq import heappop, heappush
from typing import Iterable, Optional, Sequence

import numpy as np

from repro import kernels
from repro.errors import QueryError
from repro.geometry.hanan import HananGraph, hanan_graph
from repro.geometry.primitives import Point, Rect

try:  # scipy is optional: the CSR heapq fallback below is exact too
    from scipy.sparse import csr_matrix as _scipy_csr
    from scipy.sparse.csgraph import dijkstra as _scipy_dijkstra

    _HAVE_SCIPY = True
except ImportError:  # pragma: no cover - exercised only without scipy
    _HAVE_SCIPY = False

INF = float("inf")

#: default bound on the per-oracle SSSP row cache (rows, not bytes); long
#: oracle-validation sweeps touch thousands of sources and must not hold
#: every distance field alive
DEFAULT_CACHE_CAP = 1024


def _csr_sssp(
    indptr: np.ndarray, indices: np.ndarray, weights: np.ndarray, n: int, src: int
) -> np.ndarray:
    """Single-source Dijkstra over CSR arrays (no scipy needed)."""
    dist = np.full(n, INF)
    dist[src] = 0.0
    heap: list[tuple[float, int]] = [(0.0, src)]
    while heap:
        d, u = heappop(heap)
        if d > dist[u]:
            continue
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            nd = d + weights[e]
            if nd < dist[v]:
                dist[v] = nd
                heappush(heap, (nd, v))
    return dist


class GridOracle:
    """Exact shortest-path-length oracle over a fixed scene.

    All query points must be supplied at construction time (they become
    grid lines).  Distances are exact integers; unreachable pairs get
    ``math.inf`` (possible only when obstacles fully enclose a point —
    legal scenes in this library never do, but the oracle stays total).
    """

    def __init__(
        self,
        rects: Sequence[Rect],
        points: Iterable[Point] = (),
        cache_cap: int = DEFAULT_CACHE_CAP,
        seams: Sequence = (),
        container=None,
    ) -> None:
        self.rects = list(rects)
        self.extra = list(points)
        self.seams = list(seams)
        self.container = container
        self.graph: HananGraph = hanan_graph(self.rects, self.extra, seams=self.seams)
        self.cache_cap = max(1, cache_cap)
        self._dist_cache: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._link_masks: Optional[tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    def _cache_put(self, src_id: int, dist: np.ndarray) -> None:
        cache = self._dist_cache
        cache[src_id] = dist
        cache.move_to_end(src_id)
        while len(cache) > self.cache_cap:
            cache.popitem(last=False)

    def _solve_rows(self, src_ids: Sequence[int]) -> dict[int, np.ndarray]:
        """Distance rows for the given sources, batch-solving all misses.

        Cached rows are reused; the misses are solved together — one
        multi-source ``scipy.sparse.csgraph.dijkstra`` over the grid's CSR
        arrays (or the CSR heapq fallback without scipy) — instead of one
        Python-level SSSP per source.
        """
        cache = self._dist_cache
        rows: dict[int, np.ndarray] = {}
        missing: list[int] = []
        for s in dict.fromkeys(src_ids):
            hit = cache.get(s)
            if hit is not None:
                cache.move_to_end(s)
                rows[s] = hit
            else:
                missing.append(s)
        if missing:
            indptr, indices, weights = self.graph.csr()
            n = self.graph.num_nodes
            if _HAVE_SCIPY:
                mat = _scipy_csr((weights, indices, indptr), shape=(n, n))
                block = np.atleast_2d(
                    _scipy_dijkstra(mat, directed=True, indices=missing)
                )
            else:
                block = np.vstack(
                    [_csr_sssp(indptr, indices, weights, n, s) for s in missing]
                )
            for i, s in enumerate(missing):
                # copy: caching a view of `block` would pin the whole
                # (missing × nodes) buffer alive past LRU eviction
                row = np.array(block[i])
                rows[s] = row
                self._cache_put(s, row)
        return rows

    def _sssp_block(self, src_ids: Sequence[int]) -> np.ndarray:
        if not src_ids:
            return np.empty((0, self.graph.num_nodes))
        rows = self._solve_rows(src_ids)
        return np.vstack([rows[s] for s in src_ids])

    def _sssp(self, src_id: int) -> np.ndarray:
        return self._solve_rows([src_id])[src_id]

    # ------------------------------------------------------------------
    def dist(self, p: Point, q: Point) -> float:
        """Exact rectilinear obstacle-avoiding distance between two of the
        registered points."""
        try:
            pid = self.graph.node_id(p)
            qid = self.graph.node_id(q)
        except Exception as exc:  # noqa: BLE001 - reraise with context
            raise QueryError(
                f"oracle can only answer registered points: {exc}"
            ) from exc
        d = self._sssp(pid)[qid]
        return int(d) if d != INF else INF

    def dist_matrix(
        self, points: Sequence[Point], targets: Optional[Sequence[Point]] = None
    ) -> np.ndarray:
        """Distance block ``points × targets`` (all-pairs when ``targets``
        is omitted), built with one batched multi-source Dijkstra."""
        ids = [self.graph.node_id(p) for p in points]
        tids = ids if targets is None else [self.graph.node_id(q) for q in targets]
        return self._sssp_block(ids)[:, tids]

    def path(self, p: Point, q: Point) -> list[Point]:
        """One shortest path as a corner polyline (greedy descent on the
        distance field)."""
        g = self.graph
        pid, qid = g.node_id(p), g.node_id(q)
        dq = self._sssp(qid)
        if dq[pid] == INF:
            raise QueryError(f"{p} and {q} are disconnected")
        nodes = [pid]
        cur = pid
        while cur != qid:
            for v, w in g.neighbors(cur):
                if dq[v] == dq[cur] - w:
                    cur = v
                    break
            else:  # pragma: no cover - would indicate a broken field
                raise QueryError("stuck while descending distance field")
            nodes.append(cur)
        pts = [g.node_point(nid) for nid in nodes]
        return _compress_collinear(pts)

    # -- min-link / bicriteria reference -------------------------------
    # The differential reference for repro.links: independent of the
    # layered DP, this walks (node, incoming-direction) states with
    # scalar Dijkstra / label-correcting loops.  `container` blocks every
    # grid edge with an endpoint outside P — rectilinear convexity makes
    # the endpoint test exact — because grazing outside P can save a
    # bend even though it never saves length.

    def _link_edge_masks(self) -> tuple[np.ndarray, np.ndarray]:
        if self._link_masks is None:
            bh, bv = self.graph.block_h, self.graph.block_v
            if self.container is not None:
                g = self.graph
                inside = np.empty((len(g.ys), len(g.xs)), dtype=bool)
                for yi, y in enumerate(g.ys):
                    for xi, x in enumerate(g.xs):
                        inside[yi, xi] = self.container.contains((x, y))
                bh = bh | ~inside[:, :-1] | ~inside[:, 1:]
                bv = bv | ~inside[:-1, :] | ~inside[1:, :]
            self._link_masks = (bh, bv)
        return self._link_masks

    def _link_neighbors(self, nid: int) -> Iterable[tuple[int, int, int]]:
        """(neighbor id, edge length, direction) triples; direction is
        0 = horizontal, 1 = vertical."""
        bh, bv = self._link_edge_masks()
        g = self.graph
        w = len(g.xs)
        xi, yi = nid % w, nid // w
        xs, ys = g.xs, g.ys
        if xi + 1 < w and not bh[yi, xi]:
            yield nid + 1, xs[xi + 1] - xs[xi], 0
        if xi > 0 and not bh[yi, xi - 1]:
            yield nid - 1, xs[xi] - xs[xi - 1], 0
        if yi + 1 < len(ys) and not bv[yi, xi]:
            yield nid + w, ys[yi + 1] - ys[yi], 1
        if yi > 0 and not bv[yi - 1, xi]:
            yield nid - w, ys[yi] - ys[yi - 1], 1

    def _link_node(self, p: Point) -> int:
        try:
            return self.graph.node_id(p)
        except Exception as exc:  # noqa: BLE001 - reraise with context
            raise QueryError(
                f"oracle can only answer registered points: {exc}"
            ) from exc

    def link_dist(self, p: Point, q: Point) -> tuple[float, float]:
        """``(links, length)`` of the lexicographically optimal path: the
        minimum number of maximal segments, and the minimum length among
        paths achieving it.  ``(inf, inf)`` when disconnected."""
        pid, qid = self._link_node(p), self._link_node(q)
        if pid == qid:
            return (0, 0)
        best: dict[tuple[int, int], tuple[float, float]] = {}
        heap: list[tuple[float, float, int, int]] = []
        for v, w, d in self._link_neighbors(pid):
            key = (1.0, float(w))
            if key < best.get((v, d), (INF, INF)):
                best[(v, d)] = key
                heappush(heap, (*key, v, d))
        while heap:
            segs, length, u, din = heappop(heap)
            if (segs, length) > best.get((u, din), (INF, INF)):
                continue
            for v, w, d in self._link_neighbors(u):
                key = (segs + (d != din), length + w)
                if key < best.get((v, d), (INF, INF)):
                    best[(v, d)] = key
                    heappush(heap, (*key, v, d))
        ans = min(
            best.get((qid, 0), (INF, INF)), best.get((qid, 1), (INF, INF))
        )
        return (int(ans[0]), int(ans[1])) if ans[0] != INF else (INF, INF)

    def link_pareto(self, p: Point, q: Point) -> list[tuple[float, float]]:
        """The full Pareto frontier of ``(length, links)`` pairs p → q,
        sorted by increasing links (strictly decreasing length), via
        label-correcting search over (node, direction) states."""
        pid, qid = self._link_node(p), self._link_node(q)
        if pid == qid:
            return [(0, 0)]
        from collections import deque

        labels: dict[tuple[int, int], list[tuple[float, float]]] = {}

        def insert(state: tuple[int, int], lab: tuple[float, float]) -> bool:
            cur = labels.setdefault(state, [])
            if any(s <= lab[0] and l <= lab[1] for s, l in cur):
                return False
            cur[:] = [c for c in cur if not (lab[0] <= c[0] and lab[1] <= c[1])]
            cur.append(lab)
            return True

        todo: "deque[tuple[tuple[int, int], tuple[float, float]]]" = deque()
        for v, w, d in self._link_neighbors(pid):
            lab = (1.0, float(w))
            if insert((v, d), lab):
                todo.append(((v, d), lab))
        while todo:
            (u, din), (segs, length) = todo.popleft()
            if (segs, length) not in labels.get((u, din), ()):
                continue  # dominated since enqueued
            for v, w, d in self._link_neighbors(u):
                lab = (segs + (d != din), length + w)
                if insert((v, d), lab):
                    todo.append(((v, d), lab))
        merged = list(labels.get((qid, 0), [])) + list(labels.get((qid, 1), []))
        frontier: list[tuple[float, float]] = []
        for segs, length in sorted(merged):
            if not frontier or length < frontier[-1][0]:
                frontier.append((int(length), int(segs)))
        return frontier


def _compress_collinear(pts: list[Point]) -> list[Point]:
    out = [pts[0]]
    for p in pts[1:]:
        if len(out) >= 2 and (
            (out[-2][0] == out[-1][0] == p[0]) or (out[-2][1] == out[-1][1] == p[1])
        ):
            out[-1] = p
        elif out[-1] != p:
            out.append(p)
    return out


def clear_l1_block(
    pts_a: Sequence[Point],
    pts_b: Sequence[Point],
    rects: Sequence[Rect],
    chunk: int = 1 << 22,
    seams: Sequence = (),
) -> np.ndarray:
    """``L1(a, b)`` where one of the two extreme L-paths a→b is clear of
    every obstacle interior, ``+∞`` otherwise — fully vectorized.

    The two candidate paths are horizontal-then-vertical and
    vertical-then-horizontal; a degenerate (zero-length) segment never
    blocks.  ``seams`` (interior edges of polygon decompositions) block a
    *vertical* leg that overlaps them collinearly — horizontal legs can
    only cross a seam, which the rectangle tests already catch.  Chunked
    over rows so the temporaries stay bounded.
    """
    a = np.asarray(pts_a, dtype=np.float64).reshape(-1, 2)
    b = np.asarray(pts_b, dtype=np.float64).reshape(-1, 2)
    na, nb = len(a), len(b)
    out = np.full((na, nb), INF)
    if na == 0 or nb == 0:
        return out
    if kernels.jit_active():
        # compiled backend (repro.kernels): one njit sweep with the same
        # strict/exact comparisons — results are bit-identical
        rect_arr = np.array(
            [(r.xlo, r.ylo, r.xhi, r.yhi) for r in rects], dtype=np.float64
        ).reshape(-1, 4)
        seam_arr = np.array(
            [(s.x, s.ylo, s.yhi) for s in seams], dtype=np.float64
        ).reshape(-1, 3)
        return kernels.clear_l1(a, b, rect_arr, seam_arr)
    step = max(1, chunk // max(1, nb))
    for lo in range(0, na, step):
        ax = a[lo : lo + step, 0][:, None]
        ay = a[lo : lo + step, 1][:, None]
        bx = b[None, :, 0]
        by = b[None, :, 1]
        xmin = np.minimum(ax, bx)
        xmax = np.maximum(ax, bx)
        ymin = np.minimum(ay, by)
        ymax = np.maximum(ay, by)
        hv_blocked = np.zeros(xmin.shape, dtype=bool)
        vh_blocked = np.zeros(xmin.shape, dtype=bool)
        for r in rects:
            x_span = (xmin < r.xhi) & (r.xlo < xmax)
            y_span = (ymin < r.yhi) & (r.ylo < ymax)
            hv_blocked |= ((r.ylo < ay) & (ay < r.yhi) & x_span) | (
                (r.xlo < bx) & (bx < r.xhi) & y_span
            )
            vh_blocked |= ((r.xlo < ax) & (ax < r.xhi) & y_span) | (
                (r.ylo < by) & (by < r.yhi) & x_span
            )
        for s in seams:
            y_overlap = (ymin < s.yhi) & (s.ylo < ymax)
            # hv: vertical leg at x = bx; vh: vertical leg at x = ax
            hv_blocked |= (bx == s.x) & y_overlap
            vh_blocked |= (ax == s.x) & y_overlap
        block = np.where(
            hv_blocked & vh_blocked, INF, (xmax - xmin) + (ymax - ymin)
        )
        out[lo : lo + step] = block
    return out


def corner_graph_matrix(
    rects: Sequence[Rect], points: Sequence[Point], seams: Sequence = ()
) -> np.ndarray:
    """Exact all-pairs rectilinear distances among ``points`` avoiding
    ``rects``, via the corner graph.

    A taut shortest path decomposes into monotone staircase legs between
    consecutive obstacle-corner contacts, and every clear monotone
    staircase can be pushed to an extreme L-path or split at a corner it
    then touches.  Hence ``d(p, q)`` is the minimum of the direct clear
    L-path and ``min_{u,v ∈ corners} clear(p,u) + D_C(u,v) + clear(v,q)``
    with ``D_C`` the corner-to-corner distances (solved exactly on the
    corner-only Hanan grid by the batched Dijkstra).  Everything is array
    code: two :func:`clear_l1_block` sweeps plus two small (min,+)
    products — the fast leaf brute-force of the parallel engine.
    """
    from repro.monge.multiply import minplus_naive
    from repro.pram.machine import PRAM

    pts = list(points)
    m = len(pts)
    if not rects and not seams:
        a = np.asarray(pts, dtype=np.float64).reshape(-1, 2)
        return np.abs(a[:, None, :] - a[None, :, :]).sum(axis=2)
    # seam endpoints join the corner set: a taut path around a seam bends
    # there, and foreign seams (other polygons' interiors, threaded in by
    # the parallel engine's leaves) contribute corners the local rectangle
    # set does not know about
    corners = list(
        dict.fromkeys(
            [v for r in rects for v in r.vertices]
            + [e for s in seams for e in s.endpoints]
        )
    )
    d_c = GridOracle(rects, corners, seams=seams).dist_matrix(corners)
    w = clear_l1_block(pts, corners, rects, seams=seams)
    scratch = PRAM("leaf-scratch")
    via = minplus_naive(minplus_naive(w, d_c, scratch), w.T, scratch)
    out = np.minimum(clear_l1_block(pts, pts, rects, seams=seams), via)
    np.minimum(out, out.T, out=out)
    if m:
        np.fill_diagonal(out, 0.0)
    return out


def repeated_single_source_matrix(
    rects: Sequence[Rect],
    points: Sequence[Point],
    oracle: Optional[GridOracle] = None,
    seams: Sequence = (),
) -> np.ndarray:
    """The E6 comparison baseline: one Dijkstra per source point.

    Deliberately runs one *per-source* SSSP loop — this is the repeated
    single-source algorithm of [11]/§1 that E6 measures against, not an
    implementation detail: use :meth:`GridOracle.dist_matrix` for the
    batched fast path.
    """
    oracle = oracle or GridOracle(rects, points, seams=seams)
    ids = [oracle.graph.node_id(p) for p in points]
    if not ids:
        return np.empty((0, 0))
    indptr, indices, weights = oracle.graph.csr()
    n = oracle.graph.num_nodes
    rows = [_csr_sssp(indptr, indices, weights, n, s) for s in ids]
    return np.vstack(rows)[:, ids]


def path_length(path: Sequence[Point]) -> int:
    """Length of a rectilinear polyline."""
    total = 0
    for a, b in zip(path, path[1:]):
        if a[0] != b[0] and a[1] != b[1]:
            raise QueryError(f"polyline not rectilinear at {a} -> {b}")
        total += abs(a[0] - b[0]) + abs(a[1] - b[1])
    return total


def path_is_clear(
    path: Sequence[Point], rects: Sequence[Rect], seams: Sequence = ()
) -> bool:
    """True when no polyline segment crosses an obstacle interior.

    With ``seams`` the test is exact for polygonal obstacles too: the
    rectangle interiors plus the open seam segments are precisely the
    polygons' interiors.
    """
    for a, b in zip(path, path[1:]):
        for r in rects:
            if a[1] == b[1]:
                if r.blocks_h_segment(a[1], a[0], b[0]):
                    return False
            else:
                if r.blocks_v_segment(a[0], a[1], b[1]):
                    return False
        if a[0] == b[0]:
            for s in seams:
                if s.blocks_v_segment(a[0], a[1], b[1]):
                    return False
    return True
