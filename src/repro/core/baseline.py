"""Ground-truth oracle and comparison baselines.

``GridOracle`` runs Dijkstra on the Hanan grid — trivially correct, exact
integer arithmetic, and the reference every engine in this repository is
validated against.  It also serves as the ``O(n² log n)``-ish *repeated
single-source* baseline of experiment E6 (the approach the paper's §1
credits to de Rezende–Lee–Wu [11] when applied once per source).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from repro.errors import QueryError
from repro.geometry.hanan import HananGraph, hanan_graph
from repro.geometry.primitives import Point, Rect

INF = float("inf")


class GridOracle:
    """Exact shortest-path-length oracle over a fixed scene.

    All query points must be supplied at construction time (they become
    grid lines).  Distances are exact integers; unreachable pairs get
    ``math.inf`` (possible only when obstacles fully enclose a point —
    legal scenes in this library never do, but the oracle stays total).
    """

    def __init__(self, rects: Sequence[Rect], points: Iterable[Point] = ()) -> None:
        self.rects = list(rects)
        self.extra = list(points)
        self.graph: HananGraph = hanan_graph(self.rects, self.extra)
        self._dist_cache: Dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def _sssp(self, src_id: int) -> np.ndarray:
        cached = self._dist_cache.get(src_id)
        if cached is not None:
            return cached
        g = self.graph
        dist = np.full(g.num_nodes, INF)
        dist[src_id] = 0
        heap: list[tuple[int, int]] = [(0, src_id)]
        while heap:
            d, u = heappop(heap)
            if d > dist[u]:
                continue
            for v, w in g.neighbors(u):
                nd = d + w
                if nd < dist[v]:
                    dist[v] = nd
                    heappush(heap, (nd, v))
        self._dist_cache[src_id] = dist
        return dist

    # ------------------------------------------------------------------
    def dist(self, p: Point, q: Point) -> float:
        """Exact rectilinear obstacle-avoiding distance between two of the
        registered points."""
        try:
            pid = self.graph.node_id(p)
            qid = self.graph.node_id(q)
        except Exception as exc:  # noqa: BLE001 - reraise with context
            raise QueryError(
                f"oracle can only answer registered points: {exc}"
            ) from exc
        d = self._sssp(pid)[qid]
        return int(d) if d != INF else INF

    def dist_matrix(self, points: Sequence[Point]) -> np.ndarray:
        """All-pairs distances among the given registered points."""
        ids = [self.graph.node_id(p) for p in points]
        out = np.full((len(points), len(points)), INF)
        for i, pid in enumerate(ids):
            d = self._sssp(pid)
            out[i, :] = d[ids]
        return out

    def path(self, p: Point, q: Point) -> list[Point]:
        """One shortest path as a corner polyline (greedy descent on the
        distance field)."""
        g = self.graph
        pid, qid = g.node_id(p), g.node_id(q)
        dq = self._sssp(qid)
        if dq[pid] == INF:
            raise QueryError(f"{p} and {q} are disconnected")
        nodes = [pid]
        cur = pid
        while cur != qid:
            for v, w in g.neighbors(cur):
                if dq[v] == dq[cur] - w:
                    cur = v
                    break
            else:  # pragma: no cover - would indicate a broken field
                raise QueryError("stuck while descending distance field")
            nodes.append(cur)
        pts = [g.node_point(nid) for nid in nodes]
        return _compress_collinear(pts)


def _compress_collinear(pts: list[Point]) -> list[Point]:
    out = [pts[0]]
    for p in pts[1:]:
        if len(out) >= 2 and (
            (out[-2][0] == out[-1][0] == p[0]) or (out[-2][1] == out[-1][1] == p[1])
        ):
            out[-1] = p
        elif out[-1] != p:
            out.append(p)
    return out


def repeated_single_source_matrix(
    rects: Sequence[Rect], points: Sequence[Point], oracle: Optional[GridOracle] = None
) -> np.ndarray:
    """The E6 comparison baseline: one Dijkstra per source point."""
    oracle = oracle or GridOracle(rects, points)
    return oracle.dist_matrix(points)


def path_length(path: Sequence[Point]) -> int:
    """Length of a rectilinear polyline."""
    total = 0
    for a, b in zip(path, path[1:]):
        if a[0] != b[0] and a[1] != b[1]:
            raise QueryError(f"polyline not rectilinear at {a} -> {b}")
        total += abs(a[0] - b[0]) + abs(a[1] - b[1])
    return total


def path_is_clear(path: Sequence[Point], rects: Sequence[Rect]) -> bool:
    """True when no polyline segment crosses an obstacle interior."""
    for a, b in zip(path, path[1:]):
        for r in rects:
            if a[1] == b[1]:
                if r.blocks_h_segment(a[1], a[0], b[0]):
                    return False
            else:
                if r.blocks_v_segment(a[0], a[1], b[1]):
                    return False
    return True
