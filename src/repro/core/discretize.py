"""The Discretization Lemma (§4, Lemma 7).

Given the matrix ``D_Q`` of all-pairs lengths among ``B(Q)`` and the gap
visibility information (the ``Horiz``/``Vert`` arrays), the length of a
shortest path between *any* two boundary points ``b₁, b₂`` follows in
``O(log |B(Q)|)``: find the neighbouring ``B(Q)`` points ``v, w`` of
``b₁`` and ``v′, w′`` of ``b₂``; if the two boundary gaps see each other
horizontally or vertically the answer is ``d(b₁, b₂)``; otherwise it is
the best of the four ``via-neighbour`` combinations — anything else would
contradict the definition of the neighbours (the paper's proof).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.allpairs import DistanceIndex
from repro.errors import QueryError
from repro.geometry.primitives import Point, Rect, dist
from repro.geometry.visibility import BoundarySet

INF = float("inf")


class DiscretizedBoundary:
    """Lemma 7 queries over a region boundary.

    ``index`` must contain every point of ``bset`` (build any engine with
    ``extra_points=bset.points``).
    """

    def __init__(self, bset: BoundarySet, index: DistanceIndex) -> None:
        self.bset = bset
        self.index = index
        missing = [p for p in bset.points if not index.has_point(p)]
        if missing:
            raise QueryError(f"index lacks {len(missing)} B(Q) points, e.g. {missing[0]}")

    # ------------------------------------------------------------------
    def length(self, b1: Point, b2: Point) -> float:
        """Shortest-path length between two boundary points of Q."""
        if self.bset.boundary_pos(b1) is None or self.bset.boundary_pos(b2) is None:
            raise QueryError("both query points must lie on Bound(Q)")
        if b1 == b2:
            return 0
        if self._sees(b1, b2):
            return dist(b1, b2)
        v, w = self.bset.neighbors(b1)
        v2, w2 = self.bset.neighbors(b2)
        best: float = INF
        for a in {v, w}:
            for b in {v2, w2}:
                cand = dist(b1, a) + self.index.length(a, b) + dist(b, b2)
                if cand < best:
                    best = cand
        return best

    # ------------------------------------------------------------------
    def _sees(self, b1: Point, b2: Point) -> bool:
        """The paper's ``vw ⊆ Horiz(v'w')`` / ``Vert`` test: do the two
        boundary gaps see each other through the interior?  When they do,
        a staircase runs through the corridor and the length is d(b1,b2).

        Gaps never span a corner (every vertex of Q is in B(Q)), so each
        gap is a sub-segment of one boundary edge; convexity keeps the
        connecting segment inside Q, leaving only obstacle blocking to
        check.
        """
        rects: Sequence[Rect] = self.bset.rects
        # direct axis-aligned clear view is always exact (d is a lower bound)
        if b1[1] == b2[1] and not any(
            r.blocks_h_segment(b1[1], b1[0], b2[0]) for r in rects
        ):
            return True
        if b1[0] == b2[0] and not any(
            r.blocks_v_segment(b1[0], b1[1], b2[1]) for r in rects
        ):
            return True
        v1, w1 = self.bset.neighbors(b1)
        v2, w2 = self.bset.neighbors(b2)
        # full horizontal gap-to-gap visibility between vertical gaps: the
        # whole corridor strip must be clear, then a monotone staircase
        # through it realises d(b1, b2)
        if _span_is_vertical(v1, w1, b1) and _span_is_vertical(v2, w2, b2):
            lo = max(min(v1[1], w1[1], b1[1]), min(v2[1], w2[1], b2[1]))
            hi = min(max(v1[1], w1[1], b1[1]), max(v2[1], w2[1], b2[1]))
            if lo <= hi and b1[0] != b2[0]:
                xa, xb = sorted((b1[0], b2[0]))
                if not any(
                    r.xlo < xb and xa < r.xhi and r.ylo < hi and lo < r.yhi
                    for r in rects
                ):
                    return True
        # full vertical gap-to-gap visibility between horizontal gaps
        if _span_is_horizontal(v1, w1, b1) and _span_is_horizontal(v2, w2, b2):
            lo = max(min(v1[0], w1[0], b1[0]), min(v2[0], w2[0], b2[0]))
            hi = min(max(v1[0], w1[0], b1[0]), max(v2[0], w2[0], b2[0]))
            if lo <= hi and b1[1] != b2[1]:
                ya, yb = sorted((b1[1], b2[1]))
                if not any(
                    r.ylo < yb and ya < r.yhi and r.xlo < hi and lo < r.xhi
                    for r in rects
                ):
                    return True
        return False


def _span_is_vertical(v: Point, w: Point, b: Point) -> bool:
    return v[0] == w[0] == b[0] or v == w


def _span_is_horizontal(v: Point, w: Point, b: Point) -> bool:
    return v[1] == w[1] == b[1] or v == w
