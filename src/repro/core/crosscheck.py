"""Cross-engine differential checking: the safety net behind polygon
obstacles (and every later change to the engines).

One scene is solved three independent ways —

* ``parallel``   — the §5/§6 divide-and-conquer on staircase separators,
* ``sequential`` — the §9 monotone-DAG sweeps (pure-rect scenes) or the
  [11]-style per-source Dijkstra (polygon scenes),
* ``baseline``   — batched multi-source Dijkstra on the seam-aware Hanan
  grid (:class:`~repro.core.baseline.GridOracle`),

and the three vertex matrices must agree entry-for-entry.  A sample of
reported polylines must additionally be *valid*: rectilinear, endpoint-
correct, clear of every obstacle interior (polygon interiors included,
via their decomposition rects + seams), inside the container, and exactly
as long as the reported length.

:func:`check_scene` returns a list of human-readable problems (empty =
agreement); :func:`shrink_scene` greedily drops obstacles while the check
still fails, so a 200-scene fuzz run hands back a minimal replayable JSON
counterexample instead of a haystack.  ``python -m repro fuzz`` and
``tests/test_fuzz_polygons.py`` both drive these entry points.
"""

from __future__ import annotations

import random
from typing import Callable, Optional, Sequence

import numpy as np

from repro.core.api import Obstacle, ShortestPathIndex, split_obstacles
from repro.core.baseline import GridOracle, path_is_clear, path_length
from repro.errors import ReproError
from repro.geometry.polygon import RectilinearPolygon

__all__ = [
    "check_links",
    "check_scene",
    "check_update",
    "shrink_scene",
    "validate_path",
]


def validate_path(
    idx: ShortestPathIndex,
    path: Sequence,
    p,
    q,
    expected_len: float,
    expected_bends: Optional[int] = None,
) -> list[str]:
    """Problems with one reported polyline (empty list = valid).

    Bend counting is structural: the polyline is normalized first
    (duplicate vertices dropped, collinear runs merged), so a path that
    pads itself with spurious vertices can neither hide a bend nor fake
    one.  ``expected_bends`` makes the count an assertion — the link
    query family's witnesses are validated with it.
    """
    from repro.links.solver import count_bends, normalize_polyline

    problems: list[str] = []
    if not path or path[0] != tuple(p) or path[-1] != tuple(q):
        problems.append(f"path endpoints {path[:1]}...{path[-1:]} != ({p}, {q})")
        return problems
    for a, b in zip(path, path[1:]):
        if a[0] != b[0] and a[1] != b[1]:
            problems.append(f"non-rectilinear path segment {a} -> {b}")
            return problems
    if not path_is_clear(path, idx.rects, seams=idx.seams):
        problems.append(f"path {p} -> {q} crosses an obstacle interior")
    container = getattr(idx, "container", None)
    if container is not None and any(not container.contains(pt) for pt in path):
        problems.append(f"path {p} -> {q} leaves the container")
    got = path_length(path)
    if got != expected_len:
        problems.append(
            f"path {p} -> {q} has length {got}, reported {expected_len}"
        )
    if expected_bends is not None:
        bends = count_bends(path)
        if bends != expected_bends:
            problems.append(
                f"path {p} -> {q} has {bends} bend(s) "
                f"(normalized {normalize_polyline(list(path))}), "
                f"reported {expected_bends}"
            )
    return problems


def _matrix_diff(name_a: str, ma, pts_a, name_b: str, mb, pts_b) -> list[str]:
    """Compare two vertex matrices over possibly differently-ordered points."""
    if set(pts_a) != set(pts_b):
        only_a = sorted(set(pts_a) - set(pts_b))[:3]
        only_b = sorted(set(pts_b) - set(pts_a))[:3]
        return [
            f"{name_a}/{name_b} vertex sets differ "
            f"({name_a} extra {only_a}, {name_b} extra {only_b})"
        ]
    order = [pts_b.index(p) for p in pts_a]
    mb2 = np.asarray(mb)[np.ix_(order, order)]
    ma = np.asarray(ma)
    both_inf = np.isinf(ma) & np.isinf(mb2)
    mismatch = ~both_inf & (ma != mb2)
    if not mismatch.any():
        return []
    i, j = map(int, np.argwhere(mismatch)[0])
    return [
        f"{name_a} vs {name_b}: d({pts_a[i]}, {pts_a[j]}) = "
        f"{ma[i, j]} vs {mb2[i, j]} ({int(mismatch.sum())} mismatching pairs)"
    ]


#: the engines every scene is cross-checked with by default; ``fuzz
#: --engine`` (and callers) may extend this with any registered engine.
#: ``parallel-mp`` rides along so the multicore dispatch is fuzzed
#: against the single-process engines on every scene — and, beyond the
#: value-equality below, it is held to *byte* identity with ``parallel``
DEFAULT_ENGINES = ("parallel", "sequential", "parallel-mp")


def check_scene(
    obstacles: Sequence[Obstacle],
    container: Optional[RectilinearPolygon] = None,
    extra_points: Sequence = (),
    n_paths: int = 6,
    n_arbitrary: int = 4,
    seed: int = 0,
    engines: Sequence[str] = DEFAULT_ENGINES,
) -> list[str]:
    """Differentially check one scene; returns problems (empty = agree).

    ``engines`` names the registered engines to build and compare (the
    first is the reference the baseline oracle and arbitrary-point
    queries are checked against).
    """
    rng = random.Random(f"xcheck|{seed}")
    engines = list(dict.fromkeys(engines)) or list(DEFAULT_ENGINES)
    idxs: dict[str, ShortestPathIndex] = {}
    try:
        for name in engines:
            idxs[name] = ShortestPathIndex.build(
                obstacles, extra_points=extra_points, engine=name,
                container=container,
            )
    except ReproError as exc:
        return [f"build failed: {exc}"]
    ref = engines[0]
    idx_ref = idxs[ref]
    pts = idx_ref.index.points
    problems = []
    if "parallel" in idxs and "parallel-mp" in idxs:
        # the pool engine promises more than value equality: the same
        # floats in the same order, bit for bit
        sp, mp = idxs["parallel"].index, idxs["parallel-mp"].index
        if list(sp.points) != list(mp.points):
            problems.append("parallel/parallel-mp point orders differ")
        elif sp.matrix.tobytes() != mp.matrix.tobytes():
            problems.append(
                "parallel and parallel-mp matrices are not byte-identical"
            )
    for name in engines[1:]:
        problems += _matrix_diff(
            ref, idx_ref.index.matrix, pts,
            name, idxs[name].index.matrix, idxs[name].index.points,
        )
    _, _, _, seams = split_obstacles(obstacles)
    if "grid" in engines:
        # the grid engine IS the baseline oracle computation; when it is
        # the reference its matrix simply *is* the baseline, and when it
        # is a comparison engine the diff above already checked ref
        # against it — either way, rerunning the full Hanan-grid
        # Dijkstra here would double the most expensive step of every
        # fuzz scene for zero extra coverage.  A vertex-set mismatch was
        # recorded by _matrix_diff above; report it rather than KeyError
        # on the reindex below
        if problems:
            return problems
        grid_idx = idxs["grid"].index
        order = [grid_idx.index[p] for p in pts]
        base = np.asarray(grid_idx.matrix)[np.ix_(order, order)]
    else:
        base = GridOracle(idx_ref.rects, pts, seams=seams).dist_matrix(pts)
        problems += _matrix_diff(
            ref, idx_ref.index.matrix, pts, "baseline", base, pts
        )
    if problems:
        return problems
    # sampled path reports must realise the agreed lengths exactly; only
    # queryable vertices qualify (container-pocket corners sit outside P)
    def queryable(p) -> bool:
        try:
            idx_ref._check_inside(p)
        except ReproError:
            return False
        return True

    qpts = [i for i in range(len(pts)) if queryable(pts[i])]
    finite_pairs = [
        (pts[i], pts[j])
        for i in qpts
        for j in qpts
        if i < j and np.isfinite(base[i, j])
    ]
    rng.shuffle(finite_pairs)
    for p, q in finite_pairs[:n_paths]:
        for name, idx in idxs.items():
            try:
                path = idx.shortest_path(p, q)
            except ReproError as exc:
                problems.append(f"{name} path {p} -> {q} failed: {exc}")
                continue
            problems += [
                f"{name}: {msg}"
                for msg in validate_path(idx, path, p, q, idx.length(p, q))
            ]
    # arbitrary-point queries against the oracle
    free = _free_points(idx_ref, n_arbitrary, rng)
    if free and qpts:
        arb_oracle = GridOracle(idx_ref.rects, list(pts) + free, seams=seams)
        for p in free:
            q = pts[qpts[rng.randrange(len(qpts))]]
            want = arb_oracle.dist(p, q)
            try:
                got = idx_ref.length(p, q)
            except ReproError as exc:
                problems.append(f"arbitrary length {p} -> {q} failed: {exc}")
                continue
            if got != want:
                problems.append(
                    f"arbitrary query d({p}, {q}) = {got}, oracle says {want}"
                )
    return problems


def check_links(
    obstacles: Sequence[Obstacle],
    container: Optional[RectilinearPolygon] = None,
    extra_points: Sequence = (),
    n_pairs: int = 5,
    n_arbitrary: int = 2,
    seed: int = 0,
    engines: Sequence[str] = DEFAULT_ENGINES,
) -> list[str]:
    """Differentially check the min-link / bicriteria query family.

    Every engine's answers (``min_links`` and the witness-free Pareto
    frontier) must byte-agree with each other and with the independent
    grid reference (:meth:`GridOracle.link_dist` / ``link_pareto``); the
    reference engine's witness paths must be valid polylines realising
    exactly the claimed (length, bends); frontiers must be non-dominated
    by construction (strictly increasing bends, strictly decreasing
    lengths) and end at the engines' agreed shortest-path length.
    Arbitrary (off-grid) endpoints are probed too.  Returns problems
    (empty = agreement).
    """
    rng = random.Random(f"linkcheck|{seed}")
    engines = list(dict.fromkeys(engines)) or list(DEFAULT_ENGINES)
    idxs: dict[str, ShortestPathIndex] = {}
    try:
        for name in engines:
            idxs[name] = ShortestPathIndex.build(
                obstacles, extra_points=extra_points, engine=name,
                container=container,
            )
    except ReproError as exc:
        return [f"build failed: {exc}"]
    idx_ref = idxs[engines[0]]
    pts = idx_ref.index.points

    def queryable(p) -> bool:
        try:
            idx_ref._check_inside(p)
        except ReproError:
            return False
        return True

    qpts = [p for p in pts if queryable(p)]
    if len(qpts) < 2:
        return []
    pairs = [tuple(rng.sample(qpts, 2)) for _ in range(n_pairs)]
    free = _free_points(idx_ref, n_arbitrary, rng)
    pairs += [(f, qpts[rng.randrange(len(qpts))]) for f in free]
    oracle = GridOracle(
        idx_ref.rects,
        list(pts) + free,
        seams=idx_ref.seams,
        container=container,
    )
    problems: list[str] = []
    for p, q in pairs:
        want_links, want_len = oracle.link_dist(p, q)
        want_frontier = [
            (length, max(k - 1, 0)) for length, k in oracle.link_pareto(p, q)
        ]
        for name, idx in idxs.items():
            try:
                got_links = idx.min_links(p, q)
                frontier = idx.bicriteria(p, q, with_paths=(name == engines[0]))
            except ReproError as exc:
                problems.append(f"{name}: link query {p} -> {q} failed: {exc}")
                continue
            if got_links != want_links:
                problems.append(
                    f"{name}: min_links({p}, {q}) = {got_links}, "
                    f"grid reference says {want_links}"
                )
            got_frontier = [(length, bends) for length, bends, _ in frontier]
            if got_frontier != want_frontier:
                problems.append(
                    f"{name}: pareto({p}, {q}) = {got_frontier}, "
                    f"grid reference says {want_frontier}"
                )
                continue
            head_links = 0 if p == q else frontier[0][1] + 1
            if frontier and got_links != head_links:
                problems.append(
                    f"{name}: min_links({p}, {q}) = {got_links} does not "
                    f"match the frontier head {frontier[0][:2]}"
                )
            # the frontier's length endpoint ties bends to the agreed
            # length metric
            if frontier and frontier[-1][0] != idx.length(p, q):
                problems.append(
                    f"{name}: pareto({p}, {q}) ends at length "
                    f"{frontier[-1][0]}, length() says {idx.length(p, q)}"
                )
            for i, (length, bends, path) in enumerate(frontier):
                if i and not (
                    bends > frontier[i - 1][1] and length < frontier[i - 1][0]
                ):
                    problems.append(
                        f"{name}: pareto({p}, {q}) point {i} "
                        f"{(length, bends)} is dominated by "
                        f"{frontier[i - 1][:2]}"
                    )
                if path is not None:
                    problems += [
                        f"{name}: pareto witness {i}: {msg}"
                        for msg in validate_path(
                            idx, path, p, q, length, expected_bends=bends
                        )
                    ]
        if problems:
            break  # one failing pair is enough to shrink on
    return problems


def _diff_repair(repaired, cold, n_paths: int, rng: random.Random, label: str) -> list[str]:
    """Problems where a repaired index is not byte-identical to a cold
    rebuild of the same scene (empty = identical points, matrix, paths)."""
    pa = repaired.index.points
    pb = cold.index.points
    if list(pa) != list(pb):
        return [f"{label}: repaired/cold root point order differs"]
    ma = np.asarray(repaired.index.matrix)
    mb = np.asarray(cold.index.matrix)
    if ma.tobytes() != mb.tobytes():
        mismatch = ~((np.isinf(ma) & np.isinf(mb)) | (ma == mb))
        if mismatch.any():
            i, j = map(int, np.argwhere(mismatch)[0])
            return [
                f"{label}: d({pa[i]}, {pa[j]}) repaired {ma[i, j]} != cold "
                f"{mb[i, j]} ({int(mismatch.sum())} mismatching pairs)"
            ]
        return [f"{label}: matrices equal but not byte-identical (dtype/layout)"]
    problems: list[str] = []

    def queryable(p) -> bool:
        try:
            repaired._check_inside(p)
        except ReproError:
            return False
        return True

    qpts = [i for i in range(len(pa)) if queryable(pa[i])]
    pairs = [
        (pa[i], pa[j])
        for i in qpts
        for j in qpts
        if i < j and np.isfinite(ma[i, j])
    ]
    rng.shuffle(pairs)
    for p, q in pairs[:n_paths]:
        try:
            path_r = repaired.shortest_path(p, q)
            path_c = cold.shortest_path(p, q)
        except ReproError as exc:
            problems.append(f"{label}: path {p} -> {q} failed: {exc}")
            continue
        if path_r != path_c:
            problems.append(
                f"{label}: path {p} -> {q} differs: repaired {path_r} "
                f"vs cold {path_c}"
            )
        problems += [
            f"{label}: {msg}"
            for msg in validate_path(repaired, path_r, p, q, repaired.length(p, q))
        ]
    return problems


def check_update(
    obstacles: Sequence[Obstacle],
    container: Optional[RectilinearPolygon] = None,
    n_edits: int = 3,
    n_paths: int = 4,
    seed: int = 0,
    engines: Sequence[str] = DEFAULT_ENGINES,
) -> list[str]:
    """Differentially check incremental repair on one scene.

    Seeds an incremental index, then random-walks ``n_edits`` obstacle
    deletes/re-inserts through :func:`repro.pipeline.update_index`.  After
    every edit the repaired index must be **byte-identical** to a cold
    rebuild of the same mutated scene — same root point order, same exact
    integer matrix bytes, same reported polylines — and every engine in
    ``engines`` must agree with it on the vertex matrix.  Returns problems
    (empty = agreement); the walk stops at the first failing edit.
    """
    from repro.pipeline import StageCache, build_index, update_index
    from repro.scene import Scene, SceneDelta

    rng = random.Random(f"upcheck|{seed}")
    try:
        scene = Scene.from_obstacles(obstacles, container=container)
    except ReproError as exc:
        return [f"scene construction failed: {exc}"]
    # roomy private cache: the default cache cannot hold every subtree
    # entry of even a mid-sized scene, and eviction would just turn reuse
    # checks into rebuild checks
    cache = StageCache(max_entries=8192, max_bytes=512 << 20)
    try:
        idx = build_index(scene, engine="parallel", cache=cache, incremental=True)
    except ReproError as exc:
        return [f"seed build failed: {exc}"]
    removed: list[Obstacle] = []
    for step in range(n_edits):
        cur = list(idx.scene.rects) + list(idx.scene.polygons)
        if removed and (len(cur) <= 1 or rng.random() < 0.5):
            ob = removed.pop(rng.randrange(len(removed)))
            delta = SceneDelta.insert(ob)
            label = f"edit {step} (insert back)"
        elif len(cur) > 1:
            ob = cur[rng.randrange(len(cur))]
            removed.append(ob)
            delta = SceneDelta.delete(ob)
            label = f"edit {step} (delete)"
        else:
            break
        try:
            idx = update_index(idx, delta, cache=cache)
        except ReproError as exc:
            return [f"{label}: update_index failed: {exc}"]
        try:
            cold = build_index(
                idx.scene, engine="parallel",
                cache=StageCache(max_entries=64, max_bytes=256 << 20),
            )
        except ReproError as exc:
            return [f"{label}: cold rebuild failed: {exc}"]
        problems = _diff_repair(idx, cold, n_paths, rng, label)
        for name in engines:
            if name == "parallel":
                continue
            try:
                other = build_index(
                    idx.scene, engine=name,
                    cache=StageCache(max_entries=64, max_bytes=256 << 20),
                )
            except ReproError as exc:
                problems.append(f"{label}: {name} build failed: {exc}")
                continue
            problems += [
                f"{label}: {msg}"
                for msg in _matrix_diff(
                    "repaired", idx.index.matrix, idx.index.points,
                    name, other.index.matrix, other.index.points,
                )
            ]
        if problems:
            return problems
    return []


def _free_points(idx: ShortestPathIndex, k: int, rng: random.Random) -> list:
    xlo = min(r.xlo for r in idx.rects) - 2
    ylo = min(r.ylo for r in idx.rects) - 2
    xhi = max(r.xhi for r in idx.rects) + 2
    yhi = max(r.yhi for r in idx.rects) + 2
    out: list = []
    for _ in range(40 * (k + 1)):
        if len(out) >= k:
            break
        p = (rng.randint(xlo, xhi), rng.randint(ylo, yhi))
        try:
            idx._check_inside(p)
        except ReproError:
            continue
        if p not in out:
            out.append(p)
    return out


def shrink_scene(
    obstacles: Sequence[Obstacle],
    container: Optional[RectilinearPolygon],
    fails: Callable[[Sequence[Obstacle], Optional[RectilinearPolygon]], bool],
    budget: int = 40,
) -> tuple[list[Obstacle], Optional[RectilinearPolygon]]:
    """Greedy delta-shrink: drop obstacles (then the container) while the
    scene keeps failing; ``budget`` caps the number of re-checks."""
    cur = list(obstacles)
    cur_container = container
    spent = 0
    changed = True
    while changed and spent < budget:
        changed = False
        for i in range(len(cur) - 1, -1, -1):
            if len(cur) <= 1 or spent >= budget:
                break
            cand = cur[:i] + cur[i + 1 :]
            spent += 1
            try:
                if fails(cand, cur_container):
                    cur = cand
                    changed = True
            except ReproError:
                continue
        if cur_container is not None and spent < budget:
            spent += 1
            try:
                if fails(cur, None):
                    cur_container = None
                    changed = True
            except ReproError:
                pass
    return cur, cur_container
