"""SMAWK: row minima of a totally monotone matrix in O(rows + cols) evals.

This is the classic Aggarwal–Klawe–Moran–Shor–Wilber algorithm the paper
reaches through [1, 3] (Lemma 3): multiplying Monge matrices in the
(min,+) semiring reduces to one row-minima problem per output row, each
solved with a linear number of entry evaluations.

The matrix is supplied as a callable ``f(row, col)``; entries may be
``+∞`` (Lemma 4 padding) — ties keep the leftmost column, which preserves
total monotonicity for Monge inputs.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

R = TypeVar("R")
C = TypeVar("C")


def smawk_row_minima(
    rows: Sequence[R],
    cols: Sequence[C],
    f: Callable[[R, C], float],
) -> dict[R, C]:
    """Argmin column of every row of a totally monotone matrix."""
    out: dict[R, C] = {}
    if rows and cols:
        _smawk(list(rows), list(cols), f, out)
    return out


def _smawk(rows: list[R], cols: list[C], f, out: dict[R, C]) -> None:
    if not rows:
        return
    # REDUCE: prune columns that cannot hold any row's minimum.
    stack: list[C] = []
    for c in cols:
        while stack:
            r = rows[len(stack) - 1]
            if f(r, stack[-1]) <= f(r, c):
                break
            stack.pop()
        if len(stack) < len(rows):
            stack.append(c)
    cols2 = stack
    # Recurse on the odd rows.
    _smawk(rows[1::2], cols2, f, out)
    # INTERPOLATE the even rows between their odd neighbours' argmins.
    index = {c: i for i, c in enumerate(cols2)}
    lo = 0
    for i in range(0, len(rows), 2):
        r = rows[i]
        hi = index[out[rows[i + 1]]] if i + 1 < len(rows) else len(cols2) - 1
        best = None
        bestc = cols2[lo]
        for j in range(lo, hi + 1):
            v = f(r, cols2[j])
            if best is None or v < best:
                best = v
                bestc = cols2[j]
        out[r] = bestc
        if i + 1 < len(rows):
            lo = index[out[rows[i + 1]]]


def brute_force_row_minima(
    rows: Sequence[R], cols: Sequence[C], f: Callable[[R, C], float]
) -> dict[R, C]:
    """O(rows × cols) reference used by the tests and the naive product."""
    out: dict[R, C] = {}
    for r in rows:
        best = None
        bestc = cols[0]
        for c in cols:
            v = f(r, c)
            if best is None or v < best:
                best = v
                bestc = c
        out[r] = bestc
    return out
