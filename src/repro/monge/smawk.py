"""SMAWK: row minima of a totally monotone matrix in O(rows + cols) evals.

This is the classic Aggarwal–Klawe–Moran–Shor–Wilber algorithm the paper
reaches through [1, 3] (Lemma 3): multiplying Monge matrices in the
(min,+) semiring reduces to one row-minima problem per output row, each
solved with a linear number of entry evaluations.

The matrix is supplied as a callable ``f(row, col)``; entries may be
``+∞`` (Lemma 4 padding) — ties keep the leftmost column, which preserves
total monotonicity for Monge inputs.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

import numpy as np

from repro import kernels

R = TypeVar("R")
C = TypeVar("C")


def smawk_row_minima(
    rows: Sequence[R],
    cols: Sequence[C],
    f: Callable[[R, C], float],
) -> dict[R, C]:
    """Argmin column of every row of a totally monotone matrix."""
    out: dict[R, C] = {}
    if rows and cols:
        _smawk(list(rows), list(cols), f, out)
    return out


def _smawk(rows: list[R], cols: list[C], f, out: dict[R, C]) -> None:
    if not rows:
        return
    # REDUCE: prune columns that cannot hold any row's minimum.
    stack: list[C] = []
    for c in cols:
        while stack:
            r = rows[len(stack) - 1]
            if f(r, stack[-1]) <= f(r, c):
                break
            stack.pop()
        if len(stack) < len(rows):
            stack.append(c)
    cols2 = stack
    # Recurse on the odd rows.
    _smawk(rows[1::2], cols2, f, out)
    # INTERPOLATE the even rows between their odd neighbours' argmins.
    index = {c: i for i, c in enumerate(cols2)}
    lo = 0
    for i in range(0, len(rows), 2):
        r = rows[i]
        hi = index[out[rows[i + 1]]] if i + 1 < len(rows) else len(cols2) - 1
        best = None
        bestc = cols2[lo]
        for j in range(lo, hi + 1):
            v = f(r, cols2[j])
            if best is None or v < best:
                best = v
                bestc = cols2[j]
        out[r] = bestc
        if i + 1 < len(rows):
            lo = index[out[rows[i + 1]]]


def smawk_row_minima_array(offsets: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Argmin over ``k`` of ``offsets[i, k] + b[k, j]`` for *every* ``(i, j)``.

    The array fast path behind :func:`repro.monge.multiply.minplus_monge`:
    one call solves all ``α`` output rows of a Monge product at once with
    NumPy index arithmetic — no per-entry Python callables.  ``b`` must be
    Monge (``+∞`` entries allowed); ties keep the leftmost ``k``, matching
    the callable SMAWK above.

    Every output row ``i`` is an independent totally monotone row-minima
    instance ``M_i[j, k] = offsets[i, k] + b[k, j]``, so the leftmost
    argmins are non-decreasing in ``j``.  We run the classic monotone
    divide-and-conquer over output columns, level by level, batched across
    all rows: each level gathers every (row, node) search segment into one
    flat value vector and reduces it with ``np.minimum.reduceat``.  Work is
    ``O(α(β + γ log γ))`` array-element touches — a ``log`` factor above
    SMAWK's eval count, repaid thousands of times over by leaving the
    Python interpreter out of the inner loop.

    Returns the ``(α, γ)`` int array of argmin inner indices.
    """
    offsets = np.ascontiguousarray(offsets, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    if offsets.ndim != 2 or b.ndim != 2:
        raise ValueError("offsets and b must be 2-D")
    al, inner = offsets.shape
    inner2, bc = b.shape
    if inner != inner2:
        raise ValueError(f"inner dimensions differ: {offsets.shape} vs {b.shape}")
    if inner == 0:
        raise ValueError("cannot take row minima over an empty inner dimension")
    argmin = np.zeros((al, bc), dtype=np.intp)
    if al == 0 or bc == 0:
        return argmin
    if kernels.jit_active():
        # compiled backend (repro.kernels): the same monotone conquer as
        # one njit loop, replicating leftmost-tie and ∞-row semantics
        # exactly — argmins (hence products) are bit-identical
        return kernels.smawk_argmin(offsets, b)
    # Level-order traversal of the balanced conquer over [0, bc).  A node
    # is (jlo, jhi) half-open with bounding columns lb/rb already solved
    # (-1 = no bound yet); monotonicity pins its mid column's search range
    # to the bounds induced by those columns.  Rows whose minimum is ``+∞``
    # (Lemma 4's padded columns) carry no monotonicity information, so they
    # pass their *own* search range through as the bound instead of their
    # arbitrary argmin — `bound_lo`/`bound_hi` hold that per-column answer.
    bound_lo = np.zeros((al, bc), dtype=np.intp)
    bound_hi = np.zeros((al, bc), dtype=np.intp)
    jlo = np.array([0], dtype=np.intp)
    jhi = np.array([bc], dtype=np.intp)
    lb = np.array([-1], dtype=np.intp)
    rb = np.array([-1], dtype=np.intp)
    while jlo.size:
        nn = jlo.size
        mids = (jlo + jhi) // 2
        klo = np.where(lb >= 0, bound_lo[:, np.maximum(lb, 0)], 0)
        khi = np.where(rb >= 0, bound_hi[:, np.maximum(rb, 0)], inner - 1)
        lengths = (khi - klo + 1).ravel()  # (al·nn,) all ≥ 1 by monotonicity
        starts = np.empty(lengths.size, dtype=np.intp)
        starts[0] = 0
        np.cumsum(lengths[:-1], out=starts[1:])
        seg = np.repeat(np.arange(al * nn, dtype=np.intp), lengths)
        k_idx = np.arange(lengths.sum(), dtype=np.intp)
        k_idx -= np.repeat(starts, lengths)
        k_idx += np.repeat(klo.ravel(), lengths)
        i_idx = seg // nn
        j_idx = mids[seg % nn]
        vals = offsets[i_idx, k_idx] + b[k_idx, j_idx]
        seg_min = np.minimum.reduceat(vals, starts)
        first = np.where(vals == np.repeat(seg_min, lengths), k_idx, inner)
        arg = np.minimum.reduceat(first, starts).reshape(al, nn)
        finite = np.isfinite(seg_min).reshape(al, nn)
        argmin[:, mids] = arg
        bound_lo[:, mids] = np.where(finite, arg, klo)
        bound_hi[:, mids] = np.where(finite, arg, khi)
        # children inherit the freshly solved mids as bounds
        lmask = mids > jlo
        rmask = mids + 1 < jhi
        jlo, jhi, lb, rb = (
            np.concatenate([jlo[lmask], mids[rmask] + 1]),
            np.concatenate([mids[lmask], jhi[rmask]]),
            np.concatenate([lb[lmask], mids[rmask]]),
            np.concatenate([mids[lmask], rb[rmask]]),
        )
    return argmin


def brute_force_row_minima(
    rows: Sequence[R], cols: Sequence[C], f: Callable[[R, C], float]
) -> dict[R, C]:
    """O(rows × cols) reference used by the tests and the naive product."""
    out: dict[R, C] = {}
    for r in rows:
        best = None
        bestc = cols[0]
        for c in cols:
            v = f(r, c)
            if best is None or v < best:
                best = v
                bestc = c
        out[r] = bestc
    return out
