"""(min,+) matrix products — Lemmas 3, 4, 5 of the paper.

Three strategies, all exact:

``minplus_naive``
    The brute-force CREW product: a vectorised triple loop.  Simulated
    cost: time ``O(log γ)`` (a min-reduction tree over the inner
    dimension), work ``O(αβγ)``.

``minplus_monge``
    The Lemma 3 product: when the *right* factor ``B`` (inner × cols) is
    Monge, each output row is a SMAWK row-minima instance — adding the
    per-row offsets ``A[i, ·]`` preserves Monge-ness in (inner, col) — for
    ``O(α(β+γ))`` work, i.e. the paper's ``O(αβ)`` under Lemma 4's size
    discipline.  Simulated time ``O(log γ)``.

``minplus_auto``
    Certify-then-dispatch, the engines' entry point (Lemma 5 in spirit):
    verify the Monge property of ``B`` (cost ``O(βγ)`` — cheaper than the
    product) and take the fast path; else try the transposed orientation
    (``A`` Monge); else fall back to the naive product.  Always correct,
    fast exactly when the paper's partitioning discipline made the block
    Monge.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import MongeError
from repro.monge.matrix import INF, MongeFlag, as_matrix, is_monge
from repro.monge.smawk import smawk_row_minima, smawk_row_minima_array
from repro.pram.machine import PRAM, ambient

# Cap the temporary broadcast tensor at ~32M float64 (256 MB) per chunk.
_CHUNK_BUDGET = 4_000_000


def _log2(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


def minplus_naive(a, b, pram: Optional[PRAM] = None) -> np.ndarray:
    """Brute-force (min,+) product, vectorised in chunks over the inner
    dimension."""
    pram = pram or ambient()
    a = as_matrix(a)
    b = as_matrix(b)
    al, inner = a.shape
    inner2, bc = b.shape
    if inner != inner2:
        raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
    pram.charge(time=_log2(max(inner, 1)) + 1, work=al * bc * max(inner, 1),
                width=al * bc)
    if inner == 0:
        return np.full((al, bc), INF)
    out = np.full((al, bc), INF)
    chunk = max(1, _CHUNK_BUDGET // max(1, al * bc))
    for k0 in range(0, inner, chunk):
        k1 = min(inner, k0 + chunk)
        block = a[:, k0:k1, None] + b[None, k0:k1, :]
        np.minimum(out, block.min(axis=1), out=out)
    return out


def minplus_monge(
    a,
    b,
    pram: Optional[PRAM] = None,
    check: bool = True,
    engine: str = "array",
) -> np.ndarray:
    """Lemma 3: (min,+) product with a Monge right factor via SMAWK.

    ``engine="array"`` (the default) solves all output rows in one batched
    :func:`smawk_row_minima_array` call; ``engine="callable"`` keeps the
    original per-row recursive SMAWK — the generic fallback and the
    differential-test reference for the array kernel.
    """
    pram = pram or ambient()
    flag = b if isinstance(b, MongeFlag) else None
    a = as_matrix(a)
    b = as_matrix(b)
    al, inner = a.shape
    inner2, bc = b.shape
    if inner != inner2:
        raise ValueError(f"inner dimensions differ: {a.shape} vs {b.shape}")
    if check and not is_monge(flag if flag is not None else b):
        raise MongeError("right factor is not Monge; use minplus_auto")
    if engine not in ("array", "callable"):
        raise ValueError(f"unknown SMAWK engine {engine!r}")
    pram.charge(time=_log2(max(bc, 1)) + _log2(max(inner, 1)),
                work=al * (inner + bc), width=al * max(inner, bc))
    if inner == 0 or bc == 0 or al == 0:
        return np.full((al, bc), INF)
    if engine == "array":
        arg = smawk_row_minima_array(a, b)
        rows = np.arange(al)[:, None]
        cols = np.arange(bc)[None, :]
        return a[rows, arg] + b[arg, cols]
    out = np.full((al, bc), INF)
    ks = list(range(inner))
    js = list(range(bc))
    for i in range(al):
        arow = a[i]
        if not np.isfinite(arow).any():
            continue

        def entry(j: int, k: int) -> float:
            return arow[k] + b[k, j]

        arg = smawk_row_minima(js, ks, entry)
        for j, k in arg.items():
            out[i, j] = arow[k] + b[k, j]
    return out


def minplus_auto(a, b, pram: Optional[PRAM] = None) -> np.ndarray:
    """Certify-and-dispatch product used by the conquer steps (Lemma 5).

    The Monge *check* is charged too (it is part of the honest cost); the
    engines' partitioning makes chain-indexed blocks Monge so the fast path
    dominates, while scattered blocks silently fall back.
    """
    pram = pram or ambient()
    # MongeFlag operands certify once and answer from the flag thereafter
    a_flag = a if isinstance(a, MongeFlag) else None
    b_flag = b if isinstance(b, MongeFlag) else None
    a = as_matrix(a)
    b = as_matrix(b)
    if min(a.shape + b.shape) == 0:
        return np.full((a.shape[0], b.shape[1]), INF)
    pram.charge(time=1, work=b.size, width=b.size)
    if is_monge(b_flag if b_flag is not None else b):
        return minplus_monge(a, b, pram, check=False)
    pram.charge(time=1, work=a.size, width=a.size)
    if is_monge(a_flag if a_flag is not None else a):
        # C = min_k A[i,k]+B[k,j]; transpose: Cᵀ[j,i] = min_k Bᵀ[j,k]+Aᵀ[k,i]
        return minplus_monge(b.T, a.T, pram, check=False).T
    return minplus_naive(a, b, pram)
