"""Monge matrices and (min,+) products — Lemmas 1–5 of the paper."""

from repro.monge.matrix import (
    INF,
    MongeFlag,
    as_matrix,
    is_monge,
    pad_matrix,
)
from repro.monge.smawk import smawk_row_minima, smawk_row_minima_array
from repro.monge.multiply import (
    minplus_naive,
    minplus_monge,
    minplus_auto,
)

__all__ = [
    "INF",
    "MongeFlag",
    "as_matrix",
    "is_monge",
    "pad_matrix",
    "smawk_row_minima",
    "smawk_row_minima_array",
    "minplus_naive",
    "minplus_monge",
    "minplus_auto",
]
