"""Matrix representation and the Monge predicate (§2).

Distance matrices are ``numpy float64`` arrays holding exact integers (all
distances in this library are < 2^53, where float64 is exact) with
``np.inf`` for "no path through here" — exactly the ``+∞`` padding of
Lemma 4.

A matrix ``M`` is Monge iff for all adjacent rows/columns
``M[i,j] + M[i+1,j+1] <= M[i,j+1] + M[i+1,j]``.  Lemma 1: path-length
matrices between two disjoint boundary portions of a convex region with a
clear boundary are Monge (given the right orderings); Fig. 4(b) shows the
orderings matter — hence :func:`is_monge` is used *at runtime* by the
conquer steps to certify a block before the SMAWK fast path is taken.
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

INF = float("inf")

MatrixLike = Union[np.ndarray, Sequence[Sequence[float]]]


def as_matrix(m: MatrixLike) -> np.ndarray:
    """Normalise to a 2-D float64 array."""
    a = np.asarray(m, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {a.shape}")
    return a


def is_monge(m: MatrixLike, strict_finite: bool = False) -> bool:
    """Check the Monge (quadrangle) inequality on every adjacent 2×2.

    ``+∞`` entries are allowed (Lemma 4's padding); ``∞ ≤ ∞`` counts as
    satisfied, matching the padded-matrix semantics of the paper.
    """
    a = as_matrix(m)
    if a.shape[0] < 2 or a.shape[1] < 2:
        return True
    if strict_finite and not np.isfinite(a).all():
        return False
    lhs = a[:-1, :-1] + a[1:, 1:]
    rhs = a[:-1, 1:] + a[1:, :-1]
    # both inf -> vacuously fine (inf <= inf is True in numpy)
    with np.errstate(invalid="ignore"):
        ok = lhs <= rhs
    both_inf = np.isinf(lhs) & np.isinf(rhs)
    return bool((ok | both_inf).all())


def pad_matrix(m: MatrixLike, rows: int, cols: int) -> np.ndarray:
    """Pad with ``+∞`` on the bottom/right to the requested shape (Lemma 4).

    Padding with ``+∞`` preserves the Monge property, which is exactly why
    the paper can equalise matrix dimensions before multiplying.
    """
    a = as_matrix(m)
    r, c = a.shape
    if rows < r or cols < c:
        raise ValueError("cannot pad to a smaller shape")
    out = np.full((rows, cols), INF)
    out[:r, :c] = a
    return out
