"""Matrix representation and the Monge predicate (§2).

Distance matrices are ``numpy float64`` arrays holding exact integers (all
distances in this library are < 2^53, where float64 is exact) with
``np.inf`` for "no path through here" — exactly the ``+∞`` padding of
Lemma 4.

A matrix ``M`` is Monge iff for all adjacent rows/columns
``M[i,j] + M[i+1,j+1] <= M[i,j+1] + M[i+1,j]``.  Lemma 1: path-length
matrices between two disjoint boundary portions of a convex region with a
clear boundary are Monge (given the right orderings); Fig. 4(b) shows the
orderings matter — hence :func:`is_monge` is used *at runtime* by the
conquer steps to certify a block before the SMAWK fast path is taken.
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

import numpy as np

INF = float("inf")

MatrixLike = Union[np.ndarray, Sequence[Sequence[float]], "MongeFlag"]


class MongeFlag:
    """An array bundled with its (memoised) Monge certification.

    The conquer engines re-multiply the same blocks; wrapping a block once
    makes every later :func:`is_monge` / ``minplus_auto`` call on it a
    cached O(1) flag read instead of an O(βγ) re-certification.  The
    wrapped array must not be mutated afterwards.
    """

    __slots__ = ("array", "_monge")

    def __init__(self, array: MatrixLike, monge: Optional[bool] = None) -> None:
        self.array = (
            array.array if isinstance(array, MongeFlag) else as_matrix(array)
        )
        self._monge = monge

    @property
    def shape(self) -> tuple[int, ...]:
        return self.array.shape

    @property
    def T(self) -> np.ndarray:
        return self.array.T

    def monge(self) -> bool:
        """Certify once, answer from the flag ever after."""
        if self._monge is None:
            self._monge = is_monge(self.array)
        return self._monge


def as_matrix(m: MatrixLike) -> np.ndarray:
    """Normalise to a 2-D float64 array (unwrapping :class:`MongeFlag`)."""
    if isinstance(m, MongeFlag):
        return m.array
    a = np.asarray(m, dtype=np.float64)
    if a.ndim != 2:
        raise ValueError(f"matrix must be 2-D, got shape {a.shape}")
    return a


def is_monge(m: MatrixLike, strict_finite: bool = False) -> bool:
    """Check the Monge (quadrangle) inequality on every adjacent 2×2.

    ``+∞`` entries are allowed as whole rows/columns (vacuously Monge)
    and in Lemma 4's padding shape: after dropping all-∞ rows and
    columns, the remaining ∞ set must be closed under moving down and
    right (bottom rows / right columns / their staircase union).
    Scattered ∞ entries make the adjacent-2×2 check unsound — ``∞ ≤ ∞``
    windows certify nothing about non-adjacent quadruples — so such
    matrices are rejected rather than mis-certified.  With the closure
    requirement, adjacent Monge provably implies the full quadrangle
    inequality in extended arithmetic: any ∞ region corner inside a
    finite-cornered rectangle shows up as an adjacent window with three
    finite entries, which the check fails; reinserting all-∞ rows and
    columns preserves the inequality (either side containing them is ∞).
    """
    if isinstance(m, MongeFlag) and not strict_finite:
        return m.monge()
    a = as_matrix(m)
    if a.shape[0] < 2 or a.shape[1] < 2:
        return True
    inf_mask = np.isinf(a)
    if inf_mask.any():
        if strict_finite:
            return False
        # all-∞ rows/columns are vacuous: certify the reduced matrix
        keep_r = ~inf_mask.all(axis=1)
        keep_c = ~inf_mask.all(axis=0)
        a = a[np.ix_(keep_r, keep_c)]
        if a.shape[0] < 2 or a.shape[1] < 2:
            return True
        inf_mask = inf_mask[np.ix_(keep_r, keep_c)]
        down_right_closed = (
            not (inf_mask[:-1, :] & ~inf_mask[1:, :]).any()
            and not (inf_mask[:, :-1] & ~inf_mask[:, 1:]).any()
        )
        if not down_right_closed:
            return False
    lhs = a[:-1, :-1] + a[1:, 1:]
    rhs = a[:-1, 1:] + a[1:, :-1]
    # both inf -> vacuously fine (inf <= inf is True in numpy)
    with np.errstate(invalid="ignore"):
        ok = lhs <= rhs
    both_inf = np.isinf(lhs) & np.isinf(rhs)
    return bool((ok | both_inf).all())


def pad_matrix(m: MatrixLike, rows: int, cols: int) -> np.ndarray:
    """Pad with ``+∞`` on the bottom/right to the requested shape (Lemma 4).

    Padding with ``+∞`` preserves the Monge property, which is exactly why
    the paper can equalise matrix dimensions before multiplying.
    """
    a = as_matrix(m)
    r, c = a.shape
    if rows < r or cols < c:
        raise ValueError("cannot pad to a smaller shape")
    out = np.full((rows, cols), INF)
    out[:r, :c] = a
    return out
