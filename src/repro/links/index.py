"""`LinkDistanceIndex` — minimum-link and bicriteria queries for a scene.

Sits next to :class:`repro.core.allpairs.DistanceIndex` in the facade:
the same obstacle set and registered point set, but answering the
(length, bends) query family instead of lengths alone.  All answers come
from the layered DP of :mod:`repro.links.solver`, which is exact on the
Hanan grid; the independent grid-Dijkstra reference lives in
:meth:`repro.core.baseline.GridOracle.link_dist` / ``link_pareto`` and
the differential fuzz suite keeps the two byte-identical.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Optional, Sequence

import numpy as np

from repro.errors import QueryError
from repro.geometry.hanan import hanan_graph
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Point, Rect
from repro.links.solver import INF, LinkSolver, SourceSolve

#: bound on cached per-source solves (converged layers only, no history)
DEFAULT_SOLVE_CACHE = 64


class LinkDistanceIndex:
    """Min-link / bicriteria oracle over a fixed scene and point set.

    All query points must be grid points (registered points or obstacle
    vertices); the facade routes arbitrary endpoints through
    :meth:`extended`, which rebuilds the grid with the extra coordinate
    lines — the Hanan normalization argument makes that metric-preserving.

    ``links`` counts maximal straight segments (0 iff the endpoints
    coincide); ``bends = max(links - 1, 0)``.
    """

    def __init__(
        self,
        rects: Sequence[Rect],
        points: Sequence[Point] = (),
        seams: Sequence = (),
        container: Optional[RectilinearPolygon] = None,
        link_matrix: Optional[np.ndarray] = None,
    ) -> None:
        self.rects = list(rects)
        self.points = list(points)
        self.seams = list(seams)
        self.container = container
        self.graph = hanan_graph(self.rects, self.points, seams=self.seams)
        self.solver = LinkSolver(self.graph, container=container)
        self._pos = {p: i for i, p in enumerate(self.points)}
        if link_matrix is not None:
            link_matrix = np.asarray(link_matrix)
            if link_matrix.shape != (len(self.points), len(self.points)):
                raise QueryError(
                    f"link matrix shape {link_matrix.shape} does not match "
                    f"{len(self.points)} registered points"
                )
        self._link_matrix = link_matrix
        self._solves: "OrderedDict[int, SourceSolve]" = OrderedDict()

    # ------------------------------------------------------------------
    def extended(self, extra_points: Sequence[Point]) -> "LinkDistanceIndex":
        """A fresh index whose grid also carries ``extra_points`` — the
        arbitrary-endpoint path (precomputed artifacts don't transfer)."""
        return LinkDistanceIndex(
            self.rects,
            list(dict.fromkeys(list(self.points) + list(extra_points))),
            seams=self.seams,
            container=self.container,
        )

    def has_point(self, p: Point) -> bool:
        try:
            self.graph.node_id(p)
        except Exception:  # noqa: BLE001 - off-grid
            return False
        return True

    # ------------------------------------------------------------------
    def _solve_cached(self, src_id: int, targets: Sequence[int]) -> SourceSolve:
        """Per-source solve with an LRU of converged runs.

        Cached solves keep only their target series and final layer, so a
        hit must still cover the requested targets; misses re-solve with
        the union (repeat sources in mixed batches stay one DP run)."""
        hit = self._solves.get(src_id)
        if hit is not None and all(t in hit.series for t in targets):
            self._solves.move_to_end(src_id)
            return hit
        merged = list(targets)
        if hit is not None:
            merged.extend(hit.series)
        sv = self.solver.solve(src_id, targets=merged)
        self._solves[src_id] = sv
        self._solves.move_to_end(src_id)
        while len(self._solves) > DEFAULT_SOLVE_CACHE:
            self._solves.popitem(last=False)
        return sv

    def _ids(self, p: Point, q: Point) -> tuple[int, int]:
        try:
            return self.graph.node_id(p), self.graph.node_id(q)
        except Exception as exc:  # noqa: BLE001 - reraise with context
            raise QueryError(
                f"link queries need grid points (register endpoints or use "
                f"extended()): {exc}"
            ) from exc

    # ------------------------------------------------------------------
    def min_links(self, p: Point, q: Point) -> float:
        """Minimum number of maximal segments of any path p → q (0 iff
        ``p == q``, ``inf`` when disconnected)."""
        if p == q:
            return 0
        i, j = self._pos.get(p), self._pos.get(q)
        if self._link_matrix is not None and i is not None and j is not None:
            v = int(self._link_matrix[i, j])
            return v if v >= 0 else INF
        pid, qid = self._ids(p, q)
        return self._solve_cached(pid, [qid]).min_links(qid)

    def link_counts(self, pairs: Sequence[tuple[Point, Point]]) -> list[float]:
        """Batched :meth:`min_links`: pairs sharing an endpoint share one
        DP run (the metric is symmetric, so each pair is oriented to put
        its globally more frequent endpoint at the source)."""
        out: list[float] = [0] * len(pairs)
        freq = Counter(pt for pair in pairs for pt in pair)
        groups: dict[int, list[tuple[int, int]]] = {}
        for k, (p, q) in enumerate(pairs):
            if p == q:
                continue
            i, j = self._pos.get(p), self._pos.get(q)
            if self._link_matrix is not None and i is not None and j is not None:
                v = int(self._link_matrix[i, j])
                out[k] = v if v >= 0 else INF
                continue
            src, tgt = (p, q) if freq[p] >= freq[q] else (q, p)
            sid, tid = self._ids(src, tgt)
            groups.setdefault(sid, []).append((k, tid))
        for sid, items in groups.items():
            sv = self._solve_cached(sid, [tid for _, tid in items])
            for k, tid in items:
                out[k] = sv.min_links(tid)
        return out

    # ------------------------------------------------------------------
    def bicriteria(
        self, p: Point, q: Point, with_paths: bool = True
    ) -> list[tuple[float, int, Optional[list[Point]]]]:
        """The Pareto frontier of ``(length, bends)`` pairs p → q, sorted
        by increasing bends / decreasing length, with one witness path
        per point (``with_paths=False`` skips witness backtracking and
        returns ``None`` paths)."""
        if p == q:
            return [(0, 0, [p] if with_paths else None)]
        pid, qid = self._ids(p, q)
        if with_paths:
            sv = self.solver.solve(pid, targets=[qid], keep_layers=True)
        else:
            sv = self._solve_cached(pid, [qid])
        out: list[tuple[float, int, Optional[list[Point]]]] = []
        for k, length in sv.series[qid]:
            path = self.solver.witness(sv, qid, k) if with_paths else None
            out.append((length, max(k - 1, 0), path))
        return out

    def paretos(
        self, pairs: Sequence[tuple[Point, Point]]
    ) -> list[list[tuple[float, int]]]:
        """Batched witness-free frontiers, one ``[(length, bends), ...]``
        list per pair, grouped by shared endpoints like
        :meth:`link_counts`."""
        out: list[list[tuple[float, int]]] = [[] for _ in pairs]
        freq = Counter(pt for pair in pairs for pt in pair)
        groups: dict[int, list[tuple[int, int]]] = {}
        for k, (p, q) in enumerate(pairs):
            if p == q:
                out[k] = [(0, 0)]
                continue
            src, tgt = (p, q) if freq[p] >= freq[q] else (q, p)
            sid, tid = self._ids(src, tgt)
            groups.setdefault(sid, []).append((k, tid))
        for sid, items in groups.items():
            sv = self._solve_cached(sid, [tid for _, tid in items])
            for k, tid in items:
                out[k] = [
                    (length, max(j - 1, 0)) for j, length in sv.series[tid]
                ]
        return out

    def min_link_path(self, p: Point, q: Point) -> list[Point]:
        """A witness path with the minimum link count (and the minimum
        length among those)."""
        frontier = self.bicriteria(p, q, with_paths=True)
        if not frontier:
            raise QueryError(f"{p} and {q} are disconnected")
        length, bends, path = frontier[0]
        assert path is not None
        return path

    # ------------------------------------------------------------------
    def link_matrix(self) -> np.ndarray:
        """All-pairs min-link counts among the registered points (one DP
        run per source; ``-1`` marks disconnected pairs).  This is the
        array a ``--links`` snapshot persists."""
        if self._link_matrix is not None:
            return self._link_matrix
        n = len(self.points)
        ids = [self.graph.node_id(p) for p in self.points]
        mat = np.full((n, n), -1, dtype=np.int32)
        for i, sid in enumerate(ids):
            sv = self.solver.solve(sid, track_all_links=True)
            assert sv.links_row is not None
            mat[i] = sv.links_row[ids]
        self._link_matrix = mat
        return mat
