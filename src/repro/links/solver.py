"""Layered min-plus solver for minimum-link and bicriteria queries.

The classic Hanan-grid normalization extends from lengths to bends: take
any obstacle-avoiding rectilinear path and slide each maximal segment,
one at a time, onto the nearest grid line induced by obstacle vertices
and the two endpoints.  Sliding a segment between its neighbors never
crosses an obstacle interior it did not cross before, never increases
the L1 length, and never changes the number of maximal segments — so for
every target there is a path that is simultaneously optimal in (length,
bends) *and* lives on the grid.  The grid is therefore an exact model of
the whole Pareto frontier, not just of the length metric.

On the grid the frontier falls out of a layered dynamic program.  Let

    ``A_k[v]`` = min length of a grid path source → ``v``
                 with at most ``k`` maximal segments.

``A_0`` is ``0`` at the source and ``+inf`` elsewhere, and

    ``A_k = min(H(A_{k-1}), V(A_{k-1}))``

where ``H``/``V`` extend every entry by one (possibly empty) horizontal/
vertical straight run.  Each sweep is two directional scans per grid
line, vectorized across the perpendicular axis, so a layer costs
``O(grid)`` array work.  The per-target frontier is the strictly
decreasing subsequence of ``A_k[target]``; the first finite layer is the
link distance; global stabilization (``A_k == A_{k-1}``) means every
later layer is identical, so iteration stops there with the frontier
complete.

Only *empty* sweeps let ``A_k`` mention paths with fewer than ``k``
maximal segments, so a value strictly below ``A_{k-1}[t]`` is witnessed
by a path with exactly ``k`` maximal segments — backtracking through the
stored layers reproduces it segment by segment.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import QueryError
from repro.geometry.hanan import HananGraph
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Point

INF = float("inf")


def container_blocked_masks(
    graph: HananGraph, container: Optional[RectilinearPolygon]
) -> tuple[np.ndarray, np.ndarray]:
    """Blocked-edge masks for *link* metrics: the graph's obstacle masks
    plus every grid edge that leaves the container.

    The length engines model a container via pocket rectangles, which
    leaves zero-width corridors along pocket-pocket shared edges strictly
    outside ``P``.  Grazing them never shortens a path (``P`` is
    rectilinear convex) but it *can* save a bend, so the link metric must
    block them explicitly.  ``P``'s rectilinear convexity makes the test
    exact and cheap: an axis-parallel grid edge lies inside ``P`` iff
    both endpoints do.
    """
    bh = graph.block_h
    bv = graph.block_v
    if container is None:
        return bh, bv
    inside = np.empty((len(graph.ys), len(graph.xs)), dtype=bool)
    for yi, y in enumerate(graph.ys):
        for xi, x in enumerate(graph.xs):
            inside[yi, xi] = container.contains((x, y))
    bh = bh | ~inside[:, :-1] | ~inside[:, 1:]
    bv = bv | ~inside[:-1, :] | ~inside[1:, :]
    return bh, bv


class SourceSolve:
    """The converged layered DP for one source.

    ``series[t]`` — the target's Pareto series as ``[(k, length), ...]``
    with ``k`` strictly increasing and ``length`` strictly decreasing
    (empty when the target is unreachable).  ``layers[k]`` — the full
    ``A_k`` grid (kept only when witnesses were requested; otherwise the
    list holds just the converged layer).
    """

    __slots__ = ("src_id", "series", "layers", "links_row")

    def __init__(
        self,
        src_id: int,
        series: dict[int, list[tuple[int, float]]],
        layers: list[np.ndarray],
        links_row: Optional[np.ndarray] = None,
    ) -> None:
        self.src_id = src_id
        self.series = series
        self.layers = layers
        self.links_row = links_row

    def min_links(self, t_id: int) -> float:
        s = self.series.get(t_id)
        if not s:
            return INF
        return s[0][0]


class LinkSolver:
    """Min-link / bicriteria solver over one scene's Hanan grid."""

    def __init__(
        self, graph: HananGraph, container: Optional[RectilinearPolygon] = None
    ) -> None:
        self.graph = graph
        self.nx = len(graph.xs)
        self.ny = len(graph.ys)
        self.dx = np.diff(np.asarray(graph.xs, dtype=np.float64))
        self.dy = np.diff(np.asarray(graph.ys, dtype=np.float64))
        self.block_h, self.block_v = container_blocked_masks(graph, container)

    # -- one straight-run extension per axis ---------------------------
    def _hsweep(self, a: np.ndarray) -> np.ndarray:
        """Extend every entry by one horizontal straight run (length ≥ 0).

        Forward and backward scans share one output array; a chained
        right-then-left relaxation corresponds to a horizontal
        out-and-back walk, which is always dominated by its straight
        prefix/suffix, so sharing never creates values below the true
        straight-run minimum.
        """
        out = a.copy()
        bh, dx = self.block_h, self.dx
        for xi in range(1, self.nx):
            step = np.where(bh[:, xi - 1], INF, out[:, xi - 1] + dx[xi - 1])
            np.minimum(out[:, xi], step, out=out[:, xi])
        for xi in range(self.nx - 2, -1, -1):
            step = np.where(bh[:, xi], INF, out[:, xi + 1] + dx[xi])
            np.minimum(out[:, xi], step, out=out[:, xi])
        return out

    def _vsweep(self, a: np.ndarray) -> np.ndarray:
        out = a.copy()
        bv, dy = self.block_v, self.dy
        for yi in range(1, self.ny):
            step = np.where(bv[yi - 1], INF, out[yi - 1] + dy[yi - 1])
            np.minimum(out[yi], step, out=out[yi])
        for yi in range(self.ny - 2, -1, -1):
            step = np.where(bv[yi], INF, out[yi + 1] + dy[yi])
            np.minimum(out[yi], step, out=out[yi])
        return out

    # ------------------------------------------------------------------
    def solve(
        self,
        src_id: int,
        targets: Sequence[int] = (),
        keep_layers: bool = False,
        track_all_links: bool = False,
    ) -> SourceSolve:
        """Run the layered DP from one source to global stabilization."""
        n = self.nx * self.ny
        a = np.full((self.ny, self.nx), INF)
        a.flat[src_id] = 0.0  # node id yi*nx+xi == C-order flat index
        targets = list(dict.fromkeys(targets))
        series: dict[int, list[tuple[int, float]]] = {t: [] for t in targets}
        if src_id in series:
            series[src_id].append((0, 0.0))
        links_row = None
        if track_all_links:
            links_row = np.full(n, -1, dtype=np.int32)
            links_row[src_id] = 0
        layers = [a]
        k = 0
        # each layer strictly improves at least one node until the fixed
        # point, so n+1 layers would already mean a broken sweep
        while k <= n + 1:
            k += 1
            new = np.minimum(self._hsweep(a), self._vsweep(a))
            if np.array_equal(new, a):
                break
            flat = new.ravel()
            for t in targets:
                prior = series[t][-1][1] if series[t] else INF
                if flat[t] < prior:
                    series[t].append((k, float(flat[t])))
            if links_row is not None:
                np.copyto(
                    links_row, k, where=(links_row < 0) & np.isfinite(flat)
                )
            if keep_layers:
                layers.append(new)
            else:
                layers = [new]
            a = new
        else:  # pragma: no cover - contradicts the strict-improvement bound
            raise QueryError("link DP failed to stabilize")
        return SourceSolve(src_id, series, layers, links_row)

    # ------------------------------------------------------------------
    def witness(self, solve: SourceSolve, t_id: int, k: int) -> list[Point]:
        """A path source → target of length ``A_k[target]`` with at most
        ``k`` maximal segments, backtracked through the stored layers.

        For ``(k, A_k[t])`` on the target's Pareto series the segment
        count is *exactly* ``k``: a witness with fewer maximal segments
        would put its length into an earlier layer, contradicting the
        series' strict decrease.
        """
        if len(solve.layers) < 2 and k > 0:
            raise QueryError("witness backtracking needs keep_layers=True")
        layers = solve.layers
        j = min(k, len(layers) - 1)
        cur = t_id
        if not np.isfinite(layers[j].flat[cur]):
            raise QueryError("unreachable target has no witness path")
        nodes = [cur]
        while cur != solve.src_id:
            if j == 0:  # pragma: no cover - src row of A_0 is 0 only at src
                raise QueryError("witness backtracking ran out of layers")
            val = layers[j].flat[cur]
            if layers[j - 1].flat[cur] == val:
                j -= 1
                continue
            cur = self._find_pred(layers[j - 1].ravel(), cur, val)
            nodes.append(cur)
            j -= 1
        pts = [self.graph.node_point(nid) for nid in reversed(nodes)]
        return normalize_polyline(pts)

    def _find_pred(self, prev: np.ndarray, nid: int, val: float) -> int:
        """A node one straight open run away with ``prev + run == val``."""
        nx = self.nx
        yi, xi = divmod(nid, nx)
        row = yi * nx
        acc = 0.0
        for x2 in range(xi - 1, -1, -1):  # leftward run
            if self.block_h[yi, x2]:
                break
            acc += self.dx[x2]
            if prev[row + x2] + acc == val:
                return row + x2
        acc = 0.0
        for x2 in range(xi + 1, nx):  # rightward run
            if self.block_h[yi, x2 - 1]:
                break
            acc += self.dx[x2 - 1]
            if prev[row + x2] + acc == val:
                return row + x2
        acc = 0.0
        for y2 in range(yi - 1, -1, -1):  # downward run
            if self.block_v[y2, xi]:
                break
            acc += self.dy[y2]
            if prev[y2 * nx + xi] + acc == val:
                return y2 * nx + xi
        acc = 0.0
        for y2 in range(yi + 1, self.ny):  # upward run
            if self.block_v[y2 - 1, xi]:
                break
            acc += self.dy[y2 - 1]
            if prev[y2 * nx + xi] + acc == val:
                return y2 * nx + xi
        raise QueryError(  # pragma: no cover - contradicts the DP recurrence
            "no straight-run predecessor while backtracking a link witness"
        )


def normalize_polyline(pts: Sequence[Point]) -> list[Point]:
    """Drop repeated points and merge collinear runs — the canonical form
    whose interior vertex count is exactly the bend count."""
    out: list[Point] = []
    for p in pts:
        if out and out[-1] == p:
            continue
        if len(out) >= 2 and (
            (out[-2][0] == out[-1][0] == p[0])
            or (out[-2][1] == out[-1][1] == p[1])
        ):
            out[-1] = p
        else:
            out.append(p)
    return out


def count_bends(path: Sequence[Point]) -> int:
    """Exact bend count of a rectilinear polyline (normalized first, so
    collinear or duplicate vertices don't inflate the answer)."""
    norm = normalize_polyline(list(path))
    return max(len(norm) - 2, 0)


def count_links(path: Sequence[Point]) -> int:
    """Number of maximal straight segments (0 for a single point)."""
    norm = normalize_polyline(list(path))
    return max(len(norm) - 1, 0)
