"""Minimum-link and bicriteria (length, bends) query subsystem.

The Hanan grid is exact for bends as well as lengths (segment-sliding
normalization — see :mod:`repro.links.solver`), so a layered min-plus DP
over the existing grid masks answers ``min_links``, the full Pareto
frontier of ``(length, bends)`` pairs, and batched gathers of both.
:class:`LinkDistanceIndex` is the serving-side entry point; the
independent differential reference is
:meth:`repro.core.baseline.GridOracle.link_dist` / ``link_pareto``.
"""

from repro.links.index import LinkDistanceIndex
from repro.links.solver import (
    LinkSolver,
    container_blocked_masks,
    count_bends,
    count_links,
    normalize_polyline,
)

__all__ = [
    "LinkDistanceIndex",
    "LinkSolver",
    "container_blocked_masks",
    "count_bends",
    "count_links",
    "normalize_polyline",
]
