"""``repro.pipeline`` — the staged build pipeline behind every index.

The paper's algorithm is naturally staged, and so is this build::

    scene ──▶ decompose ──▶ graph ──▶ solve[engine] ──▶ query-structures

* **decompose** — expand polygon obstacles into disjoint maximal
  rectangle tiles + interior seams, validate disjointness, check the
  container and append its pocket rectangles.  Engine-independent.
* **graph** — assemble the tracked point universe (every obstacle/tile
  vertex plus the registered extra points) and reject extras inside an
  obstacle.  Engine-independent.
* **solve** — the all-pairs length matrix over those points, by whichever
  engine the :func:`register_engine` registry resolves: the §5/§6
  parallel divide-and-conquer, the §9 sequential DAG sweeps, or the
  grid-Dijkstra baseline (and any third-party engine registered on top).
* **query-structures** — wrap the matrix into a queryable
  :class:`~repro.core.api.ShortestPathIndex` (the §6.4 arbitrary-point
  structure and §8 path reporter stay lazy, exactly as before).

Every stage is timed (wall clock + simulated PRAM cost delta) and the
per-build report travels with the index as ``idx.provenance`` — snapshot
headers persist it, ``python -m repro plan`` prints it.

**Artifact cache.**  Stage outputs are content-addressed by the scene's
hash (:meth:`repro.scene.Scene.content_hash`): the geometry stages are
keyed by geometry alone, the solve stage additionally by engine and leaf
size.  Rebuilding the same scene under a second engine therefore reuses
the cached decompose/graph artifacts, and rebuilding under the same
engine returns the solved matrix without re-running anything.  The
process-global :func:`default_cache` is bounded (LRU over entries and
bytes); pass ``cache=StageCache(max_entries=0)`` to disable caching for
a build, or a private :class:`StageCache` to isolate one.

**Engine registry.**  Registering an engine makes it first-class
everywhere at once — ``ShortestPathIndex.build(engine=...)``, every CLI
``--engine`` flag, the fuzz harness, ``SceneStore``, and cluster
workers::

    from repro.pipeline import register_engine

    @register_engine("mine", description="my exact solver")
    def _solve_mine(dec, graph, pram, leaf_size):
        ...                       # dec.all_rects, dec.seams, graph.points
        return DistanceIndex(points, matrix)

Unknown names fail with one line listing what *is* registered.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.core.allpairs import DEFAULT_LEAF_SIZE, DistanceIndex
from repro.errors import EngineError, GeometryError, QueryError
from repro.geometry.polygon import RectilinearPolygon, pockets_to_rects
from repro.geometry.primitives import Point, Rect, validate_disjoint
from repro.obs.registry import default_registry
from repro.obs.tracing import SpanBuffer, finish, new_trace_id, span
from repro.pram.machine import PRAM
from repro.scene import Scene, SceneDelta

__all__ = [
    "BUILD_SPANS",
    "STAGES",
    "DecomposeArtifact",
    "GraphArtifact",
    "SolveArtifact",
    "StageCache",
    "EngineSpec",
    "register_engine",
    "unregister_engine",
    "get_engine",
    "engine_names",
    "build_index",
    "update_index",
    "default_cache",
]

#: the stage graph, in execution order
STAGES = ("decompose", "graph", "solve", "query-structures")

#: recent per-stage build spans (one trace per build_index call), the
#: build-side analogue of the cluster front-end's request span buffer —
#: ``python -m repro trace --demo`` and ``plan --profile`` read it
BUILD_SPANS = SpanBuffer(512)

#: per-build options that cannot ride the fixed engine signature
#: ``solve(dec, graph, pram, leaf_size)``: worker count for ``parallel-mp``,
#: the jit flag, this build's trace id, and the pool stats the engine
#: reports back for provenance.  Thread-local so concurrent builds with
#: different settings (a QueryServer thread vs. a repair thread) don't
#: bleed into each other.
_BUILD_OPTS = threading.local()


def current_build_trace() -> str:
    """The trace id of the build running on this thread (one is minted
    per ``build_index`` call); per-subtree spans join it so ``plan
    --profile`` can show them under the same build."""
    tid = getattr(_BUILD_OPTS, "trace", None)
    if tid is None:
        tid = new_trace_id()
        _BUILD_OPTS.trace = tid
    return tid


# ----------------------------------------------------------------------
# stage artifacts
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DecomposeArtifact:
    """Output of the ``decompose`` stage (engine-independent geometry)."""

    plain: tuple  # plain Rect obstacles, input order
    polygons: tuple  # RectilinearPolygon obstacles, input order
    all_rects: tuple  # engine rects: tiles in place + container pockets
    seams: tuple  # interior seams of the polygon decompositions
    container: Optional[RectilinearPolygon]

    def nbytes(self) -> int:
        return 64 * (len(self.all_rects) + len(self.seams)) + 256


@dataclass(frozen=True)
class GraphArtifact:
    """Output of the ``graph`` stage: the tracked point universe."""

    points: tuple  # obstacle/tile/pocket vertices + extras, deduped
    extras: tuple = ()  # the registered extra points, verbatim (a point
    # coinciding with a tile vertex is still listed here — engines take
    # extras as given, exactly as the pre-pipeline build did)

    def nbytes(self) -> int:
        return 32 * (len(self.points) + len(self.extras)) + 128


@dataclass(frozen=True)
class SolveArtifact:
    """Output of one engine's ``solve`` stage, plus its simulated cost
    (replayed onto the caller's PRAM on a cache hit, so ``build_stats``
    reports the same numbers whether the matrix was computed or reused)."""

    points: tuple
    matrix: np.ndarray
    pram_time: int
    pram_work: int
    pram_width: int

    def nbytes(self) -> int:
        return int(self.matrix.nbytes) + 32 * len(self.points)


# ----------------------------------------------------------------------
# the stage cache
# ----------------------------------------------------------------------
class StageCache:
    """Thread-safe content-addressed LRU cache of stage artifacts.

    Keys are tuples whose first element is the stage name; values carry a
    ``nbytes()`` estimate used for the byte bound.  ``max_entries=0``
    disables the cache (every ``get`` misses, ``put`` is a no-op).
    """

    def __init__(self, max_entries: int = 32, max_bytes: int = 256 << 20) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._data: "OrderedDict[tuple, object]" = OrderedDict()
        self._nbytes: dict[tuple, int] = {}
        self._lock = threading.Lock()
        self.hits: dict[str, int] = {}
        self.misses: dict[str, int] = {}

    def get(self, key: tuple):
        stage = key[0]
        with self._lock:
            val = self._data.get(key)
            if val is None:
                self.misses[stage] = self.misses.get(stage, 0) + 1
                return None
            self._data.move_to_end(key)
            self.hits[stage] = self.hits.get(stage, 0) + 1
            return val

    def put(self, key: tuple, value, nbytes: int = 0) -> None:
        if self.max_entries <= 0:
            return
        nbytes = int(nbytes)
        if nbytes > self.max_bytes:
            # an artifact that alone exceeds the budget is simply not
            # cached — evicting everything else to fail anyway would
            # flush every other scene's artifacts for nothing
            return
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            self._nbytes[key] = nbytes
            total = sum(self._nbytes.values())
            # the just-inserted entry is MRU and fits the byte budget by
            # itself, so it is never the one popped here
            while len(self._data) > 1 and (
                len(self._data) > self.max_entries or total > self.max_bytes
            ):
                old, _ = self._data.popitem(last=False)
                total -= self._nbytes.pop(old, 0)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self._nbytes.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._data),
                "bytes": sum(self._nbytes.values()),
                "hits": dict(self.hits),
                "misses": dict(self.misses),
            }


#: the process-default cache is deliberately small on bytes: geometry
#: artifacts are tiny, and a solve matrix bigger than the budget is
#: simply not cached (see :meth:`StageCache.put`), so the default cache
#: can extend matrix lifetimes by at most this bound — it must not
#: silently dwarf a ``SceneStore(max_bytes=...)`` residency budget
_DEFAULT_CACHE = StageCache(max_entries=64, max_bytes=32 << 20)


def default_cache() -> StageCache:
    """The process-global stage cache (shared by ``ShortestPathIndex.build``,
    ``SceneStore``, and shm publishing, so one scene's geometry is
    decomposed once per process no matter how many engines solve it).
    Bounded to 64 entries / 32 MB; give a ``SceneStore`` its own
    :class:`StageCache` (or a disabled one) to control the budget."""
    return _DEFAULT_CACHE


# ----------------------------------------------------------------------
# the engine registry
# ----------------------------------------------------------------------
#: an engine's solve hook: ``(decompose artifact, graph artifact,
#: PRAM, leaf_size) -> DistanceIndex``
SolveFn = Callable[[DecomposeArtifact, GraphArtifact, PRAM, int], DistanceIndex]


@dataclass(frozen=True)
class EngineSpec:
    name: str
    solve: SolveFn
    description: str = ""
    #: registration generation — part of the solve cache key, so
    #: re-registering a name (unregister + register, or replace=True)
    #: can never be served a previous implementation's cached matrix
    gen: int = 0


_ENGINES: dict[str, EngineSpec] = {}
_REG_LOCK = threading.Lock()
_REG_GEN = 0


def register_engine(
    name: str, *, description: str = "", replace: bool = False
) -> Callable[[SolveFn], SolveFn]:
    """Decorator: register ``fn`` as the solve stage of engine ``name``."""

    def deco(fn: SolveFn) -> SolveFn:
        global _REG_GEN
        with _REG_LOCK:
            if name in _ENGINES and not replace:
                raise EngineError(f"engine {name!r} is already registered")
            _REG_GEN += 1
            _ENGINES[name] = EngineSpec(name, fn, description, gen=_REG_GEN)
        return fn

    return deco


def unregister_engine(name: str) -> None:
    with _REG_LOCK:
        if name not in _ENGINES:
            raise EngineError(_unknown_engine_msg(name))
        del _ENGINES[name]


def get_engine(name: str) -> EngineSpec:
    """The registered engine, or a one-line error naming what exists."""
    spec = _ENGINES.get(name)
    if spec is None:
        raise EngineError(_unknown_engine_msg(name))
    return spec


def engine_names() -> list[str]:
    return sorted(_ENGINES)


def _unknown_engine_msg(name) -> str:
    known = ", ".join(sorted(_ENGINES)) or "<none>"
    return f"unknown engine {name!r} (registered: {known})"


# ----------------------------------------------------------------------
# stages
# ----------------------------------------------------------------------
def _decompose(scene: Scene) -> DecomposeArtifact:
    from repro.core.api import _obstacle_rect_groups, split_obstacles

    plain, polygons, all_rects, seams = split_obstacles(scene.obstacles)
    validate_disjoint(all_rects)
    container = scene.container
    if container is not None:
        # deliberately NOT Scene.validate's GeometryError: the build API
        # has always raised QueryError naming the whole obstacle here
        # (validate names the offending decomposition rect instead, the
        # more useful message at the file-validation door)
        for obs, rs in zip(scene.obstacles, _obstacle_rect_groups(scene.obstacles)):
            for r in rs:
                if not container.contains_rect(r):
                    raise QueryError(f"obstacle {obs} is not inside the container")
        all_rects = all_rects + pockets_to_rects(container)
    return DecomposeArtifact(
        tuple(plain), tuple(polygons), tuple(all_rects), tuple(seams), container
    )


def _graph(scene: Scene, dec: DecomposeArtifact) -> GraphArtifact:
    pts: dict[Point, None] = {}
    for r in dec.all_rects:
        for v in r.vertices:
            pts.setdefault(v, None)
    for p in scene.extra_points:
        # the paper engines repeat this exact check in their constructors
        # (they are public API, constructible without the pipeline); this
        # copy is the gate for engines without one, e.g. "grid"
        if any(r.contains_interior(p) for r in dec.all_rects) or any(
            s.contains_open(p) for s in dec.seams
        ):
            raise GeometryError(f"extra point {p} is inside an obstacle")
        pts.setdefault(p, None)
    return GraphArtifact(tuple(pts), tuple(scene.extra_points))


@register_engine(
    "parallel",
    description="§5/§6 divide-and-conquer on staircase separators (simulated PRAM)",
)
def _solve_parallel(
    dec: DecomposeArtifact, graph: GraphArtifact, pram: PRAM, leaf_size: int
) -> DistanceIndex:
    from repro.core.allpairs import ParallelEngine

    return ParallelEngine(
        dec.all_rects,
        list(graph.extras),
        pram,
        leaf_size=leaf_size,
        validate=False,
        seams=dec.seams,
    ).build()


@register_engine(
    "parallel-mp",
    description="the §5/§6 divide-and-conquer with separator subtrees and "
    "(min,+) conquers dispatched across a real multiprocessing worker pool "
    "(byte-identical to 'parallel')",
)
def _solve_parallel_mp(
    dec: DecomposeArtifact, graph: GraphArtifact, pram: PRAM, leaf_size: int
) -> DistanceIndex:
    from repro.core.mpengine import ParallelMPEngine

    jobs, pool, pool_error = _acquire_build_pool()
    eng = ParallelMPEngine(
        dec.all_rects,
        list(graph.extras),
        pram,
        leaf_size=leaf_size,
        validate=False,
        seams=dec.seams,
        pool=pool,
        jobs=jobs,
    )
    index = eng.build()
    stats = dict(eng.pool_stats)
    if pool_error is not None:
        stats["pool_error"] = pool_error
    _BUILD_OPTS.pool_stats = stats
    return index


def _acquire_build_pool():
    """The (jobs, pool, error) triple for a ``parallel-mp`` solve.  A pool
    that cannot start (sandboxed /dev/shm, fork limits) degrades to the
    inline single-core path with the reason recorded in provenance."""
    from repro.core.pool import default_jobs, get_pool

    jobs = getattr(_BUILD_OPTS, "jobs", None) or default_jobs()
    if jobs <= 1:
        # one worker buys only IPC overhead; run inline (still the same
        # bytes — the MP engine's inline path is the parent class)
        return 1, None, None
    try:
        return jobs, get_pool(jobs), None
    except Exception as exc:  # pragma: no cover - host-dependent
        return jobs, None, f"{type(exc).__name__}: {exc}"


@register_engine(
    "sequential",
    description="§9 monotone-DAG sweeps (O(n²) sequential)",
)
def _solve_sequential(
    dec: DecomposeArtifact, graph: GraphArtifact, pram: PRAM, leaf_size: int
) -> DistanceIndex:
    from repro.core.sequential import SequentialEngine

    return SequentialEngine(
        dec.all_rects, list(graph.extras), validate=False, seams=dec.seams
    ).build(pram)


@register_engine(
    "grid",
    description="batched multi-source Dijkstra on the seam-aware Hanan grid "
    "(the differential baseline as a first-class engine)",
)
def _solve_grid(
    dec: DecomposeArtifact, graph: GraphArtifact, pram: PRAM, leaf_size: int
) -> DistanceIndex:
    from repro.core.baseline import GridOracle

    pts = list(graph.points)
    for p in pts:
        # the Hanan-grid machinery is integer-exact only; the paper
        # engines index non-integer extras verbatim, but this one must
        # refuse rather than quietly return a wrong (truncated) metric
        try:
            integral = int(p[0]) == p[0] and int(p[1]) == p[1]
        except (OverflowError, ValueError):  # inf/nan coordinates
            integral = False
        if not integral:
            raise GeometryError(
                f"the grid engine requires integer coordinates, got point {p}"
            )
    mat = GridOracle(dec.all_rects, pts, seams=dec.seams).dist_matrix(pts)
    n = len(pts)
    lg = max(1, max(n - 1, 1).bit_length())
    # the honest sequential comparator cost ([11]/E6): one SSSP per source
    pram.charge(time=n * lg, work=n * n * lg, width=n)
    return DistanceIndex(pts, np.asarray(mat, dtype=float))


# ----------------------------------------------------------------------
# the pipeline driver
# ----------------------------------------------------------------------
def build_index(
    scene: Scene,
    engine: str = "parallel",
    pram: Optional[PRAM] = None,
    leaf_size: int = DEFAULT_LEAF_SIZE,
    cache: Optional[StageCache] = None,
    incremental: bool = False,
    delta_hint: Optional[tuple] = None,
    jobs: Optional[int] = None,
    jit: bool = False,
):
    """Run the full stage pipeline over ``scene`` and return a queryable
    :class:`~repro.core.api.ShortestPathIndex` with ``idx.provenance``
    describing what ran, what was cached, and what each stage cost.

    This is what ``ShortestPathIndex.build`` now is underneath; call it
    directly to control the cache or to pass a prebuilt :class:`Scene`.

    ``incremental=True`` makes the parallel engine's solve repairable: the
    separator pivot switches to the edit-stable rule and every recursion
    node deposits its sub-scene matrix into ``cache`` under a geometry
    key, so a later build of a slightly different scene (see
    :func:`update_index`) re-solves only the subtrees the edit actually
    dirtied.  Answers are byte-identical either way — both pivot rules
    compute the same exact integer distances over the same root point
    set — so the solve artifact is shared with non-incremental builds.
    ``delta_hint = ("delete", rect)`` additionally unlocks the monotone
    delta conquer at dirty nodes.  Engines other than ``parallel`` /
    ``parallel-mp``, CREW audits, and scenes with non-integer extra
    points fall back to the ordinary solve (still correct, no subtree
    reuse).

    ``jobs`` sizes the ``parallel-mp`` engine's worker pool (default:
    the visible cores, capped at 8; ignored by other engines).
    ``jit=True`` opts the solve into the compiled kernels of
    :mod:`repro.kernels` when numba is importable — results are
    byte-identical either way, and ``idx.provenance["jit"]`` records
    what actually ran.
    """
    from repro import kernels
    from repro.core.api import ShortestPathIndex

    spec = get_engine(engine)  # fail before any work on a bad name
    cache = default_cache() if cache is None else cache
    pram = pram or PRAM("build")
    stages: list[dict] = []
    geo_hash = scene.geometry_hash()
    full_hash = scene.content_hash()
    _BUILD_OPTS.jobs = jobs
    _BUILD_OPTS.pool_stats = None
    _BUILD_OPTS.trace = new_trace_id()
    try:
        return _build_index_inner(
            scene, engine, pram, leaf_size, cache, incremental, delta_hint,
            jit, spec, stages, geo_hash, full_hash, kernels,
            ShortestPathIndex,
        )
    finally:
        _BUILD_OPTS.jobs = None
        _BUILD_OPTS.pool_stats = None
        _BUILD_OPTS.trace = None


def _build_index_inner(
    scene, engine, pram, leaf_size, cache, incremental, delta_hint,
    jit, spec, stages, geo_hash, full_hash, kernels, ShortestPathIndex,
):

    dec, _ = _run_stage(
        stages, "decompose", cache, ("decompose", geo_hash), lambda: _decompose(scene)
    )
    graph, _ = _run_stage(
        stages, "graph", cache, ("graph", full_hash), lambda: _graph(scene, dec)
    )

    inc_ok = (
        incremental
        and engine in ("parallel", "parallel-mp")
        and not pram.detect_conflicts
        and cache.max_entries > 0
        and all(_is_integral_point(p) for p in scene.extra_points)
    )
    t0 = time.perf_counter()
    solve_key = ("solve", full_hash, engine, spec.gen, leaf_size)
    # a CREW-conflict audit exists to *run* the engine under write
    # tracing; answering it from the cache would pass the audit vacuously
    art = None if pram.detect_conflicts else cache.get(solve_key)
    cached = art is not None
    sub_stats: Optional[dict] = None
    if not cached:
        child = PRAM(f"{pram.name}/solve[{engine}]", pram.detect_conflicts)
        with kernels.use_jit(jit):
            if inc_ok:
                index, sub_stats = _solve_parallel_incremental(
                    dec, graph, child, leaf_size, cache, delta_hint,
                    engine=engine,
                )
            else:
                index = spec.solve(dec, graph, child, leaf_size)
        # the matrix may be aliased by every later build of this scene (a
        # cache hit shares the ndarray, it does not copy): freeze it so an
        # in-place edit through one index cannot corrupt the others
        index.matrix.setflags(write=False)
        art = SolveArtifact(
            tuple(index.points), index.matrix, child.time, child.work, child.max_ops
        )
        cache.put(solve_key, art, art.nbytes())
    pram.charge(time=art.pram_time, work=art.pram_work, width=art.pram_width)
    index = DistanceIndex(list(art.points), art.matrix)
    stages.append(
        _timing("solve", time.perf_counter() - t0, art.pram_time, art.pram_work, cached)
    )

    t0 = time.perf_counter()
    idx = ShortestPathIndex(
        list(dec.all_rects),
        index,
        pram,
        dec.container,
        engine,
        polygons=dec.polygons,
        seams=dec.seams,
    )
    stages.append(_timing("query-structures", time.perf_counter() - t0, 0, 0, False))
    idx.provenance = {
        "engine": engine,
        "scene_hash": full_hash,
        "leaf_size": leaf_size,
        "n_points": len(index),
        "n_rects": len(dec.all_rects),
        "stages": stages,
        "incremental": bool(inc_ok),
        "jit": {
            "requested": bool(jit),
            "available": kernels.available() if jit else None,
            "active": bool(jit) and kernels.available(),
            "backend": kernels.backend() if jit else "numpy",
        },
    }
    if sub_stats is not None:
        idx.provenance["subtree"] = sub_stats
    pool_stats = getattr(_BUILD_OPTS, "pool_stats", None)
    if engine == "parallel-mp":
        # a cached solve never touched the pool; say so instead of
        # omitting the section (callers key off its presence)
        idx.provenance["pool"] = pool_stats or {"cached": True}
    # the update path needs the source scene and the cache the subtree
    # entries live in; both ride on the index (scene is immutable, the
    # cache reference adds no lifetime beyond the process default)
    idx.scene = scene
    idx.build_cache = cache
    _record_build_profile(stages, engine)
    return idx


def _is_integral_point(p) -> bool:
    try:
        return all(int(c) == c for c in p)
    except (OverflowError, ValueError):  # inf/nan coordinates
        return False


def _solve_parallel_incremental(
    dec: DecomposeArtifact,
    graph: GraphArtifact,
    pram: PRAM,
    leaf_size: int,
    cache: StageCache,
    delta_hint: Optional[tuple],
    engine: str = "parallel",
):
    """The parallel solve with subtree caching on (see ``build_index``)."""
    from repro.core.allpairs import ParallelEngine

    # anything that changes a node's *values* for a fixed rect multiset
    # must be part of the subtree salt, or two configurations would trade
    # entries: leaf size (recursion shape), pivot rule, and the seam set
    # (seams alter the metric but are invisible to the rect-coordinate key)
    # — deliberately NOT the engine: parallel and parallel-mp deposit
    # byte-identical matrices, so they share one entry population
    salt = (
        "v1",
        leaf_size,
        tuple(sorted((s.x, s.ylo, s.yhi) for s in dec.seams)),
    )
    kwargs = dict(
        leaf_size=leaf_size,
        validate=False,
        seams=dec.seams,
        divide="stable",
        subtree_cache=cache,
        subtree_salt=salt,
        delta_hint=delta_hint,
    )
    if engine == "parallel-mp":
        from repro.core.mpengine import ParallelMPEngine

        jobs, pool, pool_error = _acquire_build_pool()
        eng = ParallelMPEngine(
            dec.all_rects, list(graph.extras), pram,
            pool=pool, jobs=jobs, **kwargs,
        )
    else:
        eng = ParallelEngine(dec.all_rects, list(graph.extras), pram, **kwargs)
    index = eng.build()
    if engine == "parallel-mp":
        stats = dict(eng.pool_stats)
        if pool_error is not None:
            stats["pool_error"] = pool_error
        _BUILD_OPTS.pool_stats = stats
    s = eng.stats
    return index, {
        "hits": s.subtree_hits,
        "patches": s.subtree_patches,
        "misses": s.subtree_misses,
        "delta_conquers": s.delta_conquers,
        "patched_points": s.patched_points,
    }


def update_index(
    idx,
    delta: SceneDelta,
    pram: Optional[PRAM] = None,
    cache: Optional[StageCache] = None,
):
    """Apply a :class:`~repro.scene.SceneDelta` to an index's scene and
    return a fresh index for the mutated scene, re-solving only what the
    edit dirtied.

    The diff unit is the content-addressed :class:`StageCache`: geometry
    stages re-key themselves under the new scene hash, untouched separator
    subtrees are served from their geometry-keyed entries (deposited by
    ``build_index(..., incremental=True)``), and a single-rectangle delete
    takes the monotone delta conquer at the dirtied nodes.  The repaired
    index answers **byte-identically** to a cold rebuild of the mutated
    scene — reuse is value-exact, never approximate — so callers choose
    between ``update_index`` and a rebuild on cost alone.

    ``idx.provenance["repair"]`` reports what happened: the ops applied,
    old/new scene hashes, wall time, and the reused/recomputed subtree
    entry counts (``reused_fraction`` is the cache's share of the solve
    recursion).  Defaults come from the source index: same engine, same
    leaf size, same stage cache.
    """
    scene = getattr(idx, "scene", None)
    if scene is None:
        raise QueryError(
            "index has no attached scene; build it via build_index()/"
            "ShortestPathIndex.build before calling update_index"
        )
    if not isinstance(delta, SceneDelta):
        raise QueryError(f"update_index needs a SceneDelta, got {type(delta).__name__}")
    prov = getattr(idx, "provenance", None) or {}
    engine = prov.get("engine", "parallel")
    leaf_size = prov.get("leaf_size", DEFAULT_LEAF_SIZE)
    if cache is None:
        cache = getattr(idx, "build_cache", None) or default_cache()
    new_scene = scene.apply_delta(delta)
    hint: Optional[tuple] = None
    if len(delta.ops) == 1 and delta.ops[0][0] == "delete" and isinstance(
        delta.ops[0][1], Rect
    ):
        hint = ("delete", delta.ops[0][1])
    t0 = time.perf_counter()
    new_idx = build_index(
        new_scene,
        engine,
        pram,
        leaf_size,
        cache,
        incremental=True,
        delta_hint=hint,
    )
    wall = time.perf_counter() - t0
    sub = new_idx.provenance.get("subtree") or {}
    reused = sub.get("hits", 0) + sub.get("patches", 0) + 2 * sub.get("delta_conquers", 0)
    recomputed = sub.get("misses", 0)
    total = reused + recomputed
    solve_cached = any(
        st["name"] == "solve" and st["cached"] for st in new_idx.provenance["stages"]
    )
    new_idx.provenance["repair"] = {
        "ops": delta.describe(),
        "old_scene_hash": scene.content_hash(),
        "new_scene_hash": new_scene.content_hash(),
        "wall_s": float(wall),
        "reused_entries": reused,
        "recomputed_entries": recomputed,
        "reused_fraction": (reused / total) if total else 1.0,
        "solve_cached": solve_cached,
    }
    _record_repair(new_idx.provenance["repair"], engine, wall)
    return new_idx


def _record_repair(repair: dict, engine: str, wall: float) -> None:
    reg = default_registry()
    reg.counter(
        "repro.update.repairs", "incremental index repairs", labels=["engine"]
    ).inc(engine=engine)
    reg.counter(
        "repro.update.reused_entries",
        "subtree cache entries reused by repairs", labels=["engine"],
    ).inc(repair["reused_entries"], engine=engine)
    reg.counter(
        "repro.update.recomputed_entries",
        "subtree entries recomputed by repairs", labels=["engine"],
    ).inc(repair["recomputed_entries"], engine=engine)
    sp = span(
        "update.repair",
        new_trace_id(),
        t0=time.time() - wall,
        engine=engine,
        ops=repair["ops"],
        reused=repair["reused_entries"],
        recomputed=repair["recomputed_entries"],
    )
    finish(sp, time.time())
    BUILD_SPANS.add(sp)


def _run_stage(
    stages: list, name: str, cache: StageCache, key: tuple, builder: Callable
):
    t0 = time.perf_counter()
    art = cache.get(key)
    cached = art is not None
    if not cached:
        art = builder()
        cache.put(key, art, art.nbytes())
    stages.append(_timing(name, time.perf_counter() - t0, 0, 0, cached))
    return art, cached


def _record_build_profile(stages: list, engine: str) -> None:
    """Emit one build's per-stage profile through the observability layer:
    counters in the process-default registry (wall vs simulated PRAM cost,
    per stage and engine, cache hits split out) plus one span per stage in
    :data:`BUILD_SPANS` for Chrome-trace export."""
    reg = default_registry()
    runs = reg.counter(
        "repro.pipeline.stage_runs", "pipeline stage executions",
        labels=["stage", "engine", "cached"],
    )
    wall = reg.counter(
        "repro.pipeline.stage_wall_seconds", "cumulative stage wall time",
        labels=["stage", "engine"],
    )
    ptime = reg.counter(
        "repro.pipeline.stage_pram_time", "cumulative simulated PRAM time",
        labels=["stage", "engine"],
    )
    pwork = reg.counter(
        "repro.pipeline.stage_pram_work", "cumulative simulated PRAM work",
        labels=["stage", "engine"],
    )
    # join the trace the build minted (per-subtree spans of a parallel-mp
    # solve are already on it), so one trace id covers the whole build
    trace_id = current_build_trace()
    t0 = time.time() - sum(st["wall_s"] for st in stages)
    for st in stages:
        name = st["name"]
        runs.inc(stage=name, engine=engine, cached=str(st["cached"]).lower())
        wall.inc(st["wall_s"], stage=name, engine=engine)
        ptime.inc(st["pram_time"], stage=name, engine=engine)
        pwork.inc(st["pram_work"], stage=name, engine=engine)
        sp = span(
            f"build.{name}",
            trace_id,
            t0=t0,
            engine=engine,
            cached=st["cached"],
            pram_time=st["pram_time"],
            pram_work=st["pram_work"],
        )
        finish(sp, t0 + st["wall_s"])
        BUILD_SPANS.add(sp)
        t0 += st["wall_s"]


def _timing(name: str, wall_s: float, pram_time: int, pram_work: int, cached: bool) -> dict:
    return {
        "name": name,
        "wall_s": float(wall_s),
        "pram_time": int(pram_time),
        "pram_work": int(pram_work),
        "cached": bool(cached),
    }


def format_plan(provenance: dict) -> str:
    """A human-readable stage table of one build's provenance."""
    lines = [
        f"{'stage':<18} {'wall':>10} {'PRAM T':>10} {'PRAM W':>14}  cached",
        f"{'-' * 18} {'-' * 10} {'-' * 10} {'-' * 14}  ------",
    ]
    for st in provenance.get("stages", []):
        lines.append(
            f"{st['name']:<18} {st['wall_s']:>9.4f}s {st['pram_time']:>10,} "
            f"{st['pram_work']:>14,}  {'yes' if st['cached'] else 'no'}"
        )
    total = sum(st["wall_s"] for st in provenance.get("stages", []))
    lines.append(f"{'total':<18} {total:>9.4f}s")
    return "\n".join(lines)
