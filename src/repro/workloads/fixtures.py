"""Small deterministic scenes used by tests, examples and figure rendering."""

from __future__ import annotations

from repro.geometry.primitives import Rect


def two_clusters() -> list[Rect]:
    """Two diagonal clusters — the hull-does-not-exist shape of Fig. 2(a)."""
    return [
        Rect(0, 30, 6, 37),
        Rect(3, 24, 10, 29),
        Rect(8, 33, 15, 40),
        Rect(40, 2, 48, 9),
        Rect(44, 11, 52, 16),
        Rect(51, 0, 58, 6),
    ]


def three_shelves() -> list[Rect]:
    """Three long horizontal shelves with offset gaps (classic maze)."""
    return [
        Rect(0, 10, 40, 13),
        Rect(15, 20, 55, 23),
        Rect(0, 30, 40, 33),
        Rect(48, 28, 60, 35),
        Rect(45, 8, 58, 15),
    ]


def ring_of_rects() -> list[Rect]:
    """Eight rectangles arranged in a ring with a free centre."""
    return [
        Rect(10, 0, 20, 6),
        Rect(24, 2, 34, 8),
        Rect(36, 12, 42, 22),
        Rect(35, 26, 41, 36),
        Rect(22, 38, 32, 44),
        Rect(8, 37, 18, 43),
        Rect(0, 24, 6, 34),
        Rect(1, 9, 7, 19),
    ]


def paper_figure_scene(which: int) -> list[Rect]:
    """Deterministic obstacle sets shaped after the paper's figures.

    ``which`` is the figure number (1–14).  These are not copies of the
    hand-drawn figures — the paper gives no coordinates — but scenes that
    exhibit the same phenomenon each figure illustrates.
    """
    if which in (1, 3, 7):  # frontier/visibility demos: scattered blocks
        return [
            Rect(2, 14, 8, 19),
            Rect(10, 8, 16, 12),
            Rect(18, 16, 24, 21),
            Rect(26, 3, 33, 7),
            Rect(12, 24, 20, 28),
        ]
    if which == 2:  # envelope cases
        return two_clusters()
    if which in (4, 9, 11, 12, 13):  # Monge / conquer / bridging demos
        # interlocking projections: the envelope is non-degenerate, so the
        # boundary chains of Lemma 1 exist
        return [
            Rect(4, 4, 10, 9),
            Rect(14, 12, 24, 18),
            Rect(23, 5, 34, 12),
            Rect(6, 17, 14, 27),
            Rect(28, 21, 36, 26),
        ]
    if which in (5, 6):  # path tracing and separator
        return [
            Rect(6, 6, 14, 11),
            Rect(18, 14, 27, 20),
            Rect(9, 24, 17, 30),
            Rect(30, 3, 38, 8),
            Rect(33, 23, 41, 29),
            Rect(21, 33, 30, 38),
        ]
    if which in (8, 10):  # staircase extension / U,U',W,W'
        return three_shelves()
    if which == 14:  # chunk partition of Bound(P)
        return ring_of_rects()
    raise ValueError(f"no fixture for figure {which}")
