"""Serving workloads: deterministic request streams over named scenes.

Mirrors :mod:`repro.workloads.generators` for the online half of the
system — where the generators produce *scenes*, this module produces the
*traffic* replayed against them by ``python -m repro serve-bench`` and
``benchmarks/bench_serve.py``.  Streams are fully deterministic given a
seed, mix vertex-pair lookups (the O(1) path) with arbitrary-point
queries (the O(log n) §6.4 path) and occasional path reports (§8), and
spread requests across every registered scene.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from repro.core.api import ShortestPathIndex
from repro.geometry.primitives import Point
from repro.serve.server import OP_LENGTH, OP_PATH, Request
from repro.workloads.generators import random_free_points

#: default request mix: (arbitrary-point length fraction, path fraction);
#: the remainder are vertex-pair length lookups
DEFAULT_MIX = (0.2, 0.05)


def scene_endpoints(
    idx: ShortestPathIndex, k_free: int = 32, seed: int = 0
) -> tuple[list[Point], list[Point]]:
    """Endpoint pools for one scene: its indexed vertices plus ``k_free``
    obstacle-free sample points (the arbitrary-query population).

    Every sample is pushed through the index's own containment check, so
    seam points of polygonal obstacles (inside a polygon but on no
    rectangle interior) and out-of-container points are filtered the same
    way a live query would reject them.
    """
    from repro.errors import QueryError

    free = []
    for p in random_free_points(idx.rects, k_free, seed=seed):
        try:
            idx._check_inside(p)
        except QueryError:
            continue
        free.append(p)
    return idx.vertices(), free


def random_request_stream(
    endpoints: Mapping[str, tuple[Sequence[Point], Sequence[Point]]],
    n_requests: int,
    seed: int = 0,
    mix: tuple[float, float] = DEFAULT_MIX,
) -> list[Request]:
    """``n_requests`` requests across the given scenes.

    ``endpoints`` maps scene name to ``(vertices, free_points)`` pools
    (see :func:`scene_endpoints`); ``mix`` is the (arbitrary, path)
    fraction pair.  Scene choice, endpoint choice, and op choice are all
    drawn from one seeded stream, so a stream is reproducible across
    processes and machines.
    """
    arb_frac, path_frac = mix
    rng = random.Random(f"req|{seed}|{n_requests}|{arb_frac}|{path_frac}")
    names = sorted(endpoints)
    if not names:
        return []
    pools = {n: (list(v), list(f)) for n, (v, f) in endpoints.items()}
    out: list[Request] = []
    for _ in range(n_requests):
        name = names[rng.randrange(len(names))]
        verts, free = pools[name]
        roll = rng.random()
        if roll < path_frac and len(verts) >= 2:
            p, q = rng.sample(verts, 2)
            out.append(Request(name, p, q, op=OP_PATH))
        elif roll < path_frac + arb_frac and free and verts:
            # one or both endpoints arbitrary: exercises §6.4
            p = rng.choice(free)
            q = rng.choice(free) if rng.random() < 0.5 and len(free) > 1 else rng.choice(verts)
            out.append(Request(name, p, q, op=OP_LENGTH))
        else:
            p = rng.choice(verts)
            q = rng.choice(verts)
            out.append(Request(name, p, q, op=OP_LENGTH))
    return out
