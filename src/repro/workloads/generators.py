"""Random scene generators.

All generators produce pairwise-disjoint rectangles with globally distinct
edge coordinates (the paper's general-position assumption, §1), are fully
deterministic given a seed, and scale the world with ``n`` so that density
stays roughly constant across a sweep — which is what makes the measured
scaling exponents in EXPERIMENTS.md meaningful.

Modes
-----
``uniform``    rectangles scattered uniformly (the default benchmark load)
``clustered``  a few dense clusters — stresses separator balance
``stacked``    tall skinny towers in rows — stresses the crossing counts of
               Theorem 2's median lines
``aspect``     extreme aspect ratios — stresses tracing and ray shooting
``grid``       perturbed regular grid — the wire-layout workload the paper's
               introduction motivates (circuit macros)
"""

from __future__ import annotations

import random
from typing import Iterable, Optional, Sequence

from repro.errors import GeometryError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Point, Rect, bbox_of_rects

WORKLOAD_MODES = ("uniform", "clustered", "stacked", "aspect", "grid")


class _CoordPool:
    """Hands out globally distinct coordinates near requested values."""

    def __init__(self) -> None:
        self.used_x: set[int] = set()
        self.used_y: set[int] = set()

    def take_x(self, v: int) -> int:
        while v in self.used_x:
            v += 1
        self.used_x.add(v)
        return v

    def take_y(self, v: int) -> int:
        while v in self.used_y:
            v += 1
        self.used_y.add(v)
        return v


def random_disjoint_rects(
    n: int,
    seed: int = 0,
    mode: str = "uniform",
    world: Optional[int] = None,
) -> list[Rect]:
    """Generate ``n`` disjoint rectangles with distinct edge coordinates."""
    if mode not in WORKLOAD_MODES:
        raise GeometryError(f"unknown workload mode {mode!r}")
    rng = random.Random(f"{seed}|{mode}|{n}")  # str seed: stable across processes
    world = world or max(64, 32 * n)
    pool = _CoordPool()
    placed: list[Rect] = []
    grid: dict[tuple[int, int], list[int]] = {}
    cell = max(world // max(1, int(n**0.5) * 2), 4)

    def cells_of(r: Rect) -> Iterable[tuple[int, int]]:
        for cx in range(r.xlo // cell, r.xhi // cell + 1):
            for cy in range(r.ylo // cell, r.yhi // cell + 1):
                yield (cx, cy)

    def collides(r: Rect) -> bool:
        seen: set[int] = set()
        for c in cells_of(r):
            for idx in grid.get(c, ()):
                if idx in seen:
                    continue
                seen.add(idx)
                if r.interiors_intersect(placed[idx]):
                    return True
        return False

    def commit(r: Rect) -> None:
        placed.append(r)
        for c in cells_of(r):
            grid.setdefault(c, []).append(len(placed) - 1)

    centers: list[Point] = []
    if mode == "clustered":
        k = max(2, n // 12)
        centers = [
            (rng.randrange(world // 8, 7 * world // 8), rng.randrange(world // 8, 7 * world // 8))
            for _ in range(k)
        ]
    attempts = 0
    max_attempts = 400 * n + 1000
    side = max(2, world // max(2, int(n**0.5) * 3))
    gi = 0
    gcols = max(1, int(n**0.5))
    while len(placed) < n:
        attempts += 1
        if attempts > max_attempts:
            raise GeometryError(
                f"could not place {n} rects in world {world} after {attempts} tries"
            )
        if mode == "uniform":
            w = rng.randint(1, side)
            h = rng.randint(1, side)
            x = rng.randrange(0, world - w)
            y = rng.randrange(0, world - h)
        elif mode == "clustered":
            cx, cy = rng.choice(centers)
            spread = world // 6
            w = rng.randint(1, max(2, side // 2))
            h = rng.randint(1, max(2, side // 2))
            x = cx + rng.randint(-spread, spread)
            y = cy + rng.randint(-spread, spread)
        elif mode == "stacked":
            w = rng.randint(1, max(2, side // 3))
            h = rng.randint(side, 3 * side)
            x = rng.randrange(0, world - w)
            y = rng.randrange(0, max(1, world - h))
        elif mode == "aspect":
            if rng.random() < 0.5:
                w = rng.randint(side, 4 * side)
                h = rng.randint(1, max(2, side // 4))
            else:
                w = rng.randint(1, max(2, side // 4))
                h = rng.randint(side, 4 * side)
            x = rng.randrange(0, max(1, world - w))
            y = rng.randrange(0, max(1, world - h))
        else:  # grid
            col, row = gi % gcols, gi // gcols
            gi += 1
            pitch = world // (gcols + 1)
            w = rng.randint(pitch // 3, max(pitch // 3 + 1, 2 * pitch // 3))
            h = rng.randint(pitch // 3, max(pitch // 3 + 1, 2 * pitch // 3))
            x = col * pitch + rng.randint(0, pitch // 4)
            y = row * pitch + rng.randint(0, pitch // 4)
        x = max(0, min(x, world - 2))
        y = max(0, min(y, world - 2))
        # distinct-coordinate snapping: x direction then width, same for y
        xlo = pool.take_x(x)
        xhi = pool.take_x(xlo + max(1, w))
        ylo = pool.take_y(y)
        yhi = pool.take_y(ylo + max(1, h))
        r = Rect(xlo, ylo, xhi, yhi)
        if collides(r):
            pool.used_x.discard(xlo)
            pool.used_x.discard(xhi)
            pool.used_y.discard(ylo)
            pool.used_y.discard(yhi)
            continue
        commit(r)
    return placed


def random_free_points(
    rects: Sequence[Rect], k: int, seed: int = 0, margin: int = 5
) -> list[Point]:
    """``k`` distinct points outside all obstacle interiors (query points)."""
    rng = random.Random(f"fp|{seed}|{k}|{len(rects)}")
    xlo, ylo, xhi, yhi = bbox_of_rects(rects) if rects else (0, 0, 64, 64)
    out: list[Point] = []
    seen: set[Point] = set()
    attempts = 0
    while len(out) < k:
        attempts += 1
        if attempts > 10000 * (k + 1):
            raise GeometryError("could not sample free points")
        p = (
            rng.randint(xlo - margin, xhi + margin),
            rng.randint(ylo - margin, yhi + margin),
        )
        if p in seen or any(r.contains_interior(p) for r in rects):
            continue
        seen.add(p)
        out.append(p)
    return out


def random_container_polygon(
    rects: Sequence[Rect], seed: int = 0, margin: int = 6, steps: int = 3
) -> RectilinearPolygon:
    """A random rectilinear *convex* polygon strictly containing the scene.

    Built from unimodal top/bottom boundary walks over the padded bounding
    box, with up to ``steps`` staircase notches per corner.
    """
    rng = random.Random(f"poly|{seed}|{len(rects)}")
    xlo, ylo, xhi, yhi = bbox_of_rects(rects)
    xlo -= margin
    ylo -= margin
    xhi += margin
    yhi += margin
    w = xhi - xlo

    def corner_steps() -> list[tuple[int, int]]:
        k = rng.randint(0, steps)
        xs = sorted(rng.sample(range(1, max(2, w // 4)), min(k, max(1, w // 4 - 1))))
        ys = sorted(rng.sample(range(1, margin), min(len(xs), margin - 1)))
        return list(zip(xs, ys[: len(xs)]))

    # Top boundary, west to east: rises by the NW notches, flat across,
    # falls by the NE notches; bottom is symmetric.  Notches stay within
    # `margin`, so the polygon still contains every obstacle.
    top: list[Point] = [(xlo, yhi - margin + 1)]
    for dx, dy in corner_steps():
        top.append((xlo + dx, top[-1][1]))
        top.append((xlo + dx, yhi - margin + 1 + dy))
    top.append((top[-1][0], yhi))
    top.append((xhi - w // 3, yhi))
    ne: list[Point] = [(xhi, yhi - margin + 1)]
    for dx, dy in corner_steps():
        ne.append((xhi - dx, ne[-1][1]))
        ne.append((xhi - dx, yhi - margin + 1 + dy))
    ne.reverse()
    top.extend([(p[0], p[1]) for p in ne])
    bottom: list[Point] = [(xlo, ylo + margin - 1)]
    for dx, dy in corner_steps():
        bottom.append((xlo + dx, bottom[-1][1]))
        bottom.append((xlo + dx, ylo + margin - 1 - dy))
    bottom.append((bottom[-1][0], ylo))
    bottom.append((xhi - w // 3, ylo))
    se: list[Point] = [(xhi, ylo + margin - 1)]
    for dx, dy in corner_steps():
        se.append((xhi - dx, se[-1][1]))
        se.append((xhi - dx, ylo + margin - 1 - dy))
    se.reverse()
    bottom.extend([(p[0], p[1]) for p in se])
    loop = _loop_from_walks(top, bottom)
    return RectilinearPolygon(loop)


def staircase_container(
    rects: Sequence[Rect], steps: int = 8, margin: int = 12
) -> RectilinearPolygon:
    """A convex container with ~8·steps boundary vertices (for §7's N ≫ n).

    The boundary climbs in unit staircase steps at each corner, staying
    convex (unimodal profiles) and keeping every obstacle strictly inside.
    """
    xlo, ylo, xhi, yhi = bbox_of_rects(rects)
    xlo -= margin
    ylo -= margin
    xhi += margin
    yhi += margin
    w = xhi - xlo
    s = max(1, min(steps, margin - 2, w // 2 - 2))

    def profile(y_flat: int, y_edge: int, rise: int) -> list[Point]:
        """West→east unimodal walk from height y_edge up to y_flat and back."""
        pts: list[Point] = [(xlo, y_edge)]
        x, y = xlo, y_edge
        for _ in range(s):
            x += 1
            pts.append((x, y))
            y += rise
            pts.append((x, y))
        pts.append((xhi - s, y))
        x2, y2 = xhi - s, y
        for _ in range(s):
            x2 += 1
            pts.append((x2, y2))
            y2 -= rise
            pts.append((x2, y2))
        if pts[-1] != (xhi, y_edge):
            pts.append((xhi, y_edge))
        return pts

    top = profile(yhi, yhi - s, rise=1)
    bottom = profile(ylo, ylo + s, rise=-1)
    return RectilinearPolygon(_loop_from_walks(top, bottom))


# ----------------------------------------------------------------------
# polygonal-obstacle generators (decomposed by the engines via
# repro.geometry.decompose; every family exercises different seam shapes)

POLYGON_KINDS = ("staircase", "plus", "spiral", "blob")


def staircase_polygon(
    x0: int = 0, y0: int = 0, steps: int = 3, run: int = 3, rise: int = 3,
    thickness: int = 4,
) -> RectilinearPolygon:
    """An ascending staircase band: ``steps`` treads of ``run × rise``,
    extruded ``thickness`` upward.  Decomposes into one tile per tread
    with a seam at every riser.  ``thickness`` is clamped above ``rise``:
    a band no thicker than its risers pinches into a non-simple loop."""
    thickness = max(max(1, thickness), max(1, rise) + 1)
    lower: list[Point] = [(x0, y0)]
    x, y = x0, y0
    for _ in range(max(1, steps)):
        x += max(1, run)
        lower.append((x, y))
        y += max(1, rise)
        lower.append((x, y))
    x += max(1, run)
    lower.append((x, y))
    upper = [(px, py + max(1, thickness)) for px, py in lower]
    loop = lower + list(reversed(upper))
    return RectilinearPolygon(loop)


def plus_polygon(
    cx: int = 0, cy: int = 0, arm: int = 4, thick: int = 2
) -> RectilinearPolygon:
    """A plus/cross shape centred at ``(cx, cy)``: the classic seam-shortcut
    witness (its decomposition's middle chords must not be traversable)."""
    a, t = max(1, arm), max(1, thick)
    return RectilinearPolygon(
        [
            (cx - t, cy - a), (cx + t, cy - a), (cx + t, cy - t),
            (cx + a, cy - t), (cx + a, cy + t), (cx + t, cy + t),
            (cx + t, cy + a), (cx - t, cy + a), (cx - t, cy + t),
            (cx - a, cy + t), (cx - a, cy - t), (cx - t, cy - t),
        ]
    )


def spiral_polygon(x0: int = 0, y0: int = 0, scale: int = 1) -> RectilinearPolygon:
    """A rectilinear spiral (non-x-monotone, genuinely non-convex): a
    corridor winding ~1.5 turns around a free courtyard."""
    s = max(1, scale)
    rel = [
        (0, 0), (10, 0), (10, 10), (2, 10), (2, 4), (4, 4),
        (4, 8), (8, 8), (8, 2), (0, 2),
    ]
    return RectilinearPolygon([(x0 + s * x, y0 + s * y) for x, y in rel])


def random_blob_polygon(
    seed: int = 0, cols: int = 5, x0: int = 0, y0: int = 0,
    col_w: int = 4, height: int = 9, jitter: int = 3,
) -> RectilinearPolygon:
    """A random orthogonal blob: a histogram with jittered top *and*
    bottom walks (x-monotone, usually non-convex, hole-free by
    construction; consecutive columns always overlap by ≥ 1)."""
    rng = random.Random(f"pblob|{seed}|{cols}|{col_w}|{height}|{jitter}")
    cols = max(2, cols)
    bots = [y0]
    tops = [y0 + max(2, height)]
    for _ in range(cols - 1):
        pb, pt = bots[-1], tops[-1]
        b = pb + rng.randint(-jitter, jitter)
        t = pt + rng.randint(-jitter, jitter)
        # keep the column non-degenerate and overlapping its neighbour
        b = min(b, pt - 1)
        t = max(t, pb + 1)
        if t - b < 2:
            t = b + 2
        bots.append(b)
        tops.append(t)
    xs = [x0 + i * max(2, col_w) for i in range(cols + 1)]
    lower: list[Point] = []
    for i in range(cols):
        lower += [(xs[i], bots[i]), (xs[i + 1], bots[i])]
    upper: list[Point] = []
    for i in range(cols):
        upper += [(xs[i], tops[i]), (xs[i + 1], tops[i])]
    loop = lower + list(reversed(upper))
    # equal neighbouring columns leave duplicate corners; the polygon
    # constructor rejects zero edges, so drop consecutive repeats here
    dedup: list[Point] = []
    for p in loop:
        if not dedup or dedup[-1] != p:
            dedup.append(p)
    return RectilinearPolygon(dedup)


def _make_polygon(kind: str, seed: int) -> RectilinearPolygon:
    rng = random.Random(f"poly|{kind}|{seed}")
    if kind == "staircase":
        return staircase_polygon(
            steps=rng.randint(2, 4), run=rng.randint(2, 4),
            rise=rng.randint(2, 4), thickness=rng.randint(2, 5),
        )
    if kind == "plus":
        t = rng.randint(1, 3)
        return plus_polygon(arm=t + rng.randint(2, 5), thick=t)
    if kind == "spiral":
        return spiral_polygon(scale=rng.randint(1, 2))
    if kind == "blob":
        return random_blob_polygon(
            seed=seed, cols=rng.randint(3, 6), col_w=rng.randint(2, 4),
            height=rng.randint(6, 10), jitter=rng.randint(1, 4),
        )
    raise GeometryError(f"unknown polygon kind {kind!r}")


def _translate_loop(poly: RectilinearPolygon, dx: int, dy: int) -> RectilinearPolygon:
    return RectilinearPolygon([(x + dx, y + dy) for x, y in poly.loop])


def random_polygon_scene(
    n_polygons: int = 2,
    n_rects: int = 3,
    seed: int = 0,
    kinds: Sequence[str] = POLYGON_KINDS,
    world: Optional[int] = None,
    gap: int = 1,
):
    """A mixed obstacle scene: ``n_polygons`` random polygonal obstacles
    plus ``n_rects`` plain rectangles, pairwise disjoint (polygons are
    placed with bbox clearance ``gap``).  Returns the obstacle list in
    placement order — feed it straight to ``ShortestPathIndex.build``."""
    rng = random.Random(f"pscene|{seed}|{n_polygons}|{n_rects}")
    world = world or max(48, 26 * (n_polygons + 1) + 8 * n_rects)
    placed_boxes: list[tuple[int, int, int, int]] = []

    def box_free(b, pad: int) -> bool:
        for o in placed_boxes:
            if (
                b[0] - pad <= o[2]
                and o[0] <= b[2] + pad
                and b[1] - pad <= o[3]
                and o[1] <= b[3] + pad
            ):
                return False
        return True

    obstacles: list = []
    attempts = 0
    while len(obstacles) < n_polygons:
        attempts += 1
        if attempts > 200 * (n_polygons + 1):
            raise GeometryError(f"could not place {n_polygons} polygons")
        proto = _make_polygon(
            kinds[rng.randrange(len(kinds))], seed * 1009 + attempts
        )
        xlo, ylo, xhi, yhi = proto.bbox
        dx = rng.randint(0, max(1, world - (xhi - xlo))) - xlo
        dy = rng.randint(0, max(1, world - (yhi - ylo))) - ylo
        box = (xlo + dx, ylo + dy, xhi + dx, yhi + dy)
        if not box_free(box, gap):
            continue
        placed_boxes.append(box)
        obstacles.append(_translate_loop(proto, dx, dy))
    placed_rects = 0
    while placed_rects < n_rects:
        attempts += 1
        if attempts > 500 * (n_polygons + n_rects + 1):
            raise GeometryError(f"could not place {n_rects} rects")
        w = rng.randint(1, 6)
        h = rng.randint(1, 6)
        x = rng.randint(0, max(1, world - w))
        y = rng.randint(0, max(1, world - h))
        box = (x, y, x + w, y + h)
        if not box_free(box, gap):
            continue
        placed_boxes.append(box)
        obstacles.append(Rect(x, y, x + w, y + h))
        placed_rects += 1
    return obstacles


def _loop_from_walks(top: list[Point], bottom: list[Point]) -> list[Point]:
    """Stitch monotone top/bottom walks into a CCW loop, fixing stair joins."""
    out: list[Point] = []
    for p in bottom:
        if not out or out[-1] != p:
            if out and out[-1][0] != p[0] and out[-1][1] != p[1]:
                out.append((p[0], out[-1][1]))
            out.append(p)
    for p in reversed(top):
        if out[-1] != p:
            if out[-1][0] != p[0] and out[-1][1] != p[1]:
                out.append((out[-1][0], p[1]))
            out.append(p)
    first = out[0]
    if out[-1] != first and out[-1][0] != first[0] and out[-1][1] != first[1]:
        out.append((first[0], out[-1][1]))
    if out[-1] == first:
        out.pop()
    return out
