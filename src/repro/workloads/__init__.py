"""Workload generators and deterministic fixture scenes."""

from repro.workloads.generators import (
    random_disjoint_rects,
    random_container_polygon,
    random_free_points,
    WORKLOAD_MODES,
)
from repro.workloads.fixtures import (
    two_clusters,
    three_shelves,
    ring_of_rects,
    paper_figure_scene,
)

__all__ = [
    "random_disjoint_rects",
    "random_container_polygon",
    "random_free_points",
    "WORKLOAD_MODES",
    "two_clusters",
    "three_shelves",
    "ring_of_rects",
    "paper_figure_scene",
]
