"""Workload generators, deterministic fixture scenes, request streams."""

from repro.workloads.generators import (
    random_disjoint_rects,
    random_container_polygon,
    random_free_points,
    random_polygon_scene,
    random_blob_polygon,
    staircase_polygon,
    plus_polygon,
    spiral_polygon,
    staircase_container,
    POLYGON_KINDS,
    WORKLOAD_MODES,
)
from repro.workloads.fixtures import (
    two_clusters,
    three_shelves,
    ring_of_rects,
    paper_figure_scene,
)
from repro.workloads.requests import (
    DEFAULT_MIX,
    random_request_stream,
    scene_endpoints,
)

__all__ = [
    "random_disjoint_rects",
    "random_container_polygon",
    "random_free_points",
    "random_polygon_scene",
    "random_blob_polygon",
    "staircase_polygon",
    "plus_polygon",
    "spiral_polygon",
    "staircase_container",
    "POLYGON_KINDS",
    "WORKLOAD_MODES",
    "two_clusters",
    "three_shelves",
    "ring_of_rects",
    "paper_figure_scene",
    "DEFAULT_MIX",
    "random_request_stream",
    "scene_endpoints",
]
