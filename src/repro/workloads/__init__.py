"""Workload generators, deterministic fixture scenes, request streams."""

from repro.workloads.generators import (
    random_disjoint_rects,
    random_container_polygon,
    random_free_points,
    staircase_container,
    WORKLOAD_MODES,
)
from repro.workloads.fixtures import (
    two_clusters,
    three_shelves,
    ring_of_rects,
    paper_figure_scene,
)
from repro.workloads.requests import (
    DEFAULT_MIX,
    random_request_stream,
    scene_endpoints,
)

__all__ = [
    "random_disjoint_rects",
    "random_container_polygon",
    "random_free_points",
    "staircase_container",
    "WORKLOAD_MODES",
    "two_clusters",
    "three_shelves",
    "ring_of_rects",
    "paper_figure_scene",
    "DEFAULT_MIX",
    "random_request_stream",
    "scene_endpoints",
]
