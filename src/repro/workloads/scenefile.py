"""Scene files: thin compatibility wrappers over :mod:`repro.scene`.

The JSON interchange format (schema v1/v2), its parser, and the
disjointness/degeneracy validation all live in :class:`repro.scene.Scene`
— the single authoritative path shared by the CLI, the serving stack, and
the fuzz tools.  This module keeps the original tuple-shaped functional
API (``load_scene`` → ``(obstacles, container)``) for existing callers;
new code should use :class:`~repro.scene.Scene` directly.

The tuple shape cannot carry the v2 ``extra_points`` field: these
wrappers return geometry only, by contract.  Load scenes that register
extra points through :meth:`Scene.load` / :meth:`Scene.from_dict`.
"""

from __future__ import annotations

import pathlib
from typing import Optional, Sequence, Tuple

from repro.errors import GeometryError
from repro.geometry.polygon import RectilinearPolygon
from repro.scene import SCENE_VERSION, Obstacle, PathLike, Scene

__all__ = [
    "SCENE_VERSION",
    "Obstacle",
    "scene_to_dict",
    "scene_from_dict",
    "validate_scene",
    "save_scene",
    "load_scene",
]


def scene_to_dict(
    obstacles: Sequence[Obstacle], container: Optional[RectilinearPolygon] = None
) -> dict:
    """The v2 JSON-ready dict of a mixed obstacle scene."""
    return Scene.from_obstacles(obstacles, container).to_dict()


def scene_from_dict(data: object) -> Tuple[list[Obstacle], Optional[RectilinearPolygon]]:
    """Parse and validate a v1/v2 scene dict into ``(obstacles, container)``."""
    scene = Scene.from_dict(data)
    return _geometry_tuple(scene)


def validate_scene(
    obstacles: Sequence[Obstacle], container: Optional[RectilinearPolygon] = None
) -> None:
    """Disjointness/containment checks shared by the CLI and fuzz tools;
    raises with a one-line message naming the offending geometry."""
    Scene.from_obstacles(obstacles, container).validate()


def save_scene(
    path: PathLike,
    obstacles: Sequence[Obstacle],
    container: Optional[RectilinearPolygon] = None,
) -> pathlib.Path:
    return Scene.from_obstacles(obstacles, container).save(path)


def load_scene(path: PathLike) -> Tuple[list[Obstacle], Optional[RectilinearPolygon]]:
    scene = Scene.load(path)
    return _geometry_tuple(scene)


def _geometry_tuple(
    scene: Scene,
) -> Tuple[list[Obstacle], Optional[RectilinearPolygon]]:
    """The legacy tuple view, guarding its own contract: this API cannot
    carry extra points, so a scene whose only content is extras must be
    rejected here (returning an empty obstacle list would silently drop
    everything the file said)."""
    if not scene.obstacles:
        raise GeometryError("scene has no obstacles")
    return list(scene.obstacles), scene.container
