"""Scene files: the JSON interchange format of the CLI and the fuzz tools.

Schema v1 (still accepted)::

    {"rects": [[xlo, ylo, xhi, yhi], ...]}

Schema v2 adds polygonal obstacles and an optional container::

    {"version": 2,
     "rects": [[xlo, ylo, xhi, yhi], ...],
     "polygons": [[[x, y], [x, y], ...], ...],
     "container": [[x, y], ...]}          # optional, rectilinear convex

Every entry is validated through the real geometry constructors, so a
malformed scene fails with one :class:`~repro.errors.GeometryError`-family
message (the CLI turns that into a one-line exit).  ``scene_to_dict`` /
``scene_from_dict`` round-trip exactly, which is what makes shrunk fuzz
failures replayable: ``python -m repro query fuzz_fail.json ...``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Optional, Sequence, Tuple, Union

from repro.errors import GeometryError
from repro.geometry.polygon import RectilinearPolygon
from repro.geometry.primitives import Rect, validate_disjoint

SCENE_VERSION = 2

Obstacle = Union[Rect, RectilinearPolygon]
PathLike = Union[str, pathlib.Path]


def scene_to_dict(
    obstacles: Sequence[Obstacle], container: Optional[RectilinearPolygon] = None
) -> dict:
    """The v2 JSON-ready dict of a mixed obstacle scene."""
    rects = [[o.xlo, o.ylo, o.xhi, o.yhi] for o in obstacles if isinstance(o, Rect)]
    polygons = [
        [[x, y] for x, y in o.loop]
        for o in obstacles
        if isinstance(o, RectilinearPolygon)
    ]
    out: dict = {"version": SCENE_VERSION, "rects": rects, "polygons": polygons}
    if container is not None:
        out["container"] = [[x, y] for x, y in container.loop]
    return out


def scene_from_dict(data: object) -> Tuple[list[Obstacle], Optional[RectilinearPolygon]]:
    """Parse and validate a v1/v2 scene dict into ``(obstacles, container)``."""
    if not isinstance(data, dict):
        raise GeometryError("scene file must be a JSON object")
    version = data.get("version", 1)
    if version not in (1, SCENE_VERSION):
        raise GeometryError(
            f"scene schema version {version!r}; this build reads 1 and {SCENE_VERSION}"
        )
    obstacles: list[Obstacle] = []
    rows = data.get("rects", [])
    if not isinstance(rows, list):
        raise GeometryError("'rects' must be a list of [xlo, ylo, xhi, yhi] rows")
    for row in rows:
        try:
            obstacles.append(Rect(*map(int, row)))
        except (TypeError, ValueError) as exc:
            raise GeometryError(f"bad rect row {row!r}: {exc}") from None
    loops = data.get("polygons", [])
    if version == 1 and loops:
        raise GeometryError("schema v1 scenes cannot carry polygons")
    if not isinstance(loops, list):
        raise GeometryError("'polygons' must be a list of vertex loops")
    for loop in loops:
        try:
            obstacles.append(
                RectilinearPolygon([(int(x), int(y)) for x, y in loop])
            )
        except (TypeError, ValueError) as exc:
            raise GeometryError(f"bad polygon loop {loop!r}: {exc}") from None
    container = None
    if data.get("container") is not None:
        loop = data["container"]
        try:
            container = RectilinearPolygon([(int(x), int(y)) for x, y in loop])
        except (TypeError, ValueError) as exc:
            raise GeometryError(f"bad container loop {loop!r}: {exc}") from None
    if not obstacles:
        raise GeometryError("scene has no obstacles")
    return obstacles, container


def validate_scene(
    obstacles: Sequence[Obstacle], container: Optional[RectilinearPolygon] = None
) -> None:
    """Disjointness/containment checks shared by the CLI and fuzz tools;
    raises with a one-line message naming the offending geometry."""
    from repro.core.api import split_obstacles

    _, _, all_rects, _ = split_obstacles(obstacles)
    validate_disjoint(all_rects)
    if container is not None:
        if not container.is_convex:
            raise GeometryError(
                "container polygon is not rectilinear convex"
            )
        for r in all_rects:
            if not container.contains_rect(r):
                raise GeometryError(f"obstacle rect {r} is not inside the container")


def save_scene(
    path: PathLike,
    obstacles: Sequence[Obstacle],
    container: Optional[RectilinearPolygon] = None,
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(scene_to_dict(obstacles, container), indent=1))
    return path


def load_scene(path: PathLike) -> Tuple[list[Obstacle], Optional[RectilinearPolygon]]:
    with open(path) as fh:
        try:
            data = json.load(fh)
        except ValueError as exc:
            raise GeometryError(f"{path}: not valid JSON: {exc}") from None
    return scene_from_dict(data)
