"""Brent's theorem (Theorem 1 of the paper).

Any synchronous parallel algorithm taking time ``T`` with ``W`` total
operations can be simulated by ``p`` processors in ``O(W/p + T)``.  The
engines record ``(T, W)`` pairs; these helpers evaluate the scheduled time
for any processor count — experiment E9 plots the resulting speedup curves,
and E2/E3 derive the paper's processor counts as ``W / T``.
"""

from __future__ import annotations

import math
from typing import Sequence


def brent_time(work: int, time: int, processors: int) -> int:
    """Scheduled parallel time with ``p`` processors: ``⌈W/p⌉ + T``."""
    if processors < 1:
        raise ValueError("need at least one processor")
    return math.ceil(work / processors) + time


def speedup_table(
    work: int, time: int, processor_counts: Sequence[int]
) -> list[tuple[int, int, float, float]]:
    """Rows ``(p, T_p, speedup, efficiency)`` for a sweep of p."""
    t1 = brent_time(work, time, 1)
    out = []
    for p in processor_counts:
        tp = brent_time(work, time, p)
        s = t1 / tp
        out.append((p, tp, s, s / p))
    return out


def processors_for_time(work: int, time: int, target_time: int) -> int:
    """Smallest p with ``T_p ≤ target_time`` (∞ -> raises if T > target)."""
    if time > target_time:
        raise ValueError("even infinitely many processors cannot beat T∞")
    if target_time == time:
        return max(1, work)  # needs one processor per op in the widest step
    return max(1, math.ceil(work / (target_time - time)))
