"""Level-ancestor and LCA structures (Berkman–Vishkin [5, 6] substitute).

§8 reports a path of ``k`` segments with ``⌈k/log n⌉`` processors by
cutting the shortest-path tree path at every ``⌈log n⌉``-th node, which
needs *constant-time* level-ancestor queries.  The paper cites an
unpublished Berkman–Vishkin report; we substitute the functionally
equivalent jump-pointer + ladder scheme (Bender & Farach-Colton's
formulation): ``O(n log n)`` work, ``O(log n)`` simulated time to build,
``O(1)`` per query.  DESIGN.md records the substitution — §8's budget is
``O(n²)`` work, so the extra log factor is immaterial.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import PRAMError
from repro.pram.euler import forest_depths
from repro.pram.machine import PRAM, ambient


class LevelAncestor:
    """O(1) level-ancestor queries over a parent-pointer forest."""

    def __init__(self, parents: Sequence[Optional[int]], pram: Optional[PRAM] = None):
        pram = pram or ambient()
        n = len(parents)
        self.parents = list(parents)
        self.depth = forest_depths(parents, pram=pram)
        maxd = max(self.depth, default=0)
        logn = max(1, (max(n, 2) - 1).bit_length())
        self.LOG = max(1, (max(maxd, 1)).bit_length())
        # jump pointers: up[k][v] = 2^k-th ancestor (clamped at roots)
        up0 = [p if p is not None else v for v, p in enumerate(self.parents)]
        self.up = [up0]
        for k in range(1, self.LOG + 1):
            prev = self.up[-1]
            pram.step(n)  # one doubling round
            self.up.append([prev[prev[v]] for v in range(n)])
        del logn
        self._build_ladders(pram)

    # ------------------------------------------------------------------
    def _build_ladders(self, pram: PRAM) -> None:
        n = len(self.parents)
        order = sorted(range(n), key=lambda v: -self.depth[v])
        height = [0] * n
        best_child: list[Optional[int]] = [None] * n
        pram.charge(time=pram.log2ceil(n), work=n, width=n)
        for v in order:
            p = self.parents[v]
            if p is not None and height[v] + 1 > height[p]:
                height[p] = height[v] + 1
                best_child[p] = v
        # path tops: roots and nodes that are not their parent's best child
        self.ladder_id = [-1] * n
        self.ladder_pos = [0] * n
        self.ladders: list[list[int]] = []
        pram.charge(time=pram.log2ceil(n), work=2 * n, width=n)
        for v in range(n):
            p = self.parents[v]
            if p is not None and best_child[p] == v:
                continue
            # v is a path top: walk the preferred path down to its leaf
            path = [v]
            while best_child[path[-1]] is not None:
                path.append(best_child[path[-1]])  # type: ignore[arg-type]
            path.reverse()  # deepest first
            # ladder: extend above the top by len(path) ancestors
            ext: list[int] = []
            u: Optional[int] = self.parents[v]
            for _ in range(len(path)):
                if u is None:
                    break
                ext.append(u)
                u = self.parents[u]
            ladder = path + ext
            lid = len(self.ladders)
            self.ladders.append(ladder)
            for i, w in enumerate(path):
                self.ladder_id[w] = lid
                self.ladder_pos[w] = i

    # ------------------------------------------------------------------
    def query(self, v: int, k: int) -> int:
        """The ancestor ``k`` levels above ``v`` (O(1))."""
        if k == 0:
            return v
        if k > self.depth[v]:
            raise PRAMError(f"node {v} has no ancestor {k} levels up")
        j = k.bit_length() - 1
        if (1 << j) > k:  # pragma: no cover - bit_length makes this dead
            j -= 1
        u = self.up[j][v] if j < len(self.up) else self.up[-1][v]
        rem = k - (1 << j)
        if rem == 0:
            return u
        lad = self.ladders[self.ladder_id[u]]
        pos = self.ladder_pos[u] + rem
        if pos >= len(lad):  # pragma: no cover - ladder doubling prevents it
            raise PRAMError("ladder too short; structure corrupted")
        return lad[pos]

    def root(self, v: int) -> int:
        return self.query(v, self.depth[v])


class LCA:
    """Lowest common ancestors via binary lifting on the same jump table."""

    def __init__(self, la: LevelAncestor):
        self.la = la

    def query(self, u: int, v: int) -> int:
        la = self.la
        du, dv = la.depth[u], la.depth[v]
        if du > dv:
            u = la.query(u, du - dv)
        elif dv > du:
            v = la.query(v, dv - du)
        if u == v:
            return u
        for k in range(len(la.up) - 1, -1, -1):
            if la.up[k][u] != la.up[k][v]:
                u = la.up[k][u]
                v = la.up[k][v]
        pu = la.parents[u]
        if pu is None or pu != la.parents[v]:
            raise PRAMError("nodes are in different trees")
        return pu
