"""The simulated CREW-PRAM: step accounting and CREW write checking.

Accounting model
----------------
``pram.step(ops)`` records one synchronous parallel step in which ``ops``
processors each perform O(1) operations: ``time += 1``, ``work += ops``.
``pram.charge(time=t, work=w)`` records a sub-computation with a known
profile (used by the metered primitives: sort charges Cole's
``O(log n)``/``O(n log n)`` [10], merge Shiloach–Vishkin's
``O(log n)``/``O(n)`` [35], scan ``O(log n)``/``O(n)`` [18, 19]).

``pram.parallel(branches)`` models independent sub-machines running
side-by-side — the divide step of every algorithm in §5/§6: the parent's
time advances by the *maximum* child time, its work by the *sum*.

CREW checking
-------------
:class:`SharedArray` traces writes per step when the machine is created
with ``detect_conflicts=True``; two writes to the same cell in one step
raise :class:`ConcurrentWriteError` (even writes of equal values — the CREW
model forbids them, §1).  Reads are never restricted.
"""

from __future__ import annotations

import math
import threading
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from repro.errors import ConcurrentWriteError, PRAMError

T = TypeVar("T")

_LOCAL = threading.local()


def current_pram() -> Optional["PRAM"]:
    """The innermost active machine (None outside any ``pram_scope``)."""
    stack = getattr(_LOCAL, "stack", None)
    return stack[-1] if stack else None


@contextmanager
def pram_scope(pram: "PRAM"):
    """Make ``pram`` the ambient machine for metered primitives."""
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    stack.append(pram)
    try:
        yield pram
    finally:
        stack.pop()


class PRAM:
    """A metered CREW-PRAM.

    Attributes
    ----------
    time:
        Parallel time so far (depth of the executed step DAG).
    work:
        Total operation count so far.
    """

    __slots__ = ("name", "time", "work", "detect_conflicts", "step_id", "max_ops")

    def __init__(self, name: str = "pram", detect_conflicts: bool = False) -> None:
        self.name = name
        self.time = 0
        self.work = 0
        self.detect_conflicts = detect_conflicts
        self.step_id = 0
        self.max_ops = 0  # widest single step = processor demand

    # ------------------------------------------------------------------
    def step(self, ops: int) -> None:
        """One synchronous parallel step of ``ops`` unit operations."""
        if ops < 0:
            raise PRAMError("negative op count")
        if ops == 0:
            return
        self.step_id += 1
        self.time += 1
        self.work += ops
        if ops > self.max_ops:
            self.max_ops = ops

    def charge(self, *, time: int = 0, work: int = 0, width: int = 0) -> None:
        """Record a sub-computation with a known (time, work) profile."""
        if time < 0 or work < 0:
            raise PRAMError("negative charge")
        self.step_id += 1
        self.time += time
        self.work += work
        if width > self.max_ops:
            self.max_ops = width

    # ------------------------------------------------------------------
    def parallel(self, branches: Sequence[Callable[["PRAM"], T]]) -> list[T]:
        """Run sub-machines side by side: time += max, work += sum.

        Each branch receives a fresh child machine; this is the recursion
        combinator used by the §5/§6 divide-and-conquer (all recursive calls
        at one tree level run simultaneously on a PRAM).
        """
        results: list[T] = []
        child_times: list[int] = []
        total_work = 0
        widest = 0
        for i, fn in enumerate(branches):
            child = PRAM(f"{self.name}/{i}", self.detect_conflicts)
            with pram_scope(child):
                results.append(fn(child))
            child_times.append(child.time)
            total_work += child.work
            widest = max(widest, child.max_ops)
        self.step_id += 1
        self.time += max(child_times, default=0)
        self.work += total_work
        self.max_ops = max(self.max_ops, widest)
        return results

    # ------------------------------------------------------------------
    def snapshot(self) -> tuple[int, int]:
        return (self.time, self.work)

    def since(self, snap: tuple[int, int]) -> tuple[int, int]:
        return (self.time - snap[0], self.work - snap[1])

    def log2ceil(self, n: int) -> int:
        return max(1, math.ceil(math.log2(max(2, n))))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PRAM({self.name!r}, time={self.time}, work={self.work})"


class SharedArray:
    """A shared-memory array with optional per-step CREW write tracing."""

    __slots__ = ("pram", "cells", "_writes", "_write_step")

    def __init__(self, pram: PRAM, size_or_values: Any) -> None:
        self.pram = pram
        if isinstance(size_or_values, int):
            self.cells: list[Any] = [None] * size_or_values
        else:
            self.cells = list(size_or_values)
        self._writes: set[int] = set()
        self._write_step = -1

    def __len__(self) -> int:
        return len(self.cells)

    def __getitem__(self, i: int) -> Any:
        return self.cells[i]  # concurrent reads always allowed (CREW)

    def __setitem__(self, i: int, value: Any) -> None:
        if self.pram.detect_conflicts:
            step = self.pram.step_id
            if step != self._write_step:
                self._write_step = step
                self._writes = set()
            if i in self._writes:
                raise ConcurrentWriteError(
                    f"two processors wrote cell {i} in step {step} "
                    f"of {self.pram.name!r}"
                )
            self._writes.add(i)
        self.cells[i] = value

    def tolist(self) -> list[Any]:
        return list(self.cells)


def ambient() -> PRAM:
    """The current machine, or a throwaway one when metering is off."""
    p = current_pram()
    return p if p is not None else PRAM("unmetered")


def metered(fn: Callable[..., T]) -> Callable[..., T]:
    """Decorator: run ``fn(pram, ...)`` against the ambient machine."""

    def wrapper(*args: Any, **kwargs: Any) -> T:
        return fn(ambient(), *args, **kwargs)

    wrapper.__name__ = fn.__name__
    wrapper.__doc__ = fn.__doc__
    return wrapper


def par_steps_for(items: Iterable[Any]) -> int:
    try:
        return len(items)  # type: ignore[arg-type]
    except TypeError:
        return sum(1 for _ in items)
