"""A metered CREW-PRAM simulator.

Python's GIL prevents true shared-memory parallelism, so — per the
substitution recorded in DESIGN.md — this package *simulates* the paper's
machine model: parallel steps execute sequentially while the simulator
meters **parallel time** (the depth of the step DAG) and **work** (total
operations).  Those two numbers are exactly what the paper's theorems bound;
Brent's theorem (Theorem 1) then gives the running time on any processor
count as ``T_p = W/p + T∞``, which :mod:`repro.pram.brent` evaluates.

An optional write-tracing mode enforces the CREW contract (concurrent reads
allowed, concurrent writes forbidden) on shared arrays.
"""

from repro.pram.machine import PRAM, SharedArray, current_pram, pram_scope
from repro.pram.primitives import (
    par_map,
    par_filter,
    scan,
    reduce_par,
    parallel_merge,
    parallel_sort,
)
from repro.pram.listrank import list_rank
from repro.pram.euler import euler_tour, tree_depths, forest_depths
from repro.pram.ancestors import LevelAncestor, LCA
from repro.pram.brent import brent_time, speedup_table

__all__ = [
    "PRAM",
    "SharedArray",
    "current_pram",
    "pram_scope",
    "par_map",
    "par_filter",
    "scan",
    "reduce_par",
    "parallel_merge",
    "parallel_sort",
    "list_rank",
    "euler_tour",
    "tree_depths",
    "forest_depths",
    "LevelAncestor",
    "LCA",
    "brent_time",
    "speedup_table",
]
