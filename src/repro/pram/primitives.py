"""Metered parallel primitives: map, scan, reduce, merge, sort.

Each primitive *executes* sequentially (simulation) and *charges* the
canonical CREW-PRAM cost of the algorithm the paper cites:

===============  =========================  ==========  ============
primitive        reference                  time        work
===============  =========================  ==========  ============
``par_map``      trivial                    O(1)        O(n)
``scan``         parallel prefix [18, 19]   O(log n)    O(n)
``reduce_par``   balanced tree              O(log n)    O(n)
``parallel_merge`` Shiloach–Vishkin [35]    O(log n)    O(n)
``parallel_sort`` Cole's merge sort [10]    O(log n)    O(n log n)
===============  =========================  ==========  ============
"""

from __future__ import annotations

import math
from typing import Any, Callable, Iterable, Optional, Sequence, TypeVar

from repro.pram.machine import PRAM, ambient

T = TypeVar("T")
U = TypeVar("U")


def _log2(n: int) -> int:
    return max(1, math.ceil(math.log2(max(2, n))))


def par_map(fn: Callable[[T], U], items: Sequence[T], pram: Optional[PRAM] = None) -> list[U]:
    """Apply ``fn`` to every item in one parallel step (n processors)."""
    pram = pram or ambient()
    pram.step(len(items))
    return [fn(x) for x in items]


def par_filter(pred: Callable[[T], bool], items: Sequence[T], pram: Optional[PRAM] = None) -> list[T]:
    """Filter + compact: one evaluation step plus a prefix-sum compaction."""
    pram = pram or ambient()
    n = len(items)
    pram.step(n)  # predicate evaluation
    pram.charge(time=_log2(n), work=2 * n, width=n)  # scan-based compaction
    return [x for x in items if pred(x)]


def scan(
    values: Sequence[T],
    op: Callable[[T, T], T],
    identity: T,
    inclusive: bool = True,
    pram: Optional[PRAM] = None,
) -> list[T]:
    """Parallel prefix (Ladner–Fischer / Kruskal–Rudolph–Snir [18, 19])."""
    pram = pram or ambient()
    n = len(values)
    pram.charge(time=_log2(n), work=2 * n, width=n)
    out: list[T] = []
    acc = identity
    if inclusive:
        for v in values:
            acc = op(acc, v)
            out.append(acc)
    else:
        for v in values:
            out.append(acc)
            acc = op(acc, v)
    return out


def reduce_par(
    values: Sequence[T],
    op: Callable[[T, T], T],
    identity: T,
    pram: Optional[PRAM] = None,
) -> T:
    """Balanced-tree reduction."""
    pram = pram or ambient()
    n = len(values)
    pram.charge(time=_log2(n), work=n, width=(n + 1) // 2)
    acc = identity
    for v in values:
        acc = op(acc, v)
    return acc


def parallel_merge(
    a: Sequence[T],
    b: Sequence[T],
    key: Callable[[T], Any] = lambda x: x,
    pram: Optional[PRAM] = None,
) -> list[T]:
    """Merge two sorted sequences (Shiloach–Vishkin [35])."""
    pram = pram or ambient()
    n = len(a) + len(b)
    pram.charge(time=_log2(n), work=n, width=n)
    out: list[T] = []
    i = j = 0
    while i < len(a) and j < len(b):
        if key(a[i]) <= key(b[j]):
            out.append(a[i])
            i += 1
        else:
            out.append(b[j])
            j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out


def parallel_sort(
    items: Iterable[T],
    key: Callable[[T], Any] = lambda x: x,
    pram: Optional[PRAM] = None,
) -> list[T]:
    """Sort with Cole's parallel merge sort cost profile [10].

    The paper assumes ``V_R`` arrives pre-sorted by such a sort (§2); every
    engine charges sorting through this wrapper so the metered totals
    include it.
    """
    pram = pram or ambient()
    out = sorted(items, key=key)
    n = len(out)
    pram.charge(time=_log2(n), work=n * _log2(n), width=n)
    return out
