"""List ranking by pointer jumping (Wyllie), used by the Euler-tour
machinery [36].

``O(log n)`` time, ``O(n log n)`` work — the paper's tree computations
tolerate this (their budgets are quadratic); the optimal ``O(n)``-work
rankers would only change constants in our measurements.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import PRAMError
from repro.pram.machine import PRAM, ambient


def list_rank(succ: Sequence[Optional[int]], pram: Optional[PRAM] = None) -> list[int]:
    """Distance from each node to the end of its list.

    ``succ[i]`` is the successor index or None at a list tail.  Every node
    must reach a tail (no cycles).
    """
    pram = pram or ambient()
    n = len(succ)
    if n == 0:
        return []
    rank = [0 if s is None else 1 for s in succ]
    nxt: list[Optional[int]] = list(succ)
    rounds = 0
    while any(p is not None for p in nxt):
        rounds += 1
        if rounds > 2 * n.bit_length() + 4:
            raise PRAMError("cycle detected in list_rank input")
        pram.step(n)  # one jumping round: n processors, O(1) each
        new_rank = list(rank)
        new_nxt: list[Optional[int]] = list(nxt)
        for i in range(n):
            j = nxt[i]
            if j is not None:
                new_rank[i] = rank[i] + rank[j]
                new_nxt[i] = nxt[j]
        rank, nxt = new_rank, new_nxt
    return rank
