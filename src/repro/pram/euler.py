"""Euler-tour tree computations (Tarjan–Vishkin [36]).

The paper uses the Euler tour twice: to extract root paths from the
path-tracing forests (Lemma 6) and to compute node depths for path
reporting (§8).  Both reduce to list ranking / parallel prefix over the
tour.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import PRAMError
from repro.pram.listrank import list_rank
from repro.pram.machine import PRAM, ambient
from repro.pram.primitives import scan


def euler_tour(children: Sequence[Sequence[int]], root: int) -> list[tuple[int, int]]:
    """The Euler tour of a rooted tree as ``(node, +1/-1)`` events."""
    tour: list[tuple[int, int]] = []
    stack: list[tuple[int, int]] = [(root, 0)]
    # iterative DFS emitting enter/exit events (the tour itself)
    state: list[int] = [0] * len(children)
    stack = [root]
    tour.append((root, +1))
    while stack:
        v = stack[-1]
        if state[v] < len(children[v]):
            c = children[v][state[v]]
            state[v] += 1
            stack.append(c)
            tour.append((c, +1))
        else:
            stack.pop()
            tour.append((v, -1))
    return tour


def tree_depths(
    children: Sequence[Sequence[int]], root: int, pram: Optional[PRAM] = None
) -> list[int]:
    """Depths of all

    nodes via +1/-1 prefix sums over the Euler tour [36]."""
    pram = pram or ambient()
    tour = euler_tour(children, root)
    sums = scan([d for _v, d in tour], lambda a, b: a + b, 0, pram=pram)
    depth = [-1] * len(children)
    for (v, d), s in zip(tour, sums):
        if d == +1 and depth[v] < 0:
            depth[v] = s - 1
    return depth


def forest_depths(
    parents: Sequence[Optional[int]], pram: Optional[PRAM] = None
) -> list[int]:
    """Depth of every node in a parent-pointer forest (roots have parent
    None) by pointer jumping — this is list ranking on the parent links."""
    pram = pram or ambient()
    return list_rank(parents, pram=pram)


def root_of(parents: Sequence[Optional[int]], v: int) -> int:
    """Sequential root chase (O(depth)); metered callers use jump tables."""
    seen = 0
    while parents[v] is not None:
        v = parents[v]  # type: ignore[assignment]
        seen += 1
        if seen > len(parents):
            raise PRAMError("cycle in parent pointers")
    return v
