"""The unified metrics registry: counters, gauges, histograms.

Every layer of the system — :class:`~repro.serve.store.SceneStore`,
:class:`~repro.pipeline.StageCache`, the query server, the cluster
front-end, workers, the supervisor — registers its series here under
stable dotted names (``repro.frontend.requests``) with small, *bounded*
label sets (``scene``, ``verb``, ``worker``, ``engine``, ``stage``).
One registry snapshot is therefore the whole system's state, renderable
as OpenMetrics text (:mod:`repro.obs.openmetrics`) or returned over the
cluster protocol's ``metrics`` verb.

Design constraints, in order:

* **Cheap on the hot path.**  ``Counter.inc`` / ``Histogram.observe``
  are a dict lookup and a float add under one registry lock — no
  allocation once a series exists.  A serving layer may call them per
  request.
* **Bounded cardinality.**  Metrics systems die by label explosion, so
  a family refuses new label *combinations* past ``max_series`` (64 by
  default) with a one-line :class:`~repro.errors.ObsError` naming the
  family — a caller labeling by request id finds out immediately, not
  after the scrape payload hits a gigabyte.
* **Thread- and fork-safe.**  One lock per registry serializes writers;
  every live registry re-creates its lock in a forked child
  (``os.register_at_fork``), so a worker forked mid-record never
  deadlocks on a lock the parent held.  Forked children that want a
  clean slate call :meth:`MetricsRegistry.reset` (cluster workers do).
* **Snapshot is data.**  :meth:`MetricsRegistry.snapshot` returns plain
  JSON-able dicts, so worker registries travel over the pipe and merge
  into the front-end's exposition with a ``worker`` label added.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import ObsError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "default_registry",
    "set_default_registry",
]

#: latency histogram bounds, in seconds (sub-ms serving to slow builds)
DEFAULT_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: power-of-two size buckets (batch sizes, group sizes)
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: cap on distinct label combinations per family (see module docstring)
DEFAULT_MAX_SERIES = 64

# every live registry, so a fork can re-arm all their locks in the child
_LIVE_REGISTRIES: "weakref.WeakSet[MetricsRegistry]" = weakref.WeakSet()


def _after_fork_in_child() -> None:  # pragma: no cover - exercised via os.fork test
    for reg in list(_LIVE_REGISTRIES):
        reg._lock = threading.Lock()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_after_fork_in_child)


class _Family:
    """One named metric family: a set of series keyed by label values."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Tuple[str, ...],
        max_series: int,
    ) -> None:
        self._registry = registry
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.max_series = max_series
        self._series: Dict[Tuple[str, ...], object] = {}

    # -- label handling --------------------------------------------------
    def _key(self, labels: dict) -> Tuple[str, ...]:
        if set(labels) != set(self.labelnames):
            raise ObsError(
                f"metric {self.name!r} takes labels {list(self.labelnames)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[n]) for n in self.labelnames)
        if key not in self._series and len(self._series) >= self.max_series:
            raise ObsError(
                f"metric {self.name!r} would exceed {self.max_series} label "
                f"combinations (unbounded label value? got {dict(labels)!r})"
            )
        return key

    def _snapshot_series(self) -> list:
        raise NotImplementedError

    def snapshot(self) -> dict:
        out = {
            "type": self.kind,
            "help": self.help,
            "labels": list(self.labelnames),
            "series": self._snapshot_series(),
        }
        if self.kind == "histogram":
            out["buckets"] = list(self.buckets)  # type: ignore[attr-defined]
        return out


class Counter(_Family):
    """Monotonically increasing float per label combination."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ObsError(f"counter {self.name!r} cannot decrease (inc {amount})")
        with self._registry._lock:
            key = self._key(labels)
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._registry._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def total(self) -> float:
        """Sum over every label combination."""
        with self._registry._lock:
            return float(sum(self._series.values()))

    def _snapshot_series(self) -> list:
        return [
            {"labels": dict(zip(self.labelnames, key)), "value": float(v)}
            for key, v in sorted(self._series.items())
        ]


class Gauge(_Family):
    """A value that can go anywhere (residency bytes, queue depth)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        with self._registry._lock:
            self._series[self._key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        with self._registry._lock:
            key = self._key(labels)
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._registry._lock:
            return float(self._series.get(self._key(labels), 0.0))

    def total(self) -> float:
        with self._registry._lock:
            return float(sum(self._series.values()))

    _snapshot_series = Counter._snapshot_series


class _HistSeries:
    __slots__ = ("counts", "sum", "count")

    def __init__(self, n_buckets: int) -> None:
        self.counts = [0] * (n_buckets + 1)  # +1: the +Inf overflow bucket
        self.sum = 0.0
        self.count = 0


class Histogram(_Family):
    """Fixed-boundary histogram (cumulative on render, flat in memory)."""

    kind = "histogram"

    def __init__(self, registry, name, help, labelnames, max_series, buckets):
        super().__init__(registry, name, help, labelnames, max_series)
        bs = tuple(float(b) for b in buckets)
        if not bs or any(b2 <= b1 for b1, b2 in zip(bs, bs[1:])):
            raise ObsError(
                f"histogram {name!r} needs strictly increasing bucket bounds, "
                f"got {buckets!r}"
            )
        self.buckets = bs

    def observe(self, value: float, **labels) -> None:
        value = float(value)
        with self._registry._lock:
            key = self._key(labels)
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistSeries(len(self.buckets))
            i = 0
            for b in self.buckets:
                if value <= b:
                    break
                i += 1
            series.counts[i] += 1
            series.sum += value
            series.count += 1

    def value(self, **labels) -> dict:
        """``{"count", "sum", "counts"}`` for one label combination."""
        with self._registry._lock:
            series = self._series.get(self._key(labels))
            if series is None:
                return {"count": 0, "sum": 0.0, "counts": [0] * (len(self.buckets) + 1)}
            return {
                "count": series.count,
                "sum": series.sum,
                "counts": list(series.counts),
            }

    def _snapshot_series(self) -> list:
        return [
            {
                "labels": dict(zip(self.labelnames, key)),
                "counts": list(s.counts),
                "sum": float(s.sum),
                "count": int(s.count),
            }
            for key, s in sorted(self._series.items())
        ]


class MetricsRegistry:
    """A namespace of metric families; see the module docstring."""

    def __init__(self, max_series: int = DEFAULT_MAX_SERIES) -> None:
        self.max_series = max_series
        self._families: "Dict[str, _Family]" = {}
        self._collectors: list[Callable[[], None]] = []
        self._lock = threading.Lock()
        self.created_at = time.time()
        _LIVE_REGISTRIES.add(self)

    # -- family constructors (idempotent by name) -----------------------
    def _family(self, cls, name: str, help: str, labels: Sequence[str], **kw):
        labelnames = tuple(labels)
        with self._lock:
            fam = self._families.get(name)
            if fam is not None:
                if type(fam) is not cls or fam.labelnames != labelnames:
                    raise ObsError(
                        f"metric {name!r} already registered as {fam.kind} "
                        f"with labels {list(fam.labelnames)}"
                    )
                return fam
            fam = cls(self, name, help, labelnames, self.max_series, **kw)
            self._families[name] = fam
            return fam

    def counter(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Counter:
        return self._family(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", labels: Sequence[str] = ()) -> Gauge:
        return self._family(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        buckets: Iterable[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        return self._family(Histogram, name, help, labels, buckets=tuple(buckets))

    # -- collectors ------------------------------------------------------
    def add_collector(self, fn: Callable[[], None]) -> None:
        """Register a callable run at every :meth:`snapshot` — the hook a
        stats-holding object (store, cache, server) uses to refresh its
        gauges right before exposition instead of on every mutation."""
        with self._lock:
            self._collectors.append(fn)

    # -- introspection ---------------------------------------------------
    def snapshot(self) -> dict:
        """Every family as plain JSON-able data (collectors run first)."""
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn()  # outside the lock: collectors call gauge.set themselves
        with self._lock:
            return {name: fam.snapshot() for name, fam in sorted(self._families.items())}

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._families)

    def reset(self) -> None:
        """Drop every family, series, and collector (forked worker start)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()


_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-default registry (library layers without an explicit
    registry — the pipeline, stage cache — record here)."""
    return _DEFAULT


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process default (tests; forked workers reset instead)."""
    global _DEFAULT
    old = _DEFAULT
    _DEFAULT = registry
    return old
