"""repro.obs — the unified observability subsystem.

Three legs, one package:

* **Metrics** (:mod:`repro.obs.registry`): a thread/fork-safe
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms under stable dotted names, rendered as OpenMetrics text
  (:mod:`repro.obs.openmetrics`) by the front-end's ``GET /metrics``
  endpoint and returned raw by the cluster's ``metrics`` verb.
* **Tracing** (:mod:`repro.obs.tracing`): per-request span trees
  (admission → queue wait → worker RPC → service, plus redirect hops)
  in a bounded :class:`SpanBuffer`, dumped as JSON or Chrome
  ``chrome://tracing`` format via ``python -m repro trace``.
* **Structured logs** (:mod:`repro.obs.logging`): rate-limited
  one-JSON-object-per-line subsystem loggers.

:mod:`repro.obs.recorders` holds the sample-keeping recorders
(:class:`LatencyRecorder`, :class:`BatchHistogram`) that used to live in
``repro.serve.metrics``; that module remains as a deprecated shim.
"""

from repro.obs.logging import JsonLogger, get_logger, set_log_stream
from repro.obs.openmetrics import (
    CONTENT_TYPE,
    count_series,
    merge_snapshots,
    render_openmetrics,
)
from repro.obs.recorders import (
    DEFAULT_PERCENTILES,
    BatchHistogram,
    LatencyRecorder,
    format_latency,
    merge_scene_counts,
    percentile,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from repro.obs.tracing import (
    SpanBuffer,
    chrome_trace,
    finish,
    new_span_id,
    new_trace_id,
    span,
)

__all__ = [
    # registry
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "default_registry",
    "set_default_registry",
    # exposition
    "render_openmetrics",
    "merge_snapshots",
    "count_series",
    "CONTENT_TYPE",
    # recorders (ex serve.metrics)
    "LatencyRecorder",
    "BatchHistogram",
    "percentile",
    "format_latency",
    "merge_scene_counts",
    "DEFAULT_PERCENTILES",
    # tracing
    "span",
    "finish",
    "new_trace_id",
    "new_span_id",
    "SpanBuffer",
    "chrome_trace",
    # logging
    "JsonLogger",
    "get_logger",
    "set_log_stream",
]
