"""Structured, rate-limited JSON log lines — one logger per subsystem.

``get_logger("frontend").event("shed", scene="demo", depth=128)`` emits
one JSON object per line on stderr::

    {"ts": 1719850000.123, "subsystem": "frontend", "event": "shed",
     "scene": "demo", "depth": 128}

Machine-parseable (one ``json.loads`` per line), stable keys first, and
*rate-limited per (subsystem, event)* — a shed storm logs the first
line, then at most one line per ``min_interval_s`` carrying a
``suppressed`` count for what it swallowed.  Serving loops can log from
the hot path without turning an overload into an I/O storm that makes
the overload worse.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Callable, Dict, Optional, TextIO

__all__ = ["JsonLogger", "get_logger", "set_log_stream"]

_lock = threading.Lock()
_loggers: Dict[str, "JsonLogger"] = {}
_stream: Optional[TextIO] = None  # None -> sys.stderr at emit time


def set_log_stream(stream: Optional[TextIO]) -> None:
    """Redirect every logger (tests capture; ``None`` restores stderr)."""
    global _stream
    with _lock:
        _stream = stream


class JsonLogger:
    """One subsystem's logger; see the module docstring."""

    def __init__(
        self,
        subsystem: str,
        min_interval_s: float = 1.0,
        time_fn: Callable[[], float] = time.time,
    ) -> None:
        self.subsystem = subsystem
        self.min_interval_s = min_interval_s
        self._time = time_fn
        self._lock = threading.Lock()
        # (event) -> [last_emit_ts, suppressed_count]
        self._gates: Dict[str, list] = {}
        self.emitted = 0
        self.suppressed = 0

    def event(self, event: str, *, force: bool = False, **fields) -> bool:
        """Emit one line; ``False`` if rate-limiting swallowed it."""
        now = self._time()
        with self._lock:
            gate = self._gates.setdefault(event, [-float("inf"), 0])
            if not force and now - gate[0] < self.min_interval_s:
                gate[1] += 1
                self.suppressed += 1
                return False
            suppressed, gate[0], gate[1] = gate[1], now, 0
            self.emitted += 1
        record = {"ts": now, "subsystem": self.subsystem, "event": event}
        if suppressed:
            record["suppressed"] = suppressed
        record.update(fields)
        line = json.dumps(record, separators=(",", ":"), default=str)
        with _lock:
            stream = _stream if _stream is not None else sys.stderr
            try:
                stream.write(line + "\n")
                stream.flush()
            except (ValueError, OSError):  # closed stream at interpreter exit
                pass
        return True


def get_logger(subsystem: str, min_interval_s: float = 1.0) -> JsonLogger:
    """The process-wide logger for ``subsystem`` (created on first use)."""
    with _lock:
        logger = _loggers.get(subsystem)
        if logger is None:
            logger = _loggers[subsystem] = JsonLogger(subsystem, min_interval_s)
        return logger
