"""Request tracing: spans, a bounded span buffer, Chrome-trace export.

A *span* here is a plain dict — it has to cross a multiprocessing pipe
as JSON and come back unchanged — with the usual distributed-tracing
shape:

``{"trace_id", "span_id", "parent_id", "name", "t0", "dur", "attrs"}``

``t0`` is a ``time.time()`` epoch float (seconds), ``dur`` a float in
seconds.  ``attrs`` is a small string-keyed dict (worker id, batch
size, redirect count...).  IDs are random 16-hex-char strings; the
front-end generates the trace id at admission (or adopts one the client
sent) and threads it through queue, worker RPC, and redirect hops, so
one ``trace_id`` stitches the whole request tree back together.

:class:`SpanBuffer` is the bounded in-memory sink — a ring of the most
recent spans, drained by the ``trace`` protocol verb and ``python -m
repro trace``.  :func:`chrome_trace` renders any span list in the
Chrome trace-event format (load it at ``chrome://tracing`` or
https://ui.perfetto.dev).
"""

from __future__ import annotations

import collections
import secrets
import threading
import time
from typing import Dict, Iterable, List, Optional

__all__ = [
    "new_trace_id",
    "new_span_id",
    "span",
    "finish",
    "SpanBuffer",
    "chrome_trace",
]


def new_trace_id() -> str:
    return secrets.token_hex(8)


def new_span_id() -> str:
    return secrets.token_hex(8)


def span(
    name: str,
    trace_id: str,
    parent_id: Optional[str] = None,
    t0: Optional[float] = None,
    **attrs,
) -> dict:
    """Open a span dict; close it with :func:`finish` (sets ``dur``)."""
    return {
        "trace_id": trace_id,
        "span_id": new_span_id(),
        "parent_id": parent_id,
        "name": name,
        "t0": time.time() if t0 is None else float(t0),
        "dur": None,
        "attrs": {k: v for k, v in attrs.items() if v is not None},
    }


def finish(sp: dict, t1: Optional[float] = None, **attrs) -> dict:
    """Close a span (idempotent: the first ``finish`` wins on ``dur``)."""
    if sp.get("dur") is None:
        end = time.time() if t1 is None else float(t1)
        sp["dur"] = max(0.0, end - sp["t0"])
    if attrs:
        sp["attrs"].update({k: v for k, v in attrs.items() if v is not None})
    return sp


class SpanBuffer:
    """A thread-safe ring of the most recent finished spans.

    Bounded so tracing can stay on in a serving process indefinitely:
    the buffer keeps the last ``capacity`` spans and counts what it
    dropped.  ``snapshot`` filters by trace id and caps the return size,
    newest last, so the ``trace`` verb's response stays a sane frame.
    """

    def __init__(self, capacity: int = 2048) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._spans: "collections.deque[dict]" = collections.deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.added = 0

    def add(self, sp: dict) -> None:
        with self._lock:
            self.added += 1
            self._spans.append(sp)

    def extend(self, spans: Iterable[dict]) -> None:
        with self._lock:
            for sp in spans:
                self.added += 1
                self._spans.append(sp)

    def snapshot(
        self, limit: Optional[int] = None, trace_id: Optional[str] = None
    ) -> List[dict]:
        """The most recent spans, oldest first (optionally one trace)."""
        with self._lock:
            spans = list(self._spans)
        if trace_id is not None:
            spans = [sp for sp in spans if sp.get("trace_id") == trace_id]
        if limit is not None and limit >= 0:
            spans = spans[-limit:]
        return [dict(sp) for sp in spans]

    @property
    def dropped(self) -> int:
        with self._lock:
            return max(0, self.added - len(self._spans))

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


def chrome_trace(spans: Iterable[dict]) -> dict:
    """Spans as a Chrome trace-event document (``chrome://tracing``).

    Every span becomes one complete (``ph: "X"``) event; timestamps and
    durations are microseconds per the format.  Spans are grouped onto
    tracks by trace id (``pid``) and span name (``tid``) so concurrent
    requests render as separate lanes with their hops stacked.
    """
    events: List[dict] = []
    tid_of: Dict[str, int] = {}
    pid_of: Dict[str, int] = {}
    for sp in spans:
        name = str(sp.get("name", "span"))
        trace_id = str(sp.get("trace_id", ""))
        pid = pid_of.setdefault(trace_id, len(pid_of) + 1)
        tid = tid_of.setdefault(name, len(tid_of) + 1)
        args = dict(sp.get("attrs") or {})
        args["trace_id"] = trace_id
        if sp.get("span_id"):
            args["span_id"] = sp["span_id"]
        if sp.get("parent_id"):
            args["parent_id"] = sp["parent_id"]
        events.append(
            {
                "name": name,
                "ph": "X",
                "ts": float(sp.get("t0", 0.0)) * 1e6,
                "dur": float(sp.get("dur") or 0.0) * 1e6,
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}
