"""Sample-keeping recorders: latency reservoirs and batch-size buckets.

These complement the :mod:`repro.obs.registry` families: a
:class:`~repro.obs.registry.Histogram` has fixed buckets and merges
across processes, while :class:`LatencyRecorder` keeps (a reservoir of)
the actual samples and answers exact percentiles over what it kept —
the number a human reads in a benchmark report.  Serving layers record
into both: the registry for scraping, the reservoir for ``stats``
summaries.

Both recorders are thread-safe (one lock each; the serving layers record
from worker threads and asyncio executor threads alike).

This module is the home of what used to live in ``repro.serve.metrics``;
that module remains as a deprecated re-export shim.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, Iterable, Mapping, Optional, Sequence

#: percentiles every summary reports, in order
DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) by linear interpolation.

    Matches ``numpy.percentile``'s default for small samples without
    pulling an array allocation into the hot recording path; ``nan`` on
    an empty sample.
    """
    if not values:
        return float("nan")
    data = sorted(values)
    if len(data) == 1:
        return float(data[0])
    rank = (len(data) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(data) - 1)
    frac = rank - lo
    return float(data[lo] * (1.0 - frac) + data[hi] * frac)


class LatencyRecorder:
    """Reservoir of latency samples (seconds in, milliseconds out).

    ``record`` keeps the first ``capacity`` samples verbatim, then
    switches to uniform reservoir sampling, so ``summary`` is exact for
    short runs and an unbiased estimate for unbounded ones.  ``count``
    always reflects every observation.
    """

    def __init__(self, capacity: int = 8192, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._samples: list[float] = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        with self._lock:
            self.count += 1
            self.total += seconds
            if seconds > self.max:
                self.max = seconds
            if len(self._samples) < self.capacity:
                self._samples.append(seconds)
            else:
                k = self._rng.randrange(self.count)
                if k < self.capacity:
                    self._samples[k] = seconds

    def extend(self, seconds: Iterable[float]) -> None:
        for s in seconds:
            self.record(s)

    def summary(
        self, percentiles: Sequence[float] = DEFAULT_PERCENTILES
    ) -> dict[str, float]:
        """``{"count", "mean_ms", "max_ms", "p50_ms", ...}`` (ms keys)."""
        with self._lock:
            samples = list(self._samples)
            count, total, mx = self.count, self.total, self.max
        out: dict[str, float] = {
            "count": float(count),
            "mean_ms": (total / count) * 1e3 if count else float("nan"),
            "max_ms": mx * 1e3,
        }
        for q in percentiles:
            key = f"p{q:g}_ms"
            out[key] = percentile(samples, q) * 1e3
        return out


def _bucket_label(lo: int, hi: int) -> str:
    return str(lo) if lo == hi else f"{lo}-{hi}"


class BatchHistogram:
    """Power-of-two batch-size buckets: ``1``, ``2``, ``3-4``, ``5-8``, …

    The interesting question about a micro-batching window is "do batches
    actually fill, or is everything a batch of one?" — doubling buckets
    answer it in a handful of keys no matter the batch cap.
    """

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}  # bucket upper bound -> count
        self._lock = threading.Lock()
        self.observations = 0
        self.items = 0

    def observe(self, size: int) -> None:
        if size < 1:
            raise ValueError(f"batch size must be >= 1, got {size}")
        hi = 1
        while hi < size:
            hi <<= 1
        with self._lock:
            self.observations += 1
            self.items += size
            self._counts[hi] = self._counts.get(hi, 0) + 1

    def as_dict(self) -> dict[str, int]:
        """Label -> count, ascending by bucket (empty buckets omitted)."""
        with self._lock:
            counts = dict(self._counts)
        out: dict[str, int] = {}
        for hi in sorted(counts):
            lo = hi // 2 + 1 if hi > 2 else hi
            out[_bucket_label(lo, hi)] = counts[hi]
        return out

    def merge(self, other: Mapping[str, int]) -> None:
        """Fold a serialized ``as_dict`` back in (cluster aggregation).

        Exact sizes are gone after bucketing, so ``items`` (and thus
        :meth:`mean`) is credited at each bucket's upper bound — an
        upper estimate, consistent across repeated merges."""
        with self._lock:
            for label, count in other.items():
                hi = int(label.split("-")[-1])
                self._counts[hi] = self._counts.get(hi, 0) + int(count)
                self.observations += int(count)
                self.items += hi * int(count)

    def mean(self) -> float:
        with self._lock:
            return self.items / self.observations if self.observations else float("nan")


def format_latency(summary: Mapping[str, float]) -> str:
    """One human line: ``p50 0.42ms  p95 1.3ms  p99 2.0ms  max 5.1ms``."""
    parts = []
    for key in ("p50_ms", "p95_ms", "p99_ms", "max_ms"):
        if key in summary:
            parts.append(f"{key[:-3]} {summary[key]:.3g}ms")
    return "  ".join(parts)


def merge_scene_counts(
    into: Dict[str, int], other: Optional[Mapping[str, int]]
) -> Dict[str, int]:
    """Accumulate per-scene request counters (cluster stats aggregation)."""
    for name, count in (other or {}).items():
        into[name] = into.get(name, 0) + int(count)
    return into
