"""OpenMetrics text exposition of a registry snapshot.

:func:`render_openmetrics` turns :meth:`MetricsRegistry.snapshot` data
into the OpenMetrics text format (the superset of the Prometheus
exposition format that ends with ``# EOF``), and
:func:`merge_snapshots` folds several snapshots into one — the cluster
front-end merges every worker's snapshot under an added
``worker="<id>"`` label before rendering, so one ``GET /metrics``
scrape covers the whole fleet.

Naming: internal metric names are dotted (``repro.frontend.requests``);
exposition rewrites ``.`` to ``_`` (OpenMetrics names admit only
``[a-zA-Z0-9_:]``) and appends the conventional ``_total`` suffix to
counter samples.  ``metrics.md`` at the repo root documents the naming
scheme and the full series table.
"""

from __future__ import annotations

import math
from typing import Mapping, Optional

__all__ = ["render_openmetrics", "merge_snapshots", "CONTENT_TYPE"]

#: the scrape response content type (OpenMetrics 1.0 text)
CONTENT_TYPE = "application/openmetrics-text; version=1.0.0; charset=utf-8"


def _name(dotted: str) -> str:
    return dotted.replace(".", "_").replace("-", "_")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: Mapping[str, str], extra: str = "") -> str:
    parts = [f'{_name(k)}="{_escape(str(v))}"' for k, v in sorted(labels.items())]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _num(v: float) -> str:
    v = float(v)
    if math.isnan(v):
        return "NaN"
    if math.isinf(v):
        return "+Inf" if v > 0 else "-Inf"
    if v == int(v) and abs(v) < 1e15:
        return str(int(v))
    return repr(v)


def render_openmetrics(snapshot: Mapping[str, dict]) -> str:
    """One registry snapshot (see :meth:`MetricsRegistry.snapshot`) as
    OpenMetrics text, families sorted by name, ``# EOF`` terminated."""
    lines: list[str] = []
    for dotted in sorted(snapshot):
        fam = snapshot[dotted]
        name = _name(dotted)
        kind = fam.get("type", "untyped")
        lines.append(f"# TYPE {name} {kind}")
        if fam.get("help"):
            lines.append(f"# HELP {name} {_escape(fam['help'])}")
        if kind == "histogram":
            bounds = [float(b) for b in fam.get("buckets", [])]
            for series in fam.get("series", []):
                labels = series.get("labels", {})
                counts = [int(c) for c in series.get("counts", [])]
                cum = 0
                for bound, count in zip(bounds, counts):
                    cum += count
                    extra = f'le="{_num(bound)}"'
                    lines.append(f"{name}_bucket{_labels(labels, extra)} {cum}")
                total = int(series.get("count", sum(counts)))
                inf_extra = 'le="+Inf"'
                lines.append(f"{name}_bucket{_labels(labels, inf_extra)} {total}")
                lines.append(f"{name}_sum{_labels(labels)} {_num(series.get('sum', 0.0))}")
                lines.append(f"{name}_count{_labels(labels)} {total}")
        else:
            suffix = "_total" if kind == "counter" else ""
            for series in fam.get("series", []):
                lines.append(
                    f"{name}{suffix}{_labels(series.get('labels', {}))} "
                    f"{_num(series.get('value', 0.0))}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def merge_snapshots(
    base: Mapping[str, dict],
    others: Mapping[str, Mapping[str, dict]],
    label: str = "worker",
) -> dict:
    """Fold several registry snapshots into one.

    ``others`` maps a label value (e.g. a worker id) to that process's
    snapshot; every merged series gains ``label=<value>``, so same-named
    families from different workers stay distinct series instead of
    silently summing.  ``base`` series are carried unchanged.
    """
    merged: dict = {}
    for dotted, fam in base.items():
        merged[dotted] = {
            **{k: v for k, v in fam.items() if k != "series"},
            "series": [dict(s) for s in fam.get("series", [])],
        }
    for value, snap in sorted(others.items()):
        for dotted, fam in snap.items():
            dst = merged.get(dotted)
            if dst is None:
                dst = merged[dotted] = {
                    **{k: v for k, v in fam.items() if k != "series"},
                    "labels": list(fam.get("labels", [])) + [label],
                    "series": [],
                }
            for series in fam.get("series", []):
                s = dict(series)
                s["labels"] = {**series.get("labels", {}), label: str(value)}
                dst["series"].append(s)
    return merged


def count_series(snapshot: Mapping[str, dict]) -> int:
    """Distinct series across every family (scrape-size sanity checks)."""
    return sum(len(fam.get("series", [])) for fam in snapshot.values())
