"""Exception hierarchy for :mod:`repro`.

Every error raised on purpose by the library derives from :class:`ReproError`
so callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GeometryError(ReproError):
    """Invalid geometric input (malformed rectangle, non-monotone chain...)."""


class DisjointnessError(GeometryError):
    """Obstacle set violates the pairwise-disjoint-interiors requirement."""


class ConvexityError(GeometryError):
    """A polygon that must be rectilinear convex is not."""


class PRAMError(ReproError):
    """Misuse of the simulated CREW-PRAM."""


class ConcurrentWriteError(PRAMError):
    """Two processors wrote the same shared cell in one step (CREW violation)."""


class MongeError(ReproError):
    """A matrix required to be Monge is not (and no fallback was allowed)."""


class EngineError(ReproError, ValueError):
    """An unknown or misconfigured build engine was requested.

    Also a :class:`ValueError`: engine names used to be checked by a
    string ``if/elif`` that raised ``ValueError``, and callers catching
    that keep working against the registry.
    """


class QueryError(ReproError):
    """A query was made against a structure that cannot answer it."""


class SnapshotError(ReproError):
    """A snapshot artifact is corrupt, truncated, or format-incompatible."""


class ClusterError(ReproError):
    """A cluster component failed: bad wire frame, dead worker, shm attach."""


class ObsError(ReproError):
    """Metrics/tracing misuse: bad label set, cardinality overflow, bad buckets."""
