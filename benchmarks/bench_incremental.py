"""INC — incremental repair economics: ``update_index`` vs cold rebuild.

The ISSUE's acceptance numbers, measured and recorded in
``BENCH_incremental.json``: on an n≈192 scene, repairing a
single-obstacle **delete** through :func:`repro.pipeline.update_index`
must

* reuse ≥ 50% of the solve-stage subtree cache entries
  (``reused_fraction`` in the repair provenance), and
* land ≥ 5× faster than a cold rebuild of the mutated scene,

while answering **byte-identically** to that cold rebuild (asserted
unconditionally — exact integer matrices, same root point order).  The
insert direction is also measured and reported, unasserted: re-inserting
shifts the separator frontier, so its reuse is structurally lower.

Smoke mode (``BENCH_SMOKE=1``) shrinks the scene and skips the ratio
floors (CI machines are noisy); the JSON artifact is always written.
"""

import time

import numpy as np

from benchmarks.common import SMOKE, emit, emit_json, format_table
from repro.pipeline import StageCache, build_index, update_index
from repro.scene import Scene, SceneDelta
from repro.workloads.generators import random_disjoint_rects

N = 24 if SMOKE else 192
SEED = 7
MIN_REUSED_FRACTION = 0.5
MIN_REPAIR_SPEEDUP = 5.0


def _roomy_cache() -> StageCache:
    # every separator subtree of the incremental build must stay
    # resident for the repair to find it; the process default (64
    # entries / 32 MB) is sized for whole-build artifacts, not this
    return StageCache(max_entries=10_000, max_bytes=1 << 30)


def _cold_build_s(scene: Scene) -> tuple[float, object]:
    t0 = time.perf_counter()
    idx = build_index(scene, cache=StageCache(max_entries=64, max_bytes=256 << 20))
    return time.perf_counter() - t0, idx


def test_incremental_repair_beats_cold_rebuild():
    scene = Scene.from_obstacles(random_disjoint_rects(N, seed=SEED))
    cache = _roomy_cache()
    t0 = time.perf_counter()
    idx = build_index(scene, cache=cache, incremental=True)
    seed_build_s = time.perf_counter() - t0

    victim = scene.rects[len(scene.rects) // 2]  # a mid-scene obstacle

    # -- delete: the asserted direction ---------------------------------
    t0 = time.perf_counter()
    repaired = update_index(idx, SceneDelta.delete(victim), cache=cache)
    del_repair_s = time.perf_counter() - t0
    del_rep = repaired.provenance["repair"]
    del_cold_s, del_cold = _cold_build_s(repaired.scene)
    assert list(repaired.index.points) == list(del_cold.index.points)
    assert (
        np.asarray(repaired.index.matrix).tobytes()
        == np.asarray(del_cold.index.matrix).tobytes()
    )
    del_speedup = del_cold_s / max(del_repair_s, 1e-9)

    # -- insert back: measured, reported, not asserted ------------------
    t0 = time.perf_counter()
    restored = update_index(repaired, SceneDelta.insert(victim), cache=cache)
    ins_repair_s = time.perf_counter() - t0
    ins_rep = restored.provenance["repair"]
    ins_cold_s, ins_cold = _cold_build_s(restored.scene)
    assert (
        np.asarray(restored.index.matrix).tobytes()
        == np.asarray(ins_cold.index.matrix).tobytes()
    )
    ins_speedup = ins_cold_s / max(ins_repair_s, 1e-9)

    table = format_table(
        ["edit", "repair s", "cold s", "speedup", "reused frac", "reused", "recomputed"],
        [
            ["delete", del_repair_s, del_cold_s, f"{del_speedup:.1f}x",
             f"{del_rep['reused_fraction']:.2f}",
             del_rep["reused_entries"], del_rep["recomputed_entries"]],
            ["insert", ins_repair_s, ins_cold_s, f"{ins_speedup:.1f}x",
             f"{ins_rep['reused_fraction']:.2f}",
             ins_rep["reused_entries"], ins_rep["recomputed_entries"]],
        ],
        title=(
            f"INC: single-obstacle repair vs cold rebuild, n={N} rects "
            f"(seed incremental build {seed_build_s:.2f}s; both repairs "
            f"byte-identical to their cold rebuilds)"
        ),
    )
    emit("INC_incremental", table)
    emit_json(
        "incremental",
        {
            "n_rects": N,
            "seed": SEED,
            "seed_build_s": seed_build_s,
            "delete": {
                "repair_s": del_repair_s,
                "cold_rebuild_s": del_cold_s,
                "speedup": del_speedup,
                "repair": del_rep,
            },
            "insert": {
                "repair_s": ins_repair_s,
                "cold_rebuild_s": ins_cold_s,
                "speedup": ins_speedup,
                "repair": ins_rep,
            },
            "cache": cache.stats(),
            "floors": {
                "delete_reused_fraction": MIN_REUSED_FRACTION,
                "delete_speedup": MIN_REPAIR_SPEEDUP,
            },
        },
    )
    if not SMOKE:
        assert del_rep["reused_fraction"] >= MIN_REUSED_FRACTION, (
            f"delete repair reused {del_rep['reused_fraction']:.2f} of the "
            f"solve cache, floor is {MIN_REUSED_FRACTION}"
        )
        assert del_speedup >= MIN_REPAIR_SPEEDUP, (
            f"delete repair speedup {del_speedup:.2f}x under the "
            f"{MIN_REPAIR_SPEEDUP}x floor"
        )


if __name__ == "__main__":
    test_incremental_repair_beats_cold_rebuild()
