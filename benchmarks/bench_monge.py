"""E8 — Lemmas 3–5: Monge (min,+) multiplication.

Paper claims: two Monge matrices multiply with O(αβ) work (vs naive αβγ)
in O(log γ) time.  Measured: charged work ratio grows linearly with the
inner dimension; wall-clock crossover between the vectorised naive product
and the SMAWK product is reported (pure-Python SMAWK has bigger constants,
which is exactly the kind of fact a reproduction should record).
"""

import time

import numpy as np
import pytest

from benchmarks.common import emit, fit_loglog, format_table
from repro.monge.multiply import minplus_monge, minplus_naive
from repro.pram import PRAM

SIZES = [32, 64, 128, 256]


def random_monge(rows, cols, seed):
    rng = np.random.default_rng(seed)
    xs = np.sort(rng.integers(0, 4 * rows, rows))
    ys = np.sort(rng.integers(0, 4 * cols, cols))
    return np.abs(xs[:, None] - ys[None, :]).astype(float)


def test_e8_monge_multiply(benchmark):
    rows = []
    ns, fast_works = [], []
    for m in SIZES:
        a = random_monge(m, m, 1)
        b = random_monge(m, m, 2)
        p_fast, p_slow = PRAM(), PRAM()
        t0 = time.perf_counter()
        fast = minplus_monge(a, b, p_fast, check=False)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = minplus_naive(a, b, p_slow)
        t_slow = time.perf_counter() - t0
        assert (fast == slow).all()
        ns.append(m)
        fast_works.append(p_fast.work)
        rows.append(
            [
                m,
                p_fast.work,
                p_slow.work,
                round(p_slow.work / p_fast.work, 1),
                round(t_fast * 1e3, 1),
                round(t_slow * 1e3, 1),
            ]
        )
    w_slope = fit_loglog(ns, fast_works)
    text = format_table(
        ["m", "SMAWK work", "naive work", "work ratio", "SMAWK ms", "naive(np) ms"],
        rows,
        title=(
            "E8  Lemma 3 Monge (min,+) product, m×m×m\n"
            f"measured SMAWK work ~ m^{w_slope:.2f} (paper 2.0; naive 3.0); "
            "work ratio must grow ~m"
        ),
    )
    emit("E8_monge", text)
    assert w_slope < 2.4
    ratios = [r[3] for r in rows]
    assert ratios[-1] > 3 * ratios[0]
    a = random_monge(128, 128, 1)
    b = random_monge(128, 128, 2)
    benchmark(lambda: minplus_monge(a, b, PRAM(), check=False))
