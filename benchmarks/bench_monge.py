"""E8 — Lemmas 3–5: Monge (min,+) multiplication.

Paper claims: two Monge matrices multiply with O(αβ) work (vs naive αβγ)
in O(log γ) time.  Measured: charged work ratio grows linearly with the
inner dimension, and — since the batched array SMAWK kernel
(``smawk_row_minima_array``) replaced the per-row callable recursion —
the SMAWK product also wins on wall clock well before the naive product's
cubic temporary becomes the bottleneck.  ``SEED_SMAWK_MS`` records the
pre-vectorization wall times so the speedup stays visible in the table
and in ``BENCH_monge.json``.
"""

import time

import numpy as np
import pytest

from benchmarks.common import SEED_ASSERT, SMOKE, emit, emit_json, fit_loglog, format_table
from repro.monge.multiply import minplus_monge, minplus_naive
from repro.pram import PRAM

SIZES = [32, 64] if SMOKE else [32, 64, 128, 256]

#: wall-clock ms of the per-row callable-SMAWK product at the seed commit
#: (same sweep, same seeds) — the "before" column of the vectorization PR
SEED_SMAWK_MS = {32: 3.72, 64: 15.87, 128: 54.19, 256: 213.37}


def random_monge(rows, cols, seed):
    rng = np.random.default_rng(seed)
    xs = np.sort(rng.integers(0, 4 * rows, rows))
    ys = np.sort(rng.integers(0, 4 * cols, cols))
    return np.abs(xs[:, None] - ys[None, :]).astype(float)


def test_e8_monge_multiply(benchmark):
    rows = []
    ns, fast_works = [], []
    json_rows = []
    for m in SIZES:
        a = random_monge(m, m, 1)
        b = random_monge(m, m, 2)
        p_fast, p_slow = PRAM(), PRAM()
        t0 = time.perf_counter()
        fast = minplus_monge(a, b, p_fast, check=False)
        t_fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        slow = minplus_naive(a, b, p_slow)
        t_slow = time.perf_counter() - t0
        assert (fast == slow).all()
        ns.append(m)
        fast_works.append(p_fast.work)
        seed_ms = SEED_SMAWK_MS.get(m)
        speedup = round(seed_ms / (t_fast * 1e3), 1) if seed_ms else None
        rows.append(
            [
                m,
                p_fast.work,
                p_slow.work,
                round(p_slow.work / p_fast.work, 1),
                round(t_fast * 1e3, 2),
                seed_ms if seed_ms is not None else float("nan"),
                round(t_slow * 1e3, 1),
            ]
        )
        json_rows.append(
            {
                "m": m,
                "smawk_work": p_fast.work,
                "naive_work": p_slow.work,
                "smawk_ms": round(t_fast * 1e3, 3),
                "seed_smawk_ms": seed_ms,
                "naive_ms": round(t_slow * 1e3, 3),
                "speedup_vs_seed": speedup,
            }
        )
    w_slope = fit_loglog(ns, fast_works)
    text = format_table(
        ["m", "SMAWK work", "naive work", "work ratio", "SMAWK ms",
         "seed SMAWK ms", "naive(np) ms"],
        rows,
        title=(
            "E8  Lemma 3 Monge (min,+) product, m×m×m\n"
            f"measured SMAWK work ~ m^{w_slope:.2f} (paper 2.0; naive 3.0); "
            "work ratio must grow ~m"
        ),
    )
    emit("E8_monge", text)
    emit_json(
        "monge",
        {
            "bench": "E8 Monge (min,+) product",
            "kernel": "smawk_row_minima_array (batched array SMAWK)",
            "work_slope": round(w_slope, 3),
            "rows": json_rows,
        },
    )
    if not SMOKE:
        assert w_slope < 2.4
        ratios = [r[3] for r in rows]
        assert ratios[-1] > 3 * ratios[0]
        # same-machine check (portable): the array engine vs the seed's
        # callable engine on the largest sweep point, best of 3 each so a
        # single scheduling stall cannot fail the assertion
        m = SIZES[-1]
        a = random_monge(m, m, 1)
        b = random_monge(m, m, 2)
        t_callable = t_array = float("inf")
        for _ in range(3):
            t0 = time.perf_counter()
            minplus_monge(a, b, PRAM(), check=False, engine="callable")
            t_callable = min(t_callable, time.perf_counter() - t0)
            t0 = time.perf_counter()
            minplus_monge(a, b, PRAM(), check=False, engine="array")
            t_array = min(t_array, time.perf_counter() - t0)
        assert t_callable >= 3 * t_array, (
            f"array SMAWK must be ≥3× the callable SMAWK at m={m}: "
            f"{t_callable * 1e3:.1f}ms vs {t_array * 1e3:.1f}ms"
        )
        if SEED_ASSERT:
            largest = json_rows[-1]
            assert largest["speedup_vs_seed"] >= 3, (
                f"array SMAWK must be ≥3× the seed callable SMAWK at "
                f"m={largest['m']}: got {largest['speedup_vs_seed']}× "
                "(baselines were recorded on the PR machine — on much "
                "slower hardware set BENCH_SEED_ASSERT=0 to skip this "
                "comparison)"
            )
    a = random_monge(128, 128, 1)
    b = random_monge(128, 128, 2)
    benchmark(lambda: minplus_monge(a, b, PRAM(), check=False))
