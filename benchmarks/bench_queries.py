"""E4 — abstract + §6.4: query costs.

Paper claims: one processor answers a vertex-pair length in O(1) and an
arbitrary-pair length in O(log n).  Measured: wall-clock nanoseconds per
query across n (flat for vertex pairs, logarithmic for arbitrary pairs).
"""

import time

import pytest

from benchmarks.common import emit, fit_loglog, format_table, log2
from repro.core.query import QueryStructure
from repro.core.sequential import SequentialEngine
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects, random_free_points

SIZES = [16, 32, 64, 128]


def _time_per_call(fn, pairs, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        for p, q in pairs:
            fn(p, q)
        best = min(best, (time.perf_counter() - t0) / len(pairs))
    return best * 1e6  # µs


def test_e4_query_costs(benchmark):
    rows, ns, vertex_us, arb_us = [], [], [], []
    for n in SIZES:
        rects = random_disjoint_rects(n, seed=2)
        idx = SequentialEngine(rects).build()
        qs = QueryStructure(rects, idx, PRAM())
        verts = idx.points
        vpairs = [(verts[i], verts[-1 - i]) for i in range(min(200, len(verts) // 2))]
        free = random_free_points(rects, 40, seed=3)
        apairs = [(free[i], free[(i + 7) % len(free)]) for i in range(len(free))]
        v_us = _time_per_call(idx.length, vpairs)
        a_us = _time_per_call(qs.length, apairs)
        ns.append(n)
        vertex_us.append(v_us)
        arb_us.append(a_us)
        rows.append([n, round(v_us, 2), round(a_us, 1), round(a_us / log2(n), 2)])
    v_slope = fit_loglog(ns, vertex_us)
    a_slope = fit_loglog(ns, arb_us)
    text = format_table(
        ["n", "vertex-pair µs (O(1))", "arbitrary µs (O(log n))", "arb/log n"],
        rows,
        title=(
            "E4  query latencies — paper: O(1) vertex pairs, O(log n) arbitrary\n"
            f"measured slopes: vertex ~ n^{v_slope:.2f} (flat target), "
            f"arbitrary ~ n^{a_slope:.2f} (weak growth target)"
        ),
    )
    emit("E4_queries", text)
    assert v_slope < 0.35, "vertex-pair lookups must stay ~flat in n"
    rects = random_disjoint_rects(64, seed=2)
    idx = SequentialEngine(rects).build()
    qs = QueryStructure(rects, idx, PRAM())
    free = random_free_points(rects, 2, seed=4)
    benchmark(lambda: qs.length(free[0], free[1]))
