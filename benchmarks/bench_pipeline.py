"""P1 — the staged build pipeline: per-stage cost breakdown and the
artifact cache's rebuild economics.

Two claims are measured and recorded in ``BENCH_pipeline.json``:

* **cached rebuild** — rebuilding the *same scene under the same engine*
  through a warm :class:`~repro.pipeline.StageCache` must beat the cold
  build by ≥ 2× (it is typically thousands of times faster: every stage
  artifact, the solved matrix included, is content-addressed by the
  scene hash and replayed instead of recomputed);
* **cross-engine geometry reuse** — building the same scene under a
  *second* engine reuses the cached decompose/graph artifacts (asserted
  via the provenance ``cached`` flags; the solve stage runs anew, as it
  must).

The per-stage table also records where a cold build's wall clock and
simulated PRAM cost actually go, which is the breakdown ``python -m
repro plan`` prints for one scene.

Smoke mode (``BENCH_SMOKE=1``) shrinks the scene and skips the ratio
assertion (CI machines are noisy); the JSON artifact is always written.
"""

import time

import numpy as np

from benchmarks.common import SMOKE, emit, emit_json, format_table
from repro.obs.registry import MetricsRegistry, set_default_registry
from repro.pipeline import StageCache, build_index
from repro.scene import Scene
from repro.workloads.generators import random_disjoint_rects

N = 16 if SMOKE else 96
SECOND_ENGINE = "sequential"
MIN_CACHED_SPEEDUP = 2.0


def _build(scene, engine, cache):
    t0 = time.perf_counter()
    idx = build_index(scene, engine=engine, cache=cache)
    return time.perf_counter() - t0, idx


def _registry_profile(registry) -> list:
    """Per-stage profile rows read back from the obs registry — the same
    counters ``build_index`` emits for every build (wall vs simulated
    PRAM, cache hits split out), proving they flow through ``repro.obs``
    rather than being recomputed here."""
    snap = registry.snapshot()
    rows: dict = {}
    for fam, field in (
        ("repro.pipeline.stage_wall_seconds", "wall_s"),
        ("repro.pipeline.stage_pram_time", "pram_time"),
        ("repro.pipeline.stage_pram_work", "pram_work"),
    ):
        for s in snap.get(fam, {}).get("series", []):
            key = (s["labels"]["stage"], s["labels"]["engine"])
            rows.setdefault(key, {})[field] = s["value"]
    for s in snap.get("repro.pipeline.stage_runs", {}).get("series", []):
        lab = s["labels"]
        row = rows.setdefault((lab["stage"], lab["engine"]), {})
        field = "cached_runs" if lab["cached"] == "true" else "cold_runs"
        row[field] = int(s["value"])
    return [
        {"stage": stage, "engine": engine, **vals}
        for (stage, engine), vals in sorted(rows.items())
    ]


def test_p1_pipeline_stages_and_cache():
    scene = Scene.from_obstacles(random_disjoint_rects(N, seed=7))
    cache = StageCache()

    # a private default registry for the duration: the emitted profile
    # covers exactly this benchmark's three builds
    registry = MetricsRegistry()
    old_registry = set_default_registry(registry)
    try:
        cold_s, cold = _build(scene, "parallel", cache)
        warm_s, warm = _build(scene, "parallel", cache)
        other_s, other = _build(scene, SECOND_ENGINE, cache)
    finally:
        set_default_registry(old_registry)

    # answers are unchanged whichever path produced the matrix
    assert np.array_equal(cold.index.matrix, warm.index.matrix)
    assert np.array_equal(
        cold.index.submatrix(cold.index.points),
        other.index.submatrix(cold.index.points),
    )
    # simulated PRAM costs replay exactly on the cache hit
    assert cold.build_stats() == warm.build_stats()

    flags_warm = {st["name"]: st["cached"] for st in warm.provenance["stages"]}
    assert flags_warm["decompose"] and flags_warm["graph"] and flags_warm["solve"]
    flags_other = {st["name"]: st["cached"] for st in other.provenance["stages"]}
    assert flags_other["decompose"] and flags_other["graph"]
    assert not flags_other["solve"]

    cached_speedup = cold_s / max(warm_s, 1e-9)
    rows = []
    for st_cold, st_warm in zip(
        cold.provenance["stages"], warm.provenance["stages"]
    ):
        rows.append(
            [
                st_cold["name"],
                st_cold["wall_s"],
                st_cold["pram_time"],
                st_cold["pram_work"],
                st_warm["wall_s"],
                "yes" if st_warm["cached"] else "no",
            ]
        )
    rows.append(["total", cold_s, cold.pram.time, cold.pram.work, warm_s, ""])
    table = format_table(
        ["stage", "cold wall s", "PRAM T", "PRAM W", "warm wall s", "cached"],
        rows,
        title=(
            f"P1: staged pipeline over n={N} rects — cold vs warm rebuild "
            f"(cached speedup {cached_speedup:.1f}x; second engine "
            f"'{SECOND_ENGINE}' reused geometry stages)"
        ),
    )
    emit("P1_pipeline", table)
    emit_json(
        "pipeline",
        {
            "n_rects": N,
            "stages": cold.provenance["stages"],
            "warm_stages": warm.provenance["stages"],
            "second_engine": SECOND_ENGINE,
            "second_engine_stages": other.provenance["stages"],
            "cold_build_s": cold_s,
            "cached_rebuild_s": warm_s,
            "cached_rebuild_speedup": cached_speedup,
            "second_engine_build_s": other_s,
            "cache": cache.stats(),
            "profile": _registry_profile(registry),
            "floor": {"cached_rebuild_speedup": MIN_CACHED_SPEEDUP},
        },
    )
    profile = _registry_profile(registry)
    assert {(r["stage"], r["engine"]) for r in profile} >= {
        ("solve", "parallel"), ("solve", SECOND_ENGINE), ("decompose", "parallel")
    }
    solve_cold = next(
        r for r in profile if r["stage"] == "solve" and r["engine"] == "parallel"
    )
    assert solve_cold.get("cold_runs", 0) >= 1 and solve_cold.get("cached_runs", 0) >= 1
    if not SMOKE:
        assert cached_speedup >= MIN_CACHED_SPEEDUP, (
            f"cached rebuild speedup {cached_speedup:.2f}x under the "
            f"{MIN_CACHED_SPEEDUP}x floor"
        )


if __name__ == "__main__":
    test_p1_pipeline_stages_and_cache()
