"""E2 — §5: the boundary-to-boundary structure.

Paper claims: with all queries on Bound(P), the structure builds in
O(log² n) time with O(n²/log² n) processors (work O(n²)).  We register
O(n) boundary sample points on a rectangle container P (modelled as 4
framing obstacles, DESIGN.md §2) and measure simulated time against log² n
and work against n².
"""

import pytest

from benchmarks.common import emit, fit_loglog, format_table, log2
from repro.core.allpairs import ParallelEngine
from repro.geometry.primitives import Rect, bbox_of_rects
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects

SIZES = [8, 16, 32, 64, 128]


def boundary_setup(n, seed=0):
    rects = random_disjoint_rects(n, seed=seed)
    xlo, ylo, xhi, yhi = bbox_of_rects(rects)
    m = 8
    frame = [
        Rect(xlo - m - 4, ylo - m - 4, xhi + m + 4, ylo - m),  # south wall
        Rect(xlo - m - 4, yhi + m, xhi + m + 4, yhi + m + 4),  # north wall
        Rect(xlo - m - 4, ylo - m, xlo - m, yhi + m),  # west wall
        Rect(xhi + m, ylo - m, xhi + m + 4, yhi + m),  # east wall
    ]
    # O(n) sample points on the inner boundary of P (its walls), organised
    # as four monotone chains — the paper's boundary partitioning, which
    # lets the conquer certify Monge blocks (Lemmas 1/5)
    per_side = max(2, n // 2)
    south, north, west, east = [], [], [], []
    for i in range(per_side):
        x = xlo - m + (i * (xhi - xlo + 2 * m)) // per_side
        south.append((x, ylo - m))
        north.append((x, yhi + m))
        y = ylo - m + (i * (yhi - ylo + 2 * m)) // per_side
        west.append((xlo - m, y))
        east.append((xhi + m, y))
    chains = [sorted(set(c)) for c in (south, north, west, east)]
    pts = [p for c in chains for p in c]
    return rects + frame, pts, chains


def test_e2_boundary_structure(benchmark):
    rows = []
    times, works, ns = [], [], []
    for n in SIZES:
        all_rects, pts, chains = boundary_setup(n)
        pram = PRAM()
        ParallelEngine(
            all_rects, pts, pram, leaf_size=6, extra_chains=chains
        ).build()
        ns.append(n)
        times.append(pram.time)
        works.append(pram.work)
        rows.append(
            [
                n,
                len(pts),
                pram.time,
                round(pram.time / log2(n) ** 2, 1),
                pram.work,
                round(pram.work / n**2, 0),
                pram.work // max(1, pram.time),  # Brent processor count
            ]
        )
    t_slope = fit_loglog(ns, times)
    w_slope = fit_loglog(ns, works)
    text = format_table(
        ["n", "|B(P)| pts", "simT", "simT/log²n", "work", "work/n²", "procs=W/T"],
        rows,
        title=(
            "E2  §5 boundary structure build — paper: T=O(log²n), W=O(n²)\n"
            f"measured: T ~ n^{t_slope:.2f} (polylog target ~0), "
            f"W ~ n^{w_slope:.2f} (paper 2.0)"
        ),
    )
    emit("E2_boundary_build", text)
    assert t_slope < 1.0, "parallel time should be strongly sublinear"
    all_rects, pts, chains = boundary_setup(16)
    benchmark(
        lambda: ParallelEngine(
            all_rects, pts, PRAM(), leaf_size=6, extra_chains=chains
        ).build()
    )
