"""E11 — ablations of the engine's design choices (DESIGN.md §5 note).

Three knobs the paper's design motivates, each measured on the same scenes:

* **Monge dispatch** (Lemmas 3/5): chain-grouped SMAWK products vs the
  all-naive conquer.  The paper's whole §6 partitioning discipline exists
  to enable this — the ablation quantifies what it buys.
* **Leaf size**: where the separator recursion hands over to the direct
  solver.  Theorem 2's balance guarantee needs n ≥ 8; tiny leaves mean
  more conquers, huge leaves mean quadratic leaf blow-up.
* **Separator vs no recursion at all** (leaf = ∞): the divide-and-conquer
  against one flat solve — the reason the paper recurses.
"""

import pytest

from benchmarks.common import emit, format_table
from repro.core.allpairs import ParallelEngine
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects

N = 96


def _run(**kw):
    rects = random_disjoint_rects(N, seed=4)
    pram = PRAM()
    engine = ParallelEngine(rects, [], pram, **kw)
    engine.build()
    return pram, engine


def test_e11_ablations(benchmark):
    rows = []
    # Monge dispatch on/off
    for dispatch in (True, False):
        pram, engine = _run(leaf_size=6, monge_dispatch=dispatch)
        rows.append(
            [
                f"dispatch={'on' if dispatch else 'off'}",
                pram.time,
                pram.work,
                engine.stats.monge_fast_blocks,
            ]
        )
    # leaf size sweep
    for leaf in (4, 8, 16, 32, 64):
        pram, engine = _run(leaf_size=leaf)
        rows.append([f"leaf={leaf}", pram.time, pram.work, engine.stats.leaves])
    # no recursion: one flat leaf solve
    pram, engine = _run(leaf_size=10**9)
    rows.append(["no recursion", pram.time, pram.work, engine.stats.leaves])
    text = format_table(
        ["variant", "simT", "work", "fast blocks / leaves"],
        rows,
        title=f"E11  engine ablations at n={N} "
        "(answers are identical in every variant; only cost moves)",
    )
    emit("E11_ablation", text)
    on_work = rows[0][2]
    off_work = rows[1][2]
    assert on_work <= off_work, "Monge dispatch must never cost extra work"
    flat_time, flat_work = rows[-1][1], rows[-1][2]
    rec_time, rec_work = rows[2][1], rows[2][2]
    assert rec_time < flat_time, "recursion must beat the flat solve in time"
    assert rec_work < flat_work, "…and in work (this is why the paper recurses)"
    benchmark(lambda: _run(leaf_size=8))


def test_e11_answers_invariant_across_ablations():
    rects = random_disjoint_rects(24, seed=5)
    base = ParallelEngine(rects, [], PRAM(), leaf_size=4).build()
    for kw in (
        dict(leaf_size=4, monge_dispatch=False),
        dict(leaf_size=12),
        dict(leaf_size=10**9),
    ):
        other = ParallelEngine(rects, [], PRAM(), **kw).build()
        assert (other.submatrix(base.points) == base.matrix).all(), kw
