"""E10 — Lemma 6: path tracing cost, and Lemma 12's single crossing.

Paper claims: an XY(p) path is computed in O(log n) time with O(n)
processors (forest construction), and any traced path crosses a clear
staircase at most once.  Measured: forest build work ~ n log n, per-trace
work ~ path size, crossing counts always ≤ 1.
"""

import pytest

from benchmarks.common import emit, fit_loglog, format_table, log2
from repro.core.separator import staircase_separator
from repro.core.tracing import TraceForests
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects, random_free_points

SIZES = [64, 256, 1024]


def test_e10_tracing(benchmark):
    rows, ns, works = [], [], []
    for n in SIZES:
        rects = random_disjoint_rects(n, seed=7)
        pram = PRAM()
        forests = TraceForests(rects, pram)
        build_t, build_w = pram.time, pram.work
        sep = staircase_separator(rects, PRAM(), forests)
        max_cross = 0
        trace_work = 0
        pts = random_free_points(rects, 20, seed=8)
        for p in pts:
            for mode in ("NE", "SW", "ES", "WN"):
                snap = pram.snapshot()
                tp = forests.trace(p, mode, pram)
                trace_work += pram.since(snap)[1]
                flips = 0
                prev = 0
                for q in tp.points:
                    s = sep.staircase.side_of(q)
                    if s != 0 and prev != 0 and s != prev:
                        flips += 1
                    if s != 0:
                        prev = s
                max_cross = max(max_cross, flips)
        ns.append(n)
        works.append(build_w)
        rows.append(
            [n, build_t, build_w, round(build_w / (n * log2(n)), 1),
             trace_work // (len(pts) * 4), max_cross]
        )
    slope = fit_loglog(ns, works)
    text = format_table(
        ["n", "forest simT", "forest work", "work/(n log n)",
         "avg trace work", "max crossings (≤1)"],
        rows,
        title=(
            "E10  Lemma 6 tracing forests + Lemma 12 single crossing\n"
            f"measured forest work ~ n^{slope:.2f} (paper n log n => ~1.1)"
        ),
    )
    emit("E10_tracing", text)
    assert all(r[5] <= 1 for r in rows)
    assert slope < 1.5
    rects = random_disjoint_rects(256, seed=7)
    forests = TraceForests(rects, PRAM())
    benchmark(lambda: forests.trace((0, 0), "NE", PRAM()))
