"""L1 — the link-query family: batched gathers vs per-query solving,
and the shape of (length, bends) Pareto frontiers.

The link index answers from a layered DP over the Hanan grid, one run
per *source*.  Batched entry points (``link_counts`` / ``paretos``)
group a pair workload by shared endpoint so every distinct source pays
exactly one DP run; the per-query path re-solves whenever a source
meets a target its cached solve never saw.  ``BENCH_links.json``
records both throughputs and asserts the batched path's advantage
(≥ 2× — it is typically far higher) unless ``BENCH_SMOKE=1``.

The same run records the Pareto frontier size distribution over the
workload — the measured analogue of the bicriteria trade-off the
subsystem exists to expose (frontiers of size 1 mean length and bends
are compatible; larger frontiers mean real trade-offs).
"""

import random
import time

from benchmarks.common import SMOKE, emit, emit_json, format_table
from repro.core.api import ShortestPathIndex
from repro.workloads.generators import random_disjoint_rects

N_RECTS = 6 if SMOKE else 14
N_PAIRS = 60 if SMOKE else 400


def _best(fn, repeat=3):
    best, result = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_l1_link_batching_and_frontiers():
    rects = random_disjoint_rects(N_RECTS, seed=11)
    idx = ShortestPathIndex.build(rects, engine="parallel")
    vs = idx.vertices()
    rng = random.Random("bench-links")
    pairs = [tuple(rng.sample(vs, 2)) for _ in range(N_PAIRS)]

    def per_query():
        # a fresh links index per run: the per-source LRU must not carry
        # one timing loop's solves into the next
        fresh = idx.links.extended([])
        return [fresh.min_links(p, q) for p, q in pairs]

    def batched():
        fresh = idx.links.extended([])
        return fresh.link_counts(pairs)

    per_s, per_vals = _best(per_query)
    bat_s, bat_vals = _best(batched)
    assert list(map(float, per_vals)) == list(map(float, bat_vals))
    ratio = per_s / bat_s

    fronts_s, fronts = _best(lambda: idx.links.extended([]).paretos(pairs))
    sizes = sorted(len(f) for f in fronts)
    dist = {}
    for s in sizes:
        dist[s] = dist.get(s, 0) + 1

    rows = [
        [f"{N_PAIRS} minlink, per-query", round(per_s * 1e3, 1),
         round(N_PAIRS / per_s), 1.0],
        [f"{N_PAIRS} minlink, batched", round(bat_s * 1e3, 2),
         round(N_PAIRS / bat_s), round(ratio, 1)],
        [f"{N_PAIRS} pareto, batched", round(fronts_s * 1e3, 2),
         round(N_PAIRS / fronts_s), "-"],
    ]
    text = format_table(
        ["workload", "ms", "req/s", "speedup"],
        rows,
        title=(
            f"L1  links at n={N_RECTS} — batched gathers {ratio:.1f}x "
            f"per-query; frontier sizes p50={sizes[len(sizes) // 2]} "
            f"max={sizes[-1]}"
        ),
    )
    emit("L1_links", text)
    emit_json(
        "links",
        {
            "n_rects": N_RECTS,
            "n_pairs": N_PAIRS,
            "per_query_s": per_s,
            "per_query_rps": N_PAIRS / per_s,
            "batched_s": bat_s,
            "batched_rps": N_PAIRS / bat_s,
            "batching_speedup": ratio,
            "pareto_s": fronts_s,
            "pareto_rps": N_PAIRS / fronts_s,
            "frontier_sizes": {
                "p50": sizes[len(sizes) // 2],
                "max": sizes[-1],
                "mean": sum(sizes) / len(sizes),
                "histogram": {str(k): v for k, v in sorted(dist.items())},
            },
            "targets": {"batching_speedup_min": 2.0},
        },
    )
    if not SMOKE:
        assert ratio >= 2.0, f"batched gathers only {ratio:.1f}x per-query"
