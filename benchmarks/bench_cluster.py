"""C1 — cluster serving: throughput scaling across workers and flat
worker memory as scenes accumulate.

Two claims about :mod:`repro.cluster` are measured and recorded in
``BENCH_cluster.json``:

* **throughput scaling** — aggregate closed-loop throughput at 1/2/4
  workers on the same scene set.  Measured twice:

  - *fixed-service-time workload*: every request costs ~2 ms of
    simulated service in its worker (the ``sleep`` diagnostic op).  This
    isolates the cluster machinery itself — routing, micro-batching,
    IPC, the async front-end — from the host's core count: service
    intervals overlap across worker processes even on one core, so a
    healthy cluster must show ≥ 2.5× at 4 workers (asserted when not
    ``BENCH_SMOKE``).
  - *CPU-bound query workload*: real bulk-``lengths`` requests with
    arbitrary endpoints (the §6.4 path).  This scales with *physical
    cores*; the ratio is recorded always and asserted whenever
    ``os.cpu_count() >= 4`` and the build worker pool can actually start
    (``cpu_limited`` is still recorded so the artifact says which regime
    it measured).

* **flat worker memory** — one worker serving 1/4/8 shm-published
  copies of an ~8 MB-matrix scene.  The worker's *private* bytes
  (``smaps_rollup``: what a copying design would pay per scene) must
  stay flat: growth across the whole sweep under 35% of what private
  copies of the extra matrices would have cost.  Plain RSS is recorded
  too, but RSS counts shared pages in every process that touches them —
  private bytes is the honest copy-detector.

* **availability under chaos** — a 2-worker closed loop with a
  :class:`~repro.cluster.faults.FaultPlan` SIGKILLing a worker on a
  fixed request cadence, clients retrying with backoff.  Availability
  is the fraction of requests that ultimately succeeded; with failover
  routing + supervised restarts it must be 100% (asserted when not
  ``BENCH_SMOKE``), and the artifact records how many kills, restarts,
  and client retries that took.

Smoke mode (``BENCH_SMOKE=1``) shrinks everything and skips the ratio
assertions; the JSON artifact is always written.
"""

import asyncio
import os

from benchmarks.common import SMOKE, emit, emit_json, format_table
from repro.cluster.faults import FaultPlan
from repro.cluster.frontend import ClusterFrontend
from repro.cluster.loadgen import build_requests, discover, run_closed
from repro.cluster.supervisor import RestartPolicy
from repro.core.api import ShortestPathIndex
from repro.workloads.generators import random_disjoint_rects

WORKER_COUNTS = (1, 2) if SMOKE else (1, 2, 4)
N_RECTS = 12 if SMOKE else 48
N_SCENES = 4
SLEEP_REQS = 60 if SMOKE else 400
SLEEP_MS = 2.0
QUERY_REQS = 60 if SMOKE else 400
PAIRS = 32
CONNS = 16

CHAOS_REQS = 80 if SMOKE else 800
CHAOS_KILL_EVERY = 40 if SMOKE else 150
CHAOS_RETRIES = 8

RSS_RECTS = 24 if SMOKE else 256
RSS_COUNTS = (1, 3) if SMOKE else (1, 4, 8)

CPUS = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") else (
    os.cpu_count() or 1
)


def _scene_indexes(n_scenes, n_rects):
    return {
        f"s{i}": ShortestPathIndex.build(random_disjoint_rects(n_rects, seed=10 + i))
        for i in range(n_scenes)
    }


def _pins(scene_names, workers):
    """Spread scenes across all workers deterministically (round robin),
    so every worker count uses its whole fleet."""
    return {name: i % workers for i, name in enumerate(sorted(scene_names))}


async def _measure_sleep(indexes, workers):
    scenes = {name: {"index": idx} for name, idx in indexes.items()}
    names = sorted(scenes)
    async with ClusterFrontend(
        scenes,
        workers=workers,
        pins=_pins(names, workers),
        max_batch=1,  # additive service time: no batching amortization
        batch_window_ms=0.0,
        queue_depth=4 * CONNS,
    ) as fe:
        reqs = [
            {"op": "sleep", "scene": names[i % len(names)], "ms": SLEEP_MS}
            for i in range(SLEEP_REQS)
        ]
        report = await run_closed(fe.host, fe.port, reqs, conns=CONNS)
    summary = report.summary()
    assert summary["errors"] == 0, summary
    return summary


async def _measure_query(indexes, workers):
    scenes = {name: {"index": idx} for name, idx in indexes.items()}
    names = sorted(scenes)
    async with ClusterFrontend(
        scenes,
        workers=workers,
        pins=_pins(names, workers),
        batch_window_ms=1.0,
        queue_depth=4 * CONNS,
    ) as fe:
        pools = await discover(fe.host, fe.port, seed=1)
        reqs = build_requests(
            pools, QUERY_REQS, seed=2, mix=(0.95, 0.04, 0.0),
            pairs_per_request=PAIRS,
        )
        await run_closed(fe.host, fe.port, reqs[: len(reqs) // 4], conns=CONNS)  # warm
        report = await run_closed(fe.host, fe.port, reqs, conns=CONNS)
    summary = report.summary()
    assert summary["errors"] == 0, summary
    return summary


async def _measure_obs_overhead(indexes):
    """Fixed-service-time throughput with observability on vs off
    (``obs=False`` skips histograms and tracing; counters stay).  The
    sleep workload maximizes the relative cost of per-request metric
    work, so the measured overhead is an upper bound for real queries."""
    qps = {}
    for obs in (True, False):
        scenes = {name: {"index": idx} for name, idx in indexes.items()}
        names = sorted(scenes)
        async with ClusterFrontend(
            scenes,
            workers=2,
            pins=_pins(names, 2),
            max_batch=1,
            batch_window_ms=0.0,
            queue_depth=4 * CONNS,
            obs=obs,
        ) as fe:
            reqs = [
                {"op": "sleep", "scene": names[i % len(names)], "ms": 0.0}
                for i in range(SLEEP_REQS)
            ]
            await run_closed(fe.host, fe.port, reqs[: SLEEP_REQS // 4], conns=CONNS)
            report = await run_closed(fe.host, fe.port, reqs, conns=CONNS)
        summary = report.summary()
        assert summary["errors"] == 0, summary
        qps[obs] = summary["qps"]
    overhead = max(0.0, 1.0 - qps[True] / qps[False]) if qps[False] else 0.0
    return {"qps_obs_on": qps[True], "qps_obs_off": qps[False], "overhead": overhead}


async def _measure_availability(indexes):
    """Closed loop with a kill-every-N fault plan and client retries;
    returns the summary plus kill/restart counts and the availability
    fraction (requests that ultimately succeeded)."""
    scenes = {name: {"index": idx} for name, idx in indexes.items()}
    names = sorted(scenes)
    plan = FaultPlan(kill_every=CHAOS_KILL_EVERY)
    async with ClusterFrontend(
        scenes,
        workers=2,
        pins=_pins(names, 2),
        faults=plan,
        restart_policy=RestartPolicy(max_restarts=1000, window_s=30.0),
        queue_depth=4 * CONNS,
    ) as fe:
        pools = await discover(fe.host, fe.port, seed=5)
        reqs = build_requests(
            pools, CHAOS_REQS, seed=6, mix=(0.5, 0.1, 0.0), pairs_per_request=8
        )
        report = await run_closed(
            fe.host,
            fe.port,
            reqs,
            conns=CONNS,
            retries=CHAOS_RETRIES,
            retry_budget=CHAOS_REQS,
            timeout_s=15.0,
        )
        kills = len(fe.injector.kills)
        restarts = fe.supervisor.total_restarts
    summary = report.summary()
    summary["availability"] = summary["ok"] / max(summary["sent"], 1)
    summary["kills"] = kills
    summary["restarts"] = restarts
    return summary


async def _measure_private_bytes(idx, n_copies):
    """One worker, ``n_copies`` shm-published copies of the same scene;
    returns the worker's memory counters after touching every scene."""
    scenes = {f"c{i}": {"index": idx} for i in range(n_copies)}
    async with ClusterFrontend(scenes, workers=1, batch_window_ms=0.5) as fe:
        pools = await discover(fe.host, fe.port, seed=3)
        # touch every scene: a bulk request per scene materializes the
        # attachment and reads matrix pages
        reqs = []
        for name, pool in sorted(pools.items()):
            verts = pool["vertices"]
            pairs = [[verts[i % len(verts)], verts[-1 - i % len(verts)]]
                     for i in range(16)]
            reqs.append({"op": "lengths", "scene": name, "pairs": pairs})
        report = await run_closed(fe.host, fe.port, reqs, conns=2)
        assert report.summary()["errors"] == 0
        from repro.cluster.protocol import read_frame, write_frame

        reader, writer = await asyncio.open_connection(fe.host, fe.port)
        await write_frame(writer, {"id": 0, "op": "stats"})
        stats = await read_frame(reader)
        writer.close()
        memory = stats["result"]["workers"]["0"]["memory"]
    return memory


def test_c1_cluster_scaling_and_flat_rss():
    indexes = _scene_indexes(N_SCENES, N_RECTS)

    sleep_qps: dict[int, float] = {}
    query_qps: dict[int, float] = {}
    sleep_lat: dict[int, dict] = {}
    for w in WORKER_COUNTS:
        s = asyncio.run(_measure_sleep(indexes, w))
        sleep_qps[w] = s["qps"]
        sleep_lat[w] = s["latency"]
        q = asyncio.run(_measure_query(indexes, w))
        query_qps[w] = q["qps"]

    w_lo, w_hi = WORKER_COUNTS[0], WORKER_COUNTS[-1]
    dispatch_scaling = sleep_qps[w_hi] / sleep_qps[w_lo]
    query_scaling = query_qps[w_hi] / query_qps[w_lo]

    chaos = asyncio.run(_measure_availability(indexes))
    obs = asyncio.run(_measure_obs_overhead(indexes))

    idx = ShortestPathIndex.build(random_disjoint_rects(RSS_RECTS, seed=99))
    matrix_bytes = idx.index.matrix.nbytes
    memory: dict[int, dict] = {}
    for k in RSS_COUNTS:
        memory[k] = asyncio.run(_measure_private_bytes(idx, k))
    k_lo, k_hi = RSS_COUNTS[0], RSS_COUNTS[-1]
    private_growth = (memory[k_hi]["private_bytes"] or 0) - (
        memory[k_lo]["private_bytes"] or 0
    )
    copy_cost = (k_hi - k_lo) * matrix_bytes

    rows = [
        [f"{w} worker(s), {SLEEP_MS:g}ms service", round(sleep_qps[w], 0),
         round(sleep_qps[w] / sleep_qps[w_lo], 2),
         round(sleep_lat[w]["p99_ms"], 1)]
        for w in WORKER_COUNTS
    ] + [
        [f"{w} worker(s), query workload", round(query_qps[w], 0),
         round(query_qps[w] / query_qps[w_lo], 2), ""]
        for w in WORKER_COUNTS
    ] + [
        [f"worker private MB @ {k} scenes",
         round((memory[k]["private_bytes"] or 0) / 2**20, 1), "",
         round((memory[k]["rss_bytes"] or 0) / 2**20, 1)]
        for k in RSS_COUNTS
    ] + [
        [f"chaos: kill every {CHAOS_KILL_EVERY} reqs, {CHAOS_RETRIES} retries",
         round(chaos["qps"], 0),
         f"{chaos['availability']:.3f} avail",
         round(chaos["latency"]["p99_ms"], 1)]
    ] + [
        ["metrics+tracing overhead (0ms service)",
         round(obs["qps_obs_on"], 0),
         f"{obs['overhead']:.1%}",
         round(obs["qps_obs_off"], 0)]
    ]
    text = format_table(
        ["configuration", "qps | MB", "scaling", "p99ms | rssMB"],
        rows,
        title=(
            f"C1  cluster at {N_SCENES}x n={N_RECTS} scenes ({CPUS} cpu) — "
            f"{w_hi}-worker scaling: {dispatch_scaling:.1f}x fixed-service, "
            f"{query_scaling:.1f}x cpu-bound; worker private growth "
            f"{private_growth / 2**20:.1f} MB vs {copy_cost / 2**20:.0f} MB "
            f"copy cost over {k_hi} scenes; availability "
            f"{chaos['availability']:.3f} under {chaos['kills']} kills "
            f"({chaos['restarts']} restarts, {chaos['retries']} retries); "
            f"obs overhead {obs['overhead']:.1%}"
        ),
    )
    emit("C1_cluster", text)
    emit_json(
        "cluster",
        {
            "cpus": CPUS,
            "logical_cpus": os.cpu_count() or 1,
            "cpu_limited": CPUS < w_hi,
            "scenes": N_SCENES,
            "n_rects": N_RECTS,
            "conns": CONNS,
            "worker_counts": list(WORKER_COUNTS),
            "fixed_service_ms": SLEEP_MS,
            "throughput_fixed_service_qps": {str(w): sleep_qps[w] for w in WORKER_COUNTS},
            "throughput_query_qps": {str(w): query_qps[w] for w in WORKER_COUNTS},
            "throughput_scaling_4w": dispatch_scaling,
            "query_scaling_4w": query_scaling,
            "latency_p99_ms": {str(w): sleep_lat[w]["p99_ms"] for w in WORKER_COUNTS},
            "rss": {
                "matrix_bytes": matrix_bytes,
                "scene_counts": list(RSS_COUNTS),
                "private_bytes": {
                    str(k): memory[k]["private_bytes"] for k in RSS_COUNTS
                },
                "rss_bytes": {str(k): memory[k]["rss_bytes"] for k in RSS_COUNTS},
                "private_growth_bytes": private_growth,
                "copy_cost_bytes": copy_cost,
            },
            "availability": {
                "requests": CHAOS_REQS,
                "kill_every": CHAOS_KILL_EVERY,
                "retries_allowed": CHAOS_RETRIES,
                "availability": chaos["availability"],
                "ok": chaos["ok"],
                "errors": chaos["errors"],
                "shed": chaos["shed"],
                "retries": chaos["retries"],
                "timeouts": chaos["timeouts"],
                "kills": chaos["kills"],
                "restarts": chaos["restarts"],
                "p99_ms": chaos["latency"]["p99_ms"],
            },
            "obs_overhead": obs,
            "targets": {
                "scaling_min": 2.5,
                "private_growth_max_fraction_of_copy_cost": 0.35,
                "availability_min": 1.0,
                "obs_overhead_max": 0.05,
            },
        },
    )
    if not SMOKE:
        assert dispatch_scaling >= 2.5, (
            f"cluster fan-out only {dispatch_scaling:.2f}x at {w_hi} workers "
            f"under the fixed-service-time workload"
        )
        if (os.cpu_count() or 1) >= 4 and _pool_available():
            # on any ≥4-core host with a working process pool the
            # CPU-bound ratio is load-bearing, not best-effort
            assert query_scaling >= 2.5, (
                f"CPU-bound scaling only {query_scaling:.2f}x on {CPUS} "
                f"visible / {os.cpu_count()} logical cores"
            )
        assert chaos["availability"] >= 1.0, (
            f"availability {chaos['availability']:.4f} under chaos: "
            f"{chaos['errors']} errors, {chaos['shed']} shed after "
            f"{chaos['kills']} kills"
        )
        assert obs["overhead"] < 0.05, (
            f"metrics+tracing cost {obs['overhead']:.1%} of throughput "
            f"({obs['qps_obs_on']:.0f} vs {obs['qps_obs_off']:.0f} qps) — "
            f"the observability layer must stay under 5%"
        )
        if memory[k_hi]["private_bytes"] is not None:
            assert private_growth < 0.35 * copy_cost, (
                f"worker private memory grew {private_growth / 2**20:.1f} MB "
                f"over {k_hi} scenes — shared matrices are being copied "
                f"(copy cost would be {copy_cost / 2**20:.0f} MB)"
            )


def _pool_available() -> bool:
    """Can this host actually start the multiprocessing build pool?
    (Sandboxes that forbid process spawn should skip the CPU-bound
    assertion rather than fail it for the wrong reason.)"""
    try:
        from repro.core.pool import get_pool, shutdown_pool

        pool = get_pool(2)
        ok = not pool.closed
        shutdown_pool()
        return ok
    except Exception:
        return False
