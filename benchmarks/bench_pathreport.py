"""E5 — §8: path reporting cost as a function of k.

Paper claims: an actual path of k segments is reported in O(log n) time by
⌈k/log n⌉ processors, i.e. O(log n + k) work.  We build comb mazes whose
shortest paths are forced to weave between alternating teeth (k grows
linearly with the tooth count) and measure charged work against k; the
metered parallel time must stay ~logarithmic while k grows.
"""

import pytest

from benchmarks.common import emit, fit_loglog, format_table
from repro.core.baseline import path_is_clear, path_length
from repro.core.pathreport import PathReporter
from repro.core.sequential import SequentialEngine
from repro.geometry.primitives import Rect
from repro.pram import PRAM


def comb(m: int) -> list[Rect]:
    """Alternating long teeth: weaving is forced (going around costs ≫)."""
    H = 60 * m
    out = []
    for i in range(m):
        if i % 2 == 0:
            out.append(Rect(4 * i, -H, 4 * i + 2, 10))
        else:
            out.append(Rect(4 * i, -10, 4 * i + 2, H))
    return out


SIZES = [2, 4, 8, 16, 32]


def test_e5_path_reporting(benchmark):
    rows, ks, workpts = [], [], []
    for m in SIZES:
        rects = comb(m)
        idx = SequentialEngine(rects).build()
        pram = PRAM()
        rep = PathReporter(rects, idx, pram)
        src = rects[0].nw
        dst = rects[-1].se if m % 2 == 0 else rects[-1].ne
        rep.tree(src)  # build the tree outside the measured window
        before = pram.snapshot()
        path = rep.path(src, dst)
        dt, dw = pram.since(before)
        assert path_is_clear(path, rects)
        assert path_length(path) == idx.length(src, dst)
        k = len(path) - 1
        ks.append(k)
        workpts.append(dw)
        rows.append([m, k, dw, round(dw / max(1, k), 2), dt])
    slope = fit_loglog(ks, workpts)
    text = format_table(
        ["teeth", "k (segments)", "report work", "work/k", "simT"],
        rows,
        title=(
            "E5  §8 path reporting — paper: O(log n + k) work, O(log n) time\n"
            f"measured: work ~ k^{slope:.2f} (paper slope 1.0), time ~flat"
        ),
    )
    emit("E5_pathreport", text)
    assert 0.5 < slope < 1.5
    assert rows[-1][4] <= 4 * rows[0][4] + 8  # time stays ~flat while k grows
    rects = comb(8)
    idx = SequentialEngine(rects).build()
    rep = PathReporter(rects, idx, PRAM())
    rep.tree(rects[0].nw)
    benchmark(lambda: rep.path(rects[0].nw, rects[-1].se))
