"""E1 — Theorem 2: staircase separator quality and cost.

Paper claims: a clear separator with ≤ 7n/8 obstacles on each side and
O(n) segments, in O(log n) time with O(n) processors.  Measured: worst
balance fraction, segments/n, simulated time vs log n, across workloads.
"""

import pytest

from benchmarks.common import emit, fit_loglog, format_table, log2
from repro.core.separator import staircase_separator
from repro.pram import PRAM
from repro.workloads.generators import WORKLOAD_MODES, random_disjoint_rects

SIZES = [64, 256, 1024, 2048]
SEEDS = range(3)


def test_e1_separator_quality(benchmark):
    rows = []
    for mode in WORKLOAD_MODES:
        for n in SIZES:
            worst_frac = 0.0
            worst_segs = 0
            time_sum = work_sum = 0
            for seed in SEEDS:
                rects = random_disjoint_rects(n, seed=seed, mode=mode)
                pram = PRAM()
                sep = staircase_separator(rects, pram)
                frac = sep.max_side / n
                worst_frac = max(worst_frac, frac)
                worst_segs = max(worst_segs, sep.staircase.num_segments)
                time_sum += pram.time
                work_sum += pram.work
            rows.append(
                [
                    mode,
                    n,
                    round(worst_frac, 3),
                    0.875,
                    worst_segs,
                    2 * n + 2,
                    time_sum // len(SEEDS),
                    round(time_sum / len(SEEDS) / log2(n), 1),
                    work_sum // len(SEEDS),
                ]
            )
    slope = fit_loglog(
        [r[1] for r in rows if r[0] == "uniform"],
        [r[8] for r in rows if r[0] == "uniform"],
    )
    text = format_table(
        ["mode", "n", "worst max-side/n", "paper bound", "segs", "paper 2n+2",
         "simT", "simT/log n", "work"],
        rows,
        title="E1  Theorem 2: separator balance / size / cost "
        f"(uniform work slope ~ n^{slope:.2f}, paper O(n log n) incl. sort)",
    )
    emit("E1_separator", text)
    for r in rows:
        if r[1] >= 64:
            assert r[2] <= 0.875 + 0.02, r  # ≤ 7n/8 with nudge slack
        assert r[4] <= r[5] + 2, r
    rects = random_disjoint_rects(512, seed=0)
    benchmark(lambda: staircase_separator(rects, PRAM()))
