"""Shared helpers for the experiment benchmarks (E1–E10, F1–F14).

Every benchmark prints and writes a table into ``benchmarks/results/``:
one row per sweep point, with the measured quantity next to the paper's
predicted scaling column, plus a fitted log-log slope.  EXPERIMENTS.md is
the narrative index over these tables.
"""

from __future__ import annotations

import json
import math
import os
import pathlib
from typing import Sequence

RESULTS = pathlib.Path(__file__).resolve().parent / "results"
REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: CI smoke mode: benchmarks shrink their sweeps and skip the scaling
#: assertions that need a wide size range (set ``BENCH_SMOKE=1``)
SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"

#: set ``BENCH_SEED_ASSERT=1`` to also *assert* on the wall-clock
#: comparisons against the recorded seed-machine baselines.  Off by
#: default: the baselines were measured on one specific machine, so the
#: comparison fails spuriously on slower hardware — the BENCH_*.json
#: artifacts always record the before/after numbers, and bench_monge's
#: same-machine array-vs-callable assertion guards the speedup portably.
SEED_ASSERT = os.environ.get("BENCH_SEED_ASSERT", "0") == "1"


def fit_loglog(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of log(y) against log(x)."""
    pts = [(math.log(x), math.log(y)) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(pts) < 2:
        return float("nan")
    n = len(pts)
    sx = sum(p[0] for p in pts)
    sy = sum(p[1] for p in pts)
    sxx = sum(p[0] * p[0] for p in pts)
    sxy = sum(p[0] * p[1] for p in pts)
    denom = n * sxx - sx * sx
    return (n * sxy - sx * sy) / denom if denom else float("nan")


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    cols = len(headers)
    srows = [[_fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in srows)) if srows else len(headers[c])
        for c in range(cols)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in srows:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def _fmt(v) -> str:
    if isinstance(v, float):
        if v != v:  # nan
            return "nan"
        if abs(v) >= 1000:
            return f"{v:,.0f}"
        return f"{v:.3g}" if abs(v) < 10 else f"{v:.1f}"
    if isinstance(v, int) and abs(v) >= 10000:
        return f"{v:,}"
    return str(v)


def emit(name: str, text: str) -> str:
    """Print the table and persist it under benchmarks/results/."""
    RESULTS.mkdir(exist_ok=True)
    (RESULTS / f"{name}.txt").write_text(text + "\n")
    print("\n" + text)
    return text


def host_context() -> dict:
    """The machine every wall-clock number in a BENCH_*.json was taken
    on: logical and *physical* core counts, the CPU model string, and
    whether this was a smoke run.  A scaling curve without its core
    count is unreproducible — two hosts disagreeing on a ratio is
    expected, two hosts disagreeing on the same core count is a bug.
    """
    logical = os.cpu_count() or 1
    try:
        visible = len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        visible = logical
    physical, model = None, None
    try:
        cores = set()
        for block in pathlib.Path("/proc/cpuinfo").read_text().split("\n\n"):
            fields = dict(
                line.split(":", 1) for line in block.splitlines() if ":" in line
            )
            fields = {k.strip(): v.strip() for k, v in fields.items()}
            if "processor" not in fields:
                continue
            if model is None:
                model = fields.get("model name")
            cores.add((fields.get("physical id", "0"), fields.get("core id", "0")))
        physical = len(cores) or None
    except OSError:
        pass
    return {
        "cpu_model": model,
        "logical_cpus": logical,
        "visible_cpus": visible,
        "physical_cores": physical if physical is not None else logical,
        "smoke": SMOKE,
    }


def emit_json(name: str, payload: dict) -> pathlib.Path:
    """Persist a machine-readable ``BENCH_<name>.json`` at the repo root.

    The payload carries the sweep rows (point, wall time, fitted slope,
    …) plus any recorded before/after baselines, so speedups are diffable
    by tooling and CI without parsing the pretty tables.  Every artifact
    gets a ``host`` header (:func:`host_context`) identifying the machine
    the wall-clock numbers came from.  Smoke runs write
    ``BENCH_<name>_smoke.json`` instead, so a truncated CI sweep never
    overwrites the recorded full-sweep artifacts.
    """
    suffix = "_smoke" if SMOKE else ""
    path = REPO_ROOT / f"BENCH_{name}{suffix}.json"
    payload = dict(payload, smoke=SMOKE, host=host_context())
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def log2(n: float) -> float:
    return math.log2(max(2.0, n))
