"""E9 — Theorem 1 (Brent): speedup curves for the §6 build.

The paper's processor bounds all come from Brent scheduling of a (T∞, W)
profile.  We record one real build profile and tabulate T_p, speedup and
efficiency across p, including the paper's own operating point
p = n²/log² n.
"""

import pytest

from benchmarks.common import emit, format_table, log2
from repro.core.allpairs import ParallelEngine
from repro.pram import PRAM, brent_time, speedup_table
from repro.workloads.generators import random_disjoint_rects

N = 64


def test_e9_brent_speedup(benchmark):
    rects = random_disjoint_rects(N, seed=6)
    pram = PRAM()
    ParallelEngine(rects, [], pram, leaf_size=6).build()
    t, w = pram.time, pram.work
    counts = [1, 4, 16, 64, 256, 1024, 4096, 16384, 65536]
    rows = [
        [p, tp, round(s, 1), round(e, 3)]
        for p, tp, s, e in speedup_table(w, t, counts)
    ]
    paper_p = max(1, round(N**2 / log2(N) ** 2))
    rows.append(
        [f"n²/log²n={paper_p}", brent_time(w, t, paper_p),
         round(brent_time(w, t, 1) / brent_time(w, t, paper_p), 1), "—"]
    )
    text = format_table(
        ["p", "T_p = ⌈W/p⌉+T∞", "speedup", "efficiency"],
        rows,
        title=(
            f"E9  Brent's theorem on the §6 build (n={N}: T∞={t}, W={w})\n"
            "linear speedup until W/p ≈ T∞, then saturation at T∞ — the "
            "paper's processor bounds are exactly the saturation knees"
        ),
    )
    emit("E9_brent", text)
    tps = [r[1] for r in rows[:-1]]
    assert tps == sorted(tps, reverse=True)
    assert tps[-1] <= t + max(1, w // 65536) + 1
    benchmark(lambda: speedup_table(w, t, counts))
