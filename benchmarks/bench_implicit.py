"""E7 — §7: |P| = N ≫ n, implicit vs explicit representation.

Paper claims: O(N + n²·f(n)) work instead of Θ(N²), with query costs
unchanged.  Measured: registered-point counts and build times of the
implicit structure stay flat as the boundary vertex count N grows, while
the explicit grid structure blows up; the crossover is in the table.
"""

import time

import pytest

from benchmarks.common import emit, fit_loglog, format_table
from repro.core.baseline import GridOracle
from repro.core.implicit import ImplicitBoundaryStructure
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects, staircase_container

N_OBSTACLES = 10
STEPS = [4, 16, 48, 96]


def test_e7_implicit_vs_explicit(benchmark):
    rects = random_disjoint_rects(N_OBSTACLES, seed=5)
    rows, Ns, imp_ts, exp_ts = [], [], [], []
    for steps in STEPS:
        poly = staircase_container(rects, steps=steps, margin=2 * steps + 8)
        N = poly.size
        t0 = time.perf_counter()
        st = ImplicitBoundaryStructure(poly, rects, PRAM())
        gates = poly.vertices_loop()[:: max(1, N // 6)]
        for g in gates:
            st.length(g, rects[0].sw)
        t_imp = time.perf_counter() - t0
        t0 = time.perf_counter()
        oracle = GridOracle(rects, poly.vertices_loop() + [rects[0].sw])
        for g in gates:
            oracle.dist(g, rects[0].sw)
        t_exp = time.perf_counter() - t0
        Ns.append(N)
        imp_ts.append(t_imp)
        exp_ts.append(t_exp)
        rows.append(
            [
                N,
                st.registered_points,
                round(t_imp * 1e3, 1),
                round(t_exp * 1e3, 1),
                round(t_exp / t_imp, 2),
            ]
        )
    imp_slope = fit_loglog(Ns, imp_ts)
    exp_slope = fit_loglog(Ns, exp_ts)
    text = format_table(
        ["N=|P|", "registered pts", "implicit ms", "explicit ms", "ratio"],
        rows,
        title=(
            f"E7  §7 implicit representation (n={N_OBSTACLES} fixed, N sweeps)\n"
            f"measured wall: implicit ~ N^{imp_slope:.2f} (paper: O(N) term), "
            f"explicit ~ N^{exp_slope:.2f} (paper: N²-ish)"
        ),
    )
    emit("E7_implicit", text)
    # the implicit registered-point count must not grow with N
    assert len({r[1] for r in rows}) == 1
    assert exp_slope > imp_slope + 0.5, "explicit must scale clearly worse"
    poly = staircase_container(rects, steps=16, margin=40)
    benchmark(lambda: ImplicitBoundaryStructure(poly, rects, PRAM()))
