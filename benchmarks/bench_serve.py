"""S1 — the serving stack: snapshot reload vs cold build, coalesced
throughput vs per-request looping.

The paper's economics are *pay O(log² n) parallel time once, then answer
queries in O(1)/O(log n)*; serving makes that split literal.  Two claims
are measured and recorded in ``BENCH_serve.json``:

* **snapshot amortization** — ``serve.load`` of a persisted index must
  beat re-running the cold parallel build by ≥ 10× at n=128 (it is
  typically hundreds of times faster: an npz read vs a full
  divide-and-conquer);
* **coalescing** — answering a vertex-pair length workload through
  ``QueryServer.submit`` in batches must beat the same workload submitted
  one request at a time by ≥ 5× (one containment check + one matrix
  gather per batch vs a Python round-trip per request).

Smoke mode (``BENCH_SMOKE=1``) shrinks the scene and skips the ratio
assertions (CI machines are noisy); the JSON artifact is always written.
"""

import time

import numpy as np

from benchmarks.common import SMOKE, emit, emit_json, format_table
from repro.core.api import ShortestPathIndex
from repro.serve import QueryServer, SceneStore, load, save
from repro.workloads.generators import random_disjoint_rects
from repro.workloads.requests import random_request_stream, scene_endpoints

N = 24 if SMOKE else 128
N_REQUESTS = 300 if SMOKE else 4000
BATCH = 64 if SMOKE else 512


def _best(fn, repeat=3):
    best, result = float("inf"), None
    for _ in range(repeat):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_s1_snapshot_and_coalescing(tmp_path):
    rects = random_disjoint_rects(N, seed=7)
    t0 = time.perf_counter()
    idx = ShortestPathIndex.build(rects, engine="parallel")
    build_s = time.perf_counter() - t0
    snap = tmp_path / "scene.rsp"
    save_s, _ = _best(lambda: save(idx, snap), repeat=1)
    load_s, loaded = _best(lambda: load(snap))
    load_speedup = build_s / load_s
    # loaded answers match before we trust its throughput numbers
    vs = idx.vertices()
    probe = [(vs[i], vs[-1 - i]) for i in range(0, len(vs), 7)]
    assert np.array_equal(idx.lengths(probe), loaded.lengths(probe))

    store = SceneStore()
    store.add_snapshot("scene", snap)
    server = QueryServer(store)
    endpoints = {"scene": scene_endpoints(store.get("scene"), seed=3)}
    reqs = random_request_stream(endpoints, N_REQUESTS, seed=5, mix=(0.0, 0.0))

    def per_request():
        for r in reqs:
            server.submit([r])

    def coalesced():
        for k in range(0, len(reqs), BATCH):
            server.submit(reqs[k : k + BATCH])

    per_s, _ = _best(per_request)
    co_s, _ = _best(coalesced)
    ratio = per_s / co_s

    rows = [
        ["cold parallel build", round(build_s * 1e3, 1), 1.0],
        ["snapshot save", round(save_s * 1e3, 1), round(build_s / save_s, 1)],
        ["snapshot load", round(load_s * 1e3, 2), round(load_speedup, 1)],
        [f"{N_REQUESTS} reqs, per-request", round(per_s * 1e3, 1), 1.0],
        [f"{N_REQUESTS} reqs, coalesced x{BATCH}", round(co_s * 1e3, 2), round(ratio, 1)],
    ]
    text = format_table(
        ["stage", "ms", "speedup"],
        rows,
        title=(
            f"S1  serving at n={N} — snapshot load {load_speedup:.0f}x faster "
            f"than cold build; coalesced batches {ratio:.1f}x per-request "
            f"({N_REQUESTS / co_s:,.0f} vs {N_REQUESTS / per_s:,.0f} req/s)"
        ),
    )
    emit("S1_serve", text)
    emit_json(
        "serve",
        {
            "n": N,
            "requests": N_REQUESTS,
            "batch": BATCH,
            "cold_build_s": build_s,
            "snapshot_save_s": save_s,
            "snapshot_load_s": load_s,
            "load_speedup": load_speedup,
            "per_request_s": per_s,
            "per_request_rps": N_REQUESTS / per_s,
            "coalesced_s": co_s,
            "coalesced_rps": N_REQUESTS / co_s,
            "coalescing_speedup": ratio,
            "targets": {"load_speedup_min": 10.0, "coalescing_speedup_min": 5.0},
        },
    )
    if not SMOKE:
        assert load_speedup >= 10.0, (
            f"snapshot load only {load_speedup:.1f}x faster than cold build"
        )
        assert ratio >= 5.0, f"coalescing only {ratio:.1f}x per-request"
