"""E6 — §9 vs baselines: the sequential O(n²) build.

Paper claims: the data structure builds sequentially in O(n²), versus
O(n² log n) for running the single-source structure of [11] per source
(and far worse for a naive grid Dijkstra per source).  Measured: wall
times; the §9 engine must win against the *algorithmic* baseline — one
single-source Dijkstra per source — with a ratio that grows with n.

The batched C Dijkstra (`GridOracle.dist_matrix`, scipy csgraph) is shown
as an extra column for honesty: it wins on constants at these sizes, but
it measures implementation speed, not the O(n²) vs O(n² log n) algorithm
comparison E6 is about, so the assertion targets the per-source loop.
"""

import time

import pytest

from benchmarks.common import emit, fit_loglog, format_table
from repro.core.baseline import GridOracle, repeated_single_source_matrix
from repro.core.sequential import SequentialEngine
from repro.workloads.generators import random_disjoint_rects

SIZES = [16, 32, 64, 96]


def test_e6_sequential_vs_baseline(benchmark):
    rows, ns, seq_ts = [], [], []
    for n in SIZES:
        rects = random_disjoint_rects(n, seed=3)
        t0 = time.perf_counter()
        engine = SequentialEngine(rects)
        idx = engine.build()
        t_seq = time.perf_counter() - t0
        oracle = GridOracle(rects, idx.points)
        oracle.graph.csr()  # warm the lazy CSR so neither column pays it
        t0 = time.perf_counter()
        # the E6 baseline: one SSSP per source
        repeated_single_source_matrix(rects, idx.points, oracle)
        t_base = time.perf_counter() - t0
        t0 = time.perf_counter()
        oracle.dist_matrix(idx.points)  # batched C Dijkstra, for context
        t_batched = time.perf_counter() - t0
        ns.append(n)
        seq_ts.append(t_seq)
        rows.append(
            [
                n,
                round(t_seq * 1e3, 1),
                round(t_base * 1e3, 1),
                round(t_batched * 1e3, 1),
                round(t_base / t_seq, 2),
            ]
        )
    slope = fit_loglog(ns, seq_ts)
    text = format_table(
        ["n", "§9 build ms", "per-src Dijkstra ms", "batched C ms",
         "baseline/§9 ratio"],
        rows,
        title=(
            "E6  §9 sequential O(n²) vs repeated single-source Dijkstra\n"
            f"measured §9 wall ~ n^{slope:.2f} (paper 2.0); "
            "the ratio column must grow with n (who wins: §9, increasingly)"
        ),
    )
    emit("E6_sequential", text)
    assert all(r[4] > 1.0 for r in rows[1:]), "§9 must beat per-source Dijkstra"
    assert rows[-1][4] > rows[0][4], "and the gap must widen with n"
    rects = random_disjoint_rects(32, seed=3)
    benchmark(lambda: SequentialEngine(rects).build())
