"""E6 — §9 vs baselines: the sequential O(n²) build.

Paper claims: the data structure builds sequentially in O(n²), versus
O(n² log n) for running the single-source structure of [11] per source
(and far worse for a naive grid Dijkstra per source).  Measured: wall
times; the §9 engine must win, with a ratio that grows with n.
"""

import time

import pytest

from benchmarks.common import emit, fit_loglog, format_table
from repro.core.baseline import GridOracle
from repro.core.sequential import SequentialEngine
from repro.workloads.generators import random_disjoint_rects

SIZES = [16, 32, 64, 96]


def test_e6_sequential_vs_baseline(benchmark):
    rows, ns, seq_ts = [], [], []
    for n in SIZES:
        rects = random_disjoint_rects(n, seed=3)
        t0 = time.perf_counter()
        engine = SequentialEngine(rects)
        idx = engine.build()
        t_seq = time.perf_counter() - t0
        t0 = time.perf_counter()
        oracle = GridOracle(rects, idx.points)
        oracle.dist_matrix(idx.points[: len(idx.points)])
        t_base = time.perf_counter() - t0
        ns.append(n)
        seq_ts.append(t_seq)
        rows.append(
            [
                n,
                round(t_seq * 1e3, 1),
                round(t_base * 1e3, 1),
                round(t_base / t_seq, 2),
            ]
        )
    slope = fit_loglog(ns, seq_ts)
    text = format_table(
        ["n", "§9 build ms", "grid-Dijkstra ms", "baseline/§9 ratio"],
        rows,
        title=(
            "E6  §9 sequential O(n²) vs repeated single-source Dijkstra\n"
            f"measured §9 wall ~ n^{slope:.2f} (paper 2.0); "
            "the ratio column must grow with n (who wins: §9, increasingly)"
        ),
    )
    emit("E6_sequential", text)
    assert all(r[3] > 1.0 for r in rows[1:]), "§9 must beat per-source Dijkstra"
    assert rows[-1][3] > rows[0][3], "and the gap must widen with n"
    rects = random_disjoint_rects(32, seed=3)
    benchmark(lambda: SequentialEngine(rects).build())
