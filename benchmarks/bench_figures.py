"""F1–F14 — regenerate every figure of the paper as ASCII art.

The figures are concept drawings (no data); this bench renders all of
them deterministically and archives them under benchmarks/results/.
"""

import pathlib

import pytest

from benchmarks.common import RESULTS
from repro.viz.figures import ALL_FIGURES, figure_text


def test_f_all_figures(benchmark):
    RESULTS.mkdir(exist_ok=True)
    outdir = RESULTS / "figures"
    outdir.mkdir(exist_ok=True)
    texts = {}
    for k in ALL_FIGURES:
        texts[k] = figure_text(k)
        (outdir / f"fig{k:02d}.txt").write_text(texts[k] + "\n")
    assert len(texts) == 14
    print(f"\nF1-F14: regenerated {len(texts)} figures into {outdir}")
    benchmark(lambda: figure_text(6))
