"""E3 — §6.3: the V_R-to-V_R structure.

Paper claims: O(log² n) time with O(n²) processors (work O(n² log² n)).
Our conquer substitutes the flow pipeline (DESIGN.md §2): time matches the
paper's Θ(log² n); the measured work exponent carries an extra ~n^0.6 from
the vectorised fallback product on scattered blocks — reported honestly
below next to the paper column.

Wall-clock is tracked against ``SEED_WALL_S`` (the pre-vectorization
build times): the batched array-SMAWK conquer plus the corner-graph /
batched-Dijkstra leaf brute-force must keep the build ≥3× the seed at the
largest sweep point, and ``BENCH_allpairs_build.json`` records the
before/after pairs.
"""

import time

import pytest

from benchmarks.common import (
    SEED_ASSERT,
    SMOKE,
    emit,
    emit_json,
    fit_loglog,
    format_table,
    log2,
)
from repro.core.allpairs import ParallelEngine
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects

SIZES = [16, 32] if SMOKE else [16, 32, 64, 128, 192]

#: wall-clock seconds of ``ParallelEngine(...).build()`` at the seed
#: commit (same sweep, same seeds) — the "before" column of this PR
SEED_WALL_S = {16: 0.046, 32: 0.18, 64: 0.714, 128: 3.153, 192: 7.502}


def test_e3_allpairs_build(benchmark):
    rows, ns, times, works = [], [], [], []
    json_rows = []
    for n in SIZES:
        rects = random_disjoint_rects(n, seed=1)
        pram = PRAM()
        engine = ParallelEngine(rects, [], pram, leaf_size=6)
        t0 = time.perf_counter()
        engine.build()
        wall = time.perf_counter() - t0
        ns.append(n)
        times.append(pram.time)
        works.append(pram.work)
        s = engine.stats
        seed_s = SEED_WALL_S.get(n)
        speedup = round(seed_s / wall, 1) if seed_s else None
        rows.append(
            [
                n,
                pram.time,
                round(pram.time / log2(n) ** 2, 1),
                pram.work,
                round(pram.work / (n**2 * log2(n) ** 2), 1),
                pram.work // max(1, pram.time),
                s.nodes,
                s.max_interface,
                round(wall, 3),
                seed_s if seed_s is not None else float("nan"),
            ]
        )
        json_rows.append(
            {
                "n": n,
                "sim_time": pram.time,
                "sim_work": pram.work,
                "nodes": s.nodes,
                "max_interface": s.max_interface,
                "wall_s": round(wall, 4),
                "seed_wall_s": seed_s,
                "speedup_vs_seed": speedup,
            }
        )
    t_slope = fit_loglog(ns, times)
    w_slope = fit_loglog(ns, works)
    text = format_table(
        ["n", "simT", "simT/log²n", "work", "work/(n²log²n)", "procs=W/T",
         "nodes", "max|S_v|", "wall s", "seed wall s"],
        rows,
        title=(
            "E3  §6.3 V_R-to-V_R build — paper: T=O(log²n), W=O(n²log²n)\n"
            f"measured: T ~ n^{t_slope:.2f}, W ~ n^{w_slope:.2f} "
            "(substituted conquer; see DESIGN.md §2)"
        ),
    )
    emit("E3_allpairs_build", text)
    emit_json(
        "allpairs_build",
        {
            "bench": "E3 V_R-to-V_R parallel build",
            "kernels": [
                "smawk_row_minima_array conquer",
                "corner-graph + batched CSR Dijkstra leaves",
            ],
            "sim_time_slope": round(t_slope, 3),
            "sim_work_slope": round(w_slope, 3),
            "rows": json_rows,
        },
    )
    if not SMOKE:
        assert t_slope < 0.7  # time really is polylog
        assert w_slope < 3.0  # and work strictly subcubic
        if SEED_ASSERT:
            largest = json_rows[-1]
            assert largest["speedup_vs_seed"] >= 3, (
                f"vectorized build must be ≥3× the seed at n={largest['n']}: "
                f"got {largest['speedup_vs_seed']}× (baselines were recorded "
                "on the PR machine — on much slower hardware set "
                "BENCH_SEED_ASSERT=0 to skip this comparison)"
            )
    rects = random_disjoint_rects(48, seed=1)
    benchmark(lambda: ParallelEngine(rects, [], PRAM(), leaf_size=6).build())
