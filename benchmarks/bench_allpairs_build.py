"""E3 — §6.3: the V_R-to-V_R structure.

Paper claims: O(log² n) time with O(n²) processors (work O(n² log² n)).
Our conquer substitutes the flow pipeline (DESIGN.md §2): time matches the
paper's Θ(log² n); the measured work exponent carries an extra ~n^0.6 from
the vectorised fallback product on scattered blocks — reported honestly
below next to the paper column.
"""

import pytest

from benchmarks.common import emit, fit_loglog, format_table, log2
from repro.core.allpairs import ParallelEngine
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects

SIZES = [16, 32, 64, 128, 192]


def test_e3_allpairs_build(benchmark):
    rows, ns, times, works = [], [], [], []
    for n in SIZES:
        rects = random_disjoint_rects(n, seed=1)
        pram = PRAM()
        engine = ParallelEngine(rects, [], pram, leaf_size=6)
        engine.build()
        ns.append(n)
        times.append(pram.time)
        works.append(pram.work)
        s = engine.stats
        rows.append(
            [
                n,
                pram.time,
                round(pram.time / log2(n) ** 2, 1),
                pram.work,
                round(pram.work / (n**2 * log2(n) ** 2), 1),
                pram.work // max(1, pram.time),
                s.nodes,
                s.max_interface,
            ]
        )
    t_slope = fit_loglog(ns, times)
    w_slope = fit_loglog(ns, works)
    text = format_table(
        ["n", "simT", "simT/log²n", "work", "work/(n²log²n)", "procs=W/T",
         "nodes", "max|S_v|"],
        rows,
        title=(
            "E3  §6.3 V_R-to-V_R build — paper: T=O(log²n), W=O(n²log²n)\n"
            f"measured: T ~ n^{t_slope:.2f}, W ~ n^{w_slope:.2f} "
            "(substituted conquer; see DESIGN.md §2)"
        ),
    )
    emit("E3_allpairs_build", text)
    assert t_slope < 0.7  # time really is polylog
    assert w_slope < 3.0  # and work strictly subcubic
    rects = random_disjoint_rects(48, seed=1)
    benchmark(lambda: ParallelEngine(rects, [], PRAM(), leaf_size=6).build())
