"""E3 — §6.3: the V_R-to-V_R structure.

Paper claims: O(log² n) time with O(n²) processors (work O(n² log² n)).
Our conquer substitutes the flow pipeline (DESIGN.md §2): time matches the
paper's Θ(log² n); the measured work exponent carries an extra ~n^0.6 from
the vectorised fallback product on scattered blocks — reported honestly
below next to the paper column.

Wall-clock is tracked against ``SEED_WALL_S`` (the pre-vectorization
build times): the batched array-SMAWK conquer plus the corner-graph /
batched-Dijkstra leaf brute-force must keep the build ≥3× the seed at the
largest sweep point, and ``BENCH_allpairs_build.json`` records the
before/after pairs.
"""

import os
import time

import pytest

from benchmarks.common import (
    SEED_ASSERT,
    SMOKE,
    emit,
    emit_json,
    fit_loglog,
    format_table,
    host_context,
    log2,
)
from repro.core.allpairs import ParallelEngine
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects

SIZES = [16, 32] if SMOKE else [16, 32, 64, 128, 192]

#: the measured (not simulated) multicore curve: wall clock of the same
#: build dispatched across a real worker pool.  1 worker is the honest
#: inline baseline (no pool at all)
POOL_WORKERS = (1, 2) if SMOKE else (1, 2, 4)
POOL_N = 32 if SMOKE else 128

#: wall-clock seconds of ``ParallelEngine(...).build()`` at the seed
#: commit (same sweep, same seeds) — the "before" column of this PR
SEED_WALL_S = {16: 0.046, 32: 0.18, 64: 0.714, 128: 3.153, 192: 7.502}


def test_e3_allpairs_build(benchmark):
    rows, ns, times, works = [], [], [], []
    json_rows = []
    for n in SIZES:
        rects = random_disjoint_rects(n, seed=1)
        pram = PRAM()
        engine = ParallelEngine(rects, [], pram, leaf_size=6)
        t0 = time.perf_counter()
        engine.build()
        wall = time.perf_counter() - t0
        ns.append(n)
        times.append(pram.time)
        works.append(pram.work)
        s = engine.stats
        seed_s = SEED_WALL_S.get(n)
        speedup = round(seed_s / wall, 1) if seed_s else None
        rows.append(
            [
                n,
                pram.time,
                round(pram.time / log2(n) ** 2, 1),
                pram.work,
                round(pram.work / (n**2 * log2(n) ** 2), 1),
                pram.work // max(1, pram.time),
                s.nodes,
                s.max_interface,
                round(wall, 3),
                seed_s if seed_s is not None else float("nan"),
            ]
        )
        json_rows.append(
            {
                "n": n,
                "sim_time": pram.time,
                "sim_work": pram.work,
                "nodes": s.nodes,
                "max_interface": s.max_interface,
                "wall_s": round(wall, 4),
                "seed_wall_s": seed_s,
                "speedup_vs_seed": speedup,
            }
        )
    t_slope = fit_loglog(ns, times)
    w_slope = fit_loglog(ns, works)
    text = format_table(
        ["n", "simT", "simT/log²n", "work", "work/(n²log²n)", "procs=W/T",
         "nodes", "max|S_v|", "wall s", "seed wall s"],
        rows,
        title=(
            "E3  §6.3 V_R-to-V_R build — paper: T=O(log²n), W=O(n²log²n)\n"
            f"measured: T ~ n^{t_slope:.2f}, W ~ n^{w_slope:.2f} "
            "(substituted conquer; see DESIGN.md §2)"
        ),
    )
    emit("E3_allpairs_build", text)
    pool_scaling = _measure_pool_scaling()
    emit_json(
        "allpairs_build",
        {
            "bench": "E3 V_R-to-V_R parallel build",
            "kernels": [
                "smawk_row_minima_array conquer",
                "corner-graph + batched CSR Dijkstra leaves",
            ],
            "sim_time_slope": round(t_slope, 3),
            "sim_work_slope": round(w_slope, 3),
            "rows": json_rows,
            "pool_scaling": pool_scaling,
        },
    )
    if not SMOKE:
        assert t_slope < 0.7  # time really is polylog
        assert w_slope < 3.0  # and work strictly subcubic
        if SEED_ASSERT:
            largest = json_rows[-1]
            assert largest["speedup_vs_seed"] >= 3, (
                f"vectorized build must be ≥3× the seed at n={largest['n']}: "
                f"got {largest['speedup_vs_seed']}× (baselines were recorded "
                "on the PR machine — on much slower hardware set "
                "BENCH_SEED_ASSERT=0 to skip this comparison)"
            )
    rects = random_disjoint_rects(48, seed=1)
    benchmark(lambda: ParallelEngine(rects, [], PRAM(), leaf_size=6).build())


def _measure_pool_scaling() -> dict:
    """Wall-clock the n=POOL_N build across real worker pools of 1/2/4
    processes (byte-identity re-checked on the way) — the measured
    companion to the simulated PRAM table above.  The ≥2× target at 4
    workers only means something on a machine that *has* 4 cores, so the
    assertion is gated on the host, never the recording."""
    from repro.core.mpengine import ParallelMPEngine
    from repro.core.pool import get_pool, shutdown_pool

    rects = random_disjoint_rects(POOL_N, seed=1)
    walls, rows = {}, []
    baseline_bytes = None
    for jobs in POOL_WORKERS:
        pool = None
        if jobs > 1:
            pool = get_pool(jobs)
            # absorb fork/compile cost before timing: one throwaway build
            ParallelMPEngine(
                random_disjoint_rects(12, seed=2), [], PRAM(),
                leaf_size=6, pool=pool, jobs=jobs,
            ).build()
        t0 = time.perf_counter()
        engine = ParallelMPEngine(
            rects, [], PRAM(), leaf_size=6, pool=pool, jobs=jobs
        )
        index = engine.build()
        wall = time.perf_counter() - t0
        walls[jobs] = wall
        if baseline_bytes is None:
            baseline_bytes = index.matrix.tobytes()
        else:
            assert index.matrix.tobytes() == baseline_bytes, (
                f"{jobs}-worker build diverged from the 1-worker bytes"
            )
        rows.append(
            {
                "workers": jobs,
                "wall_s": round(wall, 4),
                "speedup_vs_1w": round(walls[POOL_WORKERS[0]] / wall, 2),
                "pool_tasks": engine.pool_stats["tasks"],
            }
        )
    shutdown_pool()
    emit(
        "E3_pool_scaling",
        format_table(
            ["workers", "wall s", "speedup", "pool tasks"],
            [[r["workers"], r["wall_s"], r["speedup_vs_1w"], r["pool_tasks"]]
             for r in rows],
            title=(
                f"E3b  measured multicore build (parallel-mp, n={POOL_N}, "
                f"{host_context()['physical_cores']} physical cores)"
            ),
        ),
    )
    out = {"n": POOL_N, "rows": rows, "target_speedup_at_4w": 2.0}
    if not SMOKE and (os.cpu_count() or 1) >= 4 and POOL_N >= 128:
        speedup = rows[-1]["speedup_vs_1w"]
        assert rows[-1]["workers"] >= 4
        assert speedup >= 2.0, (
            f"multicore build only {speedup:.2f}x at 4 workers on a "
            f"{os.cpu_count()}-core host (need >= 2x at n={POOL_N})"
        )
    return out
