"""Unit tests for repro.geometry.staircase."""

import math

import pytest

from repro.errors import GeometryError
from repro.geometry.primitives import ALL_TRANSFORMS, Rect
from repro.geometry.staircase import Staircase


def inc_chain():
    # ramp: (0,0) -> (4,0) -> (4,3) -> (8,3) -> (8,6)
    return Staircase(((0, 0), (4, 0), (4, 3), (8, 3), (8, 6)), increasing=True,
                     left_dir="W", right_dir="N")


def dec_chain():
    return Staircase(((0, 9), (3, 9), (3, 5), (7, 5), (7, 1)), increasing=False,
                     left_dir="W", right_dir="S")


class TestConstruction:
    def test_collinear_points_dropped(self):
        s = Staircase(((0, 0), (2, 0), (5, 0), (5, 3)), increasing=True)
        assert s.pts == ((0, 0), (5, 0), (5, 3))

    def test_duplicate_points_dropped(self):
        s = Staircase(((0, 0), (0, 0), (3, 0)), increasing=True)
        assert s.pts == ((0, 0), (3, 0))

    def test_rejects_diagonal(self):
        with pytest.raises(GeometryError):
            Staircase(((0, 0), (1, 1)))

    def test_rejects_x_backtrack(self):
        with pytest.raises(GeometryError):
            Staircase(((2, 0), (0, 0)))

    def test_rejects_y_backtrack_increasing(self):
        with pytest.raises(GeometryError):
            Staircase(((0, 0), (0, 5), (3, 5), (3, 2)), increasing=True)

    def test_rejects_bad_ray(self):
        with pytest.raises(GeometryError):
            Staircase(((0, 0), (3, 0)), increasing=True, left_dir="N")

    def test_num_segments(self):
        assert inc_chain().num_segments == 6  # 4 finite + 2 rays


class TestRanges:
    def test_y_range_on_horizontal_run(self):
        s = inc_chain()
        assert s.y_range_at_x(2) == (0, 0)
        assert s.y_range_at_x(6) == (3, 3)

    def test_y_range_on_vertical_segment(self):
        s = inc_chain()
        assert s.y_range_at_x(4) == (0, 3)

    def test_y_range_on_west_ray(self):
        s = inc_chain()
        assert s.y_range_at_x(-100) == (0, 0)

    def test_y_range_on_north_ray_end(self):
        s = inc_chain()
        assert s.y_range_at_x(8) == (3, math.inf)

    def test_y_range_beyond_north_ray(self):
        assert inc_chain().y_range_at_x(9) is None

    def test_x_range_simple(self):
        s = inc_chain()
        assert s.x_range_at_y(0) == (-math.inf, 4)
        assert s.x_range_at_y(3) == (4, 8)
        assert s.x_range_at_y(100) == (8, 8)  # the north ray
        assert s.x_range_at_y(-1) is None

    def test_x_range_decreasing(self):
        s = dec_chain()
        assert s.x_range_at_y(9) == (-math.inf, 3)
        assert s.x_range_at_y(5) == (3, 7)
        assert s.x_range_at_y(0) == (7, 7)


class TestSides:
    def test_sides_increasing(self):
        s = inc_chain()
        assert s.side_of((2, 5)) == 1  # above
        assert s.side_of((2, -5)) == -1
        assert s.side_of((2, 0)) == 0
        assert s.side_of((4, 2)) == 0  # on vertical segment
        assert s.side_of((-50, 1)) == 1
        assert s.side_of((-50, -1)) == -1
        assert s.side_of((50, 0)) == -1  # east of the north ray
        assert s.side_of((8, 1000)) == 0  # on the north ray

    def test_sides_decreasing(self):
        s = dec_chain()
        assert s.side_of((0, 20)) == 1  # NE side
        assert s.side_of((5, 20)) == 1
        assert s.side_of((1, 0)) == -1  # SW side
        assert s.side_of((100, 5)) == 1  # east of the south ray is the NE side
        assert s.side_of((7, -100)) == 0

    def test_side_requires_unbounded(self):
        s = Staircase(((0, 0), (3, 0)), increasing=True)
        with pytest.raises(GeometryError):
            s.side_of((1, 1))

    def test_side_of_rect(self):
        s = inc_chain()
        assert s.side_of_rect(Rect(1, 1, 3, 4)) == 1
        assert s.side_of_rect(Rect(5, -4, 7, -1)) == -1

    def test_vertical_line_staircase(self):
        s = Staircase(((5, 0),), increasing=True, left_dir="S", right_dir="N")
        assert s.side_of((4, 100)) == 1
        assert s.side_of((6, -100)) == -1
        assert s.side_of((5, 42)) == 0


class TestClearance:
    def test_clear_when_no_obstacle(self):
        assert inc_chain().is_clear([Rect(10, 10, 12, 12)])

    def test_not_clear_when_crossing_interior(self):
        assert not inc_chain().is_clear([Rect(1, -1, 3, 1)])

    def test_boundary_contact_is_clear(self):
        # chain runs along the rect top edge
        assert inc_chain().is_clear([Rect(1, -1, 3, 0)])

    def test_ray_blocked(self):
        # west ray at y=0 passes through a rect interior at y=0
        assert not inc_chain().is_clear([Rect(-10, -1, -5, 1)])


class TestCrossings:
    def test_crossings_with_vline(self):
        s = inc_chain()
        assert s.crossings_with_vline(4) == [(4, 0), (4, 3)]
        assert s.crossings_with_vline(2) == [(2, 0)]
        assert s.crossings_with_vline(9) == []

    def test_crossings_with_hline(self):
        s = inc_chain()
        assert s.crossings_with_hline(3) == [(4, 3), (8, 3)]
        assert s.crossings_with_hline(1) == [(4, 1)]

    def test_clip_points_to_bbox(self):
        s = inc_chain()
        assert s.clip_points_to_bbox(3, -1, 8, 4) == [(4, 0), (4, 3), (8, 3)]


class TestChainOps:
    def test_arc_dist_is_l1(self):
        s = inc_chain()
        assert s.arc_dist((0, 0), (8, 6)) == 14
        assert s.arc_dist((4, 2), (8, 3)) == 5

    def test_subchain(self):
        s = inc_chain()
        sub = s.subchain((2, 0), (8, 4))
        assert sub[0] == (2, 0)
        assert sub[-1] == (8, 4)
        assert (4, 0) in sub and (4, 3) in sub

    def test_subchain_reversed_order(self):
        s = inc_chain()
        sub = s.subchain((8, 4), (2, 0))
        assert sub[0] == (8, 4) and sub[-1] == (2, 0)


class TestTransform:
    def test_transform_roundtrip(self):
        s = inc_chain()
        for t in ALL_TRANSFORMS:
            back = s.transform(t).transform(t.inverse())
            assert back.pts == s.pts
            assert back.left_dir == s.left_dir
            assert back.right_dir == s.right_dir
            assert back.increasing == s.increasing

    def test_transform_preserves_sides(self):
        s = inc_chain()
        probes = [(2, 5), (2, -5), (9, 100), (-3, -3), (6, 3)]
        for t in ALL_TRANSFORMS:
            ts = s.transform(t)
            for p in probes:
                assert ts.side_of(t.apply(p)) in (s.side_of(p), -s.side_of(p), 0) \
                    if s.side_of(p) == 0 else True
                if s.side_of(p) == 0:
                    assert ts.side_of(t.apply(p)) == 0

    def test_flip_x_changes_monotonicity(self):
        s = inc_chain()
        t = [t for t in ALL_TRANSFORMS if t.sx == -1 and t.sy == 1 and not t.swap][0]
        assert s.transform(t).increasing is False
