"""Chaos suite: the cluster under injected faults.

Every test drives a real multi-process ``ClusterFrontend`` through a
:class:`~repro.cluster.faults.FaultPlan` (or a hand-thrown fault) and
asserts the *client-visible* contract: with retries enabled a worker
kill, a duplicated frame, or a truncated connection must not surface as
an error; a corrupt snapshot must quarantine and rebuild, not crash a
worker; a stalled worker must expire queued deadlines instead of serving
stale work.
"""

import asyncio
import os
import time

import pytest

from repro.cluster import loadgen
from repro.cluster.faults import FaultInjector, FaultPlan, bitflip_file
from repro.cluster.frontend import ClusterFrontend
from repro.cluster.protocol import read_frame, write_frame
from repro.cluster.supervisor import RestartPolicy, Supervisor
from repro.core.api import ShortestPathIndex
from repro.errors import ClusterError, SnapshotError
from repro.serve import shm as rshm
from repro.serve import snapshot
from repro.serve.store import SceneStore
from repro.workloads.generators import random_disjoint_rects


@pytest.fixture(autouse=True)
def no_leaked_segments():
    before = set(rshm.list_segments())
    yield
    leaked = set(rshm.list_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


@pytest.fixture(scope="module")
def scene_data():
    rects_a = random_disjoint_rects(7, seed=1)
    rects_b = random_disjoint_rects(5, seed=2)
    return {
        "a": (rects_a, ShortestPathIndex.build(rects_a)),
        "b": (rects_b, ShortestPathIndex.build(rects_b)),
    }


async def _rpc(host, port, *msgs, timeout=30.0):
    reader, writer = await asyncio.open_connection(host, port)
    try:
        for m in msgs:
            await write_frame(writer, m)
        return [
            await asyncio.wait_for(read_frame(reader), timeout) for _ in msgs
        ]
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


# -- the fault plan itself ----------------------------------------------
class TestFaultPlan:
    def test_round_trips_and_rejects_unknown_fields(self, tmp_path):
        plan = FaultPlan(kill_every=200, delay_every=10, delay_ms=5.0)
        assert FaultPlan.from_dict(plan.to_dict()) == plan
        with pytest.raises(ClusterError, match="unknown fault plan field"):
            FaultPlan.from_dict({"kill_evry": 200})
        f = tmp_path / "plan.json"
        f.write_text('{"kill_every": 3, "max_kills": 1}')
        assert FaultPlan.from_file(f) == FaultPlan(kill_every=3, max_kills=1)
        with pytest.raises(ClusterError, match="unreadable fault plan"):
            FaultPlan.from_file(tmp_path / "missing.json")

    def test_worker_options_carry_only_stalls(self):
        assert FaultPlan(kill_every=5).worker_options() == {}
        assert FaultPlan(stall_every=4, stall_ms=100.0).worker_options() == {
            "stall_every": 4,
            "stall_ms": 100.0,
        }

    def test_bitflip_is_deterministic_and_single_bit(self, tmp_path):
        f = tmp_path / "blob.bin"
        payload = bytes(range(256)) * 8
        f.write_bytes(payload)
        copy = tmp_path / "copy.bin"
        copy.write_bytes(payload)
        off = bitflip_file(f, seed=3)
        assert off == bitflip_file(copy, seed=3)  # seeded: same offset
        mutated = f.read_bytes()
        assert len(mutated) == len(payload)
        diffs = [i for i, (x, y) in enumerate(zip(payload, mutated)) if x != y]
        assert diffs == [off]
        assert (payload[off] ^ mutated[off]) == 0x01
        assert off >= len(payload) // 2  # lands in the payload half
        with pytest.raises(ClusterError, match="outside file"):
            bitflip_file(f, offset=len(payload))


# -- supervisor policy (pure, no processes) -----------------------------
class TestSupervisorPolicy:
    def test_backoff_grows_and_resets(self):
        t = [0.0]
        sup = Supervisor(
            RestartPolicy(jitter=0.0), time_fn=lambda: t[0]
        )
        sup.record_crash(0, "boom")
        b1 = sup.next_backoff(0)
        sup.record_crash(0, "boom again")
        b2 = sup.next_backoff(0)
        assert b2 == pytest.approx(2 * b1)
        sup.record_restart(0)  # success resets consecutive failures
        sup.record_crash(0, "later")
        assert sup.next_backoff(0) == pytest.approx(b1)
        assert sup.total_restarts == 1

    def test_circuit_breaker_is_sticky_and_window_prunes(self):
        t = [0.0]
        pol = RestartPolicy(max_restarts=2, window_s=10.0)
        sup = Supervisor(pol, time_fn=lambda: t[0])
        for _ in range(2):
            sup.record_crash(1, "x")
            assert sup.allow_restart(1)
            sup.record_restart(1)
        sup.record_crash(1, "x")  # third crash inside the window
        assert not sup.allow_restart(1)
        assert sup.stats()["workers"]["1"]["breaker_open"]
        t[0] += 60.0  # even far outside the window: breaker is sticky
        assert not sup.allow_restart(1)
        # a slow-crashing worker never trips it
        for i in range(6):
            sup.record_crash(2, "slow")
            assert sup.allow_restart(2), i
            sup.record_restart(2)
            t[0] += 20.0


# -- chaos acceptance: kills under sustained load -----------------------
class TestKillChaos:
    def test_closed_loop_survives_repeated_worker_kills(self, scene_data):
        # the ISSUE acceptance drill: 2 workers, a kill every 200
        # requests across a 2000-request closed loop; with retries the
        # client sees zero errors and the report proves faults did fire
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            plan = FaultPlan(kill_every=200)
            async with ClusterFrontend(
                scenes,
                workers=2,
                faults=plan,
                # 10 kills land on 2 slots well inside the default 30s
                # window — the drill needs a policy that keeps restarting
                restart_policy=RestartPolicy(max_restarts=100, window_s=30.0),
            ) as fe:
                rep = await loadgen.run(
                    fe.host,
                    fe.port,
                    mode="closed",
                    n_requests=2000,
                    conns=4,
                    seed=3,
                    retries=8,
                    retry_budget=2000,
                    timeout_s=15.0,
                )
                s = rep.summary()
                assert s["sent"] == 2000
                assert s["errors"] == 0, s
                assert s["ok"] + s["shed"] + s["deadline_expired"] == 2000
                assert s["ok"] >= 1900
                # bounded tail latency: redirects + restarts, not hangs
                assert s["latency"]["p99_ms"] < 10_000.0
                assert fe.injector.kills, "fault plan never fired"
                assert fe.supervisor.total_restarts >= 1
                st = fe.stats()
                assert st["faults"]["kills"] == fe.injector.kills
                assert (
                    st["supervisor"]["total_restarts"]
                    == fe.supervisor.total_restarts
                )
        asyncio.run(run())

    def test_breaker_leaves_cluster_degraded_but_serving(self, scene_data):
        # max_kills=1 with supervision disabled: the survivor carries
        # every scene and the run still completes with retries
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            plan = FaultPlan(kill_every=20, max_kills=1)
            async with ClusterFrontend(
                scenes, workers=2, faults=plan, supervise=False
            ) as fe:
                rep = await loadgen.run(
                    fe.host,
                    fe.port,
                    mode="closed",
                    n_requests=200,
                    conns=2,
                    seed=4,
                    retries=5,
                )
                s = rep.summary()
                assert s["errors"] == 0, s
                assert len(fe.injector.kills) == 1
                (h,) = await _rpc(fe.host, fe.port, {"id": 0, "op": "health"})
                assert h["result"]["status"] == "degraded"
        asyncio.run(run())


# -- frame faults: the client side must cope ----------------------------
class TestFrameFaults:
    def test_duplicates_delays_and_truncations_are_retried(self, scene_data):
        async def run():
            scenes = {
                name: {"obstacles": rects} for name, (rects, _) in scene_data.items()
            }
            plan = FaultPlan(
                delay_every=7,
                delay_ms=20.0,
                duplicate_every=5,
                truncate_every=31,
            )
            async with ClusterFrontend(scenes, workers=2, faults=plan) as fe:
                rep = await loadgen.run(
                    fe.host,
                    fe.port,
                    mode="closed",
                    n_requests=300,
                    conns=3,
                    seed=5,
                    retries=6,
                    retry_budget=600,
                    timeout_s=10.0,
                )
                s = rep.summary()
                assert s["errors"] == 0, s
                assert s["ok"] == 300
                inj = fe.injector
                assert inj.duplicates > 0 and inj.truncations > 0
                assert inj.delays > 0
                # truncation forced at least one reconnect-and-retry
                assert s["retries"] >= 1
        asyncio.run(run())


# -- stalls and deadlines -----------------------------------------------
class TestDeadlines:
    def test_stalled_worker_expires_queued_deadlines(self, scene_data):
        async def run():
            rects, idx = scene_data["a"]
            vs = idx.vertices()
            async with ClusterFrontend(
                {"a": {"obstacles": rects}}, workers=1, max_batch=1
            ) as fe:
                reader, writer = await asyncio.open_connection(fe.host, fe.port)
                try:
                    # occupy the only worker, then queue a request whose
                    # budget expires while the worker naps
                    await write_frame(
                        writer,
                        {"id": 0, "op": "sleep", "scene": "a", "ms": 400},
                    )
                    await asyncio.sleep(0.05)
                    await write_frame(
                        writer,
                        {
                            "id": 1,
                            "op": "length",
                            "scene": "a",
                            "p": list(vs[0]),
                            "q": list(vs[-1]),
                            "deadline_ms": 100,
                        },
                    )
                    r0 = await asyncio.wait_for(read_frame(reader), 30)
                    r1 = await asyncio.wait_for(read_frame(reader), 30)
                finally:
                    writer.close()
                    try:
                        await writer.wait_closed()
                    except (ConnectionError, OSError):
                        pass
                assert r0["ok"] and r0["result"] == "slept"
                assert not r1["ok"] and r1["deadline_expired"], r1
                assert "deadline expired" in r1["error"]
                assert fe.deadline_expired == 1
                st = fe.stats()
                assert st["frontend"]["deadline_expired"] == 1
                assert st["frontend"]["scenes"]["a"]["deadline_expired"] == 1
                # a retry with a fresh budget succeeds
                (r2,) = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 2, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1]), "deadline_ms": 5000},
                )
                assert r2["ok"] and r2["result"] == idx.length(vs[0], vs[-1])
        asyncio.run(run())

    def test_bad_deadline_is_a_one_line_error(self, scene_data):
        async def run():
            rects, idx = scene_data["a"]
            vs = idx.vertices()
            async with ClusterFrontend({"a": {"obstacles": rects}}, workers=1) as fe:
                (r,) = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1]), "deadline_ms": "soon"},
                )
                assert not r["ok"] and "deadline_ms" in r["error"]
        asyncio.run(run())

    def test_stall_plan_reaches_workers(self, scene_data):
        async def run():
            rects, idx = scene_data["a"]
            vs = idx.vertices()
            plan = FaultPlan(stall_every=3, stall_ms=150.0)
            async with ClusterFrontend(
                {"a": {"obstacles": rects}}, workers=1, max_batch=1, faults=plan
            ) as fe:
                msg = {"op": "length", "scene": "a",
                       "p": list(vs[0]), "q": list(vs[-1])}
                t0 = time.perf_counter()
                for i in range(3):
                    (r,) = await _rpc(fe.host, fe.port, dict(msg, id=i))
                    assert r["ok"]
                # readiness ping was batch #1, so the stall lands inside
                # these three requests regardless of batching phase
                assert time.perf_counter() - t0 >= 0.14
        asyncio.run(run())


# -- snapshot quarantine ------------------------------------------------
def _corrupt_matrix(path):
    """Flip one bit inside the checksummed matrix payload (the seeded
    back-half default could land in an unchecksummed member)."""
    header, base = snapshot._read_raw_header(path)
    toc = header["toc"]["matrix"]
    return bitflip_file(path, offset=base + toc["offset"] + toc["nbytes"] // 2)


class TestQuarantine:
    def test_store_quarantines_and_rebuilds(self, tmp_path, scene_data):
        rects, idx = scene_data["a"]
        path = snapshot.save(idx, tmp_path / "a.rsp")
        _corrupt_matrix(path)
        store = SceneStore()
        store.add_snapshot(
            "a", path, fallback=lambda: ShortestPathIndex.build(rects)
        )
        got = store.get("a")  # no raise: quarantined + rebuilt
        vs = idx.vertices()
        assert got.length(vs[0], vs[-1]) == idx.length(vs[0], vs[-1])
        assert not path.exists()
        q = path.with_name(path.name + ".quarantined")
        assert q.exists()
        assert "checksum" in store.quarantines["a"]
        st = store.stats()
        assert st["quarantined"] == 1 and st["quarantined_scenes"] == ["a"]
        # the demotion is permanent: evict + re-get rebuilds, does not
        # re-touch (or double-quarantine) the artifact
        assert store.evict("a")
        assert store.get("a").length(vs[0], vs[-1]) == idx.length(vs[0], vs[-1])
        assert store.stats()["quarantined"] == 1

    def test_store_without_fallback_raises_after_quarantine(
        self, tmp_path, scene_data
    ):
        rects, idx = scene_data["b"]
        path = snapshot.save(idx, tmp_path / "b.rsp")
        _corrupt_matrix(path)
        store = SceneStore()
        store.add_snapshot("b", path)
        with pytest.raises(SnapshotError):
            store.get("b")
        assert not path.exists()  # still quarantined out of the way
        assert store.stats()["quarantined"] == 1

    def test_worker_survives_corrupt_snapshot(self, tmp_path, scene_data):
        # cluster-level: plain (non-shm) snapshot spec with geometry
        # attached; corrupt the artifact after spawn but before first
        # use — the worker must quarantine + rebuild, never crash
        async def run():
            rects, idx = scene_data["a"]
            path = snapshot.save(idx, tmp_path / "a.rsp")
            vs = idx.vertices()
            async with ClusterFrontend(
                {"a": {"snapshot": path, "obstacles": rects}},
                workers=1,
                use_shm=False,
            ) as fe:
                _corrupt_matrix(path)  # worker has not loaded it yet
                (r,) = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                )
                assert r["ok"] and r["result"] == idx.length(vs[0], vs[-1])
                assert fe.workers[0].proc.is_alive()
                (st,) = await _rpc(fe.host, fe.port, {"id": 1, "op": "stats"})
                w0 = st["result"]["workers"]["0"]
                assert w0["store"]["quarantined"] == 1
                assert w0["store"]["quarantined_scenes"] == ["a"]
            assert path.with_name(path.name + ".quarantined").exists()
        asyncio.run(run())


# -- graceful lifecycle -------------------------------------------------
class TestDrain:
    def test_drain_verb_refuses_new_work_and_acks(self, scene_data):
        async def run():
            rects, idx = scene_data["a"]
            vs = idx.vertices()
            async with ClusterFrontend({"a": {"obstacles": rects}}, workers=1) as fe:
                r0, rd = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                    {"id": 1, "op": "drain"},
                )
                assert r0["ok"]
                assert rd["ok"] and rd["result"] == "drained"
                r1, h, p = await _rpc(
                    fe.host,
                    fe.port,
                    {"id": 0, "op": "length", "scene": "a",
                     "p": list(vs[0]), "q": list(vs[-1])},
                    {"id": 1, "op": "health"},
                    {"id": 2, "op": "ping"},
                )
                assert not r1["ok"] and r1["draining"]
                assert "draining" in r1["error"]
                assert h["result"]["status"] == "draining"
                assert p["ok"]  # lifecycle verbs still answer
        asyncio.run(run())

    def test_drain_waits_for_inflight_work(self, scene_data):
        async def run():
            rects, _ = scene_data["a"]
            async with ClusterFrontend(
                {"a": {"obstacles": rects}}, workers=1, max_batch=1
            ) as fe:
                slow = asyncio.ensure_future(
                    _rpc(
                        fe.host,
                        fe.port,
                        {"id": 0, "op": "sleep", "scene": "a", "ms": 300},
                    )
                )
                await asyncio.sleep(0.1)  # the sleep is now in flight
                t0 = time.perf_counter()
                await fe.drain()
                assert time.perf_counter() - t0 >= 0.1  # waited it out
                (r,) = await slow
                assert r["ok"] and r["result"] == "slept"
        asyncio.run(run())
