"""Tests for Pareto frontiers and MAX_XY staircases (§2, Fig. 1)."""

import pytest

from repro.errors import GeometryError
from repro.geometry.frontier import (
    all_max_staircases,
    max_staircase,
    max_staircase_of_rects,
    maximal_points,
)
from repro.geometry.primitives import Rect
from repro.workloads.generators import random_disjoint_rects


class TestMaximalPoints:
    def test_single(self):
        assert maximal_points([(3, 3)]) == [(3, 3)]

    def test_chain(self):
        pts = [(0, 5), (2, 3), (4, 1), (1, 1), (0, 0)]
        assert maximal_points(pts) == [(0, 5), (2, 3), (4, 1)]

    def test_dominated_removed(self):
        assert maximal_points([(0, 0), (5, 5)]) == [(5, 5)]

    def test_same_x_keeps_highest(self):
        assert maximal_points([(2, 1), (2, 9)]) == [(2, 9)]

    def test_output_sorted_x_increasing_y_decreasing(self):
        import random

        rng = random.Random(42)
        pts = [(rng.randint(0, 50), rng.randint(0, 50)) for _ in range(200)]
        out = maximal_points(pts)
        assert all(a[0] < b[0] and a[1] > b[1] for a, b in zip(out, out[1:]))

    def test_no_point_dominated_in_output(self):
        import random

        rng = random.Random(1)
        pts = [(rng.randint(0, 30), rng.randint(0, 30)) for _ in range(100)]
        out = set(maximal_points(pts))
        for p in pts:
            dominated = any(q != p and q[0] >= p[0] and q[1] >= p[1] for q in pts)
            assert (p in out) == (not dominated)


class TestMaxStaircases:
    def rects(self):
        return [Rect(0, 8, 4, 12), Rect(6, 2, 10, 6), Rect(3, 0, 5, 3)]

    def test_ne_goes_through_maximal_corners(self):
        s = max_staircase_of_rects(self.rects(), "NE")
        assert (4, 12) in s.pts and (10, 6) in s.pts
        assert s.increasing is False
        assert s.left_dir == "W" and s.right_dir == "E"

    def test_all_rects_below_ne(self):
        rects = self.rects()
        s = max_staircase_of_rects(rects, "NE")
        # "below": no rect point strictly above a staircase point — corner check
        for r in rects:
            assert s.side_of_rect(r) == -1 or all(
                s.side_of(v) <= 0 for v in r.vertices
            )

    def test_unknown_quadrant(self):
        with pytest.raises(GeometryError):
            max_staircase([(0, 0)], "XX")

    @pytest.mark.parametrize("quadrant", ["NE", "NW", "SE", "SW"])
    def test_frontier_clear_random(self, quadrant):
        rects = random_disjoint_rects(40, seed=3)
        s = max_staircase_of_rects(rects, quadrant)
        assert s.is_clear(rects)

    @pytest.mark.parametrize("seed", range(4))
    def test_frontier_separates_random(self, seed):
        """Every obstacle lies weakly on the inner side of each frontier."""
        rects = random_disjoint_rects(30, seed=seed)
        stairs = all_max_staircases(rects)
        sides = {"NE": -1, "SE": 1, "NW": -1, "SW": 1}
        for q, s in stairs.items():
            want = sides[q]
            for r in rects:
                for v in r.vertices:
                    got = s.side_of(v)
                    assert got == want or got == 0, (q, r, v)

    def test_unbounded_and_size(self):
        rects = random_disjoint_rects(25, seed=9)
        for q in ("NE", "NW", "SE", "SW"):
            s = max_staircase_of_rects(rects, q)
            assert s.unbounded
            assert s.num_segments <= 2 * len(rects) + 2
