"""Tests for the Staircase Separator Theorem (Theorem 2)."""

import pytest

from repro.core.separator import Separator, staircase_separator
from repro.errors import GeometryError
from repro.geometry.primitives import Rect
from repro.pram import PRAM
from repro.workloads.generators import WORKLOAD_MODES, random_disjoint_rects


def check_separator(rects, sep: Separator):
    n = len(rects)
    # property 1: clear
    assert sep.staircase.is_clear(rects)
    # property 2 (for n >= 8): both sides at most 7n/8 (small slack for the
    # nudge cases, see Separator.balanced)
    assert len(sep.upper) + len(sep.lower) == n
    if n >= 16:
        assert sep.balanced, (
            f"unbalanced: {len(sep.upper)}/{len(sep.lower)} via {sep.branch}"
        )
    # property 3: O(n) segments
    assert sep.staircase.num_segments <= 2 * n + 4
    # sides are真 sides: every obstacle's corners weakly on its side
    for idx in sep.upper:
        for v in rects[idx].vertices:
            assert sep.staircase.side_of(v) >= 0, (idx, v)
    for idx in sep.lower:
        for v in rects[idx].vertices:
            assert sep.staircase.side_of(v) <= 0, (idx, v)


class TestSeparatorSmall:
    def test_two_rects(self):
        rects = [Rect(0, 0, 2, 2), Rect(10, 10, 12, 12)]
        sep = staircase_separator(rects, PRAM())
        check_separator(rects, sep)
        assert len(sep.upper) == 1 and len(sep.lower) == 1

    def test_single_rect_rejected(self):
        with pytest.raises(GeometryError):
            staircase_separator([Rect(0, 0, 1, 1)], PRAM())

    def test_vertical_stack_uses_vertical_branch(self):
        # tall rects all crossing the median vertical line
        rects = [Rect(0, 10 * i, 20, 10 * i + 5) for i in range(8)]
        sep = staircase_separator(rects, PRAM())
        check_separator(rects, sep)
        assert sep.branch == "vertical"
        assert min(len(sep.upper), len(sep.lower)) >= 4

    def test_horizontal_stack(self):
        rects = [Rect(10 * i, 0, 10 * i + 5, 20) for i in range(8)]
        sep = staircase_separator(rects, PRAM())
        check_separator(rects, sep)
        assert sep.branch == "horizontal"
        assert min(len(sep.upper), len(sep.lower)) >= 4

    def test_quadrant_case(self):
        # scattered small rects, none crossing the medians
        rects = [
            Rect(0, 0, 1, 1), Rect(2, 2, 3, 3), Rect(20, 2, 21, 3),
            Rect(22, 0, 23, 1), Rect(0, 20, 1, 21), Rect(2, 22, 3, 23),
            Rect(20, 20, 21, 21), Rect(22, 22, 23, 23),
        ]
        sep = staircase_separator(rects, PRAM())
        check_separator(rects, sep)

    def test_origin_inside_obstacle_nudged(self):
        # one big rect centred on both medians plus scattered corners
        rects = [
            Rect(9, 9, 16, 16),
            Rect(0, 0, 2, 2), Rect(4, 4, 6, 6),
            Rect(19, 0, 21, 2), Rect(23, 4, 25, 6),
            Rect(0, 19, 2, 21), Rect(4, 23, 6, 25),
            Rect(19, 19, 21, 21), Rect(23, 23, 25, 26),
        ]
        sep = staircase_separator(rects, PRAM())
        check_separator(rects, sep)


class TestSeparatorRandom:
    @pytest.mark.parametrize("mode", WORKLOAD_MODES)
    @pytest.mark.parametrize("n", [16, 64, 160])
    def test_all_workloads(self, mode, n):
        rects = random_disjoint_rects(n, seed=5, mode=mode)
        sep = staircase_separator(rects, PRAM())
        check_separator(rects, sep)

    @pytest.mark.parametrize("seed", range(6))
    def test_many_seeds(self, seed):
        rects = random_disjoint_rects(48, seed=seed)
        sep = staircase_separator(rects, PRAM())
        check_separator(rects, sep)

    def test_metering(self):
        pram = PRAM()
        rects = random_disjoint_rects(64, seed=1)
        staircase_separator(rects, pram)
        assert pram.time > 0 and pram.work > 0
        # near-linear work: generous envelope to catch regressions
        assert pram.work <= 600 * 64
