"""Edge-case and failure-injection tests across all subsystems.

These cover the awkward geometries and misuse paths the main suites don't:
touching rectangles (polygon pockets produce them), degenerate separators,
single-obstacle scenes, huge coordinates, empty inputs, and API misuse.
"""

import math

import numpy as np
import pytest

from repro.core.allpairs import DistanceIndex, ParallelEngine
from repro.core.baseline import GridOracle, path_is_clear, path_length
from repro.core.query import QueryStructure
from repro.core.sequential import SequentialEngine
from repro.errors import DisjointnessError, GeometryError, QueryError
from repro.geometry.primitives import Rect, dist, validate_disjoint
from repro.geometry.staircase import Staircase
from repro.monge.matrix import as_matrix, is_monge
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects


class TestTouchingRectangles:
    """Shared edges and corners — the pocket-decomposition regime."""

    def stacked(self):
        # three slabs sharing full horizontal edges
        return [Rect(0, 0, 10, 2), Rect(0, 2, 10, 4), Rect(0, 4, 10, 6)]

    def test_validate_accepts_stacked(self):
        validate_disjoint(self.stacked())

    def test_engines_agree_on_stacked(self):
        rects = self.stacked()
        seq = SequentialEngine(rects).build()
        par = ParallelEngine(rects, [], PRAM(), leaf_size=2).build()
        assert (par.submatrix(seq.points) == seq.matrix).all()

    def test_seam_corner_distances(self):
        rects = self.stacked()
        idx = SequentialEngine(rects).build()
        # around the combined block, not through it
        assert idx.length((0, 0), (10, 6)) == 16
        # along the shared seam edges: boundary is passable
        assert idx.length((0, 2), (10, 2)) == 10

    def test_corner_touching(self):
        rects = [Rect(0, 0, 4, 4), Rect(4, 4, 8, 8)]
        seq = SequentialEngine(rects).build()
        oracle = GridOracle(rects, seq.points)
        assert (oracle.dist_matrix(seq.points) == seq.matrix).all()
        # diagonal corner is passable
        assert seq.length((0, 4), (8, 4)) == 8

    def test_checkerboard(self):
        rects = [
            Rect(0, 0, 2, 2), Rect(2, 2, 4, 4), Rect(4, 0, 6, 2),
            Rect(2, 6, 4, 8), Rect(0, 4, 2, 6),
        ]
        validate_disjoint(rects)
        seq = SequentialEngine(rects).build()
        oracle = GridOracle(rects, seq.points)
        assert (oracle.dist_matrix(seq.points) == seq.matrix).all()


class TestExtremeGeometry:
    def test_huge_coordinates_stay_exact(self):
        base = 10**12
        rects = [
            Rect(base, base, base + 5, base + 9),
            Rect(base + 11, base - 7, base + 19, base + 3),
        ]
        idx = SequentialEngine(rects).build()
        for i, p in enumerate(idx.points):
            for j, q in enumerate(idx.points):
                assert idx.matrix[i, j] >= dist(p, q)
        # values exceed 2^32 comfortably and remain exact in float64
        assert idx.length(rects[0].sw, rects[1].ne) == dist(
            rects[0].sw, rects[1].ne
        )

    def test_negative_coordinates(self):
        rects = [Rect(-20, -20, -10, -12), Rect(-5, -8, 3, -1)]
        seq = SequentialEngine(rects).build()
        oracle = GridOracle(rects, seq.points)
        assert (oracle.dist_matrix(seq.points) == seq.matrix).all()

    def test_unit_squares(self):
        rects = [Rect(3 * i, 0, 3 * i + 1, 1) for i in range(10)]
        seq = SequentialEngine(rects).build()
        assert np.isfinite(seq.matrix).all()

    def test_nested_envelope_like_layout(self):
        # a big U around a small block
        rects = [
            Rect(0, 0, 20, 2), Rect(0, 2, 2, 20), Rect(18, 2, 20, 20),
            Rect(8, 8, 12, 12),
        ]
        seq = SequentialEngine(rects).build()
        par = ParallelEngine(rects, [], PRAM(), leaf_size=2).build()
        assert (par.submatrix(seq.points) == seq.matrix).all()


class TestSmallN:
    @pytest.mark.parametrize("n", [2, 3, 4, 5])
    def test_below_theorem2_threshold(self, n):
        """Theorem 2's balance guarantee needs n ≥ 8; the engine must stay
        exact below it regardless of what the separator does."""
        rects = random_disjoint_rects(n, seed=n)
        par = ParallelEngine(rects, [], PRAM(), leaf_size=2).build()
        oracle = GridOracle(rects, par.points)
        assert (oracle.dist_matrix(par.points) == par.matrix).all()

    def test_single_obstacle_all_pairs(self):
        r = Rect(0, 0, 7, 3)
        idx = SequentialEngine([r]).build()
        assert idx.length(r.sw, r.ne) == 10
        assert idx.length(r.sw, r.se) == 7
        assert idx.length(r.nw, r.se) == 10


class TestAPIsAndErrors:
    def test_distance_index_submatrix_order(self):
        pts = [(0, 0), (5, 0), (0, 5)]
        m = np.arange(9, dtype=float).reshape(3, 3)
        idx = DistanceIndex(pts, m)
        sub = idx.submatrix([(0, 5), (0, 0)])
        assert sub[0, 1] == m[2, 0]
        assert len(idx) == 3

    def test_distance_index_unknown_point(self):
        idx = DistanceIndex([(0, 0)], np.zeros((1, 1)))
        with pytest.raises(QueryError):
            idx.length((0, 0), (1, 1))

    def test_overlapping_input_rejected_everywhere(self):
        bad = [Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)]
        with pytest.raises(DisjointnessError):
            ParallelEngine(bad, [], PRAM())
        with pytest.raises(DisjointnessError):
            SequentialEngine(bad)

    def test_as_matrix_rejects_1d(self):
        with pytest.raises(ValueError):
            as_matrix([1.0, 2.0])

    def test_is_monge_with_all_inf(self):
        assert is_monge(np.full((3, 3), math.inf))

    def test_query_structure_both_registered_short_circuit(self):
        rects = [Rect(0, 0, 2, 2)]
        idx = SequentialEngine(rects).build()
        qs = QueryStructure(rects, idx, PRAM())
        assert qs.length((0, 0), (2, 2)) == idx.length((0, 0), (2, 2))


class TestStaircaseEdgeCases:
    def test_single_point_bounded(self):
        s = Staircase(((5, 5),), increasing=True)
        assert s.pts == ((5, 5),)
        assert s._contains_bounded((5, 5))
        assert not s._contains_bounded((5, 6))

    def test_horizontal_only_chain_sides(self):
        s = Staircase(((0, 0), (10, 0)), increasing=True, left_dir="W", right_dir="E")
        assert s.side_of((5, 3)) == 1
        assert s.side_of((5, -3)) == -1
        assert s.side_of((100, 0)) == 0

    def test_subchain_single_point(self):
        s = Staircase(((0, 0), (4, 0), (4, 3)), increasing=True)
        assert s.subchain((2, 0), (2, 0)) == [(2, 0)]

    def test_crossings_on_ray(self):
        s = Staircase(((0, 0), (4, 0), (4, 3)), increasing=True,
                      left_dir="W", right_dir="N")
        assert s.crossings_with_hline(100) == [(4, 100)]
        assert s.crossings_with_vline(-50) == [(-50, 0)]


class TestQueryGeometryCorners:
    """Positions that stress the §6.4 case analysis."""

    def setup_method(self):
        self.rects = [Rect(4, 4, 10, 10), Rect(14, 2, 18, 8), Rect(6, 14, 12, 18)]
        self.idx = SequentialEngine(self.rects).build()
        self.qs = QueryStructure(self.rects, self.idx, PRAM())

    def check(self, p, q):
        oracle = GridOracle(self.rects, [p, q])
        assert self.qs.length(p, q) == oracle.dist(p, q), (p, q)

    def test_point_in_notch_between_obstacles(self):
        self.check((12, 6), (0, 0))  # between the two lower blocks

    def test_point_on_obstacle_edge(self):
        self.check((7, 4), (20, 20))  # on the bottom edge of block 1

    def test_corner_to_corner_diagonal(self):
        self.check((0, 20), (20, 0))

    def test_alignment_through_gap(self):
        self.check((0, 12), (20, 12))  # passes between the blocks

    def test_query_point_equal_to_vertex(self):
        v = self.rects[0].ne
        self.check(v, (0, 0))


class TestPathsThroughSeams:
    def test_path_between_touching_rects_valid(self):
        from repro.core.pathreport import PathReporter

        rects = [Rect(0, 0, 4, 4), Rect(4, 0, 8, 4), Rect(0, 4, 8, 6)]
        idx = SequentialEngine(rects).build()
        rep = PathReporter(rects, idx, PRAM())
        p, q = (0, 0), (8, 6)
        path = rep.path(p, q)
        assert path_length(path) == idx.length(p, q)
        assert path_is_clear(path, rects)
