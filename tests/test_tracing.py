"""Tests for path tracing (Lemma 6, Lemma 12) and trace combination."""

import pytest

from repro.core.tracing import (
    MODES,
    TraceForests,
    combine_traces,
    trace_heading,
)
from repro.errors import GeometryError
from repro.geometry.primitives import Rect, dist
from repro.geometry.staircase import Staircase
from repro.pram import PRAM
from repro.workloads.generators import random_disjoint_rects, random_free_points


def path_is_clear(points, ray_dir, rects):
    stair_ok = True
    for a, b in zip(points, points[1:]):
        for r in rects:
            if a[1] == b[1] and r.blocks_h_segment(a[1], a[0], b[0]):
                stair_ok = False
            if a[0] == b[0] and r.blocks_v_segment(a[0], a[1], b[1]):
                stair_ok = False
    # final ray
    x, y = points[-1]
    for r in rects:
        if ray_dir == "N" and r.xlo < x < r.xhi and r.ylo >= y:
            stair_ok = False
        if ray_dir == "S" and r.xlo < x < r.xhi and r.yhi <= y:
            stair_ok = False
        if ray_dir == "E" and r.ylo < y < r.yhi and r.xlo >= x:
            stair_ok = False
        if ray_dir == "W" and r.ylo < y < r.yhi and r.xhi <= x:
            stair_ok = False
    return stair_ok


class TestTrace:
    def test_free_plane_is_straight_ray(self):
        forests = TraceForests([Rect(100, 100, 101, 101)], PRAM())
        tp = forests.trace((0, 0), "NE", PRAM())
        assert tp.points == [(0, 0)]
        assert tp.ray_dir == "N"

    def test_single_detour(self):
        rects = [Rect(-2, 4, 3, 7)]
        forests = TraceForests(rects, PRAM())
        tp = forests.trace((0, 0), "NE", PRAM())
        assert tp.points == [(0, 0), (0, 4), (3, 4)]
        assert tp.ray_dir == "N"

    def test_nw_detours_west(self):
        rects = [Rect(-2, 4, 3, 7)]
        forests = TraceForests(rects, PRAM())
        tp = forests.trace((0, 0), "NW", PRAM())
        assert tp.points == [(0, 0), (0, 4), (-2, 4)]

    def test_ws_mode(self):
        rects = [Rect(-6, -3, -4, 2)]
        forests = TraceForests(rects, PRAM())
        tp = forests.trace((0, 0), "WS", PRAM())
        # heading west at y=0 hits the right edge, slides south to (−4,−3)
        assert tp.points == [(0, 0), (-4, 0), (-4, -3)]
        assert tp.ray_dir == "W"

    def test_cannot_trace_from_interior(self):
        forests = TraceForests([Rect(0, 0, 4, 4)], PRAM())
        with pytest.raises(GeometryError):
            forests.trace((2, 2), "NE", PRAM())

    def test_unknown_mode(self):
        forests = TraceForests([Rect(0, 0, 1, 1)], PRAM())
        with pytest.raises(GeometryError):
            forests.trace((5, 5), "XX", PRAM())

    @pytest.mark.parametrize("mode", list(MODES))
    def test_paths_clear_and_monotone_random(self, mode):
        rects = random_disjoint_rects(40, seed=17)
        forests = TraceForests(rects, PRAM())
        for p in random_free_points(rects, 25, seed=23):
            tp = forests.trace(p, mode, PRAM())
            assert path_is_clear(tp.points, tp.ray_dir, rects), (p, mode)
            # monotone in both axes
            xs = [q[0] for q in tp.points]
            ys = [q[1] for q in tp.points]
            assert xs == sorted(xs) or xs == sorted(xs, reverse=True)
            assert ys == sorted(ys) or ys == sorted(ys, reverse=True)
            assert tp.size <= 2 * len(rects) + 2

    def test_forest_parents_consistent_with_traces(self):
        rects = random_disjoint_rects(30, seed=31)
        forests = TraceForests(rects, PRAM())
        parents = forests.parents("NE")
        for i, r in enumerate(rects):
            tp = forests.trace((r.xhi, r.ylo), "NE", PRAM())
            # first obstacle the resumed path hits is the forest parent
            if parents[i] is None:
                assert len(tp.points) == 1
            else:
                hit_rect = rects[parents[i]]
                assert tp.points[1][1] == hit_rect.ylo

    def test_all_vertex_paths(self):
        rects = random_disjoint_rects(12, seed=3)
        forests = TraceForests(rects, PRAM())
        paths = forests.all_vertex_paths("SW", PRAM())
        assert len(paths) == 4 * len(rects)
        for v, tp in paths.items():
            assert tp.origin == v


class TestLemma12SingleCrossing:
    """X(p) paths cross a clear staircase at most once (Lemma 12)."""

    @pytest.mark.parametrize("mode", ["NE", "SW", "WN", "ES"])
    def test_crossings_bounded(self, mode):
        rects = random_disjoint_rects(35, seed=41)
        forests = TraceForests(rects, PRAM())
        # a clear staircase: another traced separator shape
        from repro.core.separator import staircase_separator

        sep = staircase_separator(rects, PRAM(), forests).staircase
        for p in random_free_points(rects, 15, seed=47):
            tp = forests.trace(p, mode, PRAM())
            sides = []
            for q in tp.points:
                s = sep.side_of(q)
                if not sides or (s != 0 and s != sides[-1]):
                    if s != 0:
                        sides.append(s)
            # strictly-alternating side sequence has at most one flip
            flips = sum(1 for a, b in zip(sides, sides[1:]) if a != b)
            assert flips <= 1, (p, mode, sides)


class TestHeadingAndCombine:
    def test_headings(self):
        assert trace_heading("NE") == "NE"
        assert trace_heading("EN") == "NE"
        assert trace_heading("WS") == "SW"
        assert trace_heading("SE") == "SE"
        assert trace_heading("NW") == "NW"

    def test_combine_increasing(self):
        rects = [Rect(2, 2, 4, 4), Rect(-5, -5, -3, -2)]
        forests = TraceForests(rects, PRAM())
        ne = forests.trace((0, 0), "NE", PRAM())
        sw = forests.trace((0, 0), "SW", PRAM())
        sep = combine_traces(ne, sw)
        assert isinstance(sep, Staircase)
        assert sep.unbounded and sep.increasing
        assert sep.is_clear(rects)

    def test_combine_decreasing(self):
        rects = [Rect(2, -5, 4, -2), Rect(-5, 2, -2, 5)]
        forests = TraceForests(rects, PRAM())
        se = forests.trace((0, 0), "SE", PRAM())
        nw = forests.trace((0, 0), "NW", PRAM())
        sep = combine_traces(se, nw)
        assert sep.unbounded and not sep.increasing
        assert sep.is_clear(rects)

    def test_combine_rejects_same_heading(self):
        forests = TraceForests([Rect(10, 10, 11, 11)], PRAM())
        a = forests.trace((0, 0), "NE", PRAM())
        b = forests.trace((0, 0), "EN", PRAM())
        with pytest.raises(GeometryError):
            combine_traces(a, b)

    def test_combine_rejects_different_origin(self):
        forests = TraceForests([Rect(10, 10, 11, 11)], PRAM())
        a = forests.trace((0, 0), "NE", PRAM())
        b = forests.trace((1, 0), "SW", PRAM())
        with pytest.raises(GeometryError):
            combine_traces(a, b)

    def test_combined_length_is_l1_along_chain(self):
        rects = random_disjoint_rects(20, seed=5)
        forests = TraceForests(rects, PRAM())
        from repro.core.separator import staircase_separator

        sep = staircase_separator(rects, PRAM(), forests).staircase
        pts = sep.pts
        assert sep.arc_dist(pts[0], pts[-1]) == dist(pts[0], pts[-1])
