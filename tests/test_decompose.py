"""Rectangle decomposition of rectilinear polygons (geometry/decompose)."""

import pytest

from repro.errors import GeometryError, QueryError
from repro.geometry.decompose import (
    Seam,
    decompose_loop,
    normalize_loop,
    polygon_seams,
    staircase_clear_of_seams,
)
from repro.geometry.polygon import RectilinearPolygon, rect_polygon
from repro.geometry.primitives import Rect, validate_disjoint
from repro.geometry.staircase import Staircase
from repro.workloads.generators import (
    POLYGON_KINDS,
    plus_polygon,
    random_blob_polygon,
    spiral_polygon,
    staircase_polygon,
)

U_LOOP = [(0, 0), (10, 0), (10, 10), (6, 10), (6, 4), (4, 4), (4, 10), (0, 10)]


def _area2(loop):
    s = 0
    for (x1, y1), (x2, y2) in zip(loop, loop[1:] + [loop[0]]):
        s += x1 * y2 - x2 * y1
    return abs(s)


def _cell_covered(rects, x, y):
    return sum(
        1 for r in rects if r.xlo <= x and x + 1 <= r.xhi and r.ylo <= y and y + 1 <= r.yhi
    )


class TestDecomposeLoop:
    def test_rectangle_is_one_tile_no_seams(self):
        rects = decompose_loop([(0, 0), (8, 0), (8, 5), (0, 5)])
        assert rects == [Rect(0, 0, 8, 5)]
        assert polygon_seams(rects) == []

    def test_u_shape_tiles_and_seams(self):
        rects = decompose_loop(U_LOOP)
        assert len(rects) == 3
        seams = polygon_seams(rects)
        assert seams == [Seam(4, 0, 4), Seam(6, 0, 4)]

    @pytest.mark.parametrize(
        "poly",
        [
            plus_polygon(0, 0, 6, 2),
            spiral_polygon(0, 0, 1),
            staircase_polygon(0, 0, 4, 2, 3, 3),
            random_blob_polygon(7, cols=6),
        ],
        ids=["plus", "spiral", "staircase", "blob"],
    )
    def test_tiling_is_exact_partition(self, poly):
        rects, seams = poly.decomposition()
        # disjoint interiors, even with collinear touching edges
        validate_disjoint(rects)
        # area: the tiles partition the polygon
        assert sum(2 * r.width * r.height for r in rects) == _area2(poly.loop)
        # unit-cell cover: a cell is in exactly one tile iff its center is
        # inside the polygon, else in none
        xlo, ylo, xhi, yhi = poly.bbox
        for x in range(xlo, xhi):
            for y in range(ylo, yhi):
                n = _cell_covered(rects, x, y)
                inside = poly.contains_interior((x + 0.5, y + 0.5))
                assert n == (1 if inside else 0), (x, y)
        # every seam is an interior shared edge: midpoint strictly inside
        for s in seams:
            mid = (s.x, (s.ylo + s.yhi) // 2)
            if (s.ylo + s.yhi) % 2 == 0:
                assert poly.contains_interior(mid), s
            assert poly.contains(mid)
            # endpoints are tile corners
            corners = {v for r in rects for v in r.vertices}
            assert set(s.endpoints) <= corners, s

    def test_collinear_vertices_merged(self):
        rects = decompose_loop(
            [(0, 0), (4, 0), (8, 0), (8, 5), (4, 5), (0, 5)]
        )
        assert rects == [Rect(0, 0, 8, 5)]

    def test_holes_rejected_one_line(self):
        with pytest.raises(GeometryError, match="holes are not supported"):
            decompose_loop(U_LOOP, holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]])
        with pytest.raises(GeometryError, match="holes are not supported"):
            RectilinearPolygon(U_LOOP, holes=[[(1, 1), (2, 1), (2, 2), (1, 2)]])

    def test_self_intersecting_rejected(self):
        bowtie = [(0, 0), (4, 0), (4, 4), (8, 4), (8, 8), (0, 8), (0, 4), (4, 4), (4, 2), (0, 2)]
        with pytest.raises(GeometryError):
            decompose_loop(bowtie)

    def test_non_rectilinear_rejected(self):
        with pytest.raises(GeometryError, match="non-rectilinear"):
            normalize_loop([(0, 0), (5, 5), (0, 5), (0, 1)])

    def test_zero_area_rejected(self):
        with pytest.raises(GeometryError):
            decompose_loop([(0, 0), (5, 0), (5, 0), (0, 0)])


class TestSeams:
    def test_seam_blocking_semantics(self):
        s = Seam(4, 0, 4)
        assert s.blocks_v_segment(4, 1, 3)
        assert s.blocks_v_segment(4, -2, 1)  # partial overlap
        assert not s.blocks_v_segment(4, 4, 9)  # touches endpoint only
        assert not s.blocks_v_segment(5, 1, 3)  # other column
        assert s.contains_open((4, 2))
        assert not s.contains_open((4, 0)) and not s.contains_open((4, 4))

    def test_staircase_seam_guard(self):
        seams = [Seam(4, 0, 4)]
        runs_along = Staircase(((4, 1), (4, 3), (6, 3)), True, "S", "E")
        assert not staircase_clear_of_seams(runs_along, seams)
        crosses = Staircase(((2, 2), (6, 2)), True, "W", "E")
        assert staircase_clear_of_seams(crosses, seams)
        ray_through = Staircase(((4, 1), (6, 1)), True, "S", "E")
        assert not staircase_clear_of_seams(ray_through, seams)
        clear = Staircase(((4, 4), (6, 4)), True, "S", "E")
        # south ray from (4,4) runs straight down the seam
        assert not staircase_clear_of_seams(clear, seams)
        north_ok = Staircase(((0, 0), (4, 0)), True, "W", "N")
        # north ray at x=4 from y=0 overlaps (0,4)
        assert not staircase_clear_of_seams(north_ok, seams)


class TestPolygonContainment:
    def test_seam_points_are_interior(self):
        poly = RectilinearPolygon(U_LOOP)
        # (4, 2) sits on the seam between the left arm and the bottom bar
        assert poly.contains_interior((4, 2))
        assert poly.contains_interior((5, 2))
        assert not poly.contains_interior((4, 4))  # reflex vertex: boundary
        assert poly.on_boundary((4, 4))
        assert not poly.contains((5, 8))  # inside the U's cavity

    def test_facade_rejects_interior_and_seam_points(self):
        from repro.core.api import ShortestPathIndex

        idx = ShortestPathIndex.build([RectilinearPolygon(U_LOOP)])
        with pytest.raises(QueryError):
            idx.length((5, 2), (20, 20))  # strictly inside a tile
        with pytest.raises(QueryError):
            idx.length((4, 2), (20, 20))  # on a seam: still polygon interior
        with pytest.raises(QueryError):
            idx.lengths([((4, 2), (12, 0))])
        # reflex vertices are boundary points and must answer
        assert idx.length((4, 4), (6, 4)) == 2

    def test_convex_polygon_decomposes_and_still_contains(self):
        p = rect_polygon(0, 0, 10, 6)
        rects, seams = p.decomposition()
        assert rects == [Rect(0, 0, 10, 6)] and seams == []
        assert p.contains((0, 0)) and p.contains_interior((5, 3))

    @pytest.mark.parametrize("kind", POLYGON_KINDS)
    def test_generator_families_valid(self, kind):
        from repro.workloads.generators import _make_polygon

        for seed in range(5):
            poly = _make_polygon(kind, seed)
            rects, seams = poly.decomposition()
            validate_disjoint(rects)
            assert sum(2 * r.width * r.height for r in rects) == _area2(poly.loop)
            if kind in ("plus", "spiral", "staircase"):
                assert len(seams) >= 1
